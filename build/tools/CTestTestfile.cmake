# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sql_einsum_gen_smoke "/root/repo/build/tools/sql_einsum_gen" "ik,jk,j->i" "2x2,3x2,3" "--execute")
set_tests_properties(sql_einsum_gen_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sql_einsum_gen_stored_tables "/root/repo/build/tools/sql_einsum_gen" "ij,jk->ik" "4x4,4x4" "--tables=A,B" "--path=optimal")
set_tests_properties(sql_einsum_gen_stored_tables PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sql_einsum_gen_rejects_bad_format "/root/repo/build/tools/sql_einsum_gen" "i->>j" "2")
set_tests_properties(sql_einsum_gen_rejects_bad_format PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(minidb_shell_smoke "/root/repo/build/tools/minidb_shell" "--explain" "/root/repo/tools/testdata/smoke.sql")
set_tests_properties(minidb_shell_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(einsum_fuzz_smoke "/root/repo/build/tools/einsum_fuzz" "--seed=7" "--iters=12" "--quiet")
set_tests_properties(einsum_fuzz_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(einsum_fuzz_rejects_unbounded "/root/repo/build/tools/einsum_fuzz" "--iters=0")
set_tests_properties(einsum_fuzz_rejects_unbounded PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
