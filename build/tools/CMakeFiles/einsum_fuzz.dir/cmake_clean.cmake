file(REMOVE_RECURSE
  "CMakeFiles/einsum_fuzz.dir/einsum_fuzz.cc.o"
  "CMakeFiles/einsum_fuzz.dir/einsum_fuzz.cc.o.d"
  "einsum_fuzz"
  "einsum_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsum_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
