# Empty dependencies file for einsum_fuzz.
# This may be replaced when dependencies are built.
