file(REMOVE_RECURSE
  "CMakeFiles/sql_einsum_gen.dir/sql_einsum_gen.cc.o"
  "CMakeFiles/sql_einsum_gen.dir/sql_einsum_gen.cc.o.d"
  "sql_einsum_gen"
  "sql_einsum_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_einsum_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
