# Empty dependencies file for sql_einsum_gen.
# This may be replaced when dependencies are built.
