file(REMOVE_RECURSE
  "CMakeFiles/einsql_triplestore.dir/dictionary.cc.o"
  "CMakeFiles/einsql_triplestore.dir/dictionary.cc.o.d"
  "CMakeFiles/einsql_triplestore.dir/generator.cc.o"
  "CMakeFiles/einsql_triplestore.dir/generator.cc.o.d"
  "CMakeFiles/einsql_triplestore.dir/query.cc.o"
  "CMakeFiles/einsql_triplestore.dir/query.cc.o.d"
  "CMakeFiles/einsql_triplestore.dir/store.cc.o"
  "CMakeFiles/einsql_triplestore.dir/store.cc.o.d"
  "libeinsql_triplestore.a"
  "libeinsql_triplestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_triplestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
