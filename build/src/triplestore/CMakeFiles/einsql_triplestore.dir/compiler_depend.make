# Empty compiler generated dependencies file for einsql_triplestore.
# This may be replaced when dependencies are built.
