file(REMOVE_RECURSE
  "libeinsql_triplestore.a"
)
