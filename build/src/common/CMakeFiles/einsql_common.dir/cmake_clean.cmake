file(REMOVE_RECURSE
  "CMakeFiles/einsql_common.dir/rng.cc.o"
  "CMakeFiles/einsql_common.dir/rng.cc.o.d"
  "CMakeFiles/einsql_common.dir/status.cc.o"
  "CMakeFiles/einsql_common.dir/status.cc.o.d"
  "CMakeFiles/einsql_common.dir/str_util.cc.o"
  "CMakeFiles/einsql_common.dir/str_util.cc.o.d"
  "CMakeFiles/einsql_common.dir/trace.cc.o"
  "CMakeFiles/einsql_common.dir/trace.cc.o.d"
  "libeinsql_common.a"
  "libeinsql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
