# Empty dependencies file for einsql_common.
# This may be replaced when dependencies are built.
