file(REMOVE_RECURSE
  "libeinsql_common.a"
)
