file(REMOVE_RECURSE
  "libeinsql_core.a"
)
