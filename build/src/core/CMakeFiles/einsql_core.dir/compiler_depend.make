# Empty compiler generated dependencies file for einsql_core.
# This may be replaced when dependencies are built.
