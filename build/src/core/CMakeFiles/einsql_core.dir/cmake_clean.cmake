file(REMOVE_RECURSE
  "CMakeFiles/einsql_core.dir/cost.cc.o"
  "CMakeFiles/einsql_core.dir/cost.cc.o.d"
  "CMakeFiles/einsql_core.dir/dense_exec.cc.o"
  "CMakeFiles/einsql_core.dir/dense_exec.cc.o.d"
  "CMakeFiles/einsql_core.dir/format.cc.o"
  "CMakeFiles/einsql_core.dir/format.cc.o.d"
  "CMakeFiles/einsql_core.dir/path.cc.o"
  "CMakeFiles/einsql_core.dir/path.cc.o.d"
  "CMakeFiles/einsql_core.dir/program.cc.o"
  "CMakeFiles/einsql_core.dir/program.cc.o.d"
  "CMakeFiles/einsql_core.dir/reference.cc.o"
  "CMakeFiles/einsql_core.dir/reference.cc.o.d"
  "CMakeFiles/einsql_core.dir/sparse_exec.cc.o"
  "CMakeFiles/einsql_core.dir/sparse_exec.cc.o.d"
  "CMakeFiles/einsql_core.dir/sqlgen.cc.o"
  "CMakeFiles/einsql_core.dir/sqlgen.cc.o.d"
  "libeinsql_core.a"
  "libeinsql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
