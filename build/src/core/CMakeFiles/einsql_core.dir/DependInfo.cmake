
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/einsql_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/cost.cc.o.d"
  "/root/repo/src/core/dense_exec.cc" "src/core/CMakeFiles/einsql_core.dir/dense_exec.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/dense_exec.cc.o.d"
  "/root/repo/src/core/format.cc" "src/core/CMakeFiles/einsql_core.dir/format.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/format.cc.o.d"
  "/root/repo/src/core/path.cc" "src/core/CMakeFiles/einsql_core.dir/path.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/path.cc.o.d"
  "/root/repo/src/core/program.cc" "src/core/CMakeFiles/einsql_core.dir/program.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/program.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/core/CMakeFiles/einsql_core.dir/reference.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/reference.cc.o.d"
  "/root/repo/src/core/sparse_exec.cc" "src/core/CMakeFiles/einsql_core.dir/sparse_exec.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/sparse_exec.cc.o.d"
  "/root/repo/src/core/sqlgen.cc" "src/core/CMakeFiles/einsql_core.dir/sqlgen.cc.o" "gcc" "src/core/CMakeFiles/einsql_core.dir/sqlgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/einsql_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/einsql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
