file(REMOVE_RECURSE
  "CMakeFiles/einsql_testing.dir/corpus.cc.o"
  "CMakeFiles/einsql_testing.dir/corpus.cc.o.d"
  "CMakeFiles/einsql_testing.dir/differential.cc.o"
  "CMakeFiles/einsql_testing.dir/differential.cc.o.d"
  "CMakeFiles/einsql_testing.dir/fuzz.cc.o"
  "CMakeFiles/einsql_testing.dir/fuzz.cc.o.d"
  "CMakeFiles/einsql_testing.dir/generator.cc.o"
  "CMakeFiles/einsql_testing.dir/generator.cc.o.d"
  "CMakeFiles/einsql_testing.dir/instance.cc.o"
  "CMakeFiles/einsql_testing.dir/instance.cc.o.d"
  "CMakeFiles/einsql_testing.dir/oracles.cc.o"
  "CMakeFiles/einsql_testing.dir/oracles.cc.o.d"
  "CMakeFiles/einsql_testing.dir/shrink.cc.o"
  "CMakeFiles/einsql_testing.dir/shrink.cc.o.d"
  "libeinsql_testing.a"
  "libeinsql_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
