# Empty dependencies file for einsql_testing.
# This may be replaced when dependencies are built.
