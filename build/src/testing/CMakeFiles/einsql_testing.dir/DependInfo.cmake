
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testing/corpus.cc" "src/testing/CMakeFiles/einsql_testing.dir/corpus.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/corpus.cc.o.d"
  "/root/repo/src/testing/differential.cc" "src/testing/CMakeFiles/einsql_testing.dir/differential.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/differential.cc.o.d"
  "/root/repo/src/testing/fuzz.cc" "src/testing/CMakeFiles/einsql_testing.dir/fuzz.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/fuzz.cc.o.d"
  "/root/repo/src/testing/generator.cc" "src/testing/CMakeFiles/einsql_testing.dir/generator.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/generator.cc.o.d"
  "/root/repo/src/testing/instance.cc" "src/testing/CMakeFiles/einsql_testing.dir/instance.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/instance.cc.o.d"
  "/root/repo/src/testing/oracles.cc" "src/testing/CMakeFiles/einsql_testing.dir/oracles.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/oracles.cc.o.d"
  "/root/repo/src/testing/shrink.cc" "src/testing/CMakeFiles/einsql_testing.dir/shrink.cc.o" "gcc" "src/testing/CMakeFiles/einsql_testing.dir/shrink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/einsql_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/einsql_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/einsql_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/einsql_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/einsql_minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
