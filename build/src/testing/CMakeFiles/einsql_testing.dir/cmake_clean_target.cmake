file(REMOVE_RECURSE
  "libeinsql_testing.a"
)
