file(REMOVE_RECURSE
  "libeinsql_minidb.a"
)
