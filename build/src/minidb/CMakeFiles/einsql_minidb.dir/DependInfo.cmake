
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/ast.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/ast.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/ast.cc.o.d"
  "/root/repo/src/minidb/database.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/database.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/database.cc.o.d"
  "/root/repo/src/minidb/executor.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/executor.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/executor.cc.o.d"
  "/root/repo/src/minidb/expr_eval.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/expr_eval.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/expr_eval.cc.o.d"
  "/root/repo/src/minidb/lexer.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/lexer.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/lexer.cc.o.d"
  "/root/repo/src/minidb/parser.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/parser.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/parser.cc.o.d"
  "/root/repo/src/minidb/plan.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/plan.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/plan.cc.o.d"
  "/root/repo/src/minidb/planner.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/planner.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/planner.cc.o.d"
  "/root/repo/src/minidb/profile.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/profile.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/profile.cc.o.d"
  "/root/repo/src/minidb/table.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/table.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/table.cc.o.d"
  "/root/repo/src/minidb/value.cc" "src/minidb/CMakeFiles/einsql_minidb.dir/value.cc.o" "gcc" "src/minidb/CMakeFiles/einsql_minidb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/einsql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
