# Empty compiler generated dependencies file for einsql_minidb.
# This may be replaced when dependencies are built.
