file(REMOVE_RECURSE
  "CMakeFiles/einsql_minidb.dir/ast.cc.o"
  "CMakeFiles/einsql_minidb.dir/ast.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/database.cc.o"
  "CMakeFiles/einsql_minidb.dir/database.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/executor.cc.o"
  "CMakeFiles/einsql_minidb.dir/executor.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/expr_eval.cc.o"
  "CMakeFiles/einsql_minidb.dir/expr_eval.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/lexer.cc.o"
  "CMakeFiles/einsql_minidb.dir/lexer.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/parser.cc.o"
  "CMakeFiles/einsql_minidb.dir/parser.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/plan.cc.o"
  "CMakeFiles/einsql_minidb.dir/plan.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/planner.cc.o"
  "CMakeFiles/einsql_minidb.dir/planner.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/profile.cc.o"
  "CMakeFiles/einsql_minidb.dir/profile.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/table.cc.o"
  "CMakeFiles/einsql_minidb.dir/table.cc.o.d"
  "CMakeFiles/einsql_minidb.dir/value.cc.o"
  "CMakeFiles/einsql_minidb.dir/value.cc.o.d"
  "libeinsql_minidb.a"
  "libeinsql_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
