file(REMOVE_RECURSE
  "CMakeFiles/einsql_graphical.dir/generator.cc.o"
  "CMakeFiles/einsql_graphical.dir/generator.cc.o.d"
  "CMakeFiles/einsql_graphical.dir/inference.cc.o"
  "CMakeFiles/einsql_graphical.dir/inference.cc.o.d"
  "CMakeFiles/einsql_graphical.dir/model.cc.o"
  "CMakeFiles/einsql_graphical.dir/model.cc.o.d"
  "libeinsql_graphical.a"
  "libeinsql_graphical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_graphical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
