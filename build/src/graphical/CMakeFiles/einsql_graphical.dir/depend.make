# Empty dependencies file for einsql_graphical.
# This may be replaced when dependencies are built.
