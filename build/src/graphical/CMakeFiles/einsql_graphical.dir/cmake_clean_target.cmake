file(REMOVE_RECURSE
  "libeinsql_graphical.a"
)
