file(REMOVE_RECURSE
  "CMakeFiles/einsql_quantum.dir/circuit.cc.o"
  "CMakeFiles/einsql_quantum.dir/circuit.cc.o.d"
  "CMakeFiles/einsql_quantum.dir/gates.cc.o"
  "CMakeFiles/einsql_quantum.dir/gates.cc.o.d"
  "CMakeFiles/einsql_quantum.dir/sycamore.cc.o"
  "CMakeFiles/einsql_quantum.dir/sycamore.cc.o.d"
  "CMakeFiles/einsql_quantum.dir/to_einsum.cc.o"
  "CMakeFiles/einsql_quantum.dir/to_einsum.cc.o.d"
  "libeinsql_quantum.a"
  "libeinsql_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
