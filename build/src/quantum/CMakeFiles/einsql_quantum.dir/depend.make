# Empty dependencies file for einsql_quantum.
# This may be replaced when dependencies are built.
