file(REMOVE_RECURSE
  "libeinsql_quantum.a"
)
