file(REMOVE_RECURSE
  "CMakeFiles/einsql_sat.dir/cnf.cc.o"
  "CMakeFiles/einsql_sat.dir/cnf.cc.o.d"
  "CMakeFiles/einsql_sat.dir/count.cc.o"
  "CMakeFiles/einsql_sat.dir/count.cc.o.d"
  "CMakeFiles/einsql_sat.dir/dimacs.cc.o"
  "CMakeFiles/einsql_sat.dir/dimacs.cc.o.d"
  "CMakeFiles/einsql_sat.dir/generator.cc.o"
  "CMakeFiles/einsql_sat.dir/generator.cc.o.d"
  "CMakeFiles/einsql_sat.dir/tensorize.cc.o"
  "CMakeFiles/einsql_sat.dir/tensorize.cc.o.d"
  "libeinsql_sat.a"
  "libeinsql_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
