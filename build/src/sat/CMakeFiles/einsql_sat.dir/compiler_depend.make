# Empty compiler generated dependencies file for einsql_sat.
# This may be replaced when dependencies are built.
