file(REMOVE_RECURSE
  "libeinsql_sat.a"
)
