# Empty dependencies file for einsql_tensor.
# This may be replaced when dependencies are built.
