file(REMOVE_RECURSE
  "libeinsql_tensor.a"
)
