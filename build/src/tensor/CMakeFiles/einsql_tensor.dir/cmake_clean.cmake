file(REMOVE_RECURSE
  "CMakeFiles/einsql_tensor.dir/contract.cc.o"
  "CMakeFiles/einsql_tensor.dir/contract.cc.o.d"
  "CMakeFiles/einsql_tensor.dir/shape.cc.o"
  "CMakeFiles/einsql_tensor.dir/shape.cc.o.d"
  "CMakeFiles/einsql_tensor.dir/sparse_contract.cc.o"
  "CMakeFiles/einsql_tensor.dir/sparse_contract.cc.o.d"
  "libeinsql_tensor.a"
  "libeinsql_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
