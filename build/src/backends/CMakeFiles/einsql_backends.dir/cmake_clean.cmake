file(REMOVE_RECURSE
  "CMakeFiles/einsql_backends.dir/einsum_engine.cc.o"
  "CMakeFiles/einsql_backends.dir/einsum_engine.cc.o.d"
  "CMakeFiles/einsql_backends.dir/minidb_backend.cc.o"
  "CMakeFiles/einsql_backends.dir/minidb_backend.cc.o.d"
  "CMakeFiles/einsql_backends.dir/sqlite_backend.cc.o"
  "CMakeFiles/einsql_backends.dir/sqlite_backend.cc.o.d"
  "libeinsql_backends.a"
  "libeinsql_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsql_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
