# Empty compiler generated dependencies file for einsql_backends.
# This may be replaced when dependencies are built.
