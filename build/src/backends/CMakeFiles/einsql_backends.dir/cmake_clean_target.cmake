file(REMOVE_RECURSE
  "libeinsql_backends.a"
)
