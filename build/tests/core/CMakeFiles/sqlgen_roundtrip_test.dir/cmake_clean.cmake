file(REMOVE_RECURSE
  "CMakeFiles/sqlgen_roundtrip_test.dir/sqlgen_roundtrip_test.cc.o"
  "CMakeFiles/sqlgen_roundtrip_test.dir/sqlgen_roundtrip_test.cc.o.d"
  "sqlgen_roundtrip_test"
  "sqlgen_roundtrip_test.pdb"
  "sqlgen_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgen_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
