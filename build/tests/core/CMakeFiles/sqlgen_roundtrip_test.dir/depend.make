# Empty dependencies file for sqlgen_roundtrip_test.
# This may be replaced when dependencies are built.
