# Empty dependencies file for dense_exec_test.
# This may be replaced when dependencies are built.
