file(REMOVE_RECURSE
  "CMakeFiles/dense_exec_test.dir/dense_exec_test.cc.o"
  "CMakeFiles/dense_exec_test.dir/dense_exec_test.cc.o.d"
  "dense_exec_test"
  "dense_exec_test.pdb"
  "dense_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
