# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/format_test[1]_include.cmake")
include("/root/repo/build/tests/core/path_test[1]_include.cmake")
include("/root/repo/build/tests/core/program_test[1]_include.cmake")
include("/root/repo/build/tests/core/sqlgen_test[1]_include.cmake")
include("/root/repo/build/tests/core/reference_test[1]_include.cmake")
include("/root/repo/build/tests/core/dense_exec_test[1]_include.cmake")
include("/root/repo/build/tests/core/sqlgen_roundtrip_test[1]_include.cmake")
