# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("core")
subdirs("minidb")
subdirs("backends")
subdirs("testing")
subdirs("sat")
subdirs("triplestore")
subdirs("graphical")
subdirs("quantum")
subdirs("integration")
