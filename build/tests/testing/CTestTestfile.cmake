# CMake generated Testfile for 
# Source directory: /root/repo/tests/testing
# Build directory: /root/repo/build/tests/testing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/testing/almost_equal_test[1]_include.cmake")
include("/root/repo/build/tests/testing/instance_test[1]_include.cmake")
include("/root/repo/build/tests/testing/generator_test[1]_include.cmake")
include("/root/repo/build/tests/testing/shrink_test[1]_include.cmake")
include("/root/repo/build/tests/testing/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/testing/corpus_regression_test[1]_include.cmake")
