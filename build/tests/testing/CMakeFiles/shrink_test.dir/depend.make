# Empty dependencies file for shrink_test.
# This may be replaced when dependencies are built.
