file(REMOVE_RECURSE
  "CMakeFiles/shrink_test.dir/shrink_test.cc.o"
  "CMakeFiles/shrink_test.dir/shrink_test.cc.o.d"
  "shrink_test"
  "shrink_test.pdb"
  "shrink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shrink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
