# Empty dependencies file for almost_equal_test.
# This may be replaced when dependencies are built.
