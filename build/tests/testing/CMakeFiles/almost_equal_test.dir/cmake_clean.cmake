file(REMOVE_RECURSE
  "CMakeFiles/almost_equal_test.dir/almost_equal_test.cc.o"
  "CMakeFiles/almost_equal_test.dir/almost_equal_test.cc.o.d"
  "almost_equal_test"
  "almost_equal_test.pdb"
  "almost_equal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/almost_equal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
