
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testing/corpus_regression_test.cc" "tests/testing/CMakeFiles/corpus_regression_test.dir/corpus_regression_test.cc.o" "gcc" "tests/testing/CMakeFiles/corpus_regression_test.dir/corpus_regression_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/einsql_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/einsql_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/einsql_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/einsql_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/einsql_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/einsql_backends.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
