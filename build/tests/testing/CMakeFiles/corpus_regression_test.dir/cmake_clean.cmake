file(REMOVE_RECURSE
  "CMakeFiles/corpus_regression_test.dir/corpus_regression_test.cc.o"
  "CMakeFiles/corpus_regression_test.dir/corpus_regression_test.cc.o.d"
  "corpus_regression_test"
  "corpus_regression_test.pdb"
  "corpus_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
