# Empty dependencies file for corpus_regression_test.
# This may be replaced when dependencies are built.
