# Empty dependencies file for tensorize_test.
# This may be replaced when dependencies are built.
