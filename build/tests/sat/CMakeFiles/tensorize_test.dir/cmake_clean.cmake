file(REMOVE_RECURSE
  "CMakeFiles/tensorize_test.dir/tensorize_test.cc.o"
  "CMakeFiles/tensorize_test.dir/tensorize_test.cc.o.d"
  "tensorize_test"
  "tensorize_test.pdb"
  "tensorize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensorize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
