file(REMOVE_RECURSE
  "CMakeFiles/weighted_count_test.dir/weighted_count_test.cc.o"
  "CMakeFiles/weighted_count_test.dir/weighted_count_test.cc.o.d"
  "weighted_count_test"
  "weighted_count_test.pdb"
  "weighted_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
