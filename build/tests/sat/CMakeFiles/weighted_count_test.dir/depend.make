# Empty dependencies file for weighted_count_test.
# This may be replaced when dependencies are built.
