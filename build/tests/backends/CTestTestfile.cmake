# CMake generated Testfile for 
# Source directory: /root/repo/tests/backends
# Build directory: /root/repo/build/tests/backends
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/backends/backend_test[1]_include.cmake")
include("/root/repo/build/tests/backends/einsum_engine_test[1]_include.cmake")
include("/root/repo/build/tests/backends/einsum_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/backends/engine_trace_test[1]_include.cmake")
include("/root/repo/build/tests/backends/complex_sql_test[1]_include.cmake")
