# Empty dependencies file for engine_trace_test.
# This may be replaced when dependencies are built.
