file(REMOVE_RECURSE
  "CMakeFiles/engine_trace_test.dir/engine_trace_test.cc.o"
  "CMakeFiles/engine_trace_test.dir/engine_trace_test.cc.o.d"
  "engine_trace_test"
  "engine_trace_test.pdb"
  "engine_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
