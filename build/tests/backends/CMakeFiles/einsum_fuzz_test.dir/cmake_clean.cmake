file(REMOVE_RECURSE
  "CMakeFiles/einsum_fuzz_test.dir/einsum_fuzz_test.cc.o"
  "CMakeFiles/einsum_fuzz_test.dir/einsum_fuzz_test.cc.o.d"
  "einsum_fuzz_test"
  "einsum_fuzz_test.pdb"
  "einsum_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsum_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
