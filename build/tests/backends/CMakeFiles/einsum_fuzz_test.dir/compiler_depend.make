# Empty compiler generated dependencies file for einsum_fuzz_test.
# This may be replaced when dependencies are built.
