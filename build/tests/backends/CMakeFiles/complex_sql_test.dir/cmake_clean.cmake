file(REMOVE_RECURSE
  "CMakeFiles/complex_sql_test.dir/complex_sql_test.cc.o"
  "CMakeFiles/complex_sql_test.dir/complex_sql_test.cc.o.d"
  "complex_sql_test"
  "complex_sql_test.pdb"
  "complex_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
