# Empty dependencies file for complex_sql_test.
# This may be replaced when dependencies are built.
