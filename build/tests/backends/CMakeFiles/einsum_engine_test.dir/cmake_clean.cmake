file(REMOVE_RECURSE
  "CMakeFiles/einsum_engine_test.dir/einsum_engine_test.cc.o"
  "CMakeFiles/einsum_engine_test.dir/einsum_engine_test.cc.o.d"
  "einsum_engine_test"
  "einsum_engine_test.pdb"
  "einsum_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsum_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
