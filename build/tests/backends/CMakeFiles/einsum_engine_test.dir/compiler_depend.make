# Empty compiler generated dependencies file for einsum_engine_test.
# This may be replaced when dependencies are built.
