file(REMOVE_RECURSE
  "CMakeFiles/coo_test.dir/coo_test.cc.o"
  "CMakeFiles/coo_test.dir/coo_test.cc.o.d"
  "coo_test"
  "coo_test.pdb"
  "coo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
