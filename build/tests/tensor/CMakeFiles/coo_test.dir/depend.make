# Empty dependencies file for coo_test.
# This may be replaced when dependencies are built.
