file(REMOVE_RECURSE
  "CMakeFiles/sparse_contract_test.dir/sparse_contract_test.cc.o"
  "CMakeFiles/sparse_contract_test.dir/sparse_contract_test.cc.o.d"
  "sparse_contract_test"
  "sparse_contract_test.pdb"
  "sparse_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
