# Empty compiler generated dependencies file for sparse_contract_test.
# This may be replaced when dependencies are built.
