# CMake generated Testfile for 
# Source directory: /root/repo/tests/tensor
# Build directory: /root/repo/build/tests/tensor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor/shape_test[1]_include.cmake")
include("/root/repo/build/tests/tensor/coo_test[1]_include.cmake")
include("/root/repo/build/tests/tensor/dense_test[1]_include.cmake")
include("/root/repo/build/tests/tensor/contract_test[1]_include.cmake")
include("/root/repo/build/tests/tensor/sparse_contract_test[1]_include.cmake")
