file(REMOVE_RECURSE
  "CMakeFiles/graphical_test.dir/graphical_test.cc.o"
  "CMakeFiles/graphical_test.dir/graphical_test.cc.o.d"
  "graphical_test"
  "graphical_test.pdb"
  "graphical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
