# Empty dependencies file for graphical_test.
# This may be replaced when dependencies are built.
