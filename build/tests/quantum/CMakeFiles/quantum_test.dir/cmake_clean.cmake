file(REMOVE_RECURSE
  "CMakeFiles/quantum_test.dir/quantum_test.cc.o"
  "CMakeFiles/quantum_test.dir/quantum_test.cc.o.d"
  "quantum_test"
  "quantum_test.pdb"
  "quantum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
