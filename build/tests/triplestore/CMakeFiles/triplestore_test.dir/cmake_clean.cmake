file(REMOVE_RECURSE
  "CMakeFiles/triplestore_test.dir/triplestore_test.cc.o"
  "CMakeFiles/triplestore_test.dir/triplestore_test.cc.o.d"
  "triplestore_test"
  "triplestore_test.pdb"
  "triplestore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
