# Empty compiler generated dependencies file for triplestore_test.
# This may be replaced when dependencies are built.
