# CMake generated Testfile for 
# Source directory: /root/repo/tests/minidb
# Build directory: /root/repo/build/tests/minidb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/minidb/value_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/minidb_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/minidb_parser_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/minidb_executor_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/minidb_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/sql_features_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/differential_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/plan_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/execution_options_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/explain_analyze_test[1]_include.cmake")
include("/root/repo/build/tests/minidb/parallel_executor_test[1]_include.cmake")
