# Empty dependencies file for minidb_parser_test.
# This may be replaced when dependencies are built.
