file(REMOVE_RECURSE
  "CMakeFiles/minidb_parser_test.dir/parser_test.cc.o"
  "CMakeFiles/minidb_parser_test.dir/parser_test.cc.o.d"
  "minidb_parser_test"
  "minidb_parser_test.pdb"
  "minidb_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
