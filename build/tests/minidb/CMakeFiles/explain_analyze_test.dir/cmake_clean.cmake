file(REMOVE_RECURSE
  "CMakeFiles/explain_analyze_test.dir/explain_analyze_test.cc.o"
  "CMakeFiles/explain_analyze_test.dir/explain_analyze_test.cc.o.d"
  "explain_analyze_test"
  "explain_analyze_test.pdb"
  "explain_analyze_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_analyze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
