# Empty dependencies file for explain_analyze_test.
# This may be replaced when dependencies are built.
