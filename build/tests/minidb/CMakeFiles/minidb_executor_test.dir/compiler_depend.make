# Empty compiler generated dependencies file for minidb_executor_test.
# This may be replaced when dependencies are built.
