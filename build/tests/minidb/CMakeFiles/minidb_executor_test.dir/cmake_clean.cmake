file(REMOVE_RECURSE
  "CMakeFiles/minidb_executor_test.dir/executor_test.cc.o"
  "CMakeFiles/minidb_executor_test.dir/executor_test.cc.o.d"
  "minidb_executor_test"
  "minidb_executor_test.pdb"
  "minidb_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
