# Empty compiler generated dependencies file for execution_options_test.
# This may be replaced when dependencies are built.
