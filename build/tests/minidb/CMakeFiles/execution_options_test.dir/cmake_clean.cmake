file(REMOVE_RECURSE
  "CMakeFiles/execution_options_test.dir/execution_options_test.cc.o"
  "CMakeFiles/execution_options_test.dir/execution_options_test.cc.o.d"
  "execution_options_test"
  "execution_options_test.pdb"
  "execution_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
