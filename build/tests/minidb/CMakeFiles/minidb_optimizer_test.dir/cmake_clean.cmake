file(REMOVE_RECURSE
  "CMakeFiles/minidb_optimizer_test.dir/optimizer_test.cc.o"
  "CMakeFiles/minidb_optimizer_test.dir/optimizer_test.cc.o.d"
  "minidb_optimizer_test"
  "minidb_optimizer_test.pdb"
  "minidb_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
