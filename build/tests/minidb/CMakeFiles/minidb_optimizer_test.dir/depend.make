# Empty dependencies file for minidb_optimizer_test.
# This may be replaced when dependencies are built.
