file(REMOVE_RECURSE
  "CMakeFiles/minidb_lexer_test.dir/lexer_test.cc.o"
  "CMakeFiles/minidb_lexer_test.dir/lexer_test.cc.o.d"
  "minidb_lexer_test"
  "minidb_lexer_test.pdb"
  "minidb_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
