# Empty dependencies file for minidb_lexer_test.
# This may be replaced when dependencies are built.
