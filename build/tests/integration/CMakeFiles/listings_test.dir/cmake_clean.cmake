file(REMOVE_RECURSE
  "CMakeFiles/listings_test.dir/listings_test.cc.o"
  "CMakeFiles/listings_test.dir/listings_test.cc.o.d"
  "listings_test"
  "listings_test.pdb"
  "listings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
