# Empty dependencies file for listings_test.
# This may be replaced when dependencies are built.
