# Empty compiler generated dependencies file for quantum_sim.
# This may be replaced when dependencies are built.
