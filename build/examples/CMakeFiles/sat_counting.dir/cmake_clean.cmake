file(REMOVE_RECURSE
  "CMakeFiles/sat_counting.dir/sat_counting.cpp.o"
  "CMakeFiles/sat_counting.dir/sat_counting.cpp.o.d"
  "sat_counting"
  "sat_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
