# Empty dependencies file for sat_counting.
# This may be replaced when dependencies are built.
