# Empty dependencies file for graphical_inference.
# This may be replaced when dependencies are built.
