file(REMOVE_RECURSE
  "CMakeFiles/graphical_inference.dir/graphical_inference.cpp.o"
  "CMakeFiles/graphical_inference.dir/graphical_inference.cpp.o.d"
  "graphical_inference"
  "graphical_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphical_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
