# Empty dependencies file for triplestore_query.
# This may be replaced when dependencies are built.
