file(REMOVE_RECURSE
  "CMakeFiles/triplestore_query.dir/triplestore_query.cpp.o"
  "CMakeFiles/triplestore_query.dir/triplestore_query.cpp.o.d"
  "triplestore_query"
  "triplestore_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplestore_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
