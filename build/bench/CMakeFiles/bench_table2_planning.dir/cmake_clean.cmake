file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_planning.dir/bench_table2_planning.cc.o"
  "CMakeFiles/bench_table2_planning.dir/bench_table2_planning.cc.o.d"
  "bench_table2_planning"
  "bench_table2_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
