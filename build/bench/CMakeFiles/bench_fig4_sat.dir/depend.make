# Empty dependencies file for bench_fig4_sat.
# This may be replaced when dependencies are built.
