file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sat.dir/bench_fig4_sat.cc.o"
  "CMakeFiles/bench_fig4_sat.dir/bench_fig4_sat.cc.o.d"
  "bench_fig4_sat"
  "bench_fig4_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
