file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_quantum_depth.dir/bench_fig8_quantum_depth.cc.o"
  "CMakeFiles/bench_fig8_quantum_depth.dir/bench_fig8_quantum_depth.cc.o.d"
  "bench_fig8_quantum_depth"
  "bench_fig8_quantum_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_quantum_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
