# Empty compiler generated dependencies file for bench_fig8_quantum_depth.
# This may be replaced when dependencies are built.
