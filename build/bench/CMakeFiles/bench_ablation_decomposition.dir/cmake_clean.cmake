file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decomposition.dir/bench_ablation_decomposition.cc.o"
  "CMakeFiles/bench_ablation_decomposition.dir/bench_ablation_decomposition.cc.o.d"
  "bench_ablation_decomposition"
  "bench_ablation_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
