file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_graphical.dir/bench_fig6_graphical.cc.o"
  "CMakeFiles/bench_fig6_graphical.dir/bench_fig6_graphical.cc.o.d"
  "bench_fig6_graphical"
  "bench_fig6_graphical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_graphical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
