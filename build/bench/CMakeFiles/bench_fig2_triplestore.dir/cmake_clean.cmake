file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_triplestore.dir/bench_fig2_triplestore.cc.o"
  "CMakeFiles/bench_fig2_triplestore.dir/bench_fig2_triplestore.cc.o.d"
  "bench_fig2_triplestore"
  "bench_fig2_triplestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_triplestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
