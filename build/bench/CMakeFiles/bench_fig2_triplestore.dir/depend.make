# Empty dependencies file for bench_fig2_triplestore.
# This may be replaced when dependencies are built.
