# Empty compiler generated dependencies file for bench_fig9_quantum_qubits.
# This may be replaced when dependencies are built.
