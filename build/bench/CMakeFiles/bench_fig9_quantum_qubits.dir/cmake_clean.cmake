file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_quantum_qubits.dir/bench_fig9_quantum_qubits.cc.o"
  "CMakeFiles/bench_fig9_quantum_qubits.dir/bench_fig9_quantum_qubits.cc.o.d"
  "bench_fig9_quantum_qubits"
  "bench_fig9_quantum_qubits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_quantum_qubits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
