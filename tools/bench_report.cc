// bench_report — the machine-readable perf-trajectory harness.
//
// Runs a pinned, fixed-seed, *reduced* cut of the paper's benchmark suite
// (figure 2 triplestore, figure 4 #SAT, figure 6 graphical inference,
// figure 8 quantum circuits, table 2 planning, plus the repo's
// parallel-scaling, vectorized, and dense-kernel smoke workloads)
// entirely in-process,
// repeats each workload a configurable number of times, and writes one
// JSON report with median/p10/p90 wall times per bench, the result row
// counts, the process-global metrics-registry snapshot, the git revision,
// and an ISO-8601 timestamp. The schema is documented in
// docs/benchmarking.md; BENCH_minidb.json at the repo root is the
// checked-in trajectory point CI gates against.
//
// Usage:
//   bench_report [--out=<file>] [--repeats=N] [--threads=N]
//                [--baseline=<file>] [--max-regress=<ratio>]
//                [--input=<file>] [--list]
//
//   --out=<file>        where to write the report (default
//                       BENCH_minidb.json in the current directory)
//   --repeats=N         timed repetitions per bench after one warm-up
//                       (default 7; the report stores the spread)
//   --threads=N         worker threads for the parallel-scaling bench
//                       (default 4)
//   --baseline=<file>   compare the current results against a previous
//                       report; exit 1 when any shared bench regressed
//   --max-regress=R     regression threshold for --baseline: fail when
//                       current_median > baseline_median * scale * R
//                       (default 1.5; `scale` compensates machine speed
//                       via the calibration loop stored in both files)
//   --input=<file>      do not run anything: load "current" results from
//                       an existing report instead. Only meaningful with
//                       --baseline; this is how the CI gate is tested
//                       deterministically.
//   --list              print the bench names and exit
//
// Cross-machine comparability: every report stores `calibration_seconds`,
// the wall time of a fixed single-threaded integer loop. When comparing,
// baseline medians are scaled by the ratio of the two calibrations
// (clamped to [0.25, 4] so a pathological calibration cannot mask a real
// regression), so a faster CI machine does not hide a slowdown and a
// slower one does not fabricate one. The threshold should still be
// generous — see docs/benchmarking.md.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "core/program.h"
#include "core/sqlgen.h"
#include "graphical/generator.h"
#include "minidb/database.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"
#include "sat/count.h"
#include "sat/generator.h"
#include "tensor/gemm.h"
#include "triplestore/generator.h"
#include "triplestore/query.h"

namespace {

using namespace einsql;  // NOLINT

// ---------------------------------------------------------------------------
// Measurement plumbing.

struct BenchResult {
  std::string name;
  std::string engine;
  int64_t rows = 0;  // result size, a cheap correctness fingerprint
  int repeats = 0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Runs `body` once untimed (warm-up) and `repeats` times timed. The body
// returns the result row count, or a negative value on error.
Result<BenchResult> Measure(const std::string& name,
                            const std::string& engine, int repeats,
                            const std::function<int64_t()>& body) {
  BenchResult r;
  r.name = name;
  r.engine = engine;
  r.repeats = repeats;
  if (body() < 0) {
    return Status::Internal("bench '" + name + "' failed during warm-up");
  }
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    Stopwatch watch;
    const int64_t rows = body();
    const double elapsed = watch.ElapsedSeconds();
    if (rows < 0) {
      return Status::Internal("bench '" + name + "' failed while timed");
    }
    r.rows = rows;
    seconds.push_back(elapsed);
  }
  std::sort(seconds.begin(), seconds.end());
  r.median = Percentile(seconds, 0.5);
  r.p10 = Percentile(seconds, 0.1);
  r.p90 = Percentile(seconds, 0.9);
  return r;
}

// Paired variant of Measure for A/B benches (seq vs parallel, row vs
// vectorized): the two bodies alternate within one repeat loop, so slow
// drift across the process lifetime (heap growth, frequency scaling,
// noisy neighbors) hits both sides equally instead of biasing whichever
// bench happens to run second.
Result<std::vector<BenchResult>> MeasurePair(
    const std::string& name_a, const std::function<int64_t()>& body_a,
    const std::string& name_b, const std::function<int64_t()>& body_b,
    const std::string& engine, int repeats) {
  BenchResult ra, rb;
  ra.name = name_a;
  rb.name = name_b;
  ra.engine = rb.engine = engine;
  ra.repeats = rb.repeats = repeats;
  if (body_a() < 0 || body_b() < 0) {
    return Status::Internal("bench pair '" + name_a + "'/'" + name_b +
                            "' failed during warm-up");
  }
  std::vector<double> seconds_a, seconds_b;
  seconds_a.reserve(repeats);
  seconds_b.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    for (int side = 0; side < 2; ++side) {
      BenchResult& r = side == 0 ? ra : rb;
      std::vector<double>& seconds = side == 0 ? seconds_a : seconds_b;
      Stopwatch watch;
      const int64_t rows = side == 0 ? body_a() : body_b();
      const double elapsed = watch.ElapsedSeconds();
      if (rows < 0) {
        return Status::Internal("bench '" + r.name + "' failed while timed");
      }
      r.rows = rows;
      seconds.push_back(elapsed);
    }
  }
  for (int side = 0; side < 2; ++side) {
    BenchResult& r = side == 0 ? ra : rb;
    std::vector<double>& seconds = side == 0 ? seconds_a : seconds_b;
    std::sort(seconds.begin(), seconds.end());
    r.median = Percentile(seconds, 0.5);
    r.p10 = Percentile(seconds, 0.1);
    r.p90 = Percentile(seconds, 0.9);
  }
  return std::vector<BenchResult>{std::move(ra), std::move(rb)};
}

// Fixed single-threaded integer loop whose wall time calibrates machine
// speed; stored in every report and used to scale baselines on compare.
double CalibrationSeconds() {
  Stopwatch watch;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  uint64_t sum = 0;
  for (int i = 0; i < 40 * 1000 * 1000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    sum += state;
  }
  // Defeat dead-code elimination without observable output noise.
  if (sum == 42) std::fprintf(stderr, "calibration fixpoint\n");
  return watch.ElapsedSeconds();
}

// ---------------------------------------------------------------------------
// Pinned reduced workloads. Every constant below is part of the report's
// identity: changing one invalidates baseline comparison, so bump sizes
// only together with a baseline refresh (docs/benchmarking.md).

std::unique_ptr<SqlBackend> MakeBackend(minidb::OptimizerMode mode) {
  minidb::PlannerOptions options;
  options.mode = mode;
  return std::make_unique<MiniDbBackend>(options);
}

// Figure 2: the gold-medal query over a reduced Olympics dataset.
Result<BenchResult> BenchFig2(int repeats) {
  triplestore::OlympicsOptions options;
  options.num_athletes = 600;
  options.results_per_athlete = 3;
  options.medal_fraction = 0.15;
  options.seed = 7;
  const triplestore::TripleStore store =
      triplestore::GenerateOlympics(options);
  auto backend = MakeBackend(minidb::OptimizerMode::kGreedy);
  EINSQL_RETURN_IF_ERROR(store.LoadInto(backend.get()));
  const triplestore::PatternQuery query = triplestore::GoldMedalQuery();
  return Measure("fig2_triplestore", backend->name(), repeats,
                 [&]() -> int64_t {
                   auto rows = triplestore::AnswerWithSql(
                       backend.get(), store, query);
                   if (!rows.ok()) return -1;
                   return static_cast<int64_t>(rows->size());
                 });
}

// Figure 4: model counting on a truncated conda-like package formula.
Result<BenchResult> BenchFig4(int repeats) {
  sat::PackageFormulaOptions options;
  options.num_packages = 189;
  options.versions_per_package = 2;
  options.dependencies_per_version = 1.25;
  options.seed = 2023;
  const sat::CnfFormula formula =
      sat::TruncateClauses(sat::PackageDependencyFormula(options), 160);
  EINSQL_ASSIGN_OR_RETURN(sat::SatTensorNetwork network,
                          sat::BuildTensorNetwork(formula));
  std::vector<Shape> shapes;
  for (const CooTensor* t : network.operands()) shapes.push_back(t->shape());
  EINSQL_ASSIGN_OR_RETURN(
      ContractionProgram program,
      BuildProgram(network.spec, shapes, PathAlgorithm::kElimination));
  auto backend = MakeBackend(minidb::OptimizerMode::kGreedy);
  SqlEinsumEngine engine(backend.get());
  const std::vector<const CooTensor*> operands = network.operands();
  return Measure("fig4_sat", backend->name(), repeats, [&]() -> int64_t {
    auto result = engine.RunProgram(program, operands, EinsumOptions{});
    if (!result.ok()) return -1;
    return static_cast<int64_t>(result->nnz());
  });
}

// Figure 6: breast-cancer-model inference, evidence batch of 16. The
// network (fresh evidence embedding) is rebuilt inside the timed body,
// as in the figure bench: a full solve embeds and contracts.
Result<BenchResult> BenchFig6(int repeats) {
  const graphical::PairwiseModel model = graphical::BreastCancerLikeModel();
  Rng rng(1000 + 16);
  const graphical::InferenceQuery query =
      graphical::RandomQuery(model, /*query_variable=*/0, 16, &rng);
  EINSQL_ASSIGN_OR_RETURN(graphical::InferenceNetwork network,
                          graphical::BuildInferenceNetwork(model, query));
  std::vector<Shape> shapes;
  for (const CooTensor& t : network.tensors) shapes.push_back(t.shape());
  EINSQL_ASSIGN_OR_RETURN(
      ContractionProgram program,
      BuildProgram(network.spec, shapes, PathAlgorithm::kElimination));
  auto backend = MakeBackend(minidb::OptimizerMode::kGreedy);
  SqlEinsumEngine engine(backend.get());
  return Measure("fig6_graphical", backend->name(), repeats,
                 [&]() -> int64_t {
                   auto fresh =
                       graphical::BuildInferenceNetwork(model, query);
                   if (!fresh.ok()) return -1;
                   auto result = engine.RunProgram(program, fresh->operands(),
                                                   EinsumOptions{});
                   if (!result.ok()) return -1;
                   return static_cast<int64_t>(result->nnz());
                 });
}

// Figures 8 and 9: Sycamore-like circuits, complex amplitudes as
// (re, im) column pairs. One pinned point per axis: fig8's depth axis
// (8 qubits x depth 4) and fig9's qubit axis (11 qubits x depth 2).
Result<BenchResult> BenchQuantum(const std::string& name, int qubits,
                                 int depth, int repeats) {
  const quantum::Circuit circuit =
      quantum::SycamoreLikeCircuit(qubits, depth, /*seed=*/11);
  EINSQL_ASSIGN_OR_RETURN(
      quantum::CircuitNetwork network,
      quantum::BuildCircuitNetwork(circuit, std::vector<int>(qubits, 0)));
  std::vector<Shape> shapes;
  for (const ComplexCooTensor& t : network.tensors) {
    shapes.push_back(t.shape());
  }
  EINSQL_ASSIGN_OR_RETURN(
      ContractionProgram program,
      BuildProgram(network.spec, shapes, PathAlgorithm::kElimination));
  auto backend = MakeBackend(minidb::OptimizerMode::kGreedy);
  SqlEinsumEngine engine(backend.get());
  const auto operands = network.operands();
  return Measure(name, backend->name(), repeats, [&]() -> int64_t {
    auto amplitudes =
        engine.RunComplexProgram(program, operands, EinsumOptions{});
    if (!amplitudes.ok()) return -1;
    return static_cast<int64_t>(amplitudes->nnz());
  });
}

// Table 2: the planning pipeline alone — contraction-path search plus SQL
// generation for a large decomposed #SAT query. No execution.
Result<BenchResult> BenchTable2(int repeats) {
  sat::PackageFormulaOptions options;
  options.num_packages = 252;
  options.versions_per_package = 2;
  options.dependencies_per_version = 1.4;
  options.seed = 4;
  const sat::CnfFormula formula = sat::PackageDependencyFormula(options);
  EINSQL_ASSIGN_OR_RETURN(sat::SatTensorNetwork network,
                          sat::BuildTensorNetwork(formula));
  std::vector<Shape> shapes;
  for (const CooTensor* t : network.operands()) shapes.push_back(t->shape());
  const std::vector<const CooTensor*> operands = network.operands();
  return Measure("table2_planning", "planner", repeats, [&]() -> int64_t {
    auto program =
        BuildProgram(network.spec, shapes, PathAlgorithm::kElimination);
    if (!program.ok()) return -1;
    auto sql = GenerateEinsumSql(*program, operands, SqlGenOptions{});
    if (!sql.ok()) return -1;
    return static_cast<int64_t>(sql->size());
  });
}

// The synthetic matmul-shaped join + GROUP BY workload shared by the
// parallel-scaling and vectorized benches (bench/bench_parallel_scaling.cc
// idiom, reduced row count).
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

Status LoadMatrix(minidb::Database* db, const std::string& name,
                  int64_t rows, int64_t i_dim, int64_t j_dim,
                  uint64_t seed) {
  EINSQL_RETURN_IF_ERROR(db->CreateTable(
      name, {{"i", minidb::ValueType::kInt},
             {"j", minidb::ValueType::kInt},
             {"val", minidb::ValueType::kDouble}}));
  uint64_t state = seed;
  std::vector<minidb::Row> data;
  data.reserve(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t i = static_cast<int64_t>(NextRand(&state) % i_dim);
    const int64_t j = static_cast<int64_t>(NextRand(&state) % j_dim);
    const double val =
        static_cast<double>(NextRand(&state) % 1000) / 1000.0 - 0.5;
    data.push_back({minidb::Value(i), minidb::Value(j), minidb::Value(val)});
  }
  return db->BulkInsert(name, std::move(data));
}

Result<std::unique_ptr<minidb::Database>> MakeJoinDatabase() {
  auto db = std::make_unique<minidb::Database>();
  EINSQL_RETURN_IF_ERROR(LoadMatrix(db.get(), "A", 24000, 64, 1024, 1));
  EINSQL_RETURN_IF_ERROR(LoadMatrix(db.get(), "B", 24000, 1024, 64, 2));
  return db;
}

constexpr const char kJoinSql[] =
    "SELECT A.i AS i, B.j AS j, SUM(A.val * B.val) AS val "
    "FROM A, B WHERE A.j = B.i GROUP BY A.i, B.j";

// Morsel-driven scaling: the same prepared plan sequentially and with
// `threads` workers, interleaved (MeasurePair) so process drift cannot
// bias either side.
Result<std::vector<BenchResult>> BenchParallel(int repeats, int threads) {
  EINSQL_ASSIGN_OR_RETURN(std::unique_ptr<minidb::Database> db,
                          MakeJoinDatabase());
  EINSQL_ASSIGN_OR_RETURN(minidb::QueryPlan plan, db->Prepare(kJoinSql));
  auto run = [&](bool parallel, int n) -> int64_t {
    db->executor_options().parallel_operators = parallel;
    db->executor_options().num_threads = n;
    auto result = db->ExecutePrepared(plan);
    if (!result.ok()) return -1;
    return result->relation.num_rows();
  };
  return MeasurePair(
      "parallel_scaling/seq", [&]() { return run(false, 0); },
      "parallel_scaling/t" + std::to_string(threads),
      [&]() { return run(true, threads); }, "minidb", repeats);
}

// The dense contraction kernel in isolation: the pre-PR naive triple
// loop (GemmNaive, the zero-skipping i/k/j order dense_exec used to
// bottom out in) versus the cache-blocked register-tiled kernel the
// engine now calls. 384x384x384 double matmul, fixed operands.
Result<std::vector<BenchResult>> BenchKernels(int repeats) {
  constexpr int64_t kDim = 384;
  std::vector<double> a(kDim * kDim), b(kDim * kDim);
  uint64_t state = 77;
  for (double& v : a) {
    v = static_cast<double>(NextRand(&state) % 2000) / 1000.0 - 1.0;
  }
  for (double& v : b) {
    v = static_cast<double>(NextRand(&state) % 2000) / 1000.0 - 1.0;
  }
  std::vector<double> c(kDim * kDim);
  std::vector<BenchResult> results;
  EINSQL_ASSIGN_OR_RETURN(
      BenchResult naive,
      Measure("kernels/gemm_naive", "tensor", repeats, [&]() -> int64_t {
        std::fill(c.begin(), c.end(), 0.0);
        GemmNaive(a.data(), b.data(), c.data(), kDim, kDim, kDim);
        return c.back() == 12345.0 ? -1 : kDim * kDim;  // defeat DCE
      }));
  results.push_back(naive);
  EINSQL_ASSIGN_OR_RETURN(
      BenchResult blocked,
      Measure("kernels/gemm_blocked", "tensor", repeats, [&]() -> int64_t {
        std::fill(c.begin(), c.end(), 0.0);
        Gemm(a.data(), b.data(), c.data(), kDim, kDim, kDim);
        return c.back() == 12345.0 ? -1 : kDim * kDim;
      }));
  results.push_back(blocked);
  return results;
}

// Row interpreter versus column-at-a-time kernels on the same plan: an
// arithmetic-heavy selective filter + typed-int GROUP BY over a 600k-row
// table. This is the workload class vectorization exists for — per-row
// expression interpretation dominates the row path, while every operator
// (filter with selection vectors, projection of the aggregate argument,
// typed group accumulation) runs as tight column kernels on the
// vectorized path (docs/vectorization.md, docs/kernels.md).
Result<std::vector<BenchResult>> BenchVectorized(int repeats) {
  auto db = std::make_unique<minidb::Database>();
  EINSQL_RETURN_IF_ERROR(LoadMatrix(db.get(), "M", 600000, 64, 1024, 3));
  constexpr const char kVecSql[] =
      "SELECT i, SUM(val * val * 0.5 + val * 0.25 - 0.125) AS s FROM M "
      "WHERE val * (val + 2.0) > 0.96 AND j % 3 != 1 "
      "AND val * val * 4.0 + val > 0.9 GROUP BY i";
  EINSQL_ASSIGN_OR_RETURN(minidb::QueryPlan plan, db->Prepare(kVecSql));
  auto run = [&](bool vectorized) -> int64_t {
    db->executor_options().vectorized = vectorized;
    auto result = db->ExecutePrepared(plan);
    if (!result.ok()) return -1;
    return result->relation.num_rows();
  };
  return MeasurePair(
      "vectorized/row", [&]() { return run(false); },  //
      "vectorized/vec", [&]() { return run(true); }, "minidb", repeats);
}

// ---------------------------------------------------------------------------
// Report I/O.

std::string GitSha() {
  std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {0};
  std::string sha;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
  pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

std::string IsoUtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string ReportToJson(const std::vector<BenchResult>& benches,
                         int repeats, int threads, double calibration) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"einsql-bench-report\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"suite\": \"minidb\",\n";
  out << "  \"git_sha\": \"" << JsonEscape(GitSha()) << "\",\n";
  out << "  \"date\": \"" << IsoUtcNow() << "\",\n";
  out << "  \"calibration_seconds\": " << FormatDouble(calibration) << ",\n";
  out << "  \"config\": {\"repeats\": " << repeats
      << ", \"threads\": " << threads << ", \"reduced\": true},\n";
  out << "  \"benches\": [\n";
  for (size_t i = 0; i < benches.size(); ++i) {
    const BenchResult& b = benches[i];
    out << "    {\"name\": \"" << JsonEscape(b.name) << "\", \"engine\": \""
        << JsonEscape(b.engine) << "\", \"rows\": " << b.rows
        << ", \"repeats\": " << b.repeats << ",\n"
        << "     \"seconds\": {\"median\": " << FormatDouble(b.median)
        << ", \"p10\": " << FormatDouble(b.p10)
        << ", \"p90\": " << FormatDouble(b.p90) << "}}"
        << (i + 1 < benches.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"metrics\": "
      << MetricsRegistry::Default().Snapshot().ToJson(/*indent=*/2) << "\n";
  out << "}\n";
  return out.str();
}

struct LoadedReport {
  double calibration = 0.0;
  std::vector<BenchResult> benches;
};

Result<LoadedReport> LoadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open report '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EINSQL_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(buffer.str()));
  if (doc["schema"].AsString() != "einsql-bench-report") {
    return Status::InvalidArgument("'" + path +
                                   "' is not an einsql bench report");
  }
  LoadedReport report;
  report.calibration = doc["calibration_seconds"].AsDouble();
  for (const JsonValue& b : doc["benches"].items()) {
    BenchResult r;
    r.name = b["name"].AsString();
    r.engine = b["engine"].AsString();
    r.rows = b["rows"].AsInt();
    r.repeats = static_cast<int>(b["repeats"].AsInt());
    r.median = b["seconds"]["median"].AsDouble();
    r.p10 = b["seconds"]["p10"].AsDouble();
    r.p90 = b["seconds"]["p90"].AsDouble();
    report.benches.push_back(std::move(r));
  }
  if (report.benches.empty()) {
    return Status::InvalidArgument("'" + path + "' contains no benches");
  }
  return report;
}

// Compares `current` against `baseline`; returns the number of benches
// whose scaled median regressed beyond `max_regress`.
int Compare(const LoadedReport& baseline, const LoadedReport& current,
            double max_regress) {
  // Machine-speed compensation, clamped so a bad calibration cannot mask
  // (or fabricate) an order-of-magnitude regression.
  double scale = 1.0;
  if (baseline.calibration > 0.0 && current.calibration > 0.0) {
    scale = current.calibration / baseline.calibration;
    scale = std::min(4.0, std::max(0.25, scale));
  }
  std::printf("comparing against baseline (machine scale %.2fx, "
              "threshold %.2fx)\n",
              scale, max_regress);
  std::printf("%-24s %12s %12s %8s %8s  %s\n", "bench", "baseline",
              "current", "ratio", "speedup", "verdict");
  int regressions = 0;
  for (const BenchResult& base : baseline.benches) {
    const BenchResult* cur = nullptr;
    for (const BenchResult& c : current.benches) {
      if (c.name == base.name) {
        cur = &c;
        break;
      }
    }
    if (cur == nullptr) {
      std::printf("%-24s %12.6f %12s %8s %8s  MISSING (not a failure)\n",
                  base.name.c_str(), base.median, "-", "-", "-");
      continue;
    }
    const double allowed = base.median * scale;
    const double ratio = allowed > 0.0 ? cur->median / allowed : 0.0;
    // Speedup over the (machine-scaled) baseline: >1 means this revision
    // is faster than the checked-in trajectory point.
    const double speedup = cur->median > 0.0 ? allowed / cur->median : 0.0;
    const bool regressed = ratio > max_regress;
    if (regressed) ++regressions;
    std::printf("%-24s %12.6f %12.6f %7.2fx %7.2fx  %s\n", base.name.c_str(),
                base.median, cur->median, ratio, speedup,
                regressed ? "REGRESSED" : "ok");
  }
  if (regressions > 0) {
    std::printf("%d bench(es) regressed beyond %.2fx\n", regressions,
                max_regress);
  } else {
    std::printf("no regressions\n");
  }
  return regressions;
}

const char* const kBenchNames[] = {
    "fig2_triplestore", "fig4_sat",        "fig6_graphical",
    "fig8_quantum",     "fig9_quantum",    "table2_planning",
    "parallel_scaling/seq", "parallel_scaling/tN",
    "vectorized/row",   "vectorized/vec",
    "kernels/gemm_naive", "kernels/gemm_blocked",
};

int Run(int argc, char** argv) {
  std::string out_file = "BENCH_minidb.json";
  std::string baseline_file;
  std::string input_file;
  int repeats = 7;
  int threads = 4;
  double max_regress = 1.5;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--out=", 0) == 0) {
      out_file = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_file = arg.substr(11);
    } else if (arg.rfind("--input=", 0) == 0) {
      input_file = arg.substr(8);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      const Result<int64_t> n = ParseInt64(arg.substr(10));
      if (!n.ok() || *n < 1 || *n > 1000) {
        std::fprintf(stderr, "invalid %s: expected a count in [1, 1000]\n",
                     arg.c_str());
        return 2;
      }
      repeats = static_cast<int>(*n);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const Result<int64_t> n = ParseInt64(arg.substr(10));
      if (!n.ok() || *n < 1 || *n > 4096) {
        std::fprintf(stderr,
                     "invalid %s: expected a thread count in [1, 4096]\n",
                     arg.c_str());
        return 2;
      }
      threads = static_cast<int>(*n);
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      const Result<double> r = ParseDouble(arg.substr(14));
      if (!r.ok() || *r < 1.0 || *r > 100.0) {
        std::fprintf(stderr, "invalid %s: expected a ratio in [1, 100]\n",
                     arg.c_str());
        return 2;
      }
      max_regress = *r;
    } else if (arg == "--list") {
      for (const char* name : kBenchNames) std::printf("%s\n", name);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  LoadedReport current;
  if (!input_file.empty()) {
    // Compare-only mode: deterministic, used by the gate's own tests.
    auto loaded = LoadReport(input_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    current = std::move(*loaded);
  } else {
    const double calibration = CalibrationSeconds();
    std::fprintf(stderr, "calibration: %.3f s\n", calibration);
    std::vector<BenchResult> benches;
    auto append_one = [&](Result<BenchResult> r) -> bool {
      if (!r.ok()) {
        std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
        return false;
      }
      std::fprintf(stderr, "%-24s median %.6f s  (rows %lld)\n",
                   r->name.c_str(), r->median,
                   static_cast<long long>(r->rows));
      benches.push_back(std::move(*r));
      return true;
    };
    auto append_many = [&](Result<std::vector<BenchResult>> r) -> bool {
      if (!r.ok()) {
        std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
        return false;
      }
      for (BenchResult& b : *r) {
        std::fprintf(stderr, "%-24s median %.6f s  (rows %lld)\n",
                     b.name.c_str(), b.median,
                     static_cast<long long>(b.rows));
        benches.push_back(std::move(b));
      }
      return true;
    };
    if (!append_one(BenchFig2(repeats)) || !append_one(BenchFig4(repeats)) ||
        !append_one(BenchFig6(repeats)) ||
        !append_one(BenchQuantum("fig8_quantum", 8, 4, repeats)) ||
        !append_one(BenchQuantum("fig9_quantum", 11, 2, repeats)) ||
        !append_one(BenchTable2(repeats)) ||
        !append_many(BenchParallel(repeats, threads)) ||
        !append_many(BenchVectorized(repeats)) ||
        !append_many(BenchKernels(repeats))) {
      return 1;
    }
    current.calibration = calibration;
    current.benches = benches;
    const std::string json =
        ReportToJson(benches, repeats, threads, calibration);
    std::ofstream out(out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_file.c_str());
      return 1;
    }
    out << json;
    out.close();
    std::fprintf(stderr, "report written to %s\n", out_file.c_str());
  }

  if (baseline_file.empty()) return 0;
  auto baseline = LoadReport(baseline_file);
  if (!baseline.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  return Compare(*baseline, current, max_regress) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
