// sql_einsum_gen — the command-line counterpart of the paper's SQL
// Einstein summation generator (https://sql-einsum.ti2.uni-jena.de):
// translate a format string in Einstein notation into a portable SQL query.
//
// Usage:
//   sql_einsum_gen FORMAT SHAPES [options]
//
//   FORMAT   einsum format string, e.g. "ik,jk,j->i"
//   SHAPES   one shape per tensor, e.g. "2x2,3x2,3" (a lone comma-separated
//            entry with no 'x' is a vector; "" denotes a scalar)
//
// Options:
//   --tables=a,b,c     reference existing tables instead of inlining
//                      random VALUES (COO schema i0..ik-1, val)
//   --path=ALGO        naive | greedy | elimination | optimal | auto
//   --flat             single query (R1-R4 only), no CTE decomposition
//   --no-simplify      keep redundant SUM/GROUP BY
//   --density=D        fill density of the inlined random tensors (0..1)
//   --seed=N           PRNG seed for the inlined tensors
//   --execute          also run the query on SQLite and print the result
//
// Examples:
//   sql_einsum_gen "ik,kj->ij" "4x3,3x2"
//   sql_einsum_gen "ij,jk,kl->il" "8x8,8x8,8x8" --tables=A,B,C --path=optimal
//   sql_einsum_gen "i,i->" "5,5" --execute

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "backends/sqlite_backend.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/program.h"
#include "core/sqlgen.h"

namespace {

using namespace einsql;  // NOLINT

Result<Shape> ParseShape(const std::string& text) {
  Shape shape;
  if (text.empty()) return shape;  // scalar
  for (const std::string& piece : Split(text, 'x')) {
    EINSQL_ASSIGN_OR_RETURN(int64_t extent, ParseInt64(piece));
    if (extent <= 0) {
      return Status::InvalidArgument("non-positive extent in '", text, "'");
    }
    shape.push_back(extent);
  }
  return shape;
}

Result<PathAlgorithm> ParsePath(const std::string& name) {
  if (name == "naive") return PathAlgorithm::kNaive;
  if (name == "greedy") return PathAlgorithm::kGreedy;
  if (name == "elimination") return PathAlgorithm::kElimination;
  if (name == "optimal") return PathAlgorithm::kOptimal;
  if (name == "auto") return PathAlgorithm::kAuto;
  return Status::InvalidArgument("unknown path algorithm '", name, "'");
}

CooTensor RandomTensor(const Shape& shape, double density, Rng* rng) {
  CooTensor t(shape);
  std::vector<int64_t> coords(shape.size());
  const auto strides = RowMajorStrides(shape);
  const int64_t total = NumElements(shape).value_or(1);
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng->Bernoulli(density)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    (void)t.Append(coords, rng->UniformDouble(-1.0, 1.0));
  }
  return t;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: sql_einsum_gen FORMAT SHAPES [--tables=..] "
                 "[--path=auto] [--flat] [--no-simplify] [--density=0.5] "
                 "[--seed=1] [--execute]\n");
    return 2;
  }
  const std::string format = argv[1];
  std::vector<Shape> shapes;
  for (const std::string& piece : Split(argv[2], ',')) {
    auto shape = ParseShape(std::string(Trim(piece)));
    if (!shape.ok()) return Fail(shape.status());
    shapes.push_back(std::move(shape).value());
  }

  SqlGenOptions options;
  PathAlgorithm path = PathAlgorithm::kAuto;
  double density = 0.5;
  uint64_t seed = 1;
  bool execute = false;
  std::vector<std::string> tables;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--tables=", 0) == 0) {
      tables = Split(arg.substr(9), ',');
    } else if (arg.rfind("--path=", 0) == 0) {
      auto parsed = ParsePath(arg.substr(7));
      if (!parsed.ok()) return Fail(parsed.status());
      path = parsed.value();
    } else if (arg == "--flat") {
      options.decompose = false;
    } else if (arg == "--no-simplify") {
      options.simplify = false;
    } else if (arg.rfind("--density=", 0) == 0) {
      auto parsed = ParseDouble(arg.substr(10));
      if (!parsed.ok()) return Fail(parsed.status());
      density = parsed.value();
    } else if (arg.rfind("--seed=", 0) == 0) {
      auto parsed = ParseInt64(arg.substr(7));
      if (!parsed.ok()) return Fail(parsed.status());
      seed = static_cast<uint64_t>(parsed.value());
    } else if (arg == "--execute") {
      execute = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  auto program = BuildProgram(format, shapes, path);
  if (!program.ok()) return Fail(program.status());
  std::fprintf(stderr, "-- expression: %s\n",
               program->spec.ToString().c_str());
  std::fprintf(stderr, "-- path: %s, estimated flops: %.6g, steps: %zu\n",
               PathAlgorithmToString(program->algorithm), program->est_flops,
               program->steps.size());

  std::string sql;
  std::vector<CooTensor> tensors;
  if (!tables.empty()) {
    if (static_cast<int>(tables.size()) != program->num_inputs) {
      return Fail(Status::InvalidArgument(
          "--tables needs one name per tensor"));
    }
    options.input_names = tables;
    auto generated = GenerateEinsumSqlForTables(*program, options);
    if (!generated.ok()) return Fail(generated.status());
    sql = std::move(generated).value();
  } else {
    Rng rng(seed);
    std::vector<const CooTensor*> ptrs;
    for (const Shape& shape : shapes) {
      tensors.push_back(RandomTensor(shape, density, &rng));
    }
    for (const CooTensor& t : tensors) ptrs.push_back(&t);
    auto generated = GenerateEinsumSql(*program, ptrs, options);
    if (!generated.ok()) return Fail(generated.status());
    sql = std::move(generated).value();
  }
  std::printf("%s\n", sql.c_str());

  if (execute) {
    if (!tables.empty()) {
      return Fail(Status::InvalidArgument(
          "--execute requires inlined tensors (omit --tables)"));
    }
    auto backend = SqliteBackend::Open();
    if (!backend.ok()) return Fail(backend.status());
    auto relation = (*backend)->Query(sql);
    if (!relation.ok()) return Fail(relation.status());
    std::fprintf(stderr, "\n-- result (%lld rows):\n%s",
                 static_cast<long long>(relation->num_rows()),
                 relation->ToString(50).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
