// minidb_shell — a small SQL shell for the bundled MiniDB engine.
//
// Reads semicolon-terminated SQL statements from stdin (or from files given
// on the command line), executes them, and prints results with the
// planning/execution timing split of Table 2.
//
// Usage:
//   minidb_shell [--optimizer=none|greedy|aggressive|exhaustive]
//                [--explain] [file.sql ...]
//
// Example session:
//   $ ./minidb_shell
//   CREATE TABLE A (i INT, j INT, val DOUBLE);
//   INSERT INTO A VALUES (0, 0, 1.0), (1, 1, 2.0);
//   SELECT i, SUM(val) FROM A GROUP BY i;

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "minidb/database.h"

namespace {

using namespace einsql;          // NOLINT
using namespace einsql::minidb;  // NOLINT

// Splits a script on top-level semicolons (quotes respected).
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> statements;
  std::string current;
  bool in_string = false;
  for (size_t k = 0; k < script.size(); ++k) {
    const char c = script[k];
    if (c == '\'' ) in_string = !in_string;
    if (c == ';' && !in_string) {
      statements.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  statements.push_back(current);
  return statements;
}

bool IsBlank(const std::string& statement) {
  for (char c : statement) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  PlannerOptions options;
  bool explain = false;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--optimizer=none") {
      options.mode = OptimizerMode::kNone;
    } else if (arg == "--optimizer=greedy") {
      options.mode = OptimizerMode::kGreedy;
    } else if (arg == "--optimizer=aggressive") {
      options.mode = OptimizerMode::kAggressive;
    } else if (arg == "--optimizer=exhaustive") {
      options.mode = OptimizerMode::kExhaustive;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  std::string script;
  if (files.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script += buffer.str();
      script += "\n";
    }
  }

  Database db(options);
  int failures = 0;
  for (const std::string& statement : SplitStatements(script)) {
    if (IsBlank(statement)) continue;
    if (explain) {
      auto plan = db.Prepare(statement);
      if (plan.ok()) {
        std::printf("%s\n", plan->ToString().c_str());
        continue;
      }
      // Not a SELECT (or an error): fall through to execution.
    }
    auto result = db.Execute(statement);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (result->relation.num_columns() > 0) {
      std::printf("%s", result->relation.ToString(100).c_str());
    }
    std::printf("-- ok (%lld rows, plan %.3f ms, exec %.3f ms)\n",
                static_cast<long long>(result->relation.num_rows()),
                result->stats.planning_seconds() * 1e3,
                result->stats.exec_seconds * 1e3);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
