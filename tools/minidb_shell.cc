// minidb_shell — a small SQL shell for the bundled MiniDB engine.
//
// Reads semicolon-terminated SQL statements from stdin (or from files given
// on the command line), executes them, and prints results with the
// planning/execution timing split of Table 2. EXPLAIN and EXPLAIN ANALYZE
// prefixes on a SELECT print the plan (annotated with per-operator runtime
// metrics in the ANALYZE case) instead of the result rows.
//
// Dot commands (on their own line, no semicolon):
//   .timer on|off   toggle the "-- ok (...)" timing footer (default on)
//   .threads N      run subsequent queries with morsel-driven parallelism
//                   on N worker threads (0 = hardware concurrency, off =
//                   back to sequential execution)
//   .metrics [prom] dump the process-global metrics registry (rows
//                   scanned, morsels, peak memory, latency histograms)
//                   as JSON — or Prometheus text with the "prom" argument
//
// Usage:
//   minidb_shell [--optimizer=none|greedy|aggressive|exhaustive]
//                [--explain] [--threads=N] [--trace=<file>.json]
//                [file.sql ...]
//
// --threads enables intra-operator parallelism from the first statement;
// for a fixed morsel size results are identical to sequential execution.
//
// --trace writes a Chrome trace_event JSON file covering every statement
// (parse/plan/execute phases, per-CTE materialization, per-operator spans);
// load it in chrome://tracing or https://ui.perfetto.dev.
//
// Example session:
//   $ ./minidb_shell
//   CREATE TABLE A (i INT, j INT, val DOUBLE);
//   INSERT INTO A VALUES (0, 0, 1.0), (1, 1, 2.0);
//   SELECT i, SUM(val) FROM A GROUP BY i;

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "minidb/database.h"

namespace {

using namespace einsql;          // NOLINT
using namespace einsql::minidb;  // NOLINT

// One piece of the input script: either a dot command (a line starting
// with '.') or a SQL statement.
struct ScriptItem {
  bool is_dot_command = false;
  std::string text;
};

bool IsBlank(const std::string& statement) {
  for (char c : statement) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Splits a script into dot-command lines and SQL statements terminated by
// top-level semicolons (quotes respected). A dot command is only recognized
// at a statement boundary.
std::vector<ScriptItem> SplitScript(const std::string& script) {
  std::vector<ScriptItem> items;
  std::string current;
  bool in_string = false;
  for (size_t k = 0; k < script.size(); ++k) {
    const char c = script[k];
    if (c == '.' && !in_string && IsBlank(current)) {
      size_t end = script.find('\n', k);
      if (end == std::string::npos) end = script.size();
      items.push_back({true, script.substr(k, end - k)});
      current.clear();
      k = end;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      items.push_back({false, current});
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!IsBlank(current)) items.push_back({false, current});
  return items;
}

int Run(int argc, char** argv) {
  PlannerOptions options;
  bool explain = false;
  bool use_threads = false;
  int threads = 0;
  std::string trace_file;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--optimizer=none") {
      options.mode = OptimizerMode::kNone;
    } else if (arg == "--optimizer=greedy") {
      options.mode = OptimizerMode::kGreedy;
    } else if (arg == "--optimizer=aggressive") {
      options.mode = OptimizerMode::kAggressive;
    } else if (arg == "--optimizer=exhaustive") {
      options.mode = OptimizerMode::kExhaustive;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_file = arg.substr(8);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const Result<int64_t> n = ParseInt64(arg.substr(10));
      if (!n.ok() || *n < 0 || *n > 4096) {
        std::fprintf(stderr,
                     "invalid %s: expected a thread count in [0, 4096]\n",
                     arg.c_str());
        return 2;
      }
      threads = static_cast<int>(*n);
      use_threads = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  std::string script;
  if (files.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script += buffer.str();
      script += "\n";
    }
  }

  Database db(options);
  // Applies a thread setting to the executor: "off" restores sequential
  // execution, a number enables morsel-driven parallelism (0 = hardware
  // concurrency). Shared by --threads and .threads.
  auto apply_threads = [&db](bool on, int n) {
    db.executor_options().parallel_operators = on;
    db.executor_options().parallel_ctes = on;
    db.executor_options().num_threads = on ? n : 0;
  };
  if (use_threads) apply_threads(true, threads);
  Trace trace;
  if (!trace_file.empty()) db.set_trace(&trace);
  bool timer = true;
  int failures = 0;
  for (const ScriptItem& item : SplitScript(script)) {
    if (item.is_dot_command) {
      std::istringstream in(item.text);
      std::string command, argument;
      in >> command >> argument;
      if (command == ".timer") {
        timer = argument != "off";
      } else if (command == ".threads") {
        const Result<int64_t> n = ParseInt64(argument);
        if (argument == "off") {
          apply_threads(false, 0);
        } else if (n.ok() && *n >= 0 && *n <= 4096) {
          apply_threads(true, static_cast<int>(*n));
        } else {
          std::fprintf(stderr,
                       ".threads expects a count in [0, 4096] or 'off'\n");
          ++failures;
        }
      } else if (command == ".metrics") {
        const MetricsSnapshot snapshot =
            MetricsRegistry::Default().Snapshot();
        if (argument == "prom") {
          std::printf("%s", snapshot.ToPrometheusText().c_str());
        } else {
          std::printf("%s\n", snapshot.ToJson().c_str());
        }
      } else {
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        ++failures;
      }
      continue;
    }
    const std::string& statement = item.text;
    if (IsBlank(statement)) continue;
    if (explain) {
      auto plan = db.Prepare(statement);
      if (plan.ok()) {
        std::printf("%s\n", plan->ToString().c_str());
        continue;
      }
      // Not a SELECT (or an error): fall through to execution.
    }
    auto result = db.Execute(statement);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (result->relation.num_columns() > 0) {
      std::printf("%s", result->relation.ToString(100).c_str());
    }
    if (timer) {
      std::printf("-- ok (%lld rows, plan %.3f ms, exec %.3f ms)\n",
                  static_cast<long long>(result->relation.num_rows()),
                  result->stats.planning_seconds() * 1e3,
                  result->stats.exec_seconds * 1e3);
    } else {
      std::printf("-- ok (%lld rows)\n",
                  static_cast<long long>(result->relation.num_rows()));
    }
  }
  if (!trace_file.empty()) {
    const Status status = trace.WriteJsonFile(trace_file);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "-- trace written to %s (%zu spans)\n",
                 trace_file.c_str(), trace.span_count());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
