// einsum_fuzz — property-based differential fuzzer for the einsum-to-SQL
// pipeline. Draws random einsum instances (sparse/dense, real/complex,
// degenerate dims, wide-label chains), evaluates each through every oracle
// (brute-force reference, dense, sparse, MiniDB at all optimizer-effort
// levels, MiniDB parallel, SQLite) under every contraction-path algorithm,
// and demands toleranced agreement plus metamorphic invariances. Failures
// are shrunk to minimal repros.
//
// Usage:
//   einsum_fuzz [options]
//
// Options:
//   --seed=N            PRNG seed (default 1)
//   --iters=N           number of random instances (default 100; 0 = no
//                       iteration bound, requires --duration)
//   --duration=SECS     wall-clock time box; generation stops when it trips
//   --corpus=FILE       replay a corpus file instead of generating
//   --emit-corpus=FILE  write every generated instance to FILE and exit
//                       without checking (corpus construction mode)
//   --report=FILE       write the JSON run report to FILE ("-" = stdout)
//   --oracles=FILTER    only run oracles whose name contains one of the
//                       comma-separated substrings, e.g. "minidb,sqlite"
//   --paths=LIST        comma-separated path algorithms to cross-check:
//                       naive,greedy,elimination,branch,optimal,auto
//   --max-operands=N    upper bound on operands per instance (default 5)
//   --no-shrink         report failures without minimizing them
//   --quiet             suppress per-failure progress on stderr
//
// Exit status: 0 all green, 1 divergences found, 2 usage/setup error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "testing/corpus.h"
#include "testing/fuzz.h"
#include "testing/oracles.h"

namespace {

using namespace einsql;           // NOLINT
using namespace einsql::testing;  // NOLINT

int Usage(const char* argv0, const std::string& error) {
  std::fprintf(stderr, "error: %s\nusage: %s [--seed=N] [--iters=N]\n"
               "  [--duration=SECS] [--corpus=FILE] [--emit-corpus=FILE]\n"
               "  [--report=FILE] [--oracles=FILTER] [--paths=LIST]\n"
               "  [--max-operands=N] [--no-shrink] [--quiet]\n",
               error.c_str(), argv0);
  return 2;
}

Result<std::vector<PathAlgorithm>> ParsePaths(const std::string& list) {
  std::vector<PathAlgorithm> paths;
  for (const std::string& name : Split(list, ',')) {
    if (name == "naive") {
      paths.push_back(PathAlgorithm::kNaive);
    } else if (name == "greedy") {
      paths.push_back(PathAlgorithm::kGreedy);
    } else if (name == "elimination") {
      paths.push_back(PathAlgorithm::kElimination);
    } else if (name == "branch") {
      paths.push_back(PathAlgorithm::kBranch);
    } else if (name == "optimal") {
      paths.push_back(PathAlgorithm::kOptimal);
    } else if (name == "auto") {
      paths.push_back(PathAlgorithm::kAuto);
    } else {
      return Status::InvalidArgument("unknown path algorithm '", name, "'");
    }
  }
  if (paths.empty()) return Status::InvalidArgument("--paths list is empty");
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string corpus_path, emit_corpus_path, report_path, oracle_filter;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--iters=")) {
      options.iterations = std::atoi(v);
    } else if (const char* v = value("--duration=")) {
      options.duration_seconds = std::atof(v);
    } else if (const char* v = value("--corpus=")) {
      corpus_path = v;
    } else if (const char* v = value("--emit-corpus=")) {
      emit_corpus_path = v;
    } else if (const char* v = value("--report=")) {
      report_path = v;
    } else if (const char* v = value("--oracles=")) {
      oracle_filter = v;
    } else if (const char* v = value("--paths=")) {
      auto paths = ParsePaths(v);
      if (!paths.ok()) return Usage(argv[0], paths.status().ToString());
      options.differential.paths = std::move(paths).value();
    } else if (const char* v = value("--max-operands=")) {
      options.generator.max_operands = std::atoi(v);
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0], "unknown option '" + arg + "'");
    }
  }
  if (options.iterations <= 0 && options.duration_seconds <= 0 &&
      corpus_path.empty() && emit_corpus_path.empty()) {
    return Usage(argv[0], "need --iters, --duration, or --corpus");
  }

  // Corpus construction mode: write instances, check nothing.
  if (!emit_corpus_path.empty()) {
    Rng rng(options.seed);
    std::vector<EinsumInstance> instances;
    for (int i = 0; i < options.iterations; ++i) {
      EinsumInstance instance = GenerateInstance(&rng, options.generator);
      instance.name = "seed" + std::to_string(options.seed) + "-iter" +
                      std::to_string(i);
      instances.push_back(std::move(instance));
    }
    const Status saved = SaveCorpus(
        emit_corpus_path, instances,
        "einsum fuzz corpus (seed " + std::to_string(options.seed) + ", " +
            std::to_string(options.iterations) + " instances)");
    if (!saved.ok()) return Usage(argv[0], saved.ToString());
    std::fprintf(stderr, "wrote %zu instances to %s\n", instances.size(),
                 emit_corpus_path.c_str());
    return 0;
  }

  auto owned = MakeDefaultOracles(oracle_filter);
  if (owned.empty()) return Usage(argv[0], "oracle filter matched nothing");
  const std::vector<Oracle*> oracles = OraclePointers(owned);

  std::ostream* log = quiet ? nullptr : &std::cerr;
  FuzzReport report;
  if (!corpus_path.empty()) {
    auto instances = LoadCorpus(corpus_path);
    if (!instances.ok()) return Usage(argv[0], instances.status().ToString());
    report = ReplayInstances(*instances, options, oracles, log);
  } else {
    report = RunFuzz(options, oracles, log);
  }

  if (!report_path.empty()) {
    const std::string json = report.ToJson();
    if (report_path == "-") {
      std::cout << json << "\n";
    } else {
      std::ofstream out(report_path);
      out << json << "\n";
      if (!out) return Usage(argv[0], "cannot write report to " + report_path);
    }
  }
  return report.ok() ? 0 : 1;
}
