// Querying triplestore data with Einstein summation in SQL (§4.1).
//
// Generates a synthetic Olympic-history dataset, loads it into SQLite as
// the one-hot triple tensor T(s, p, o), compiles the SPARQL-style
// gold-medal query (Listing 7) to a single einsum SQL query (Listing 8),
// and prints the medal table — cross-checked against the interpreted
// graph matcher.

#include <cstdio>

#include "backends/sqlite_backend.h"
#include "triplestore/generator.h"
#include "triplestore/query.h"

using namespace einsql;               // NOLINT
using namespace einsql::triplestore;  // NOLINT

int main() {
  OlympicsOptions options;
  options.num_athletes = 200;
  options.results_per_athlete = 4;
  options.medal_fraction = 0.4;
  TripleStore store = GenerateOlympics(options);
  std::printf("dataset: %lld triples, %lld distinct terms, density %.2e\n",
              static_cast<long long>(store.num_triples()),
              static_cast<long long>(store.num_terms()), store.Sparsity());

  const PatternQuery query = GoldMedalQuery();
  auto sql = CompileQueryToSql(store, query).value();
  std::printf("\ncompiled SQL (slices of T + Einstein summation):\n%s\n\n",
              sql.c_str());

  auto backend = SqliteBackend::Open().value();
  if (auto status = store.LoadInto(backend.get()); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto rows = AnswerWithSql(backend.get(), store, query).value();
  std::printf("top gold medalists (of %zu with gold):\n", rows.size());
  for (size_t k = 0; k < rows.size() && k < 10; ++k) {
    std::printf("  %-16s %3.0f gold medals\n", rows[k].term.c_str(),
                rows[k].count);
  }

  // Cross-check against the interpreted matcher (the RDFLib stand-in).
  auto naive = AnswerNaive(store, query).value();
  std::printf("\nnaive matcher agrees on %zu rows: %s\n", naive.size(),
              naive.size() == rows.size() ? "yes" : "NO");
  return 0;
}
