// Inference in graphical models via Einstein summation in SQL (§4.3).
//
// Builds the breast-cancer-like pairwise model (10 variables, 21 edge
// matrices from ℝ^{2×3} to ℝ^{11×7}), embeds a batch of patients as
// one-hot evidence matrices, and computes P(class | evidence) for the
// whole batch with one SQL query — cross-checked against brute-force
// enumeration.

#include <cstdio>

#include "backends/sqlite_backend.h"
#include "graphical/generator.h"
#include "graphical/inference.h"

using namespace einsql;            // NOLINT
using namespace einsql::graphical; // NOLINT

int main() {
  PairwiseModel model = BreastCancerLikeModel();
  std::printf("model: %d variables, %zu edges\n", model.num_variables(),
              model.edges.size());
  for (const EdgeFactor& edge : model.edges) {
    std::printf("  %s -- %s  (%s)\n",
                model.variables[edge.u].name.c_str(),
                model.variables[edge.v].name.c_str(),
                ShapeToString(edge.table.shape()).c_str());
  }

  // Four patients; all non-class variables observed ("all the patient's
  // data as evidence").
  Rng rng(2026);
  InferenceQuery query = RandomQuery(model, /*query_variable=*/0,
                                     /*batch_size=*/4, &rng);

  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());
  auto posterior = Posterior(&engine, model, query).value();
  auto oracle = PosteriorBruteForce(model, query).value();

  std::printf("\nP(%s | evidence) per patient (SQL einsum vs brute force):\n",
              model.variables[query.query_variable].name.c_str());
  for (int b = 0; b < query.batch_size(); ++b) {
    std::printf("  patient %d:  no-recurrence %.4f / %.4f   "
                "recurrence %.4f / %.4f\n",
                b, posterior.At({b, 0}).value(), oracle.At({b, 0}).value(),
                posterior.At({b, 1}).value(), oracle.At({b, 1}).value());
  }
  std::printf("\nagreement: %s\n",
              AllClose(posterior, oracle, 1e-8) ? "exact" : "MISMATCH");
  return 0;
}
