// Simulating quantum circuits with Einstein summation in SQL (§4.4).
//
// Builds the paper's two-qubit example circuit (Figure 7: H, CX, H) and a
// Sycamore-style random circuit, converts them to tensor networks
// (including the CX gate as a 2×2×2 tensor), and contracts them through
// SQL with complex values carried as (re, im) column pairs. Results are
// cross-checked against a state-vector simulator.

#include <cmath>
#include <cstdio>

#include "backends/sqlite_backend.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"

using namespace einsql;           // NOLINT
using namespace einsql::quantum;  // NOLINT

int main() {
  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());

  // Figure 7's circuit: the einsum expression is a,b,ca,dbc,ed->ce.
  Circuit figure7;
  figure7.num_qubits = 2;
  figure7.gates = {H(0), CX(0, 1), H(1)};
  auto network = BuildCircuitNetwork(figure7, {0, 0}).value();
  std::printf("Figure 7 network: %zu tensors, expression %s\n",
              network.tensors.size(), network.spec.ToString().c_str());

  auto amplitudes = SimulateEinsum(&engine, figure7, {0, 0}).value();
  auto state = AmplitudesToStatevector(amplitudes).value();
  std::printf("output distribution |c e>:\n");
  for (int index = 0; index < 4; ++index) {
    std::printf("  |%d%d>  p = %.4f\n", index & 1, (index >> 1) & 1,
                std::norm(state[index]));
  }

  // A Sycamore-style circuit; SQL versus the state-vector oracle.
  const int qubits = 8, depth = 6;
  Circuit sycamore = SycamoreLikeCircuit(qubits, depth);
  std::printf("\nSycamore-like circuit: %d qubits, depth %d, %zu gates\n",
              qubits, depth, sycamore.gates.size());
  const std::vector<int> zeros(qubits, 0);
  auto sql_state = AmplitudesToStatevector(
                       SimulateEinsum(&engine, sycamore, zeros).value())
                       .value();
  auto oracle = SimulateStatevector(sycamore, zeros).value();
  double max_error = 0.0, norm = 0.0;
  for (size_t k = 0; k < sql_state.size(); ++k) {
    max_error = std::max(max_error, std::abs(sql_state[k] - oracle[k]));
    norm += std::norm(sql_state[k]);
  }
  std::printf("state norm: %.12f (expect 1), max |SQL - oracle|: %.2e\n",
              norm, max_error);
  return 0;
}
