// Counting SAT solutions (#SAT) with Einstein summation in SQL (§4.2).
//
// Converts a conda-style package-dependency formula into a tensor network
// (one {0,1}^{2^k} tensor per clause, at most 14 unique tensors for
// 3-SAT), contracts it to a scalar on SQLite, and cross-checks the model
// count against an exact DPLL counter.

#include <cstdio>

#include "backends/sqlite_backend.h"
#include "sat/count.h"
#include "sat/dimacs.h"
#include "sat/generator.h"

using namespace einsql;       // NOLINT
using namespace einsql::sat;  // NOLINT

int main() {
  // The paper's Figure 3 example: (¬a ∨ ¬d) ∧ (a ∨ b ∨ ¬c).
  CnfFormula example;
  example.num_variables = 4;
  example.clauses = {{{-1, -4}}, {{1, 2, -3}}};
  std::printf("example formula:\n%s", ToDimacs(example).c_str());

  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());
  std::printf("models via SQL einsum: %.0f (exact: %.0f)\n\n",
              CountSolutionsEinsum(&engine, example).value(),
              CountSolutionsExact(example).value());

  // A package-manager formula like the paper's `conda install sqlite`
  // instance: 3-SAT, at-most-one version constraints + dependencies.
  PackageFormulaOptions options;
  options.num_packages = 60;
  CnfFormula formula = PackageDependencyFormula(options);
  auto network = BuildTensorNetwork(formula).value();
  std::printf("package formula: %zu clauses over %d variables, "
              "%zu unique clause tensors (<= 14 for 3-SAT)\n",
              formula.clauses.size(), formula.num_variables,
              network.unique_tensors.size());

  auto count = CountSolutionsEinsum(&engine, network).value();
  std::printf("number of valid installations: %.0f\n", count);
  std::printf("satisfiable: %s\n", count > 0 ? "yes" : "no");

  // Scalability sweep over clause-count prefixes (Figure 4's x-axis).
  std::printf("\nclauses -> models (einsum on %s)\n",
              backend->name().c_str());
  for (int clauses : {10, 40, 160, static_cast<int>(formula.clauses.size())}) {
    auto prefix = TruncateClauses(formula, clauses);
    auto models = CountSolutionsEinsum(&engine, prefix).value();
    std::printf("  %4d -> %.6g\n", clauses, models);
  }
  return 0;
}
