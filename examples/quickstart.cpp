// Quickstart: Einstein summation in SQL in five minutes.
//
// Reproduces the paper's running example (Listing 4): evaluate
// A_ik B_jk v_j -> r_i  ("ik,jk,j->i") on sparse COO tensors, show the
// generated portable SQL, and run it on both bundled backends.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "core/program.h"
#include "core/sqlgen.h"

using namespace einsql;  // NOLINT: example brevity

int main() {
  // 1. The tensors of Listing 4 in COO format (§3.1): only non-zeros are
  //    stored, as (coordinates..., value) tuples.
  CooTensor A({2, 2});
  (void)A.Append({0, 0}, 1.0);
  (void)A.Append({1, 1}, 2.0);
  CooTensor B({3, 2});
  (void)B.Append({0, 0}, 3.0);
  (void)B.Append({0, 1}, 4.0);
  (void)B.Append({1, 0}, 5.0);
  (void)B.Append({1, 1}, 6.0);
  (void)B.Append({2, 1}, 7.0);
  CooTensor v({3});
  (void)v.Append({0}, 8.0);
  (void)v.Append({2}, 9.0);

  // 2. Compile the format string into a contraction program: parse,
  //    validate, and find a good pairwise contraction order (§3.3).
  auto program =
      BuildProgram("ik,jk,j->i", {{2, 2}, {3, 2}, {3}}, PathAlgorithm::kAuto)
          .value();
  std::printf("expression: %s\n", program.spec.ToString().c_str());
  std::printf("path algorithm: %s, estimated flops: %.0f\n",
              PathAlgorithmToString(program.algorithm), program.est_flops);

  // 3. Generate the portable SQL (mapping rules R1-R4 + CTE decomposition).
  auto sql = GenerateEinsumSql(program, {&A, &B, &v}).value();
  std::printf("\ngenerated SQL:\n%s\n\n", sql.c_str());

  // 4. Execute on SQLite and on MiniDB; the same query string runs on both.
  auto sqlite = SqliteBackend::Open().value();
  MiniDbBackend minidb;
  for (SqlBackend* backend :
       std::initializer_list<SqlBackend*>{sqlite.get(), &minidb}) {
    SqlEinsumEngine engine(backend);
    auto r = engine.Einsum("ik,jk,j->i", {&A, &B, &v}).value();
    std::printf("%s result: r = [", backend->name().c_str());
    for (int64_t i = 0; i < 2; ++i) {
      std::printf("%s%.0f", i ? ", " : "", r.At({i}).value());
    }
    std::printf("]   (expected [24, 190])\n");
  }

  // 5. The dense engine (the opt_einsum stand-in) gives the same answer.
  DenseEinsumEngine dense;
  auto r = dense.Einsum("ik,jk,j->i", {&A, &B, &v}).value();
  std::printf("dense result:  r = [%.0f, %.0f]\n", r.At({0}).value(),
              r.At({1}).value());
  return 0;
}
