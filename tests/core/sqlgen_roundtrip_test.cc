// Invariant tests on the generated SQL itself: every query the generator
// emits must (a) parse with the MiniDB grammar, (b) preserve double
// precision exactly through the VALUES literals, and (c) stay portable
// (identical results on both engines — covered by the engine sweeps; here
// we check the text-level properties).

#include <gtest/gtest.h>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/rng.h"
#include "core/sqlgen.h"
#include "minidb/parser.h"

namespace einsql {
namespace {

CooTensor RandomSparse(const Shape& shape, uint64_t seed) {
  CooTensor t(shape);
  Rng rng(seed);
  std::vector<int64_t> coords(shape.size());
  const auto strides = RowMajorStrides(shape);
  const int64_t total = NumElements(shape).value();
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng.Bernoulli(0.5)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    // Awkward doubles: tiny, huge, many significant digits.
    double value = rng.UniformDouble(-1, 1);
    switch (rng.UniformInt(0, 3)) {
      case 0: value *= 1e-30; break;
      case 1: value *= 1e30; break;
      case 2: value = 1.0 / 3.0 * value; break;
      default: break;
    }
    (void)t.Append(coords, value);
  }
  return t;
}

struct Case {
  const char* format;
  std::vector<Shape> shapes;
};

class GeneratedSqlParses
    : public ::testing::TestWithParam<std::tuple<Case, bool>> {};

TEST_P(GeneratedSqlParses, WithMiniDbGrammar) {
  const auto& [c, decompose] = GetParam();
  std::vector<CooTensor> tensors;
  std::vector<const CooTensor*> ptrs;
  for (size_t t = 0; t < c.shapes.size(); ++t) {
    tensors.push_back(RandomSparse(c.shapes[t], 31 * t + 5));
  }
  for (const auto& t : tensors) ptrs.push_back(&t);
  auto program =
      BuildProgram(c.format, c.shapes, PathAlgorithm::kAuto).value();
  SqlGenOptions options;
  options.decompose = decompose;
  auto sql = GenerateEinsumSql(program, ptrs, options).value();
  auto parsed = minidb::ParseStatement(sql);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << "\nSQL: " << sql;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, GeneratedSqlParses,
    ::testing::Combine(
        ::testing::Values(Case{"ik,jk,j->i", {{3, 4}, {5, 4}, {5}}},
                          Case{"ii->i", {{4, 4}}},
                          Case{"ijkl,ai,bj,ck,dl->abcd",
                               {{2, 2, 2, 2}, {3, 2}, {3, 2}, {3, 2}, {3, 2}}},
                          Case{"ab,cd->", {{2, 3}, {4, 5}}}),
        ::testing::Bool()),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).format;
      for (char& ch : name) {
        if (ch == ',') ch = '_';
        if (ch == '-' || ch == '>') ch = 'X';
      }
      return name + (std::get<1>(info.param) ? "_cte" : "_flat");
    });

// Doubles must survive the VALUES literal round trip on both engines: an
// identity einsum returns the inserted values to within 4 ULPs (SQLite's
// text-to-real conversion is documented to be within 1 ULP at extreme
// exponents; MiniDB uses strtod and is exact).
class DoubleFidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(DoubleFidelity, IdentityEinsumIsExact) {
  CooTensor t({8});
  const double values[8] = {1.0 / 3.0,        -1e-300,        1e300,
                            3.141592653589793, -2.2250738585072014e-308,
                            0.1,               123456789.987654321,
                            -0.49999999999999994};
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(t.Append({i}, values[i]).ok());
  }
  std::unique_ptr<SqliteBackend> sqlite;
  std::unique_ptr<MiniDbBackend> minidb;
  std::unique_ptr<EinsumEngine> engine;
  if (GetParam() == "sqlite") {
    sqlite = SqliteBackend::Open().value();
    engine = std::make_unique<SqlEinsumEngine>(sqlite.get());
  } else {
    minidb = std::make_unique<MiniDbBackend>();
    engine = std::make_unique<SqlEinsumEngine>(minidb.get());
  }
  auto result = engine->Einsum("i->i", {&t}).value();
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(result.At({i}).value(), values[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DoubleFidelity,
                         ::testing::Values("sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace einsql
