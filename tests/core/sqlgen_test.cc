#include "core/sqlgen.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

CooTensor Matrix22(double a, double b, double c, double d) {
  CooTensor t({2, 2});
  if (a != 0) (void)t.Append({0, 0}, a);
  if (b != 0) (void)t.Append({0, 1}, b);
  if (c != 0) (void)t.Append({1, 0}, c);
  if (d != 0) (void)t.Append({1, 1}, d);
  return t;
}

TEST(CooToValuesCteTest, RealTensor) {
  CooTensor t({2, 2});
  ASSERT_TRUE(t.Append({0, 0}, 1.0).ok());
  ASSERT_TRUE(t.Append({1, 1}, 2.0).ok());
  EXPECT_EQ(CooToValuesCte("T0", t),
            "T0(i0, i1, val) AS (VALUES (0, 0, 1.0), (1, 1, 2.0))");
}

TEST(CooToValuesCteTest, EmptyTensorUsesZeroRowSelect) {
  CooTensor t({2});
  EXPECT_EQ(CooToValuesCte("T0", t),
            "T0(i0, val) AS (SELECT 0, 0.0 WHERE 1=0)");
}

TEST(CooToValuesCteTest, ScalarTensor) {
  CooTensor t((Shape{}));
  ASSERT_TRUE(t.Append({}, 2.5).ok());
  EXPECT_EQ(CooToValuesCte("S", t), "S(val) AS (VALUES (2.5))");
}

TEST(CooToValuesCteTest, ComplexTensorHasReImColumns) {
  ComplexCooTensor t({2});
  ASSERT_TRUE(t.Append({1}, {1.0, -2.0}).ok());
  EXPECT_EQ(CooToValuesCte("Q", t),
            "Q(i0, re, im) AS (VALUES (1, 1.0, -2.0))");
}

TEST(GenerateSqlTest, FlatQueryAppliesAllFourRules) {
  // Listing 4's expression ac,bc,b->a.
  auto program = BuildProgram("ac,bc,b->a", {{2, 2}, {3, 2}, {3}},
                              PathAlgorithm::kAuto)
                     .value();
  CooTensor A = Matrix22(1.0, 0.0, 0.0, 2.0);
  CooTensor B({3, 2});
  ASSERT_TRUE(B.Append({0, 0}, 3.0).ok());
  CooTensor v({3});
  ASSERT_TRUE(v.Append({0}, 8.0).ok());
  SqlGenOptions options;
  options.decompose = false;
  auto sql = GenerateEinsumSql(program, {&A, &B, &v}, options).value();
  // R1: all three tensors in FROM; R2: output index selected and grouped;
  // R3: SUM of the product; R4: transitive equalities.
  EXPECT_NE(sql.find("FROM T0 a0, T1 a1, T2 a2"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SUM(a0.val * a1.val * a2.val)"), std::string::npos);
  EXPECT_NE(sql.find("WHERE a0.i1=a1.i1 AND a1.i0=a2.i0"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY a0.i0"), std::string::npos);
}

TEST(GenerateSqlTest, ScalarOutputSkipsGroupBy) {
  // R2 skipped: no output indices.
  auto program =
      BuildProgram("i,i->", {{3}, {3}}, PathAlgorithm::kAuto).value();
  CooTensor u({3}), v({3});
  ASSERT_TRUE(u.Append({0}, 1.0).ok());
  ASSERT_TRUE(v.Append({0}, 2.0).ok());
  auto sql = GenerateEinsumSql(program, {&u, &v}).value();
  EXPECT_EQ(sql.find("GROUP BY"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SUM("), std::string::npos);
}

TEST(GenerateSqlTest, NoSummationSkipsWhere) {
  // R4 skipped: outer product has no repeated indices.
  auto program =
      BuildProgram("i,j->ij", {{2}, {3}}, PathAlgorithm::kAuto).value();
  CooTensor u({2}), v({3});
  ASSERT_TRUE(u.Append({0}, 1.0).ok());
  ASSERT_TRUE(v.Append({0}, 2.0).ok());
  auto sql = GenerateEinsumSql(program, {&u, &v}).value();
  EXPECT_EQ(sql.find("WHERE"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, SimplifyOmitsRedundantSum) {
  auto program =
      BuildProgram("i,j->ij", {{2}, {3}}, PathAlgorithm::kAuto).value();
  CooTensor u({2}), v({3});
  ASSERT_TRUE(u.Append({0}, 1.0).ok());
  ASSERT_TRUE(v.Append({0}, 2.0).ok());
  SqlGenOptions options;
  options.simplify = true;
  auto sql = GenerateEinsumSql(program, {&u, &v}, options).value();
  EXPECT_EQ(sql.find("SUM"), std::string::npos) << sql;
  options.simplify = false;
  sql = GenerateEinsumSql(program, {&u, &v}, options).value();
  EXPECT_NE(sql.find("SUM"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, DecomposedQueryHasIntermediateCtes) {
  auto program = BuildProgram("ik,kl,lj->ij", {{2, 2}, {2, 2}, {2, 2}},
                              PathAlgorithm::kNaive)
                     .value();
  CooTensor A = Matrix22(1, 2, 3, 4);
  CooTensor B = Matrix22(5, 6, 7, 8);
  CooTensor C = Matrix22(9, 1, 2, 3);
  auto sql = GenerateEinsumSql(program, {&A, &B, &C}).value();
  // Two pairwise steps: K1 as a CTE, the final step as the main SELECT.
  EXPECT_NE(sql.find("K1(i0, i1, val) AS ("), std::string::npos) << sql;
  EXPECT_EQ(sql.find("K2"), std::string::npos) << sql;
  EXPECT_NE(sql.find("WITH "), std::string::npos);
}

TEST(GenerateSqlTest, TransitiveEqualityForTripleIndex) {
  // Listing 5: element-wise product of three vectors d,d,d->d.
  auto program =
      BuildProgram("d,d,d->d", {{3}, {3}, {3}}, PathAlgorithm::kNaive)
          .value();
  CooTensor u({3}), v({3}), w({3});
  for (auto* t : {&u, &v, &w}) ASSERT_TRUE(t->Append({1}, 2.0).ok());
  SqlGenOptions options;
  options.decompose = false;
  auto sql = GenerateEinsumSql(program, {&u, &v, &w}, options).value();
  EXPECT_NE(sql.find("a0.i0=a1.i0 AND a1.i0=a2.i0"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, DiagonalUsesSameTableEquality) {
  auto program = BuildProgram("ii->i", {{3, 3}}, PathAlgorithm::kAuto).value();
  CooTensor t({3, 3});
  ASSERT_TRUE(t.Append({1, 1}, 5.0).ok());
  auto sql = GenerateEinsumSql(program, {&t}).value();
  EXPECT_NE(sql.find("a0.i0=a0.i1"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, IdentityExpressionIsPlainSelect) {
  auto program = BuildProgram("ij->ij", {{2, 2}}, PathAlgorithm::kAuto).value();
  CooTensor t = Matrix22(1, 2, 3, 4);
  auto sql = GenerateEinsumSql(program, {&t}).value();
  EXPECT_EQ(sql.find("GROUP BY"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("SUM"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SELECT a0.i0 AS i0, a0.i1 AS i1, a0.val AS val"),
            std::string::npos)
      << sql;
}

TEST(GenerateSqlTest, StoredTablesMode) {
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  SqlGenOptions options;
  options.input_names = {"matrix_a", "matrix_b"};
  auto sql = GenerateEinsumSqlForTables(program, options).value();
  EXPECT_NE(sql.find("FROM matrix_a a0, matrix_b a1"), std::string::npos)
      << sql;
  EXPECT_EQ(sql.find("WITH"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, StoredTablesModeRequiresNames) {
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  SqlGenOptions options;  // no names
  EXPECT_FALSE(GenerateEinsumSqlForTables(program, options).ok());
}

TEST(GenerateSqlTest, OrderByAppended) {
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  SqlGenOptions options;
  options.input_names = {"a", "b"};
  options.order_by = "val DESC";
  auto sql = GenerateEinsumSqlForTables(program, options).value();
  EXPECT_TRUE(sql.ends_with(" ORDER BY val DESC")) << sql;
}

TEST(GenerateSqlTest, PreludeCtesComeFirst) {
  auto program =
      BuildProgram("i,i->", {{3}, {3}}, PathAlgorithm::kAuto).value();
  SqlGenOptions options;
  options.input_names = {"S1", "S2"};
  options.prelude_ctes = "S1(i0, val) AS (SELECT s, val FROM T WHERE p=1),\n"
                         "S2(i0, val) AS (SELECT s, val FROM T WHERE p=2)";
  auto sql = GenerateEinsumSqlForTables(program, options).value();
  EXPECT_TRUE(sql.starts_with("WITH S1(i0, val)")) << sql;
}

TEST(GenerateSqlTest, ComplexPairUsesHardcodedFormula) {
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  ComplexCooTensor A({2, 2}), B({2, 2});
  ASSERT_TRUE(A.Append({0, 0}, {1.0, 1.0}).ok());
  ASSERT_TRUE(B.Append({0, 0}, {2.0, -1.0}).ok());
  auto sql = GenerateComplexEinsumSql(program, {&A, &B}).value();
  EXPECT_NE(sql.find("SUM(a0.re * a1.re - a0.im * a1.im) AS re"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("SUM(a0.re * a1.im + a0.im * a1.re) AS im"),
            std::string::npos)
      << sql;
}

TEST(GenerateSqlTest, ComplexFlatQueryWithThreeInputsRejected) {
  auto program = BuildProgram("i,i,i->i", {{2}, {2}, {2}},
                              PathAlgorithm::kNaive)
                     .value();
  ComplexCooTensor u({2}), v({2}), w({2});
  for (auto* t : {&u, &v, &w}) ASSERT_TRUE(t->Append({0}, {1.0, 0.0}).ok());
  SqlGenOptions options;
  options.decompose = false;
  EXPECT_FALSE(GenerateComplexEinsumSql(program, {&u, &v, &w}, options).ok());
  // With decomposition (pairwise steps), the same expression is fine.
  options.decompose = true;
  EXPECT_TRUE(GenerateComplexEinsumSql(program, {&u, &v, &w}, options).ok());
}


TEST(GenerateSqlTest, ComplexUnaryStepSumsBothColumns) {
  // "ijk->j" on a complex tensor: the unary reduction must aggregate re and
  // im separately without the product expansion.
  auto program =
      BuildProgram("ijk->j", {{2, 2, 2}}, PathAlgorithm::kAuto).value();
  ComplexCooTensor t({2, 2, 2});
  ASSERT_TRUE(t.Append({0, 1, 0}, {1.0, -2.0}).ok());
  auto sql = GenerateComplexEinsumSql(program, {&t}).value();
  EXPECT_NE(sql.find("SUM(a0.re) AS re"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SUM(a0.im) AS im"), std::string::npos) << sql;
}

TEST(GenerateSqlTest, ComplexIntermediateCteHeaderUsesReIm) {
  auto program = BuildProgram("ab,bc,cd->ad", {{2, 2}, {2, 2}, {2, 2}},
                              PathAlgorithm::kNaive)
                     .value();
  ComplexCooTensor x({2, 2}), y({2, 2}), z({2, 2});
  for (auto* t : {&x, &y, &z}) ASSERT_TRUE(t->Append({0, 0}, {1.0, 0.5}).ok());
  auto sql = GenerateComplexEinsumSql(program, {&x, &y, &z}).value();
  EXPECT_NE(sql.find("K1(i0, i1, re, im) AS ("), std::string::npos) << sql;
}

TEST(GenerateSqlTest, EmptyComplexTensorCte) {
  auto program =
      BuildProgram("i,i->", {{2}, {2}}, PathAlgorithm::kAuto).value();
  ComplexCooTensor u({2});  // empty
  ComplexCooTensor v({2});
  ASSERT_TRUE(v.Append({0}, {1.0, 0.0}).ok());
  auto sql = GenerateComplexEinsumSql(program, {&u, &v}).value();
  EXPECT_NE(sql.find("SELECT 0, 0.0, 0.0 WHERE 1=0"), std::string::npos)
      << sql;
}

TEST(GenerateSqlTest, TensorCountMismatchRejected) {
  auto program =
      BuildProgram("i,i->", {{3}, {3}}, PathAlgorithm::kAuto).value();
  CooTensor u({3});
  EXPECT_FALSE(GenerateEinsumSql(program, {&u}).ok());
}

TEST(GenerateSqlTest, ReusedTableGetsDistinctAliases) {
  // The same physical table can be used for both operands (SAT reuses clause
  // tensors); aliases a0/a1 must disambiguate.
  auto program =
      BuildProgram("ij,jk->ik", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  SqlGenOptions options;
  options.input_names = {"C2", "C2"};
  auto sql = GenerateEinsumSqlForTables(program, options).value();
  EXPECT_NE(sql.find("FROM C2 a0, C2 a1"), std::string::npos) << sql;
}

}  // namespace
}  // namespace einsql
