#include "core/dense_exec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reference.h"
#include "testing/almost_equal.h"

namespace einsql {
namespace {

using testing::AllCloseTol;

DenseTensor RandomTensor(const Shape& shape, uint64_t seed) {
  auto t = DenseTensor::Zeros(shape).value();
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) t[i] = rng.UniformDouble(-1.0, 1.0);
  return t;
}

// Property-style sweep: every format string must produce the same result as
// the brute-force nested-loop oracle, for every path algorithm.
struct Case {
  const char* format;
  std::vector<Shape> shapes;
};

class DenseExecAgreesWithReference
    : public ::testing::TestWithParam<std::tuple<Case, PathAlgorithm>> {};

TEST_P(DenseExecAgreesWithReference, Agrees) {
  const auto& [c, algorithm] = GetParam();
  std::vector<DenseTensor> tensors;
  std::vector<const DenseTensor*> ptrs;
  for (size_t t = 0; t < c.shapes.size(); ++t) {
    tensors.push_back(RandomTensor(c.shapes[t], 100 + t));
  }
  for (const auto& t : tensors) ptrs.push_back(&t);
  auto program = BuildProgram(c.format, c.shapes, algorithm).value();
  auto got = ExecuteProgramDense(program, ptrs).value();
  auto expected = ReferenceEinsum<double>(c.format, ptrs).value();
  std::string why;
  EXPECT_TRUE(AllCloseTol(got, expected, {}, &why))
      << c.format << " with " << PathAlgorithmToString(algorithm) << ": "
      << why;
}

INSTANTIATE_TEST_SUITE_P(
    FormatSweep, DenseExecAgreesWithReference,
    ::testing::Combine(
        ::testing::Values(
            Case{"ik,kj->ij", {{3, 4}, {4, 5}}},
            Case{"ik,jk,j->i", {{3, 4}, {5, 4}, {5}}},
            Case{"ii->i", {{4, 4}}},
            Case{"ii->", {{4, 4}}},
            Case{"ij->ji", {{3, 5}}},
            Case{"ijk->j", {{2, 3, 4}}},
            Case{"i,j->ij", {{3}, {4}}},
            Case{"i,ij,j->", {{3}, {3, 4}, {4}}},
            Case{"bik,bkj->bij", {{2, 3, 4}, {2, 4, 5}}},
            Case{"ik,klj,il->ij", {{2, 3}, {3, 4, 5}, {2, 4}}},
            Case{"ijkl,ijkl->ijkl", {{2, 2, 2, 2}, {2, 2, 2, 2}}},
            Case{"ik,kl,lm,mn,nj->ij",
                 {{2, 3}, {3, 2}, {2, 3}, {3, 2}, {2, 3}}},
            Case{"ij,iml,lo,jk,kmn,no->",
                 {{2, 2}, {2, 2, 2}, {2, 2}, {2, 2}, {2, 2, 2}, {2, 2}}},
            Case{"ijkl,ai,bj,ck,dl->abcd",
                 {{2, 2, 2, 2}, {3, 2}, {3, 2}, {3, 2}, {3, 2}}},
            Case{"d,d,d->d", {{5}, {5}, {5}}},
            Case{"ij,k->i", {{3, 4}, {5}}},
            Case{"iij->ij", {{3, 3, 2}}},
            Case{"ab,cd->", {{2, 3}, {4, 5}}},
            Case{",i->i", {{}, {4}}},
            Case{"ijklmno->m",
                 {{2, 2, 2, 2, 2, 2, 2}}}),
        ::testing::Values(PathAlgorithm::kNaive, PathAlgorithm::kGreedy,
                          PathAlgorithm::kElimination,
                          PathAlgorithm::kAuto)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).format;
      for (char& c : name) {
        if (c == ',') c = '_';
        if (c == '-' || c == '>') c = 'X';
      }
      return name + "_" +
             PathAlgorithmToString(std::get<1>(info.param));
    });

TEST(DenseExecTest, ComplexProgram) {
  using C = std::complex<double>;
  auto a = ComplexDenseTensor::FromData({2, 2},
                                        {C{1, 1}, C{0, 0}, C{0, 0}, C{0, 1}})
               .value();
  auto b = ComplexDenseTensor::FromData({2, 2},
                                        {C{1, 0}, C{0, 1}, C{1, 0}, C{2, 0}})
               .value();
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  auto got = ExecuteProgramDense<std::complex<double>>(program, {&a, &b}).value();
  auto expected =
      ReferenceEinsum<std::complex<double>>("ik,kj->ij", {&a, &b}).value();
  EXPECT_TRUE(AllCloseTol(got, expected));
}

TEST(DenseExecTest, CooRoundTrip) {
  CooTensor A({2, 2}), B({2, 2});
  ASSERT_TRUE(A.Append({0, 0}, 2.0).ok());
  ASSERT_TRUE(B.Append({0, 1}, 3.0).ok());
  auto program =
      BuildProgram("ik,kj->ij", {{2, 2}, {2, 2}}, PathAlgorithm::kAuto)
          .value();
  auto result = ExecuteProgramDenseCoo<double>(program, {&A, &B}).value();
  EXPECT_EQ(result.nnz(), 1);
  EXPECT_DOUBLE_EQ(result.At({0, 1}).value(), 6.0);
}

TEST(DenseExecTest, InputCountMismatchRejected) {
  auto program =
      BuildProgram("i,i->", {{3}, {3}}, PathAlgorithm::kAuto).value();
  auto a = RandomTensor({3}, 1);
  EXPECT_FALSE(ExecuteProgramDense<double>(program, {&a}).ok());
}

TEST(DenseExecTest, RankMismatchRejected) {
  auto program =
      BuildProgram("ij->ij", {{2, 2}}, PathAlgorithm::kAuto).value();
  auto a = RandomTensor({2}, 2);
  EXPECT_FALSE(ExecuteProgramDense<double>(program, {&a}).ok());
}

TEST(DenseExecTest, IdentityReturnsInputCopy) {
  auto program =
      BuildProgram("ij->ij", {{2, 3}}, PathAlgorithm::kAuto).value();
  auto a = RandomTensor({2, 3}, 3);
  auto out = ExecuteProgramDense<double>(program, {&a}).value();
  EXPECT_TRUE(AllCloseTol(a, out));
}

}  // namespace
}  // namespace einsql
