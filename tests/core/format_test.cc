#include "core/format.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(ParseFormatTest, ModernNotation) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  EXPECT_EQ(spec.inputs,
            (std::vector<Term>{ToTerm("ik"), ToTerm("jk"), ToTerm("j")}));
  EXPECT_EQ(spec.output, ToTerm("i"));
  EXPECT_EQ(spec.num_inputs(), 3);
}

TEST(ParseFormatTest, ScalarOutput) {
  auto spec = ParseEinsumFormat("i,ij,j->").value();
  EXPECT_TRUE(spec.output.empty());
}

TEST(ParseFormatTest, WhitespaceIgnored) {
  auto spec = ParseEinsumFormat(" ik , jk , j -> i ").value();
  EXPECT_EQ(spec.ToString(), "ik,jk,j->i");
}

TEST(ParseFormatTest, ClassicImplicitMode) {
  // Repeated indices are summed; survivors appear alphabetically.
  auto spec = ParseEinsumFormat("ik,jk").value();
  EXPECT_EQ(spec.output, ToTerm("ij"));
}

TEST(ParseFormatTest, ClassicModeMatrixTraceHasScalarOutput) {
  auto spec = ParseEinsumFormat("ii").value();
  EXPECT_TRUE(spec.output.empty());
}

TEST(ParseFormatTest, ClassicModeAlphabeticalOrder) {
  auto spec = ParseEinsumFormat("ba").value();
  EXPECT_EQ(spec.output, ToTerm("ab"));  // NumPy convention
}

TEST(ParseFormatTest, ScalarInputTerm) {
  auto spec = ParseEinsumFormat(",i->i").value();
  EXPECT_EQ(spec.inputs, (std::vector<Term>{ToTerm(""), ToTerm("i")}));
}

TEST(ParseFormatTest, RepeatedIndexWithinTerm) {
  auto spec = ParseEinsumFormat("ii->i").value();
  EXPECT_EQ(spec.inputs[0], ToTerm("ii"));
  EXPECT_EQ(spec.output, ToTerm("i"));
}

TEST(ParseFormatTest, UpperAndLowerCaseAreDistinct) {
  auto spec = ParseEinsumFormat("aA->aA").value();
  EXPECT_EQ(spec.output, ToTerm("aA"));
}

TEST(ParseFormatTest, RejectsEmpty) {
  EXPECT_FALSE(ParseEinsumFormat("").ok());
  EXPECT_FALSE(ParseEinsumFormat("  ").ok());
}

TEST(ParseFormatTest, RejectsDigitsAndSymbols) {
  EXPECT_FALSE(ParseEinsumFormat("i1->i").ok());
  EXPECT_FALSE(ParseEinsumFormat("i*j->ij").ok());
}

TEST(ParseFormatTest, RejectsDoubleArrow) {
  EXPECT_FALSE(ParseEinsumFormat("i->i->i").ok());
}

TEST(ParseFormatTest, RejectsMissingInputs) {
  EXPECT_FALSE(ParseEinsumFormat("->i").ok());
}

TEST(ParseFormatTest, RejectsRepeatedOutputIndex) {
  EXPECT_FALSE(ParseEinsumFormat("ij->ii").ok());
}

TEST(ParseFormatTest, RejectsUnknownOutputIndex) {
  EXPECT_FALSE(ParseEinsumFormat("ij->k").ok());
}

TEST(ParseFormatTest, Table1Examples) {
  // All format strings from Table 1 of the paper must parse.
  for (const char* fmt :
       {"ii->i", "i,j->ij", "i,ij,j->", "ijklmno->m", "bik,bkj->bij",
        "ik,klj,il->ij", "ijkl,ijkl->ijkl", "ik,kl,lm,mn,nj->ij",
        "ij,iml,lo,jk,kmn,no->", "ijkl,ai,bj,ck,dl->abcd"}) {
    EXPECT_TRUE(ParseEinsumFormat(fmt).ok()) << fmt;
  }
}

TEST(IndexExtentsTest, DerivesExtents) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  auto extents = IndexExtents(spec, {{4, 3}, {5, 3}, {5}}).value();
  EXPECT_EQ(extents.at('i'), 4);
  EXPECT_EQ(extents.at('j'), 5);
  EXPECT_EQ(extents.at('k'), 3);
}

TEST(IndexExtentsTest, RejectsRankMismatch) {
  auto spec = ParseEinsumFormat("ik->i").value();
  EXPECT_FALSE(IndexExtents(spec, {{4}}).ok());
}

TEST(IndexExtentsTest, RejectsWrongTensorCount) {
  auto spec = ParseEinsumFormat("i,j->ij").value();
  EXPECT_FALSE(IndexExtents(spec, {{4}}).ok());
}

TEST(IndexExtentsTest, RejectsConflictingExtents) {
  auto spec = ParseEinsumFormat("ik,jk->ij").value();
  EXPECT_FALSE(IndexExtents(spec, {{4, 3}, {5, 7}}).ok());
}

TEST(IndexExtentsTest, RepeatedIndexWithinTensorMustAgree) {
  auto spec = ParseEinsumFormat("ii->i").value();
  EXPECT_TRUE(IndexExtents(spec, {{3, 3}}).ok());
  EXPECT_FALSE(IndexExtents(spec, {{3, 4}}).ok());
}

TEST(OutputShapeTest, Basic) {
  auto spec = ParseEinsumFormat("ik,kj->ij").value();
  auto extents = IndexExtents(spec, {{2, 3}, {3, 5}}).value();
  EXPECT_EQ(OutputShape(spec, extents).value(), (Shape{2, 5}));
}

TEST(OutputShapeTest, ScalarOutputIsEmptyShape) {
  auto spec = ParseEinsumFormat("i,i->").value();
  auto extents = IndexExtents(spec, {{3}, {3}}).value();
  EXPECT_TRUE(OutputShape(spec, extents).value().empty());
}

TEST(SummationIndicesTest, FindsSummedIndices) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  EXPECT_EQ(SummationIndices(spec), ToTerm("kj"));
}

TEST(SummationIndicesTest, NoneWhenAllSurvive) {
  auto spec = ParseEinsumFormat("i,j->ij").value();
  EXPECT_TRUE(SummationIndices(spec).empty());
}

TEST(ToStringTest, RoundTrip) {
  for (const char* fmt : {"ik,jk,j->i", "ii->i", "i,ij,j->", "ij->ij"}) {
    auto spec = ParseEinsumFormat(fmt).value();
    EXPECT_EQ(spec.ToString(), fmt);
  }
}

// --- edge cases the fuzzer leans on --------------------------------------

TEST(EdgeCaseTest, EmptyOutputAfterArrowIsAScalarSpec) {
  auto spec = ParseEinsumFormat("ij->").value();
  EXPECT_TRUE(spec.output.empty());
  auto extents = IndexExtents(spec, {{2, 3}}).value();
  EXPECT_TRUE(OutputShape(spec, extents).value().empty());
  EXPECT_EQ(SummationIndices(spec), ToTerm("ij"));
}

TEST(EdgeCaseTest, SizeZeroDimsFlowThroughExtentsAndOutputShape) {
  auto spec = ParseEinsumFormat("ij,jk->ik").value();
  auto extents = IndexExtents(spec, {{0, 3}, {3, 2}}).value();
  EXPECT_EQ(extents.at('i'), 0);
  const Shape out = OutputShape(spec, extents).value();
  EXPECT_EQ(out, (Shape{0, 2}));
  EXPECT_EQ(NumElements(out).value(), 0);
  // A zero extent still has to be consistent across tensors sharing it.
  EXPECT_FALSE(IndexExtents(spec, {{2, 0}, {3, 2}}).ok());
  EXPECT_TRUE(IndexExtents(spec, {{2, 0}, {0, 2}}).ok());
}

TEST(EdgeCaseTest, SizeOneDimsAreOrdinary) {
  auto spec = ParseEinsumFormat("ij,jk->ik").value();
  auto extents = IndexExtents(spec, {{1, 1}, {1, 1}}).value();
  EXPECT_EQ(OutputShape(spec, extents).value(), (Shape{1, 1}));
}

TEST(EdgeCaseTest, DuplicateOutputLabelsRejected) {
  EXPECT_FALSE(ParseEinsumFormat("ij->ii").ok());
  EXPECT_FALSE(ParseEinsumFormat("ij,jk->ikk").ok());
  // The same rule holds for programmatically built specs.
  EinsumSpec spec;
  spec.inputs = {ToTerm("ij")};
  spec.output = ToTerm("ii");
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(EdgeCaseTest, ProgrammaticSpecsRoundTripBeyondTheLetterAlphabet) {
  // A chain with 100 distinct labels — far past the 52 ASCII letters a
  // textual format string can name (§4.2's SAT networks do exactly this).
  EinsumSpec spec;
  constexpr int kLinks = 99;
  for (int k = 0; k < kLinks; ++k) {
    Term term;
    term.push_back(static_cast<Label>(1000 + k));
    term.push_back(static_cast<Label>(1000 + k + 1));
    spec.inputs.push_back(std::move(term));
  }
  spec.output.push_back(static_cast<Label>(1000));
  spec.output.push_back(static_cast<Label>(1000 + kLinks));
  ASSERT_TRUE(ValidateSpec(spec).ok());

  std::vector<Shape> shapes(kLinks, Shape{2, 2});
  auto extents = IndexExtents(spec, shapes).value();
  EXPECT_EQ(extents.size(), 100u);
  EXPECT_EQ(OutputShape(spec, extents).value(), (Shape{2, 2}));

  // ToString renders wide labels as "#<value>" and stays unambiguous.
  const std::string rendered = spec.ToString();
  EXPECT_NE(rendered.find("#1000#1001"), std::string::npos);
  EXPECT_NE(rendered.find("->#1000#1099"), std::string::npos);
}

TEST(EdgeCaseTest, WideLabelTermToStringMixesAsciiAndHashes) {
  Term term = ToTerm("a");
  term.push_back(static_cast<Label>(500));
  term.push_back('b');
  EXPECT_EQ(TermToString(term), "a#500b");
}

}  // namespace
}  // namespace einsql
