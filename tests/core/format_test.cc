#include "core/format.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(ParseFormatTest, ModernNotation) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  EXPECT_EQ(spec.inputs,
            (std::vector<Term>{ToTerm("ik"), ToTerm("jk"), ToTerm("j")}));
  EXPECT_EQ(spec.output, ToTerm("i"));
  EXPECT_EQ(spec.num_inputs(), 3);
}

TEST(ParseFormatTest, ScalarOutput) {
  auto spec = ParseEinsumFormat("i,ij,j->").value();
  EXPECT_TRUE(spec.output.empty());
}

TEST(ParseFormatTest, WhitespaceIgnored) {
  auto spec = ParseEinsumFormat(" ik , jk , j -> i ").value();
  EXPECT_EQ(spec.ToString(), "ik,jk,j->i");
}

TEST(ParseFormatTest, ClassicImplicitMode) {
  // Repeated indices are summed; survivors appear alphabetically.
  auto spec = ParseEinsumFormat("ik,jk").value();
  EXPECT_EQ(spec.output, ToTerm("ij"));
}

TEST(ParseFormatTest, ClassicModeMatrixTraceHasScalarOutput) {
  auto spec = ParseEinsumFormat("ii").value();
  EXPECT_TRUE(spec.output.empty());
}

TEST(ParseFormatTest, ClassicModeAlphabeticalOrder) {
  auto spec = ParseEinsumFormat("ba").value();
  EXPECT_EQ(spec.output, ToTerm("ab"));  // NumPy convention
}

TEST(ParseFormatTest, ScalarInputTerm) {
  auto spec = ParseEinsumFormat(",i->i").value();
  EXPECT_EQ(spec.inputs, (std::vector<Term>{ToTerm(""), ToTerm("i")}));
}

TEST(ParseFormatTest, RepeatedIndexWithinTerm) {
  auto spec = ParseEinsumFormat("ii->i").value();
  EXPECT_EQ(spec.inputs[0], ToTerm("ii"));
  EXPECT_EQ(spec.output, ToTerm("i"));
}

TEST(ParseFormatTest, UpperAndLowerCaseAreDistinct) {
  auto spec = ParseEinsumFormat("aA->aA").value();
  EXPECT_EQ(spec.output, ToTerm("aA"));
}

TEST(ParseFormatTest, RejectsEmpty) {
  EXPECT_FALSE(ParseEinsumFormat("").ok());
  EXPECT_FALSE(ParseEinsumFormat("  ").ok());
}

TEST(ParseFormatTest, RejectsDigitsAndSymbols) {
  EXPECT_FALSE(ParseEinsumFormat("i1->i").ok());
  EXPECT_FALSE(ParseEinsumFormat("i*j->ij").ok());
}

TEST(ParseFormatTest, RejectsDoubleArrow) {
  EXPECT_FALSE(ParseEinsumFormat("i->i->i").ok());
}

TEST(ParseFormatTest, RejectsMissingInputs) {
  EXPECT_FALSE(ParseEinsumFormat("->i").ok());
}

TEST(ParseFormatTest, RejectsRepeatedOutputIndex) {
  EXPECT_FALSE(ParseEinsumFormat("ij->ii").ok());
}

TEST(ParseFormatTest, RejectsUnknownOutputIndex) {
  EXPECT_FALSE(ParseEinsumFormat("ij->k").ok());
}

TEST(ParseFormatTest, Table1Examples) {
  // All format strings from Table 1 of the paper must parse.
  for (const char* fmt :
       {"ii->i", "i,j->ij", "i,ij,j->", "ijklmno->m", "bik,bkj->bij",
        "ik,klj,il->ij", "ijkl,ijkl->ijkl", "ik,kl,lm,mn,nj->ij",
        "ij,iml,lo,jk,kmn,no->", "ijkl,ai,bj,ck,dl->abcd"}) {
    EXPECT_TRUE(ParseEinsumFormat(fmt).ok()) << fmt;
  }
}

TEST(IndexExtentsTest, DerivesExtents) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  auto extents = IndexExtents(spec, {{4, 3}, {5, 3}, {5}}).value();
  EXPECT_EQ(extents.at('i'), 4);
  EXPECT_EQ(extents.at('j'), 5);
  EXPECT_EQ(extents.at('k'), 3);
}

TEST(IndexExtentsTest, RejectsRankMismatch) {
  auto spec = ParseEinsumFormat("ik->i").value();
  EXPECT_FALSE(IndexExtents(spec, {{4}}).ok());
}

TEST(IndexExtentsTest, RejectsWrongTensorCount) {
  auto spec = ParseEinsumFormat("i,j->ij").value();
  EXPECT_FALSE(IndexExtents(spec, {{4}}).ok());
}

TEST(IndexExtentsTest, RejectsConflictingExtents) {
  auto spec = ParseEinsumFormat("ik,jk->ij").value();
  EXPECT_FALSE(IndexExtents(spec, {{4, 3}, {5, 7}}).ok());
}

TEST(IndexExtentsTest, RepeatedIndexWithinTensorMustAgree) {
  auto spec = ParseEinsumFormat("ii->i").value();
  EXPECT_TRUE(IndexExtents(spec, {{3, 3}}).ok());
  EXPECT_FALSE(IndexExtents(spec, {{3, 4}}).ok());
}

TEST(OutputShapeTest, Basic) {
  auto spec = ParseEinsumFormat("ik,kj->ij").value();
  auto extents = IndexExtents(spec, {{2, 3}, {3, 5}}).value();
  EXPECT_EQ(OutputShape(spec, extents).value(), (Shape{2, 5}));
}

TEST(OutputShapeTest, ScalarOutputIsEmptyShape) {
  auto spec = ParseEinsumFormat("i,i->").value();
  auto extents = IndexExtents(spec, {{3}, {3}}).value();
  EXPECT_TRUE(OutputShape(spec, extents).value().empty());
}

TEST(SummationIndicesTest, FindsSummedIndices) {
  auto spec = ParseEinsumFormat("ik,jk,j->i").value();
  EXPECT_EQ(SummationIndices(spec), ToTerm("kj"));
}

TEST(SummationIndicesTest, NoneWhenAllSurvive) {
  auto spec = ParseEinsumFormat("i,j->ij").value();
  EXPECT_TRUE(SummationIndices(spec).empty());
}

TEST(ToStringTest, RoundTrip) {
  for (const char* fmt : {"ik,jk,j->i", "ii->i", "i,ij,j->", "ij->ij"}) {
    auto spec = ParseEinsumFormat(fmt).value();
    EXPECT_EQ(spec.ToString(), fmt);
  }
}

}  // namespace
}  // namespace einsql
