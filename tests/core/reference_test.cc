#include "core/reference.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(ReferenceEinsumTest, PaperListing1) {
  // r_i = sum_j sum_k A_ik B_jk v_j with the Listing 4 data.
  auto A = DenseTensor::FromData({2, 2}, {1.0, 0.0, 0.0, 2.0}).value();
  auto B =
      DenseTensor::FromData({3, 2}, {3.0, 4.0, 5.0, 6.0, 0.0, 7.0}).value();
  auto v = DenseTensor::FromData({3}, {8.0, 0.0, 9.0}).value();
  auto r = ReferenceEinsum<double>("ik,jk,j->i", {&A, &B, &v}).value();
  // NumPy: np.einsum("ac,bc,b->a", A, B, v) == [24., 190.]
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 24.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 190.0);
}

TEST(ReferenceEinsumTest, MatrixMultiply) {
  auto A = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto B = DenseTensor::FromData({2, 2}, {5, 6, 7, 8}).value();
  auto C = ReferenceEinsum<double>("ik,kj->ij", {&A, &B}).value();
  EXPECT_DOUBLE_EQ(C.At({0, 0}).value(), 19.0);
  EXPECT_DOUBLE_EQ(C.At({1, 1}).value(), 50.0);
}

TEST(ReferenceEinsumTest, Trace) {
  auto A = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto t = ReferenceEinsum<double>("ii->", {&A}).value();
  EXPECT_DOUBLE_EQ(t.At({}).value(), 5.0);
}

TEST(ReferenceEinsumTest, Diagonal) {
  auto A = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto d = ReferenceEinsum<double>("ii->i", {&A}).value();
  EXPECT_DOUBLE_EQ(d.At({0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(d.At({1}).value(), 4.0);
}

TEST(ReferenceEinsumTest, ThirdOrderOutput) {
  // Listing 2: A_ik B_jk v_j -> R_ijk.
  auto A = DenseTensor::FromData({2, 2}, {1.0, 0.0, 0.0, 2.0}).value();
  auto B =
      DenseTensor::FromData({3, 2}, {3.0, 4.0, 5.0, 6.0, 0.0, 7.0}).value();
  auto v = DenseTensor::FromData({3}, {8.0, 0.0, 9.0}).value();
  auto R = ReferenceEinsum<double>("ik,jk,j->ijk", {&A, &B, &v}).value();
  EXPECT_EQ(R.shape(), (Shape{2, 3, 2}));
  // R[0,0,0] = A[0,0]*B[0,0]*v[0] = 1*3*8 = 24.
  EXPECT_DOUBLE_EQ(R.At({0, 0, 0}).value(), 24.0);
  // Scalar output variant sums everything.
  auto s = ReferenceEinsum<double>("ik,jk,j->", {&A, &B, &v}).value();
  double total = 0.0;
  for (int64_t i = 0; i < R.size(); ++i) total += R[i];
  EXPECT_DOUBLE_EQ(s.At({}).value(), total);
}

TEST(ReferenceEinsumTest, ScalarTimesScalar) {
  auto a = DenseTensor::FromData({}, {3.0}).value();
  auto b = DenseTensor::FromData({}, {4.0}).value();
  auto r = ReferenceEinsum<double>(",->", {&a, &b}).value();
  EXPECT_DOUBLE_EQ(r.At({}).value(), 12.0);
}

TEST(ReferenceEinsumTest, ComplexValues) {
  using C = std::complex<double>;
  auto a = ComplexDenseTensor::FromData({2}, {C{0, 1}, C{1, 0}}).value();
  auto b = ComplexDenseTensor::FromData({2}, {C{0, 1}, C{2, 0}}).value();
  auto r = ReferenceEinsum<std::complex<double>>("i,i->", {&a, &b}).value();
  // i*i + 1*2 = -1 + 2 = 1.
  EXPECT_DOUBLE_EQ(r.At({}).value().real(), 1.0);
  EXPECT_DOUBLE_EQ(r.At({}).value().imag(), 0.0);
}

TEST(ReferenceEinsumTest, CooWrapper) {
  CooTensor A({2, 2});
  ASSERT_TRUE(A.Append({0, 1}, 2.0).ok());
  CooTensor v({2});
  ASSERT_TRUE(v.Append({1}, 3.0).ok());
  auto r = ReferenceEinsumCoo<double>("ij,j->i", {&A, &v}).value();
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 6.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 0.0);
}

TEST(ReferenceEinsumTest, RejectsBadShapes) {
  auto A = DenseTensor::Zeros({2, 3}).value();
  auto B = DenseTensor::Zeros({4, 2}).value();
  EXPECT_FALSE(ReferenceEinsum<double>("ik,kj->ij", {&A, &B}).ok());
}

}  // namespace
}  // namespace einsql
