#include "core/path.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost.h"

namespace einsql {
namespace {

Term T(const char* s) { return ToTerm(s); }
std::vector<Term> Ts(std::initializer_list<const char*> list) {
  std::vector<Term> terms;
  for (const char* s : list) terms.push_back(ToTerm(s));
  return terms;
}

einsql::Extents MakeExtents(
    std::initializer_list<std::pair<char, int64_t>> list) {
  einsql::Extents m;
  for (auto [c, e] : list) m[c] = e;
  return m;
}

TEST(CostTest, TermSizeIsProductOfUniqueExtents) {
  auto ext = MakeExtents({{'i', 2}, {'j', 3}, {'k', 4}});
  EXPECT_DOUBLE_EQ(TermSize(T("ij"), ext), 6.0);
  EXPECT_DOUBLE_EQ(TermSize(T("iij"), ext), 6.0);  // unique chars only
  EXPECT_DOUBLE_EQ(TermSize(T(""), ext), 1.0);
}

TEST(CostTest, PairCostIsUnionProduct) {
  auto ext = MakeExtents({{'i', 2}, {'j', 3}, {'k', 4}});
  EXPECT_DOUBLE_EQ(PairContractionCost(T("ij"), T("jk"), T("ik"), ext), 24.0);
}

TEST(IntermediateTermTest, KeepsOutputAndPendingIndices) {
  EXPECT_EQ(IntermediateTerm(T("ik"), T("kj"), {}, T("ij")), T("ij"));
  EXPECT_EQ(IntermediateTerm(T("ik"), T("kj"), Ts({"jm"}), T("im")), T("ij"));
  EXPECT_EQ(IntermediateTerm(T("ij"), T("jk"), {}, T("")), T(""));
}

TEST(IntermediateTermTest, OrderFollowsFirstOccurrence) {
  EXPECT_EQ(IntermediateTerm(T("ba"), T("ac"), {}, T("abc")), T("bac"));
}

TEST(FindPathTest, RequiresTwoOperands) {
  EXPECT_FALSE(
      FindPath(Ts({"ij"}), T("ij"), MakeExtents({{'i', 2}, {'j', 2}}),
               PathAlgorithm::kGreedy)
          .ok());
}

TEST(FindPathTest, TwoOperandsSinglePair) {
  auto path = FindPath(Ts({"ik", "kj"}), T("ij"),
                       MakeExtents({{'i', 2}, {'j', 2}, {'k', 2}}),
                       PathAlgorithm::kAuto)
                  .value();
  ASSERT_EQ(path.pairs.size(), 1u);
  EXPECT_EQ(path.pairs[0], (std::pair<int, int>{0, 1}));
}

TEST(FindPathTest, NaiveIsLeftToRight) {
  auto path = FindPath(Ts({"ik", "kl", "lj"}), T("ij"),
                       MakeExtents({{'i', 2}, {'k', 2}, {'l', 2}, {'j', 2}}),
                       PathAlgorithm::kNaive)
                  .value();
  ASSERT_EQ(path.pairs.size(), 2u);
  EXPECT_EQ(path.pairs[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(path.pairs[1], (std::pair<int, int>{0, 1}));
}

TEST(FindPathTest, PaperExamplePrefersMatrixVectorOrder) {
  // A_ik B_jk v_j -> r_i (§2, Listing 3): contracting j first avoids the
  // matrix-matrix product. With large extents the optimal path must contract
  // B with v first (operands 1 and 2).
  auto ext = MakeExtents({{'i', 100}, {'j', 100}, {'k', 100}});
  auto path =
      FindPath(Ts({"ik", "jk", "j"}), T("i"), ext, PathAlgorithm::kOptimal).value();
  ASSERT_EQ(path.pairs.size(), 2u);
  EXPECT_EQ(path.pairs[0], (std::pair<int, int>{1, 2}));
  // Cost: Bv = 100*100, then A*tmp = 100*100 => 2e4, far below the 1e6+1e4
  // of the matrix-matrix order.
  EXPECT_DOUBLE_EQ(path.est_flops, 2e4);
}

TEST(FindPathTest, GreedyMatchesOptimalOnPaperExample) {
  auto ext = MakeExtents({{'i', 100}, {'j', 100}, {'k', 100}});
  auto greedy =
      FindPath(Ts({"ik", "jk", "j"}), T("i"), ext, PathAlgorithm::kGreedy).value();
  auto optimal =
      FindPath(Ts({"ik", "jk", "j"}), T("i"), ext, PathAlgorithm::kOptimal).value();
  EXPECT_DOUBLE_EQ(greedy.est_flops, optimal.est_flops);
}

TEST(FindPathTest, OptimalNeverWorseThanNaiveOrGreedy) {
  // Matrix chain "ik,kl,lm,mn,nj->ij" with skewed extents.
  auto ext = MakeExtents(
      {{'i', 2}, {'k', 30}, {'l', 2}, {'m', 40}, {'n', 2}, {'j', 25}});
  std::vector<Term> terms = Ts({"ik", "kl", "lm", "mn", "nj"});
  auto naive = FindPath(terms, T("ij"), ext, PathAlgorithm::kNaive).value();
  auto greedy = FindPath(terms, T("ij"), ext, PathAlgorithm::kGreedy).value();
  auto optimal = FindPath(terms, T("ij"), ext, PathAlgorithm::kOptimal).value();
  EXPECT_LE(optimal.est_flops, naive.est_flops);
  EXPECT_LE(optimal.est_flops, greedy.est_flops);
}

TEST(FindPathTest, OptimalBeatsNaiveOnSkewedChain) {
  auto ext = MakeExtents(
      {{'i', 100}, {'k', 100}, {'l', 100}, {'m', 1}, {'n', 100}, {'j', 1}});
  std::vector<Term> terms = Ts({"ik", "kl", "lm", "mn", "nj"});
  auto naive = FindPath(terms, T("ij"), ext, PathAlgorithm::kNaive).value();
  auto optimal = FindPath(terms, T("ij"), ext, PathAlgorithm::kOptimal).value();
  EXPECT_LT(optimal.est_flops, naive.est_flops);
}

TEST(FindPathTest, OptimalRejectsTooManyOperands) {
  std::vector<Term> terms(17, T("i"));
  EXPECT_FALSE(
      FindPath(terms, T(""), MakeExtents({{'i', 2}}), PathAlgorithm::kOptimal).ok());
}

TEST(FindPathTest, GreedyScalesToManyOperands) {
  // A long chain a0-a1-a2-...; greedy must handle 60 operands quickly.
  std::vector<Term> terms;
  einsql::Extents ext;
  std::string chars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  for (int t = 0; t + 1 < 52; ++t) {
    terms.push_back(ToTerm(std::string() + chars[t] + chars[t + 1]));
  }
  for (char c : chars) ext[c] = 2;
  auto path = FindPath(terms, ToTerm(std::string() + chars[0] + chars[51]), ext,
                       PathAlgorithm::kGreedy)
                  .value();
  EXPECT_EQ(path.pairs.size(), terms.size() - 1);
  EXPECT_GT(path.est_flops, 0.0);
}

TEST(FindPathTest, DisconnectedNetworkFallsBackToOuterProducts) {
  auto ext = MakeExtents({{'i', 2}, {'j', 3}});
  auto path =
      FindPath(Ts({"i", "j"}), T("ij"), ext, PathAlgorithm::kGreedy).value();
  EXPECT_EQ(path.pairs.size(), 1u);
}

TEST(FindPathTest, AutoSelectsOptimalForSmall) {
  auto ext = MakeExtents({{'i', 4}, {'j', 4}, {'k', 4}});
  auto path =
      FindPath(Ts({"ik", "jk", "j"}), T("i"), ext, PathAlgorithm::kAuto).value();
  EXPECT_EQ(path.algorithm, PathAlgorithm::kOptimal);
}

TEST(FindPathTest, AutoSelectsHeuristicForLarge) {
  std::vector<Term> terms;
  einsql::Extents ext;
  std::string chars = "abcdefghijklm";
  for (size_t t = 0; t + 1 < chars.size(); ++t) {
    terms.push_back(ToTerm(std::string() + chars[t] + chars[t + 1]));
  }
  for (char c : chars) ext[c] = 2;
  auto path = FindPath(terms, T(""), ext, PathAlgorithm::kAuto).value();
  EXPECT_TRUE(path.algorithm == PathAlgorithm::kGreedy ||
              path.algorithm == PathAlgorithm::kElimination);
}

TEST(FindPathTest, LargestIntermediateTracked) {
  auto ext = MakeExtents({{'i', 10}, {'j', 10}, {'k', 10}});
  auto path =
      FindPath(Ts({"ik", "kj"}), T("ij"), ext, PathAlgorithm::kGreedy).value();
  EXPECT_DOUBLE_EQ(path.largest_intermediate, 100.0);
}


TEST(EliminationPathTest, MatchesOptimalCostClassOnSmallChain) {
  auto ext = MakeExtents({{'i', 4}, {'k', 4}, {'l', 4}, {'j', 4}});
  auto path = FindPath(Ts({"ik", "kl", "lj"}), T("ij"), ext,
                       PathAlgorithm::kElimination)
                  .value();
  EXPECT_EQ(path.pairs.size(), 2u);
  EXPECT_EQ(path.algorithm, PathAlgorithm::kElimination);
}

TEST(EliminationPathTest, BeatsGreedyOnHubNetwork) {
  // A hub label h shared by many operands plus local chain links; greedy
  // pairwise merging is known to degrade on such networks.
  std::vector<Term> terms;
  einsql::Extents ext;
  ext['h'] = 2;
  for (int k = 0; k < 24; ++k) {
    Label local = static_cast<Label>(1000 + k);
    Label next = static_cast<Label>(1000 + k + 1);
    ext[local] = 2;
    ext[next] = 2;
    terms.push_back(Term{static_cast<Label>('h'), local, next});
  }
  auto greedy =
      FindPath(terms, T(""), ext, PathAlgorithm::kGreedy).value();
  auto elimination =
      FindPath(terms, T(""), ext, PathAlgorithm::kElimination).value();
  EXPECT_LE(elimination.est_flops, greedy.est_flops);
  EXPECT_LE(elimination.largest_intermediate, 1 << 12);
}

TEST(EliminationPathTest, HandlesDisconnectedComponents) {
  auto ext = MakeExtents({{'a', 2}, {'b', 2}, {'c', 2}, {'d', 2}});
  auto path = FindPath(Ts({"ab", "ab", "cd", "cd"}), T(""), ext,
                       PathAlgorithm::kElimination)
                  .value();
  EXPECT_EQ(path.pairs.size(), 3u);
}

TEST(EliminationPathTest, AutoPicksCheaperOfGreedyAndElimination) {
  // Large operand count forces the heuristic branch of kAuto.
  std::vector<Term> terms;
  einsql::Extents ext;
  for (int k = 0; k < 14; ++k) {
    Label a = static_cast<Label>(100 + k), b = static_cast<Label>(101 + k);
    ext[a] = 3;
    ext[b] = 3;
    terms.push_back(Term{a, b});
  }
  auto auto_path = FindPath(terms, T(""), ext, PathAlgorithm::kAuto).value();
  auto greedy = FindPath(terms, T(""), ext, PathAlgorithm::kGreedy).value();
  auto elim =
      FindPath(terms, T(""), ext, PathAlgorithm::kElimination).value();
  EXPECT_LE(auto_path.est_flops, std::max(greedy.est_flops, elim.est_flops));
  EXPECT_DOUBLE_EQ(auto_path.est_flops,
                   std::min(greedy.est_flops, elim.est_flops));
}


TEST(BranchPathTest, MatchesOptimalOnSmallChain) {
  auto ext = MakeExtents(
      {{'i', 2}, {'k', 30}, {'l', 2}, {'m', 40}, {'n', 2}, {'j', 25}});
  std::vector<Term> terms = Ts({"ik", "kl", "lm", "mn", "nj"});
  auto optimal = FindPath(terms, T("ij"), ext, PathAlgorithm::kOptimal).value();
  auto branch = FindPath(terms, T("ij"), ext, PathAlgorithm::kBranch).value();
  EXPECT_DOUBLE_EQ(branch.est_flops, optimal.est_flops);
}

TEST(BranchPathTest, NeverWorseThanItsSeeds) {
  Rng rng(91);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Term> terms;
    einsql::Extents ext;
    const int n = 8 + trial * 3;
    for (int t = 0; t < n; ++t) {
      Term term;
      for (int d = 0; d < 2; ++d) {
        const Label label = static_cast<Label>(500 + rng.UniformInt(0, n));
        if (term.find(label) == Term::npos) term.push_back(label);
        ext[label] = 2 + rng.UniformInt(0, 6);
      }
      terms.push_back(std::move(term));
    }
    auto greedy = FindPath(terms, T(""), ext, PathAlgorithm::kGreedy).value();
    auto elim =
        FindPath(terms, T(""), ext, PathAlgorithm::kElimination).value();
    auto branch = FindPath(terms, T(""), ext, PathAlgorithm::kBranch).value();
    EXPECT_LE(branch.est_flops, greedy.est_flops) << "trial " << trial;
    EXPECT_LE(branch.est_flops, elim.est_flops) << "trial " << trial;
  }
}

TEST(BranchPathTest, HandlesTwoOperands) {
  auto ext = MakeExtents({{'i', 3}, {'k', 3}, {'j', 3}});
  auto path =
      FindPath(Ts({"ik", "kj"}), T("ij"), ext, PathAlgorithm::kBranch).value();
  EXPECT_EQ(path.pairs.size(), 1u);
}

TEST(PathAlgorithmToStringTest, Names) {
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kNaive), "naive");
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kGreedy), "greedy");
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kBranch), "branch");
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kElimination),
               "elimination");
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kOptimal), "optimal");
  EXPECT_STREQ(PathAlgorithmToString(PathAlgorithm::kAuto), "auto");
}

}  // namespace
}  // namespace einsql
