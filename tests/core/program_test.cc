#include "core/program.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(BuildProgramTest, PairwiseChain) {
  auto program =
      BuildProgram("ik,jk,j->i", {{2, 3}, {4, 3}, {4}}, PathAlgorithm::kAuto)
          .value();
  EXPECT_EQ(program.num_inputs, 3);
  EXPECT_EQ(program.steps.size(), 2u);
  for (const ProgramStep& step : program.steps) {
    EXPECT_EQ(step.args.size(), 2u);
  }
  EXPECT_EQ(program.steps.back().result_term, ToTerm("i"));
  EXPECT_EQ(program.result_slot, program.steps.back().result_slot);
}

TEST(BuildProgramTest, IdentityHasNoSteps) {
  auto program = BuildProgram("ij->ij", {{2, 3}}, PathAlgorithm::kAuto).value();
  EXPECT_TRUE(program.steps.empty());
  EXPECT_EQ(program.result_slot, 0);
}

TEST(BuildProgramTest, TransposeIsOneUnaryStep) {
  auto program = BuildProgram("ij->ji", {{2, 3}}, PathAlgorithm::kAuto).value();
  ASSERT_EQ(program.steps.size(), 1u);
  EXPECT_EQ(program.steps[0].args.size(), 1u);
  EXPECT_EQ(program.steps[0].result_term, ToTerm("ji"));
}

TEST(BuildProgramTest, DiagonalIsPreReduced) {
  auto program = BuildProgram("ii->i", {{3, 3}}, PathAlgorithm::kAuto).value();
  ASSERT_EQ(program.steps.size(), 1u);
  EXPECT_EQ(program.steps[0].arg_terms[0], ToTerm("ii"));
  EXPECT_EQ(program.steps[0].result_term, ToTerm("i"));
}

TEST(BuildProgramTest, MarginalizationSingleInput) {
  auto program =
      BuildProgram("ijk->j", {{2, 3, 4}}, PathAlgorithm::kAuto).value();
  ASSERT_EQ(program.steps.size(), 1u);
  EXPECT_EQ(program.steps[0].result_term, ToTerm("j"));
}

TEST(BuildProgramTest, ImmediatelySummableIndexIsPreReduced) {
  // "ij,k->i": k appears in no other operand and not in the output, so the
  // second input is reduced to a scalar before the pairwise phase.
  auto program =
      BuildProgram("ij,k->i", {{2, 3}, {4}}, PathAlgorithm::kAuto).value();
  bool has_unary = false;
  for (const ProgramStep& step : program.steps) {
    if (step.args.size() == 1 && step.arg_terms[0] == ToTerm("k")) {
      has_unary = true;
      EXPECT_EQ(step.result_term, ToTerm(""));
    }
  }
  EXPECT_TRUE(has_unary);
}

TEST(BuildProgramTest, RepeatedIndexAcrossInputsIsKept) {
  auto program =
      BuildProgram("i,i->", {{3}, {3}}, PathAlgorithm::kAuto).value();
  ASSERT_EQ(program.steps.size(), 1u);
  EXPECT_EQ(program.steps[0].args.size(), 2u);
  EXPECT_EQ(program.steps[0].result_term, ToTerm(""));
}

TEST(BuildProgramTest, FinalStepUsesExactOutputOrder) {
  auto program =
      BuildProgram("ik,kj->ji", {{2, 3}, {3, 4}}, PathAlgorithm::kAuto)
          .value();
  EXPECT_EQ(program.steps.back().result_term, ToTerm("ji"));
}

TEST(BuildProgramTest, TermOfSlotResolvesInputsAndSteps) {
  auto program =
      BuildProgram("ik,jk,j->i", {{2, 3}, {4, 3}, {4}}, PathAlgorithm::kAuto)
          .value();
  EXPECT_EQ(program.TermOfSlot(0), ToTerm("ik"));
  EXPECT_EQ(program.TermOfSlot(1), ToTerm("jk"));
  EXPECT_EQ(program.TermOfSlot(2), ToTerm("j"));
  EXPECT_EQ(program.TermOfSlot(program.steps[0].result_slot),
            program.steps[0].result_term);
}

TEST(BuildProgramTest, ExtentsPropagated) {
  auto program =
      BuildProgram("ik,kj->ij", {{2, 3}, {3, 5}}, PathAlgorithm::kAuto)
          .value();
  EXPECT_EQ(program.extents.at('i'), 2);
  EXPECT_EQ(program.extents.at('k'), 3);
  EXPECT_EQ(program.extents.at('j'), 5);
}

TEST(BuildProgramTest, EstimatedFlopsPositive) {
  auto program =
      BuildProgram("ik,kj->ij", {{8, 8}, {8, 8}}, PathAlgorithm::kAuto)
          .value();
  EXPECT_DOUBLE_EQ(program.est_flops, 512.0);
}

TEST(BuildProgramTest, ShapeMismatchRejected) {
  EXPECT_FALSE(BuildProgram("ik,kj->ij", {{2, 3}, {4, 5}},
                            PathAlgorithm::kAuto)
                   .ok());
}

TEST(BuildProgramTest, BadFormatRejected) {
  EXPECT_FALSE(BuildProgram("ij->>i", {{2, 2}}, PathAlgorithm::kAuto).ok());
}

TEST(BuildProgramTest, TensorNetworkFromTable1) {
  // "ij,iml,lo,jk,kmn,no->" — the 2x3 tensor network example.
  Shape d2 = {2, 2};
  auto program = BuildProgram("ij,iml,lo,jk,kmn,no->",
                              {d2, {2, 2, 2}, d2, d2, {2, 2, 2}, d2},
                              PathAlgorithm::kOptimal)
                     .value();
  EXPECT_EQ(program.steps.size(), 5u);
  EXPECT_EQ(program.steps.back().result_term, ToTerm(""));
}

TEST(BuildProgramTest, SlotNumberingIsSequential) {
  auto program =
      BuildProgram("ab,bc,cd->ad", {{2, 2}, {2, 2}, {2, 2}},
                   PathAlgorithm::kNaive)
          .value();
  ASSERT_EQ(program.steps.size(), 2u);
  EXPECT_EQ(program.steps[0].result_slot, 3);
  EXPECT_EQ(program.steps[1].result_slot, 4);
}

}  // namespace
}  // namespace einsql
