#include "tensor/contract.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace einsql {
namespace {

DenseTensor RandomTensor(const Shape& shape, uint64_t seed) {
  auto t = DenseTensor::Zeros(shape).value();
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) t[i] = rng.UniformDouble(-1.0, 1.0);
  return t;
}

TEST(TransposeTest, MatrixTranspose) {
  auto t = DenseTensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}).value();
  auto tt = Transpose(t, {1, 0}).value();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_DOUBLE_EQ(tt.At({0, 1}).value(), 4.0);
  EXPECT_DOUBLE_EQ(tt.At({2, 0}).value(), 3.0);
}

TEST(TransposeTest, IdentityPermutation) {
  auto t = RandomTensor({2, 3, 4}, 1);
  auto tt = Transpose(t, {0, 1, 2}).value();
  EXPECT_TRUE(AllClose(t, tt));
}

TEST(TransposeTest, ThreeDimCycle) {
  auto t = RandomTensor({2, 3, 4}, 2);
  auto tt = Transpose(t, {2, 0, 1}).value();
  EXPECT_EQ(tt.shape(), (Shape{4, 2, 3}));
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      for (int64_t k = 0; k < 4; ++k) {
        EXPECT_DOUBLE_EQ(tt.At({k, i, j}).value(), t.At({i, j, k}).value());
      }
    }
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  auto t = RandomTensor({3, 4, 5}, 3);
  auto tt = Transpose(Transpose(t, {1, 2, 0}).value(), {2, 0, 1}).value();
  EXPECT_TRUE(AllClose(t, tt));
}

TEST(TransposeTest, RejectsBadPermutation) {
  auto t = RandomTensor({2, 2}, 4);
  EXPECT_FALSE(Transpose(t, {0}).ok());
  EXPECT_FALSE(Transpose(t, {0, 0}).ok());
  EXPECT_FALSE(Transpose(t, {0, 2}).ok());
}

TEST(ReduceLabelsTest, MatrixDiagonal) {
  auto t = DenseTensor::FromData({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9}).value();
  auto diag = ReduceLabels(t, {0, 0}, {0}).value();  // "ii->i"
  EXPECT_EQ(diag.shape(), (Shape{3}));
  EXPECT_DOUBLE_EQ(diag.At({0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(diag.At({1}).value(), 5.0);
  EXPECT_DOUBLE_EQ(diag.At({2}).value(), 9.0);
}

TEST(ReduceLabelsTest, Trace) {
  auto t = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto trace = ReduceLabels(t, {0, 0}, {}).value();  // "ii->"
  EXPECT_DOUBLE_EQ(trace.At({}).value(), 5.0);
}

TEST(ReduceLabelsTest, AxisSum) {
  auto t = DenseTensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}).value();
  auto rows = ReduceLabels(t, {0, 1}, {0}).value();  // "ij->i"
  EXPECT_DOUBLE_EQ(rows.At({0}).value(), 6.0);
  EXPECT_DOUBLE_EQ(rows.At({1}).value(), 15.0);
  auto cols = ReduceLabels(t, {0, 1}, {1}).value();  // "ij->j"
  EXPECT_DOUBLE_EQ(cols.At({0}).value(), 5.0);
}

TEST(ReduceLabelsTest, PermutesOutput) {
  auto t = RandomTensor({2, 3}, 5);
  auto tt = ReduceLabels(t, {0, 1}, {1, 0}).value();  // "ij->ji"
  EXPECT_TRUE(AllClose(tt, Transpose(t, {1, 0}).value()));
}

TEST(ReduceLabelsTest, RejectsUnknownOutputLabel) {
  auto t = RandomTensor({2}, 6);
  EXPECT_FALSE(ReduceLabels(t, {0}, {1}).ok());
}

TEST(ReduceLabelsTest, RejectsDuplicateOutput) {
  auto t = RandomTensor({2, 2}, 7);
  EXPECT_FALSE(ReduceLabels(t, {0, 1}, {0, 0}).ok());
}

TEST(ReduceLabelsTest, RejectsMismatchedDiagonalExtents) {
  auto t = RandomTensor({2, 3}, 8);
  EXPECT_FALSE(ReduceLabels(t, {0, 0}, {0}).ok());
}

TEST(ContractPairTest, MatrixMatrixMultiply) {
  auto a = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto b = DenseTensor::FromData({2, 2}, {5, 6, 7, 8}).value();
  // "ij,jk->ik"
  auto c = ContractPair(a, {'i', 'j'}, b, {'j', 'k'}, {'i', 'k'}).value();
  EXPECT_DOUBLE_EQ(c.At({0, 0}).value(), 19.0);
  EXPECT_DOUBLE_EQ(c.At({0, 1}).value(), 22.0);
  EXPECT_DOUBLE_EQ(c.At({1, 0}).value(), 43.0);
  EXPECT_DOUBLE_EQ(c.At({1, 1}).value(), 50.0);
}

TEST(ContractPairTest, MatrixVector) {
  auto a = DenseTensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}).value();
  auto v = DenseTensor::FromData({3}, {1, 0, -1}).value();
  auto r = ContractPair(a, {0, 1}, v, {1}, {0}).value();  // "ij,j->i"
  EXPECT_DOUBLE_EQ(r.At({0}).value(), -2.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), -2.0);
}

TEST(ContractPairTest, InnerProduct) {
  auto u = DenseTensor::FromData({3}, {1, 2, 3}).value();
  auto v = DenseTensor::FromData({3}, {4, 5, 6}).value();
  auto r = ContractPair(u, {0}, v, {0}, {}).value();  // "i,i->"
  EXPECT_DOUBLE_EQ(r.At({}).value(), 32.0);
}

TEST(ContractPairTest, OuterProduct) {
  auto u = DenseTensor::FromData({2}, {1, 2}).value();
  auto v = DenseTensor::FromData({3}, {3, 4, 5}).value();
  auto r = ContractPair(u, {0}, v, {1}, {0, 1}).value();  // "i,j->ij"
  EXPECT_EQ(r.shape(), (Shape{2, 3}));
  EXPECT_DOUBLE_EQ(r.At({1, 2}).value(), 10.0);
}

TEST(ContractPairTest, ElementwiseProductAsBatch) {
  auto u = DenseTensor::FromData({3}, {1, 2, 3}).value();
  auto v = DenseTensor::FromData({3}, {4, 5, 6}).value();
  auto r = ContractPair(u, {0}, v, {0}, {0}).value();  // "i,i->i"
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 4.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 10.0);
  EXPECT_DOUBLE_EQ(r.At({2}).value(), 18.0);
}

TEST(ContractPairTest, BatchMatmul) {
  // "bik,bkj->bij" with b=2, i=k=j=2.
  auto a = RandomTensor({2, 2, 2}, 9);
  auto b = RandomTensor({2, 2, 2}, 10);
  auto c = ContractPair(a, {'b', 'i', 'k'}, b, {'b', 'k', 'j'},
                        {'b', 'i', 'j'})
               .value();
  for (int64_t bt = 0; bt < 2; ++bt) {
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t j = 0; j < 2; ++j) {
        double expected = 0.0;
        for (int64_t k = 0; k < 2; ++k) {
          expected += a.At({bt, i, k}).value() * b.At({bt, k, j}).value();
        }
        EXPECT_NEAR(c.At({bt, i, j}).value(), expected, 1e-12);
      }
    }
  }
}

TEST(ContractPairTest, SingleSidedSumIsPreReduced) {
  // "ij,k->i": j summed inside a, k summed inside b.
  auto a = DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).value();
  auto b = DenseTensor::FromData({3}, {1, 1, 1}).value();
  auto r = ContractPair(a, {'i', 'j'}, b, {'k'}, {'i'}).value();
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 9.0);   // (1+2) * 3
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 21.0);  // (3+4) * 3
}

TEST(ContractPairTest, OutputPermutation) {
  auto a = RandomTensor({2, 3}, 11);
  auto b = RandomTensor({3, 4}, 12);
  auto c1 = ContractPair(a, {'i', 'j'}, b, {'j', 'k'}, {'i', 'k'}).value();
  auto c2 = ContractPair(a, {'i', 'j'}, b, {'j', 'k'}, {'k', 'i'}).value();
  EXPECT_TRUE(AllClose(c2, Transpose(c1, {1, 0}).value()));
}

TEST(ContractPairTest, ScalarOperand) {
  auto s = DenseTensor::FromData({}, {3.0}).value();
  auto v = DenseTensor::FromData({2}, {1.0, 2.0}).value();
  auto r = ContractPair(s, {}, v, {0}, {0}).value();  // ",i->i"
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 3.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 6.0);
}

TEST(ContractPairTest, RejectsDuplicateLabelsWithinInput) {
  auto a = RandomTensor({2, 2}, 13);
  auto v = RandomTensor({2}, 14);
  EXPECT_FALSE(ContractPair(a, {0, 0}, v, {0}, {0}).ok());
}

TEST(ContractPairTest, RejectsExtentMismatch) {
  auto a = RandomTensor({2, 3}, 15);
  auto b = RandomTensor({4, 2}, 16);
  EXPECT_FALSE(ContractPair(a, {'i', 'j'}, b, {'j', 'k'}, {'i', 'k'}).ok());
}

TEST(ContractPairTest, RejectsUnknownOutputLabel) {
  auto a = RandomTensor({2}, 17);
  auto b = RandomTensor({2}, 18);
  EXPECT_FALSE(ContractPair(a, {'i'}, b, {'i'}, {'z'}).ok());
}

TEST(ContractPairComplexTest, ComplexInnerProduct) {
  using C = std::complex<double>;
  auto u = ComplexDenseTensor::FromData({2}, {C{1, 1}, C{0, 2}}).value();
  auto v = ComplexDenseTensor::FromData({2}, {C{2, 0}, C{0, -1}}).value();
  auto r = ContractPair(u, {0}, v, {0}, {}).value();
  // (1+i)*2 + (2i)*(-i) = 2+2i + 2 = 4+2i
  EXPECT_DOUBLE_EQ(r.At({}).value().real(), 4.0);
  EXPECT_DOUBLE_EQ(r.At({}).value().imag(), 2.0);
}

}  // namespace
}  // namespace einsql
