// Tests for the cache-blocked GEMM kernel (tensor/gemm.h): blocked vs
// naive agreement across shapes (including edge-tile geometries), the
// ascending-k accumulation contract, complex support, and SIMD-on vs
// SIMD-off bit identity.

#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/simd.h"

namespace einsql {
namespace {

// Deterministic LCG so every shape gets reproducible operands.
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

double RandValue(uint64_t* state) {
  return static_cast<double>(NextRand(state) % 2000) / 1000.0 - 1.0;
}

std::vector<double> RandMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  std::vector<double> m(rows * cols);
  uint64_t state = seed;
  for (double& v : m) v = RandValue(&state);
  return m;
}

// Blocked and naive kernels agree to within float tolerance on random
// dense operands (exact equality is not promised against *naive*, whose
// zero-skip may reorder nothing here but whose result is still the
// ascending-k sum — with no zeros in A the two are bit-identical).
TEST(Gemm, MatchesNaiveOnRandomDense) {
  for (const auto& [m, k, n] :
       std::vector<std::array<int64_t, 3>>{{1, 1, 1},
                                           {3, 5, 7},
                                           {4, 4, 4},
                                           {5, 300, 6},
                                           {17, 33, 9},
                                           {64, 64, 64},
                                           {65, 257, 66}}) {
    const std::vector<double> a = RandMatrix(m, k, 1000 + m);
    const std::vector<double> b = RandMatrix(k, n, 2000 + n);
    std::vector<double> c_naive(m * n, 0.0);
    std::vector<double> c_blocked(m * n, 0.0);
    GemmNaive(a.data(), b.data(), c_naive.data(), m, k, n);
    Gemm(a.data(), b.data(), c_blocked.data(), m, k, n);
    for (int64_t i = 0; i < m * n; ++i) {
      // No zeros in A (RandValue never returns exactly 0 from these
      // seeds... but don't rely on it): allow 0 ulp when equal, tiny
      // tolerance otherwise.
      EXPECT_DOUBLE_EQ(c_naive[i], c_blocked[i])
          << "m=" << m << " k=" << k << " n=" << n << " at " << i;
    }
  }
}

// The production kernel is bit-identical to a zero-skip-free naive loop
// even when A contains exact zeros (the reference GemmNaive skips them).
TEST(Gemm, AscendingKAccumulationWithZeros) {
  const int64_t m = 9, k = 70, n = 11;
  std::vector<double> a = RandMatrix(m, k, 7);
  uint64_t state = 99;
  for (double& v : a) {
    if (NextRand(&state) % 3 == 0) v = 0.0;
  }
  const std::vector<double> b = RandMatrix(k, n, 8);
  std::vector<double> c_ref(m * n, 0.0);
  // Zero-skip-free reference: plain ascending-k accumulation.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      c_ref[i * n + j] = acc;
    }
  }
  std::vector<double> c(m * n, 0.0);
  Gemm(a.data(), b.data(), c.data(), m, k, n);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c_ref[i], c[i]) << "element " << i;
  }
}

// SIMD on vs off: byte-identical results (same multiplies, same adds,
// same order — the scalar twin of the micro-kernel).
TEST(Gemm, SimdOffBitIdentical) {
  const int64_t m = 37, k = 300, n = 29;
  const std::vector<double> a = RandMatrix(m, k, 11);
  const std::vector<double> b = RandMatrix(k, n, 12);
  std::vector<double> c_simd(m * n, 0.0);
  std::vector<double> c_scalar(m * n, 0.0);
  {
    simd::ScopedEnable simd_on(true);
    Gemm(a.data(), b.data(), c_simd.data(), m, k, n);
  }
  {
    simd::ScopedEnable simd_off(false);
    Gemm(a.data(), b.data(), c_scalar.data(), m, k, n);
  }
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c_simd[i], c_scalar[i]) << "element " << i;
  }
}

// Complex values go through the generic scalar tile path.
TEST(Gemm, ComplexMatchesNaive) {
  using C = std::complex<double>;
  const int64_t m = 6, k = 19, n = 5;
  std::vector<C> a(m * k), b(k * n);
  uint64_t state = 21;
  for (C& v : a) v = C(RandValue(&state), RandValue(&state));
  for (C& v : b) v = C(RandValue(&state), RandValue(&state));
  std::vector<C> c_naive(m * n, C(0)), c_blocked(m * n, C(0));
  GemmNaive(a.data(), b.data(), c_naive.data(), m, k, n);
  Gemm(a.data(), b.data(), c_blocked.data(), m, k, n);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(std::abs(c_naive[i] - c_blocked[i]), 0.0, 1e-12)
        << "element " << i;
  }
}

// C may hold a running sum: Gemm extends it rather than overwriting.
TEST(Gemm, AccumulatesIntoExistingC) {
  const int64_t m = 8, k = 12, n = 8;
  const std::vector<double> a = RandMatrix(m, k, 31);
  const std::vector<double> b = RandMatrix(k, n, 32);
  std::vector<double> base = RandMatrix(m, n, 33);
  std::vector<double> c = base;
  Gemm(a.data(), b.data(), c.data(), m, k, n);
  std::vector<double> product(m * n, 0.0);
  Gemm(a.data(), b.data(), product.data(), m, k, n);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      // Micro-kernel loads the existing C, so base + product terms use
      // the same accumulator chain: base is the k=0 starting value.
      EXPECT_DOUBLE_EQ(c[r * n + j],
                       [&] {
                         double acc = base[r * n + j];
                         for (int64_t kk = 0; kk < k; ++kk) {
                           acc += a[r * k + kk] * b[kk * n + j];
                         }
                         return acc;
                       }())
          << "element " << r << "," << j;
    }
  }
}

}  // namespace
}  // namespace einsql
