#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(NumElementsTest, ScalarIsOne) {
  EXPECT_EQ(NumElements({}).value(), 1);
}

TEST(NumElementsTest, ProductOfExtents) {
  EXPECT_EQ(NumElements({2, 3, 4}).value(), 24);
  EXPECT_EQ(NumElements({7}).value(), 7);
}

TEST(NumElementsTest, DegenerateAxisYieldsEmptyTensor) {
  EXPECT_EQ(NumElements({2, 0}).value(), 0);
  EXPECT_EQ(NumElements({0}).value(), 0);
  EXPECT_EQ(NumElements({0, 0, 3}).value(), 0);
}

TEST(NumElementsTest, RejectsNegativeExtent) {
  EXPECT_FALSE(NumElements({-1}).ok());
  EXPECT_FALSE(NumElements({2, -3}).ok());
  // A degenerate axis must not mask a negative one later in the shape.
  EXPECT_FALSE(NumElements({0, -1}).ok());
}

TEST(NumElementsTest, DetectsOverflow) {
  EXPECT_FALSE(NumElements({1'000'000'000, 1'000'000'000, 1'000'000'000}).ok());
}

TEST(RowMajorStridesTest, Basic) {
  EXPECT_EQ(RowMajorStrides({2, 3, 4}), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(RowMajorStrides({5}), (std::vector<int64_t>{1}));
  EXPECT_TRUE(RowMajorStrides({}).empty());
}

TEST(ShapeToStringTest, Renders) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(CoordsInBoundsTest, ChecksRankAndRange) {
  EXPECT_TRUE(CoordsInBounds({2, 3}, {1, 2}));
  EXPECT_TRUE(CoordsInBounds({}, {}));
  EXPECT_FALSE(CoordsInBounds({2, 3}, {1}));       // wrong rank
  EXPECT_FALSE(CoordsInBounds({2, 3}, {2, 0}));    // out of range
  EXPECT_FALSE(CoordsInBounds({2, 3}, {0, -1}));   // negative
}

}  // namespace
}  // namespace einsql
