#include "tensor/coo.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(CooTest, EmptyTensor) {
  CooTensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_DOUBLE_EQ(t.At({1, 2}).value(), 0.0);
}

TEST(CooTest, AppendAndLookup) {
  CooTensor t({2, 2});
  ASSERT_TRUE(t.Append({0, 1}, 3.5).ok());
  ASSERT_TRUE(t.Append({1, 0}, -1.0).ok());
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_DOUBLE_EQ(t.At({0, 1}).value(), 3.5);
  EXPECT_DOUBLE_EQ(t.At({1, 0}).value(), -1.0);
  EXPECT_DOUBLE_EQ(t.At({0, 0}).value(), 0.0);
}

TEST(CooTest, AppendRejectsOutOfBounds) {
  CooTensor t({2, 2});
  EXPECT_FALSE(t.Append({2, 0}, 1.0).ok());
  EXPECT_FALSE(t.Append({0}, 1.0).ok());
  EXPECT_FALSE(t.Append({0, 0, 0}, 1.0).ok());
}

TEST(CooTest, AtRejectsBadCoords) {
  CooTensor t({2});
  EXPECT_FALSE(t.At({5}).ok());
  EXPECT_FALSE(t.At({0, 0}).ok());
}

TEST(CooTest, ScalarTensor) {
  CooTensor t((Shape{}));
  EXPECT_EQ(t.rank(), 0);
  ASSERT_TRUE(t.Append({}, 2.5).ok());
  EXPECT_DOUBLE_EQ(t.At({}).value(), 2.5);
}

TEST(CooTest, CoalesceSortsAndMerges) {
  CooTensor t({3, 3});
  ASSERT_TRUE(t.Append({2, 1}, 1.0).ok());
  ASSERT_TRUE(t.Append({0, 0}, 2.0).ok());
  ASSERT_TRUE(t.Append({2, 1}, 3.0).ok());
  t.Coalesce();
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_EQ(t.CoordsAt(0), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(t.CoordsAt(1), (std::vector<int64_t>{2, 1}));
  EXPECT_DOUBLE_EQ(t.ValueAt(1), 4.0);
}

TEST(CooTest, CoalesceDropsZeros) {
  CooTensor t({2});
  ASSERT_TRUE(t.Append({0}, 1.0).ok());
  ASSERT_TRUE(t.Append({0}, -1.0).ok());
  ASSERT_TRUE(t.Append({1}, 5.0).ok());
  t.Coalesce();
  EXPECT_EQ(t.nnz(), 1);
  EXPECT_DOUBLE_EQ(t.At({1}).value(), 5.0);
}

TEST(CooTest, CoalesceEpsilonThreshold) {
  CooTensor t({2});
  ASSERT_TRUE(t.Append({0}, 1e-12).ok());
  ASSERT_TRUE(t.Append({1}, 1.0).ok());
  t.Coalesce(1e-9);
  EXPECT_EQ(t.nnz(), 1);
}

TEST(CooTest, DuplicatesAccumulateInAt) {
  CooTensor t({2});
  ASSERT_TRUE(t.Append({0}, 1.0).ok());
  ASSERT_TRUE(t.Append({0}, 2.0).ok());
  EXPECT_DOUBLE_EQ(t.At({0}).value(), 3.0);
}

TEST(CooTest, Density) {
  CooTensor t({2, 5});
  ASSERT_TRUE(t.Append({0, 0}, 1.0).ok());
  ASSERT_TRUE(t.Append({1, 4}, 1.0).ok());
  EXPECT_DOUBLE_EQ(t.Density().value(), 0.2);
}

TEST(CooTest, ComplexValues) {
  ComplexCooTensor t({2});
  ASSERT_TRUE(t.Append({0}, {1.0, -2.0}).ok());
  auto v = t.At({0}).value();
  EXPECT_DOUBLE_EQ(v.real(), 1.0);
  EXPECT_DOUBLE_EQ(v.imag(), -2.0);
}

TEST(CooTest, ComplexCoalesceMagnitude) {
  ComplexCooTensor t({2});
  ASSERT_TRUE(t.Append({0}, {1.0, 0.0}).ok());
  ASSERT_TRUE(t.Append({0}, {-1.0, 0.0}).ok());
  ASSERT_TRUE(t.Append({1}, {0.0, 1.0}).ok());
  t.Coalesce();
  EXPECT_EQ(t.nnz(), 1);
}

TEST(AllCloseCooTest, EqualTensors) {
  CooTensor a({2, 2}), b({2, 2});
  ASSERT_TRUE(a.Append({0, 1}, 2.0).ok());
  ASSERT_TRUE(b.Append({0, 1}, 2.0).ok());
  EXPECT_TRUE(AllClose(a, b));
}

TEST(AllCloseCooTest, DifferentEntryOrderStillEqual) {
  CooTensor a({2, 2}), b({2, 2});
  ASSERT_TRUE(a.Append({0, 1}, 2.0).ok());
  ASSERT_TRUE(a.Append({1, 0}, 3.0).ok());
  ASSERT_TRUE(b.Append({1, 0}, 3.0).ok());
  ASSERT_TRUE(b.Append({0, 1}, 2.0).ok());
  EXPECT_TRUE(AllClose(a, b));
}

TEST(AllCloseCooTest, ExplicitZeroEqualsAbsent) {
  CooTensor a({2}), b({2});
  ASSERT_TRUE(a.Append({0}, 0.0).ok());
  EXPECT_TRUE(AllClose(a, b));
}

TEST(AllCloseCooTest, DetectsValueDifference) {
  CooTensor a({2}), b({2});
  ASSERT_TRUE(a.Append({0}, 1.0).ok());
  ASSERT_TRUE(b.Append({0}, 1.5).ok());
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_TRUE(AllClose(a, b, 0.6));
}

TEST(AllCloseCooTest, DetectsShapeMismatch) {
  CooTensor a({2}), b({3});
  EXPECT_FALSE(AllClose(a, b));
}

TEST(AllCloseCooTest, DetectsExtraEntry) {
  CooTensor a({3}), b({3});
  ASSERT_TRUE(a.Append({0}, 1.0).ok());
  ASSERT_TRUE(b.Append({0}, 1.0).ok());
  ASSERT_TRUE(b.Append({2}, 4.0).ok());
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(b, a));
}

}  // namespace
}  // namespace einsql
