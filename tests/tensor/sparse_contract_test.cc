#include "tensor/sparse_contract.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace einsql {
namespace {

CooTensor RandomSparse(const Shape& shape, double density, uint64_t seed) {
  CooTensor t(shape);
  Rng rng(seed);
  std::vector<int64_t> coords(shape.size());
  const auto strides = RowMajorStrides(shape);
  const int64_t total = NumElements(shape).value();
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng.Bernoulli(density)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    (void)t.Append(coords, rng.UniformDouble(-1.0, 1.0));
  }
  return t;
}

// Every sparse kernel must agree with its dense counterpart.
void ExpectMatchesDenseReduce(const CooTensor& t, const Labels& labels,
                              const Labels& out_labels) {
  auto sparse = SparseReduceLabels(t, labels, out_labels).value();
  auto dense_in = DenseTensor::FromCoo(t).value();
  auto dense = ReduceLabels(dense_in, labels, out_labels).value();
  EXPECT_TRUE(AllClose(sparse, dense.ToCoo(), 1e-9));
}

void ExpectMatchesDensePair(const CooTensor& a, const Labels& a_labels,
                            const CooTensor& b, const Labels& b_labels,
                            const Labels& out_labels) {
  auto sparse =
      SparseContractPair(a, a_labels, b, b_labels, out_labels).value();
  auto da = DenseTensor::FromCoo(a).value();
  auto db = DenseTensor::FromCoo(b).value();
  auto dense = ContractPair(da, a_labels, db, b_labels, out_labels).value();
  EXPECT_TRUE(AllClose(sparse, dense.ToCoo(), 1e-9));
}

TEST(SparseReduceTest, Diagonal) {
  CooTensor t({3, 3});
  ASSERT_TRUE(t.Append({0, 0}, 1.0).ok());
  ASSERT_TRUE(t.Append({1, 2}, 5.0).ok());  // off-diagonal, dropped
  ASSERT_TRUE(t.Append({2, 2}, 3.0).ok());
  auto diag = SparseReduceLabels(t, {0, 0}, {0}).value();
  EXPECT_EQ(diag.nnz(), 2);
  EXPECT_DOUBLE_EQ(diag.At({0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(diag.At({2}).value(), 3.0);
}

TEST(SparseReduceTest, AxisSumMatchesDense) {
  ExpectMatchesDenseReduce(RandomSparse({4, 5}, 0.4, 1), {0, 1}, {0});
  ExpectMatchesDenseReduce(RandomSparse({4, 5}, 0.4, 2), {0, 1}, {1});
  ExpectMatchesDenseReduce(RandomSparse({4, 5}, 0.4, 3), {0, 1}, {1, 0});
  ExpectMatchesDenseReduce(RandomSparse({3, 3}, 0.8, 4), {0, 0}, {});
}

TEST(SparseReduceTest, RejectsBadArguments) {
  CooTensor t({2, 2});
  EXPECT_FALSE(SparseReduceLabels(t, {0}, {0}).ok());       // rank mismatch
  EXPECT_FALSE(SparseReduceLabels(t, {0, 1}, {0, 0}).ok()); // dup output
  EXPECT_FALSE(SparseReduceLabels(t, {0, 1}, {7}).ok());    // unknown label
}

TEST(SparseContractTest, MatrixMultiply) {
  CooTensor a({2, 2}), b({2, 2});
  ASSERT_TRUE(a.Append({0, 0}, 2.0).ok());
  ASSERT_TRUE(a.Append({1, 1}, 3.0).ok());
  ASSERT_TRUE(b.Append({0, 1}, 4.0).ok());
  ASSERT_TRUE(b.Append({1, 0}, 5.0).ok());
  auto c = SparseContractPair(a, {'i', 'k'}, b, {'k', 'j'}, {'i', 'j'})
               .value();
  EXPECT_DOUBLE_EQ(c.At({0, 1}).value(), 8.0);
  EXPECT_DOUBLE_EQ(c.At({1, 0}).value(), 15.0);
  EXPECT_EQ(c.nnz(), 2);
}

TEST(SparseContractTest, RandomAgreementWithDenseKernels) {
  // A grid of pairwise contractions at several sparsity levels.
  struct PairCase {
    Shape a, b;
    Labels la, lb, lo;
  };
  const std::vector<PairCase> cases = {
      {{4, 5}, {5, 3}, {'i', 'k'}, {'k', 'j'}, {'i', 'j'}},      // matmul
      {{4, 5}, {5}, {'i', 'k'}, {'k'}, {'i'}},                    // mat-vec
      {{6}, {6}, {'i'}, {'i'}, {}},                               // inner
      {{6}, {4}, {'i'}, {'j'}, {'i', 'j'}},                       // outer
      {{3, 4}, {3, 4}, {'i', 'j'}, {'i', 'j'}, {'i', 'j'}},       // hadamard
      {{2, 3, 4}, {2, 4, 5}, {'b', 'i', 'k'}, {'b', 'k', 'j'},
       {'b', 'i', 'j'}},                                          // batch
      {{3, 4}, {5}, {'i', 'j'}, {'z'}, {'i'}},  // single-sided sums
  };
  uint64_t seed = 100;
  for (const PairCase& c : cases) {
    for (double density : {0.1, 0.5, 1.0}) {
      const uint64_t seed_a = ++seed;
      const uint64_t seed_b = ++seed;
      ExpectMatchesDensePair(RandomSparse(c.a, density, seed_a), c.la,
                             RandomSparse(c.b, density, seed_b), c.lb, c.lo);
    }
  }
}

TEST(SparseContractTest, HypersparseStaysSparse) {
  // 1e6-element matrices with ~40 entries each: the dense kernel would
  // touch 1e6 cells, the sparse kernel only the stored ones.
  CooTensor a = RandomSparse({1000, 1000}, 0.00004, 42);
  CooTensor b = RandomSparse({1000, 1000}, 0.00004, 43);
  auto c = SparseContractPair(a, {'i', 'k'}, b, {'k', 'j'}, {'i', 'j'})
               .value();
  EXPECT_LE(c.nnz(), a.nnz() * b.nnz());
}

TEST(SparseContractTest, EmptyOperandYieldsEmptyResult) {
  CooTensor a({3, 3});
  CooTensor b = RandomSparse({3, 3}, 0.5, 9);
  auto c = SparseContractPair(a, {'i', 'k'}, b, {'k', 'j'}, {'i', 'j'})
               .value();
  EXPECT_EQ(c.nnz(), 0);
}

TEST(SparseContractTest, RejectsBadArguments) {
  CooTensor a({2, 2}), v({2}), w({3});
  EXPECT_FALSE(SparseContractPair(a, {0, 0}, v, {0}, {0}).ok());  // dup label
  EXPECT_FALSE(
      SparseContractPair(v, {'i'}, w, {'i'}, {}).ok());  // extent clash
  EXPECT_FALSE(
      SparseContractPair(v, {'i'}, v, {'i'}, {'z'}).ok());  // unknown out
}

TEST(SparseContractTest, ComplexValues) {
  using C = std::complex<double>;
  ComplexCooTensor u({2}), v({2});
  ASSERT_TRUE(u.Append({0}, C{1, 1}).ok());
  ASSERT_TRUE(u.Append({1}, C{0, 2}).ok());
  ASSERT_TRUE(v.Append({0}, C{2, 0}).ok());
  ASSERT_TRUE(v.Append({1}, C{0, -1}).ok());
  auto r = SparseContractPair(u, {0}, v, {0}, {}).value();
  EXPECT_DOUBLE_EQ(r.At({}).value().real(), 4.0);  // (1+i)2 + 2i(-i)
  EXPECT_DOUBLE_EQ(r.At({}).value().imag(), 2.0);
}

}  // namespace
}  // namespace einsql
