#include "tensor/dense.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(DenseTest, ZerosInitializes) {
  auto t = DenseTensor::Zeros({2, 3}).value();
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(DenseTest, ZerosRejectsBadShape) {
  EXPECT_FALSE(DenseTensor::Zeros({-2, 3}).ok());
}

TEST(DenseTest, ZerosAllowsDegenerateAxis) {
  auto t = DenseTensor::Zeros({0, 3}).value();
  EXPECT_EQ(t.size(), 0);
}

TEST(DenseTest, FromDataValidatesSize) {
  EXPECT_TRUE(DenseTensor::FromData({2, 2}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(DenseTensor::FromData({2, 2}, {1, 2, 3}).ok());
}

TEST(DenseTest, RowMajorAddressing) {
  auto t = DenseTensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}).value();
  EXPECT_DOUBLE_EQ(t.At({0, 0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(t.At({0, 2}).value(), 3.0);
  EXPECT_DOUBLE_EQ(t.At({1, 0}).value(), 4.0);
  EXPECT_DOUBLE_EQ(t.At({1, 2}).value(), 6.0);
}

TEST(DenseTest, SetAndAtBoundsChecked) {
  auto t = DenseTensor::Zeros({2}).value();
  EXPECT_TRUE(t.Set({1}, 9.0).ok());
  EXPECT_DOUBLE_EQ(t.At({1}).value(), 9.0);
  EXPECT_FALSE(t.Set({2}, 1.0).ok());
  EXPECT_FALSE(t.At({2}).ok());
}

TEST(DenseTest, ScalarTensor) {
  auto t = DenseTensor::Zeros({}).value();
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.Set({}, 5.0).ok());
  EXPECT_DOUBLE_EQ(t.At({}).value(), 5.0);
}

TEST(DenseCooConversionTest, RoundTrip) {
  auto d = DenseTensor::FromData({2, 2}, {1.0, 0.0, 0.0, 2.0}).value();
  CooTensor coo = d.ToCoo();
  EXPECT_EQ(coo.nnz(), 2);
  auto back = DenseTensor::FromCoo(coo).value();
  EXPECT_TRUE(AllClose(d, back));
}

TEST(DenseCooConversionTest, FromCooAccumulatesDuplicates) {
  CooTensor coo({2});
  ASSERT_TRUE(coo.Append({0}, 1.0).ok());
  ASSERT_TRUE(coo.Append({0}, 2.0).ok());
  auto d = DenseTensor::FromCoo(coo).value();
  EXPECT_DOUBLE_EQ(d.At({0}).value(), 3.0);
}

TEST(DenseCooConversionTest, ToCooEpsilon) {
  auto d = DenseTensor::FromData({2}, {1e-12, 1.0}).value();
  EXPECT_EQ(d.ToCoo(1e-9).nnz(), 1);
  EXPECT_EQ(d.ToCoo(0.0).nnz(), 2);
}

TEST(DenseCooConversionTest, ScalarRoundTrip) {
  CooTensor coo((Shape{}));
  ASSERT_TRUE(coo.Append({}, 7.0).ok());
  auto d = DenseTensor::FromCoo(coo).value();
  EXPECT_DOUBLE_EQ(d.At({}).value(), 7.0);
  EXPECT_EQ(d.ToCoo().nnz(), 1);
}

TEST(DenseComplexTest, ComplexRoundTrip) {
  auto d = ComplexDenseTensor::FromData(
               {2}, {{1.0, 2.0}, {0.0, 0.0}})
               .value();
  ComplexCooTensor coo = d.ToCoo();
  EXPECT_EQ(coo.nnz(), 1);
  auto back = ComplexDenseTensor::FromCoo(coo).value();
  EXPECT_TRUE(AllClose(d, back));
}

TEST(AllCloseDenseTest, Tolerance) {
  auto a = DenseTensor::FromData({2}, {1.0, 2.0}).value();
  auto b = DenseTensor::FromData({2}, {1.0, 2.0 + 1e-12}).value();
  auto c = DenseTensor::FromData({2}, {1.0, 3.0}).value();
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
}

TEST(AllCloseDenseTest, ShapeMismatch) {
  auto a = DenseTensor::Zeros({2}).value();
  auto b = DenseTensor::Zeros({2, 1}).value();
  EXPECT_FALSE(AllClose(a, b));
}

}  // namespace
}  // namespace einsql
