#include "testing/almost_equal.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"

namespace einsql::testing {
namespace {

TEST(UlpDistance, AdjacentDoublesAreOneApart) {
  const double a = 1.0;
  const double b = std::nextafter(a, 2.0);
  EXPECT_EQ(UlpDistance(a, a), 0);
  EXPECT_EQ(UlpDistance(a, b), 1);
  EXPECT_EQ(UlpDistance(b, a), 1);
}

TEST(UlpDistance, NanAndSignCrossingsAreFar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(UlpDistance(nan, 1.0), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(UlpDistance(-1.0, 1.0), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0);  // +0 == -0
}

TEST(AlmostEqual, ExactAndAbsolute) {
  EXPECT_TRUE(AlmostEqual(1.5, 1.5));
  EXPECT_TRUE(AlmostEqual(0.0, 5e-10));        // inside abs_tolerance
  EXPECT_FALSE(AlmostEqual(0.0, 1e-3));        // outside all criteria
}

TEST(AlmostEqual, RelativeScalesWithMagnitude) {
  // 1e12 and 1e12*(1+1e-10): absolute difference is huge, relative is tiny.
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(AlmostEqual(1e12, 1.001e12));
}

TEST(AlmostEqual, UlpCriterionCatchesAccumulationNoise) {
  double a = 0.1 + 0.2;  // 0.30000000000000004
  Tolerance strict;
  strict.abs_tolerance = 0;
  strict.rel_tolerance = 0;
  strict.max_ulps = 4;
  EXPECT_TRUE(AlmostEqual(a, 0.3, strict));
  strict.max_ulps = 0;
  EXPECT_FALSE(AlmostEqual(a, 0.3, strict));
}

TEST(AlmostEqual, NanAndInfNeverAgree) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AlmostEqual(nan, nan));
  EXPECT_FALSE(AlmostEqual(inf, 1e308));
  EXPECT_TRUE(AlmostEqual(inf, inf));  // exact equality short-circuit
}

TEST(AlmostEqual, ComplexRequiresBothComponents) {
  const std::complex<double> a(1.0, 2.0);
  EXPECT_TRUE(AlmostEqual(a, std::complex<double>(1.0, 2.0)));
  EXPECT_FALSE(AlmostEqual(a, std::complex<double>(1.0, 2.1)));
  EXPECT_FALSE(AlmostEqual(a, std::complex<double>(1.1, 2.0)));
}

TEST(AllCloseTol, ShapeMismatchExplains) {
  CooTensor a({2, 2}), b({2, 3});
  std::string why;
  EXPECT_FALSE(AllCloseTol(a, b, {}, &why));
  EXPECT_NE(why.find("shape mismatch"), std::string::npos);
}

TEST(AllCloseTol, AbsentCoordinatesCompareAsZero) {
  CooTensor a({2, 2}), b({2, 2});
  ASSERT_TRUE(a.Append({0, 1}, 2.0).ok());
  ASSERT_TRUE(b.Append({0, 1}, 2.0).ok());
  ASSERT_TRUE(b.Append({1, 0}, 0.0).ok());  // explicit zero on one side only
  EXPECT_TRUE(AllCloseTol(a, b));
}

TEST(AllCloseTol, DetectsValueMismatchWithLocation) {
  CooTensor a({3}), b({3});
  ASSERT_TRUE(a.Append({1}, 1.0).ok());
  ASSERT_TRUE(b.Append({1}, 1.5).ok());
  std::string why;
  EXPECT_FALSE(AllCloseTol(a, b, {}, &why));
  EXPECT_NE(why.find("(1)"), std::string::npos);
}

TEST(AllCloseTol, CoalescesDuplicateEntries) {
  CooTensor a({2}), b({2});
  ASSERT_TRUE(a.Append({0}, 1.0).ok());
  ASSERT_TRUE(a.Append({0}, 2.0).ok());  // duplicates sum to 3
  ASSERT_TRUE(b.Append({0}, 3.0).ok());
  EXPECT_TRUE(AllCloseTol(a, b));
}

TEST(AllCloseTol, ComplexTensors) {
  ComplexCooTensor a({2}), b({2});
  ASSERT_TRUE(a.Append({0}, {1.0, -1.0}).ok());
  ASSERT_TRUE(b.Append({0}, {1.0, -1.0}).ok());
  EXPECT_TRUE(AllCloseTol(a, b));
  ASSERT_TRUE(b.Append({1}, {0.0, 0.5}).ok());
  EXPECT_FALSE(AllCloseTol(a, b));
}

}  // namespace
}  // namespace einsql::testing
