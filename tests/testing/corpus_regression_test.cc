// Replays the checked-in seed corpus through the full oracle battery. This
// is the regression net for every bug the fuzzer has minimized (and for the
// hand-picked regimes the random generator must keep covering): any corpus
// entry diverging between oracles fails this test with a named repro.

#include <set>

#include "gtest/gtest.h"
#include "testing/corpus.h"
#include "testing/fuzz.h"
#include "testing/oracles.h"

namespace einsql::testing {
namespace {

std::vector<EinsumInstance> LoadSeedCorpus() {
  auto corpus = LoadCorpus(std::string(EINSQL_CORPUS_DIR) + "/seed_corpus.txt");
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return corpus.ok() ? *corpus : std::vector<EinsumInstance>{};
}

TEST(SeedCorpus, IsLargeAndSpansTheRegimes) {
  const std::vector<EinsumInstance> corpus = LoadSeedCorpus();
  EXPECT_GE(corpus.size(), 50u);
  bool complex_values = false, degenerate = false, unit_extent = false;
  bool sparse = false, dense = false, empty = false, batch = false;
  bool wide_labels = false, repeated = false, scalar_output = false;
  for (const EinsumInstance& instance : corpus) {
    complex_values |= instance.complex_values;
    scalar_output |= instance.spec.output.empty();
    int64_t capacity = 1;
    for (const Shape& shape : instance.shapes()) {
      for (int64_t extent : shape) {
        degenerate |= extent == 0;
        unit_extent |= extent == 1;
      }
      auto n = NumElements(shape);
      capacity += n.ok() ? *n : 0;
    }
    const int64_t nnz = instance.total_nnz();
    empty |= nnz == 0 && instance.num_operands() > 0;
    sparse |= nnz > 0 && nnz * 2 < capacity;
    dense |= instance.num_operands() > 0 && nnz + 1 >= capacity;
    for (const Term& term : instance.spec.inputs) {
      std::set<Label> seen;
      for (Label l : term) {
        wide_labels |= l >= 128;
        repeated |= !seen.insert(l).second;
      }
    }
    // Batch index: a label shared by two inputs that also survives into the
    // output (the "b" of bij,bjk->bik).
    if (instance.num_operands() >= 2) {
      for (Label l : instance.spec.output) {
        int uses = 0;
        for (const Term& term : instance.spec.inputs) {
          uses += term.find(l) != Term::npos;
        }
        batch |= uses >= 2;
      }
    }
  }
  EXPECT_TRUE(complex_values);
  EXPECT_TRUE(degenerate);
  EXPECT_TRUE(unit_extent);
  EXPECT_TRUE(sparse);
  EXPECT_TRUE(dense);
  EXPECT_TRUE(empty);
  EXPECT_TRUE(batch);
  EXPECT_TRUE(wide_labels);
  EXPECT_TRUE(repeated);
  EXPECT_TRUE(scalar_output);
}

TEST(SeedCorpus, AllOraclesAgreeOnEveryEntry) {
  const std::vector<EinsumInstance> corpus = LoadSeedCorpus();
  ASSERT_FALSE(corpus.empty());
  auto owned = MakeDefaultOracles();
  const std::vector<Oracle*> oracles = OraclePointers(owned);
  FuzzOptions options;
  options.shrink = false;  // corpus entries are already minimal
  const FuzzReport report = ReplayInstances(corpus, options, oracles, nullptr);
  EXPECT_EQ(report.iterations_run, static_cast<int>(corpus.size()));
  EXPECT_TRUE(report.ok()) << report.ToJson();
}

}  // namespace
}  // namespace einsql::testing
