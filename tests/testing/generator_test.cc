#include "testing/generator.h"

#include <set>

#include "gtest/gtest.h"

namespace einsql::testing {
namespace {

TEST(GenerateInstance, DeterministicInSeed) {
  GeneratorOptions options;
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 50; ++i) {
    const EinsumInstance ia = GenerateInstance(&a, options);
    const EinsumInstance ib = GenerateInstance(&b, options);
    EXPECT_EQ(ia.Serialize(), ib.Serialize()) << "draw " << i;
  }
  // A different seed diverges somewhere in the first few draws.
  Rng a2(42);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    diverged = GenerateInstance(&a2, options).Serialize() !=
               GenerateInstance(&c, options).Serialize();
  }
  EXPECT_TRUE(diverged);
}

TEST(GenerateInstance, EveryDrawIsValid) {
  GeneratorOptions options;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const EinsumInstance instance = GenerateInstance(&rng, options);
    const Status status = instance.Validate();
    EXPECT_TRUE(status.ok())
        << instance.DebugString() << ": " << status.ToString();
    EXPECT_GE(instance.num_operands(), options.min_operands);
  }
}

TEST(GenerateInstance, CoversTheInterestingRegimes) {
  GeneratorOptions options;
  Rng rng(11);
  bool saw_complex = false, saw_zero_extent = false, saw_one_extent = false;
  bool saw_empty_tensor = false, saw_repeated_label = false;
  bool saw_scalar_output = false;
  for (int i = 0; i < 500; ++i) {
    const EinsumInstance instance = GenerateInstance(&rng, options);
    saw_complex |= instance.complex_values;
    saw_scalar_output |= instance.spec.output.empty();
    for (const Shape& shape : instance.shapes()) {
      for (int64_t extent : shape) {
        saw_zero_extent |= extent == 0;
        saw_one_extent |= extent == 1;
      }
    }
    for (const Term& term : instance.spec.inputs) {
      std::set<Label> seen;
      for (Label l : term) {
        saw_repeated_label |= !seen.insert(l).second;
      }
    }
    if (!instance.complex_values) {
      for (const CooTensor& t : instance.real_tensors) {
        saw_empty_tensor |= t.nnz() == 0;
      }
    }
  }
  EXPECT_TRUE(saw_complex);
  EXPECT_TRUE(saw_zero_extent);
  EXPECT_TRUE(saw_one_extent);
  EXPECT_TRUE(saw_empty_tensor);
  EXPECT_TRUE(saw_repeated_label);
  EXPECT_TRUE(saw_scalar_output);
}

TEST(GenerateInstance, ChainModeGoesFarBeyondTheLetterAlphabet) {
  GeneratorOptions options;
  options.chain_probability = 1.0;  // force chain mode
  options.chain_min_length = 60;
  options.chain_max_length = 80;
  Rng rng(3);
  const EinsumInstance instance = GenerateInstance(&rng, options);
  ASSERT_TRUE(instance.Validate().ok()) << instance.DebugString();
  EXPECT_GE(instance.num_operands(), 60);
  std::set<Label> labels;
  for (const Term& term : instance.spec.inputs) {
    labels.insert(term.begin(), term.end());
  }
  EXPECT_GT(labels.size(), 52u);  // more distinct labels than a-zA-Z offers
  // And it survives the corpus round trip.
  auto parsed = EinsumInstance::Deserialize(instance.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), instance.Serialize());
}

TEST(GenerateInstance, RespectsJointSpaceCap) {
  GeneratorOptions options;
  options.chain_probability = 0.0;
  options.max_joint_space = 256;
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    const EinsumInstance instance = GenerateInstance(&rng, options);
    EXPECT_LE(instance.joint_space(), 256.0) << instance.DebugString();
  }
}

}  // namespace
}  // namespace einsql::testing
