#include "testing/fuzz.h"

#include <sstream>

#include "gtest/gtest.h"
#include "testing/corpus.h"

namespace einsql::testing {
namespace {

// Fast configuration for unit tests: a couple of oracles, one path.
struct SmallBattery {
  SmallBattery() : owned(MakeDefaultOracles("reference,dense,sparse")) {
    pointers = OraclePointers(owned);
  }
  std::vector<std::unique_ptr<Oracle>> owned;
  std::vector<Oracle*> pointers;
};

TEST(RunFuzz, GreenRunReportsCounts) {
  SmallBattery battery;
  FuzzOptions options;
  options.seed = 21;
  options.iterations = 10;
  std::ostringstream log;
  const FuzzReport report = RunFuzz(options, battery.pointers, &log);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations_run, 10);
  EXPECT_GT(report.evaluations, 0);
  EXPECT_GT(report.elapsed_seconds, 0.0);
  EXPECT_NE(log.str().find("10 instances"), std::string::npos);
}

TEST(RunFuzz, DeterministicInSeed) {
  SmallBattery battery;
  FuzzOptions options;
  options.seed = 33;
  options.iterations = 6;
  const FuzzReport a = RunFuzz(options, battery.pointers, nullptr);
  const FuzzReport b = RunFuzz(options, battery.pointers, nullptr);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.skips, b.skips);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(RunFuzz, RefusesToRunUnbounded) {
  SmallBattery battery;
  FuzzOptions options;
  options.iterations = 0;
  options.duration_seconds = 0;
  const FuzzReport report = RunFuzz(options, battery.pointers, nullptr);
  EXPECT_EQ(report.iterations_run, 0);
}

TEST(RunFuzz, DurationBoxStopsTheRun) {
  SmallBattery battery;
  FuzzOptions options;
  options.seed = 2;
  options.iterations = 0;          // unbounded iterations...
  options.duration_seconds = 0.2;  // ...but a tight time box
  const FuzzReport report = RunFuzz(options, battery.pointers, nullptr);
  EXPECT_GT(report.iterations_run, 0);
  EXPECT_GE(report.elapsed_seconds, 0.2);
}

TEST(FuzzReport, JsonShapeOnGreenRun) {
  SmallBattery battery;
  FuzzOptions options;
  options.seed = 5;
  options.iterations = 3;
  const FuzzReport report = RunFuzz(options, battery.pointers, nullptr);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"seed\":5"), std::string::npos);
  EXPECT_NE(json.find("\"iterations_run\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"failures\":[]"), std::string::npos);
}

// Oracle that negates every real result: every instance with a nonzero
// output diverges, exercising the failure/shrink/report path end to end.
class NegatingOracle : public Oracle {
 public:
  std::string name() const override { return "negator"; }
  Result<CooTensor> EvalReal(const ContractionProgram& program,
                             const std::vector<const CooTensor*>& tensors,
                             const EinsumOptions& options) override {
    EINSQL_ASSIGN_OR_RETURN(CooTensor out,
                            inner_.EvalReal(program, tensors, options));
    CooTensor negated(out.shape());
    for (int64_t k = 0; k < out.nnz(); ++k) {
      (void)negated.Append(out.CoordsAt(k), -out.ValueAt(k));
    }
    return negated;
  }
  Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override {
    return inner_.EvalComplex(program, tensors, options);
  }

 private:
  ReferenceOracle inner_;
};

TEST(RunFuzz, CatchesShrinksAndReportsAnInjectedBug) {
  ReferenceOracle reference;
  NegatingOracle negator;
  const std::vector<Oracle*> oracles = {&reference, &negator};
  FuzzOptions options;
  options.seed = 9;
  options.iterations = 40;
  options.stop_on_failure = true;
  options.differential.paths = {PathAlgorithm::kGreedy};
  options.differential.check_flat = false;
  options.differential.metamorphic = false;
  options.generator.complex_probability = 0.0;
  options.generator.chain_probability = 0.0;
  std::ostringstream log;
  const FuzzReport report = RunFuzz(options, oracles, &log);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);  // stop_on_failure
  const FuzzFailure& failure = report.failures.front();
  EXPECT_FALSE(failure.original_report.ok());
  EXPECT_FALSE(failure.shrunk_report.ok());
  EXPECT_LE(failure.shrunk.total_nnz(), failure.original.total_nnz());
  EXPECT_GT(failure.shrink_stats.attempts, 0);
  // The log carries the repro snippet; the JSON names the lying oracle.
  EXPECT_NE(log.str().find("repro:"), std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("negator"), std::string::npos);
  EXPECT_NE(json.find("\"repro_cc\""), std::string::npos);
}

TEST(ReplayInstances, ChecksEveryCorpusEntry) {
  SmallBattery battery;
  // Build a tiny in-memory corpus from the generator.
  Rng rng(17);
  GeneratorOptions gen;
  gen.chain_probability = 0.0;
  std::vector<EinsumInstance> corpus;
  for (int i = 0; i < 5; ++i) corpus.push_back(GenerateInstance(&rng, gen));
  FuzzOptions options;
  const FuzzReport report =
      ReplayInstances(corpus, options, battery.pointers, nullptr);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations_run, 5);
}

}  // namespace
}  // namespace einsql::testing
