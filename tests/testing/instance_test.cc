#include "testing/instance.h"

#include "gtest/gtest.h"
#include "testing/almost_equal.h"
#include "testing/corpus.h"

namespace einsql::testing {
namespace {

EinsumInstance MatmulInstance() {
  EinsumInstance instance;
  instance.spec = ParseSpecString("ij,jk->ik").value();
  CooTensor a({2, 3});
  (void)a.Append({0, 0}, 1.5);
  (void)a.Append({1, 2}, -0.25);
  CooTensor b({3, 2});
  (void)b.Append({0, 1}, 2.0);
  (void)b.Append({2, 0}, 4.0);
  instance.real_tensors.push_back(std::move(a));
  instance.real_tensors.push_back(std::move(b));
  return instance;
}

TEST(ParseSpecString, AsciiLetters) {
  auto spec = ParseSpecString("ij,jk->ik");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->inputs.size(), 2u);
  EXPECT_EQ(spec->inputs[0], Term{U"ij"});
  EXPECT_EQ(spec->output, Term{U"ik"});
}

TEST(ParseSpecString, WideLabels) {
  auto spec = ParseSpecString("#1000#1001,#1001->#1000");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->inputs[0].size(), 2u);
  EXPECT_EQ(spec->inputs[0][0], static_cast<Label>(1000));
  EXPECT_EQ(spec->inputs[0][1], static_cast<Label>(1001));
  EXPECT_EQ(spec->output[0], static_cast<Label>(1000));
}

TEST(ParseSpecString, EmptyOutputAndScalars) {
  auto spec = ParseSpecString("i,i->");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->output.empty());
}

TEST(ParseSpecString, Rejections) {
  EXPECT_FALSE(ParseSpecString("ij,jk").ok());      // no arrow
  EXPECT_FALSE(ParseSpecString("i#->i").ok());      // '#' without digits
  EXPECT_FALSE(ParseSpecString("i!j->i").ok());     // invalid character
  EXPECT_FALSE(ParseSpecString("i->ij").ok());      // output label not in input
}

TEST(Shapes, RoundTrip) {
  const std::vector<Shape> shapes = {{2, 3}, {3, 4}, {}};
  const std::string text = ShapesToString(shapes);
  EXPECT_EQ(text, "[2,3][3,4][]");
  auto parsed = ParseShapesString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, shapes);
}

TEST(EinsumInstance, BasicProperties) {
  EinsumInstance instance = MatmulInstance();
  EXPECT_EQ(instance.num_operands(), 2);
  EXPECT_EQ(instance.total_nnz(), 4);
  EXPECT_DOUBLE_EQ(instance.joint_space(), 2 * 3 * 2);
  EXPECT_TRUE(instance.Validate().ok());
}

TEST(EinsumInstance, ValidateCatchesExtentConflict) {
  EinsumInstance instance = MatmulInstance();
  // Rebuild the second operand with a 'j' extent disagreeing with the first.
  instance.real_tensors[1] = CooTensor({4, 2});
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(EinsumInstance, SerializeRoundTripReal) {
  EinsumInstance instance = MatmulInstance();
  instance.name = "matmul";
  const std::string line = instance.Serialize();
  auto parsed = EinsumInstance::Deserialize(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, "matmul");
  EXPECT_EQ(parsed->Serialize(), line);  // byte-identical round trip
  std::string why;
  EXPECT_TRUE(AllCloseTol(parsed->real_tensors[0], instance.real_tensors[0],
                          {}, &why))
      << why;
}

TEST(EinsumInstance, SerializeRoundTripComplex) {
  EinsumInstance instance;
  instance.spec = ParseSpecString("i,i->").value();
  instance.complex_values = true;
  ComplexCooTensor a({2}), b({2});
  (void)a.Append({0}, {0.5, -1.25});
  (void)a.Append({1}, {0.0, 3.0});  // pure imaginary entry
  (void)b.Append({1}, {2.0, 0.0});
  instance.complex_tensors.push_back(std::move(a));
  instance.complex_tensors.push_back(std::move(b));
  const std::string line = instance.Serialize();
  auto parsed = EinsumInstance::Deserialize(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->complex_values);
  EXPECT_EQ(parsed->Serialize(), line);
}

TEST(EinsumInstance, SerializeRoundTripDegenerateAndWide) {
  // Size-0 dims and wide labels both survive the corpus format.
  EinsumInstance instance;
  instance.spec = ParseSpecString("#77a,a->#77").value();
  instance.real_tensors.emplace_back(Shape{0, 2});
  CooTensor b({2});
  (void)b.Append({0}, 1.0);
  instance.real_tensors.push_back(std::move(b));
  ASSERT_TRUE(instance.Validate().ok());
  auto parsed = EinsumInstance::Deserialize(instance.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->shapes()[0], (Shape{0, 2}));
  EXPECT_EQ(parsed->Serialize(), instance.Serialize());
}

TEST(EinsumInstance, DeserializeRejections) {
  EXPECT_FALSE(EinsumInstance::Deserialize("spec=ij->i").ok());  // no shapes
  EXPECT_FALSE(
      EinsumInstance::Deserialize("spec=i->i|shapes=[2]|dtype=real").ok());
  // ^ one shape, zero tensor fields
  EXPECT_FALSE(EinsumInstance::Deserialize(
                   "spec=i->i|shapes=[2]|dtype=real|t1=(0:1)")
                   .ok());  // tensor index out of order
  EXPECT_FALSE(EinsumInstance::Deserialize(
                   "spec=i->i|shapes=[2]|dtype=quaternion|t0=(0:1)")
                   .ok());  // unknown dtype
}

TEST(EinsumInstance, ToCppSnippetMentionsEverything) {
  EinsumInstance instance = MatmulInstance();
  const std::string snippet = instance.ToCppSnippet();
  EXPECT_NE(snippet.find("ParseSpecString(\"ij,jk->ik\")"), std::string::npos);
  EXPECT_NE(snippet.find("Append({0, 0}, 1.5)"), std::string::npos);
  EXPECT_NE(snippet.find("CheckInstance"), std::string::npos);
  EXPECT_NE(snippet.find(instance.Serialize()), std::string::npos);
}

TEST(Corpus, ParseSkipsCommentsAndNamesBadLine) {
  EinsumInstance instance = MatmulInstance();
  const std::string text =
      "# header comment\n\n" + instance.Serialize() + "\nnot a corpus line\n";
  auto bad = ParseCorpus(text);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 4"), std::string::npos);
  auto good = ParseCorpus("# only\n" + instance.Serialize() + "\n");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 1u);
}

}  // namespace
}  // namespace einsql::testing
