#include "testing/shrink.h"

#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/generator.h"
#include "testing/oracles.h"

namespace einsql::testing {
namespace {

// A deliberately messy failing instance: four operands, complex values,
// wide labels, several entries each.
EinsumInstance MessyInstance() {
  EinsumInstance instance;
  instance.spec = ParseSpecString("#600ab,bc,cd,d->#600d").value();
  instance.complex_values = true;
  const std::vector<Shape> shapes = {{2, 2, 3}, {3, 2}, {2, 3}, {3}};
  for (const Shape& shape : shapes) {
    ComplexCooTensor t(shape);
    std::vector<int64_t> coords(shape.size(), 0);
    // A handful of deterministic entries per tensor.
    for (int k = 0; k < 4; ++k) {
      for (size_t d = 0; d < shape.size(); ++d) {
        coords[d] = (k + static_cast<int>(d)) % shape[d];
      }
      (void)t.Append(coords, {1.0 + k, -0.5 * k});
    }
    instance.complex_tensors.push_back(std::move(t));
  }
  EXPECT_TRUE(instance.Validate().ok());
  return instance;
}

TEST(ShrinkInstance, DropsOperandsTheFailureDoesNotNeed) {
  // "Bug": any instance whose first term contains label 'b' fails. Only one
  // operand is essential; the shrinker should strip the rest.
  const EinsumInstance failing = MessyInstance();
  StillFailsFn still_fails = [](const EinsumInstance& candidate) {
    for (const Term& term : candidate.spec.inputs) {
      if (term.find(static_cast<Label>('b')) != Term::npos) return true;
    }
    return false;
  };
  ShrinkStats stats;
  const EinsumInstance shrunk =
      ShrinkInstance(failing, still_fails, {}, &stats);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_TRUE(shrunk.Validate().ok()) << shrunk.DebugString();
  EXPECT_LE(shrunk.num_operands(), 2);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_GE(stats.attempts, stats.accepted);
}

TEST(ShrinkInstance, ShrinksExtentsEntriesAndValues) {
  // "Bug" depends only on operand count >= 2: everything else should
  // collapse — extents toward 1, entries dropped, values collapsed to 1,
  // complex demoted to real, wide labels renamed to ASCII.
  const EinsumInstance failing = MessyInstance();
  StillFailsFn still_fails = [](const EinsumInstance& candidate) {
    return candidate.num_operands() >= 2;
  };
  const EinsumInstance shrunk = ShrinkInstance(failing, still_fails);
  EXPECT_EQ(shrunk.num_operands(), 2);
  EXPECT_FALSE(shrunk.complex_values);
  EXPECT_LE(shrunk.total_nnz(), 2);
  for (const Shape& shape : shrunk.shapes()) {
    for (int64_t extent : shape) EXPECT_LE(extent, 1);
  }
  for (const Term& term : shrunk.spec.inputs) {
    for (Label l : term) EXPECT_LT(l, 128u);  // ASCII now
  }
}

TEST(ShrinkInstance, ReturnsOriginalWhenNothingSmallerFails) {
  EinsumInstance failing;
  failing.spec = ParseSpecString("a->a").value();
  CooTensor t({1});
  (void)t.Append({0}, 2.0);
  failing.real_tensors.push_back(std::move(t));
  // Failure requires this exact instance; any transformation rescues it.
  const std::string original = failing.Serialize();
  StillFailsFn still_fails = [&](const EinsumInstance& candidate) {
    return candidate.Serialize() == original;
  };
  const EinsumInstance shrunk = ShrinkInstance(failing, still_fails);
  EXPECT_EQ(shrunk.Serialize(), failing.Serialize());
}

TEST(ShrinkInstance, RespectsAttemptBudget) {
  const EinsumInstance failing = MessyInstance();
  StillFailsFn always = [](const EinsumInstance&) { return true; };
  ShrinkOptions options;
  options.max_attempts = 5;
  ShrinkStats stats;
  (void)ShrinkInstance(failing, always, options, &stats);
  EXPECT_LE(stats.attempts, 5);
}

// End-to-end mutation check: a deliberately buggy oracle (it scales every
// result by 1.001) must be caught by the differential runner and shrunk to
// a tiny repro — the workflow a real sqlgen bug would follow.
class ScalingBugOracle : public Oracle {
 public:
  std::string name() const override { return "scaling-bug"; }
  Result<CooTensor> EvalReal(const ContractionProgram& program,
                             const std::vector<const CooTensor*>& tensors,
                             const EinsumOptions& options) override {
    EINSQL_ASSIGN_OR_RETURN(CooTensor out,
                            inner_.EvalReal(program, tensors, options));
    CooTensor scaled(out.shape());
    for (int64_t k = 0; k < out.nnz(); ++k) {
      (void)scaled.Append(out.CoordsAt(k), out.ValueAt(k) * 1.001);
    }
    return scaled;
  }
  Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override {
    return inner_.EvalComplex(program, tensors, options);
  }

 private:
  ReferenceOracle inner_;
};

TEST(ShrinkInstance, MinimizesARealDifferentialFailure) {
  ReferenceOracle reference;
  ScalingBugOracle buggy;
  const std::vector<Oracle*> oracles = {&reference, &buggy};
  DifferentialOptions options;
  options.paths = {PathAlgorithm::kGreedy};
  options.check_flat = false;
  options.metamorphic = false;

  // Find a failing draw (real-valued with a nonzero output somewhere).
  GeneratorOptions gen;
  gen.complex_probability = 0.0;
  gen.chain_probability = 0.0;
  Rng rng(5);
  EinsumInstance failing;
  bool found = false;
  for (int i = 0; i < 50 && !found; ++i) {
    EinsumInstance candidate = GenerateInstance(&rng, gen);
    found = !CheckInstance(candidate, oracles, options).ok();
    if (found) failing = std::move(candidate);
  }
  ASSERT_TRUE(found) << "no draw exercised the injected bug";

  StillFailsFn still_fails = [&](const EinsumInstance& candidate) {
    return !CheckInstance(candidate, oracles, options).ok();
  };
  const EinsumInstance shrunk = ShrinkInstance(failing, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  // The bug only needs one operand with one entry to show.
  EXPECT_LE(shrunk.num_operands(), 3);
  EXPECT_LE(shrunk.total_nnz(), 3);
}

}  // namespace
}  // namespace einsql::testing
