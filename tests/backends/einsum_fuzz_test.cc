// Randomized einsum differential testing: random expressions (random
// operand count, ranks, shared labels, output subsets) must evaluate
// identically on every engine and match the brute-force nested-loop oracle.

#include <gtest/gtest.h>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/rng.h"
#include "core/reference.h"
#include "testing/almost_equal.h"

namespace einsql {
namespace {

using testing::AllCloseTol;

struct RandomExpression {
  EinsumSpec spec;
  std::vector<Shape> shapes;
  std::vector<CooTensor> tensors;

  std::vector<const CooTensor*> operands() const {
    std::vector<const CooTensor*> ptrs;
    for (const CooTensor& t : tensors) ptrs.push_back(&t);
    return ptrs;
  }
};

// Draws a random valid expression: 1-4 tensors of rank 0-3 over a pool of
// 5 labels with extents 2-4; the output is a random duplicate-free subset
// of the used labels. Joint index space stays <= 4^5 so the brute-force
// oracle is instant.
RandomExpression Draw(Rng* rng) {
  RandomExpression e;
  const int kPool = 5;
  Extents extents;
  for (int l = 0; l < kPool; ++l) {
    extents[static_cast<Label>('a' + l)] = rng->UniformInt(2, 4);
  }
  const int tensors = static_cast<int>(rng->UniformInt(1, 4));
  Term used;
  for (int t = 0; t < tensors; ++t) {
    const int rank = static_cast<int>(rng->UniformInt(t == 0 ? 1 : 0, 3));
    Term term;
    for (int d = 0; d < rank; ++d) {
      // Repeated labels within a term are allowed (diagonals).
      term.push_back(static_cast<Label>('a' + rng->UniformInt(0, kPool - 1)));
    }
    for (Label c : term) {
      if (used.find(c) == Term::npos) used.push_back(c);
    }
    e.spec.inputs.push_back(std::move(term));
  }
  // Random duplicate-free subset of `used` as the output.
  for (Label c : used) {
    if (rng->Bernoulli(0.4)) e.spec.output.push_back(c);
  }
  // Shapes and random sparse tensors.
  for (const Term& term : e.spec.inputs) {
    Shape shape;
    for (Label c : term) shape.push_back(extents[c]);
    e.shapes.push_back(shape);
    CooTensor tensor(shape);
    const int64_t total = NumElements(shape).value();
    const auto strides = RowMajorStrides(shape);
    std::vector<int64_t> coords(shape.size());
    for (int64_t flat = 0; flat < total; ++flat) {
      if (!rng->Bernoulli(0.55)) continue;
      int64_t rem = flat;
      for (size_t d = 0; d < shape.size(); ++d) {
        coords[d] = rem / strides[d];
        rem %= strides[d];
      }
      (void)tensor.Append(coords, rng->UniformDouble(-1.5, 1.5));
    }
    e.tensors.push_back(std::move(tensor));
  }
  return e;
}

class EinsumFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EinsumFuzz, AllEnginesMatchOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  MiniDbBackend minidb;
  auto sqlite = SqliteBackend::Open().value();
  SqlEinsumEngine minidb_engine(&minidb);
  SqlEinsumEngine sqlite_engine(sqlite.get());
  DenseEinsumEngine dense;
  SparseEinsumEngine sparse;
  std::vector<EinsumEngine*> engines = {&dense, &sparse, &minidb_engine,
                                        &sqlite_engine};
  for (int trial = 0; trial < 8; ++trial) {
    RandomExpression e = Draw(&rng);
    // Oracle via dense brute force.
    std::vector<DenseTensor> dense_inputs;
    std::vector<const DenseTensor*> dense_ptrs;
    for (const CooTensor& t : e.tensors) {
      dense_inputs.push_back(DenseTensor::FromCoo(t).value());
    }
    for (const DenseTensor& t : dense_inputs) dense_ptrs.push_back(&t);
    auto oracle = ReferenceEinsum(e.spec, dense_ptrs);
    ASSERT_TRUE(oracle.ok()) << e.spec.ToString() << ": " << oracle.status();
    const CooTensor expected = oracle->ToCoo();

    for (EinsumEngine* engine : engines) {
      // Alternate path algorithms and decomposition across trials.
      EinsumOptions options;
      options.path = trial % 2 == 0 ? PathAlgorithm::kAuto
                                    : PathAlgorithm::kElimination;
      options.decompose = trial % 3 != 2;
      auto got = engine->EinsumSpecified(e.spec, e.operands(), options);
      ASSERT_TRUE(got.ok()) << e.spec.ToString() << " on " << engine->name()
                            << ": " << got.status();
      std::string why;
      EXPECT_TRUE(AllCloseTol(*got, expected, {}, &why))
          << e.spec.ToString() << " on " << engine->name() << ": " << why;
    }
  }
}


// A 150-operand matrix chain uses 151 distinct labels — three times the
// textual format alphabet — and generates a SQL query with ~150 CTEs. Every
// engine must handle it; the SQL engines prove the generated query scales.
TEST(LargeLabelSpaceTest, MatrixChainWith151Labels) {
  const int kChain = 150;
  EinsumSpec spec;
  std::vector<CooTensor> tensors;
  Rng rng(4242);
  for (int t = 0; t < kChain; ++t) {
    spec.inputs.push_back(Term{static_cast<Label>(1000 + t),
                               static_cast<Label>(1000 + t + 1)});
    CooTensor m({2, 2});
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t j = 0; j < 2; ++j) {
        (void)m.Append({i, j}, rng.UniformDouble(0.4, 0.6));
      }
    }
    tensors.push_back(std::move(m));
  }
  spec.output = Term{static_cast<Label>(1000),
                     static_cast<Label>(1000 + kChain)};
  std::vector<const CooTensor*> ptrs;
  for (const CooTensor& t : tensors) ptrs.push_back(&t);

  DenseEinsumEngine dense;
  EinsumOptions options;
  options.path = PathAlgorithm::kElimination;
  auto expected = dense.EinsumSpecified(spec, ptrs, options).value();

  auto sqlite = SqliteBackend::Open().value();
  SqlEinsumEngine sqlite_engine(sqlite.get());
  MiniDbBackend minidb;
  SqlEinsumEngine minidb_engine(&minidb);
  SparseEinsumEngine sparse;
  for (EinsumEngine* engine :
       std::initializer_list<EinsumEngine*>{&sqlite_engine, &minidb_engine,
                                            &sparse}) {
    auto got = engine->EinsumSpecified(spec, ptrs, options);
    ASSERT_TRUE(got.ok()) << got.status() << " on " << engine->name();
    std::string why;
    EXPECT_TRUE(AllCloseTol(*got, expected, {}, &why))
        << engine->name() << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EinsumFuzz, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace einsql
