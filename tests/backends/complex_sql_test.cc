// Complex-valued einsum through the SQL pipeline (§4.4): tensors travel as
// (re, im) column pairs, every product is expanded with the hard-coded
// complex multiplication formula, and both SQL engines must agree with the
// complex reference evaluator — including on conjugated and pure-imaginary
// operands, where sign errors in the expansion would show immediately.

#include <gtest/gtest.h>

#include <complex>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "core/reference.h"
#include "core/sqlgen.h"
#include "testing/almost_equal.h"

namespace einsql {
namespace {

using testing::AllCloseTol;

ComplexCooTensor Tensor(const Shape& shape,
                        const std::vector<std::pair<std::vector<int64_t>,
                                                    std::complex<double>>>&
                            entries) {
  ComplexCooTensor t(shape);
  for (const auto& [coords, value] : entries) {
    EXPECT_TRUE(t.Append(coords, value).ok());
  }
  return t;
}

ComplexCooTensor Conjugate(const ComplexCooTensor& t) {
  ComplexCooTensor out(t.shape());
  for (int64_t k = 0; k < t.nnz(); ++k) {
    (void)out.Append(t.CoordsAt(k), std::conj(t.ValueAt(k)));
  }
  return out;
}

struct Backends {
  Backends() : sqlite(SqliteBackend::Open().value()) {}
  MiniDbBackend minidb;
  std::unique_ptr<SqliteBackend> sqlite;

  std::vector<SqlBackend*> all() { return {&minidb, sqlite.get()}; }
};

// --- SQL text shape -------------------------------------------------------

TEST(ComplexSqlText, EmitsRePairsAndTheProductFormula) {
  const auto a = Tensor({2, 2}, {{{0, 0}, {1.0, 2.0}}, {{1, 1}, {0.5, -1.0}}});
  const auto b = Tensor({2}, {{{0}, {3.0, 0.0}}, {{1}, {0.0, 1.0}}});
  auto program = BuildProgram(ParseEinsumFormat("ij,j->i").value(),
                              {{2, 2}, {2}}, PathAlgorithm::kGreedy)
                     .value();
  const std::string sql =
      GenerateComplexEinsumSql(program, {&a, &b}).value();
  // Values CTEs carry (re, im) pairs; the final SELECT exposes both columns.
  EXPECT_NE(sql.find("re, im"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SUM("), std::string::npos) << sql;
  // The (ac - bd) / (ad + bc) expansion appears (§4.4).
  EXPECT_NE(sql.find(".re * "), std::string::npos) << sql;
  EXPECT_NE(sql.find(".im * "), std::string::npos) << sql;
}

TEST(ComplexSqlText, FlatFormRejectedBeyondTwoFactors) {
  const auto a = Tensor({2}, {{{0}, {1.0, 0.0}}});
  auto program = BuildProgram(ParseEinsumFormat("i,i,i->").value(),
                              {{2}, {2}, {2}}, PathAlgorithm::kNaive)
                     .value();
  SqlGenOptions options;
  options.decompose = false;
  EXPECT_FALSE(GenerateComplexEinsumSql(program, {&a, &a, &a}, options).ok());
  // Two factors are fine flat.
  auto two = BuildProgram(ParseEinsumFormat("i,i->").value(), {{2}, {2}},
                          PathAlgorithm::kNaive)
                 .value();
  EXPECT_TRUE(GenerateComplexEinsumSql(two, {&a, &a}, options).ok());
}

// --- engines vs. complex reference ---------------------------------------

struct ComplexCase {
  const char* name;
  const char* format;
  std::vector<ComplexCooTensor> tensors;
};

std::vector<ComplexCase> ComplexCases() {
  std::vector<ComplexCase> cases;
  cases.push_back(
      {"MatVec", "ij,j->i",
       {Tensor({2, 3}, {{{0, 0}, {1.0, 2.0}},
                        {{0, 2}, {-0.5, 0.25}},
                        {{1, 1}, {2.0, -1.0}}}),
        Tensor({3}, {{{0}, {1.0, 1.0}}, {{1}, {0.5, -0.5}},
                     {{2}, {-2.0, 0.0}}})}});
  // Pure-imaginary operands: (ai)(bi) = -ab is real; any sign slip in the
  // re-expansion ac - bd turns the result positive.
  cases.push_back(
      {"PureImaginaryDot", "i,i->",
       {Tensor({2}, {{{0}, {0.0, 2.0}}, {{1}, {0.0, -3.0}}}),
        Tensor({2}, {{{0}, {0.0, 1.0}}, {{1}, {0.0, 4.0}}})}});
  // Conjugate pair: z * conj(z) summed = sum |z|^2, real and positive.
  const auto z = Tensor({3}, {{{0}, {1.0, -2.0}},
                              {{1}, {0.5, 0.5}},
                              {{2}, {0.0, 3.0}}});
  cases.push_back({"ConjugateInner", "i,i->", {z, Conjugate(z)}});
  // Three factors with a diagonal: exercises the decomposed two-at-a-time
  // complex pipeline plus repeated labels.
  cases.push_back(
      {"ThreeFactorDiagonal", "ii,i,ij->j",
       {Tensor({2, 2}, {{{0, 0}, {1.0, 1.0}},
                        {{0, 1}, {5.0, 5.0}},  // off-diagonal must be ignored
                        {{1, 1}, {2.0, -1.0}}}),
        Tensor({2}, {{{0}, {0.0, 1.0}}, {{1}, {1.0, 0.0}}}),
        Tensor({2, 2}, {{{0, 0}, {1.0, 0.0}}, {{1, 0}, {0.0, -2.0}}})}});
  return cases;
}

class ComplexSqlConformance : public ::testing::TestWithParam<int> {};

TEST_P(ComplexSqlConformance, EnginesMatchComplexReference) {
  const ComplexCase c = ComplexCases()[GetParam()];
  std::vector<const ComplexCooTensor*> ptrs;
  for (const auto& t : c.tensors) ptrs.push_back(&t);
  const ComplexCooTensor expected =
      ReferenceEinsumCoo<std::complex<double>>(c.format, ptrs).value();

  Backends backends;
  for (SqlBackend* backend : backends.all()) {
    SqlEinsumEngine engine(backend);
    auto got = engine.ComplexEinsum(c.format, ptrs);
    ASSERT_TRUE(got.ok()) << c.name << " on " << backend->name() << ": "
                          << got.status();
    std::string why;
    EXPECT_TRUE(AllCloseTol(*got, expected, {}, &why))
        << c.name << " on " << backend->name() << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ComplexSqlConformance,
                         ::testing::Range(0, 4), [](const auto& info) {
                           return std::string(
                               ComplexCases()[info.param].name);
                         });

// --- metamorphic: conjugation commutes with einsum ------------------------

TEST(ComplexSqlMetamorphic, ConjugationCommutesWithContraction) {
  // einsum(conj(A), conj(B)) == conj(einsum(A, B)) since the expression is
  // a polynomial with real (structural) coefficients.
  const auto a = Tensor({2, 2}, {{{0, 0}, {1.0, 2.0}},
                                 {{0, 1}, {-1.0, 0.5}},
                                 {{1, 0}, {0.0, -3.0}}});
  const auto b = Tensor({2}, {{{0}, {2.0, 1.0}}, {{1}, {0.0, 1.5}}});
  Backends backends;
  for (SqlBackend* backend : backends.all()) {
    SqlEinsumEngine engine(backend);
    const ComplexCooTensor plain =
        engine.ComplexEinsum("ij,j->i", {&a, &b}).value();
    const auto ca = Conjugate(a);
    const auto cb = Conjugate(b);
    const ComplexCooTensor conjugated =
        engine.ComplexEinsum("ij,j->i", {&ca, &cb}).value();
    std::string why;
    EXPECT_TRUE(AllCloseTol(conjugated, Conjugate(plain), {}, &why))
        << backend->name() << ": " << why;
  }
}

TEST(ComplexSqlMetamorphic, PureImaginaryResultHasZeroRealPart) {
  // (real matrix) x (pure-imaginary vector) stays pure imaginary.
  const auto m = Tensor({2, 2}, {{{0, 0}, {2.0, 0.0}},
                                 {{0, 1}, {-1.0, 0.0}},
                                 {{1, 1}, {3.0, 0.0}}});
  const auto v = Tensor({2}, {{{0}, {0.0, 1.0}}, {{1}, {0.0, -2.0}}});
  Backends backends;
  for (SqlBackend* backend : backends.all()) {
    SqlEinsumEngine engine(backend);
    const ComplexCooTensor out =
        engine.ComplexEinsum("ij,j->i", {&m, &v}).value();
    ASSERT_GT(out.nnz(), 0) << backend->name();
    for (int64_t k = 0; k < out.nnz(); ++k) {
      EXPECT_EQ(out.ValueAt(k).real(), 0.0) << backend->name();
      EXPECT_NE(out.ValueAt(k).imag(), 0.0) << backend->name();
    }
  }
}

}  // namespace
}  // namespace einsql
