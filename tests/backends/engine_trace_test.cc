// Einsum pipeline observability: spans emitted by the SQL einsum engines,
// and the extended BackendStats (result rows, per-CTE timings).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/trace.h"
#include "tensor/coo.h"

namespace einsql {
namespace {

CooTensor MatrixA() {
  CooTensor t(Shape{2, 3});
  EXPECT_TRUE(t.Append({0, 0}, 1.0).ok());
  EXPECT_TRUE(t.Append({0, 2}, 2.0).ok());
  EXPECT_TRUE(t.Append({1, 1}, 3.0).ok());
  return t;
}

CooTensor MatrixB() {
  CooTensor t(Shape{3, 2});
  EXPECT_TRUE(t.Append({0, 1}, 4.0).ok());
  EXPECT_TRUE(t.Append({1, 0}, 5.0).ok());
  EXPECT_TRUE(t.Append({2, 1}, 6.0).ok());
  return t;
}

TEST(EngineTraceTest, MiniDbPipelineEmitsAllPhaseSpans) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  Trace trace;
  EinsumOptions options;
  options.trace = &trace;
  options.decompose = true;

  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();
  auto result = engine.Einsum("ij,jk->ik", {&a, &b}, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const std::string tree = trace.ToString();
  EXPECT_NE(tree.find("parse format"), std::string::npos) << tree;
  EXPECT_NE(tree.find("path optimization"), std::string::npos) << tree;
  EXPECT_NE(tree.find("sql generation"), std::string::npos) << tree;
  EXPECT_NE(tree.find("backend query"), std::string::npos) << tree;
  EXPECT_NE(tree.find("parse result"), std::string::npos) << tree;
  // The MiniDB backend nests its own execution under the query span,
  // including one span per materialized CTE of the decomposed query.
  EXPECT_NE(tree.find("minidb execute"), std::string::npos) << tree;
  EXPECT_NE(tree.find("cte "), std::string::npos) << tree;
  EXPECT_NE(tree.find("root evaluation"), std::string::npos) << tree;

  const std::string json = trace.ToChromeJson();
  // Path optimization carries the chosen algorithm and predicted cost.
  EXPECT_NE(json.find("\"algorithm\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"est_flops\""), std::string::npos) << json;
  // Operator spans carry est-vs-actual cardinalities.
  EXPECT_NE(json.find("\"est_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"actual_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"est_error\""), std::string::npos) << json;
}

TEST(EngineTraceTest, MiniDbStatsReportRowsAndCteTimings) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  EinsumOptions options;
  options.decompose = true;

  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();
  auto result = engine.Einsum("ij,jk->ik", {&a, &b}, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const BackendStats stats = backend.last_stats();
  EXPECT_GT(stats.result_rows, 0);
  ASSERT_FALSE(stats.cte_timings.empty());
  for (const auto& cte : stats.cte_timings) {
    EXPECT_FALSE(cte.name.empty());
    EXPECT_GE(cte.seconds, 0.0);
    EXPECT_GE(cte.rows, 0);
  }
}

TEST(EngineTraceTest, SqlitePipelineEmitsPrepareAndStepSpans) {
  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());
  Trace trace;
  EinsumOptions options;
  options.trace = &trace;

  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();
  auto result = engine.Einsum("ij,jk->ik", {&a, &b}, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const std::string tree = trace.ToString();
  EXPECT_NE(tree.find("path optimization"), std::string::npos) << tree;
  EXPECT_NE(tree.find("sql generation"), std::string::npos) << tree;
  EXPECT_NE(tree.find("sqlite prepare"), std::string::npos) << tree;
  EXPECT_NE(tree.find("sqlite step"), std::string::npos) << tree;

  const BackendStats stats = backend->last_stats();
  EXPECT_GT(stats.result_rows, 0);
  // SQLite hides CTE materialization inside its own planner.
  EXPECT_TRUE(stats.cte_timings.empty());
}

TEST(EngineTraceTest, InMemoryEnginesEmitContractionSpan) {
  Trace trace;
  EinsumOptions options;
  options.trace = &trace;
  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();

  DenseEinsumEngine dense;
  ASSERT_TRUE(dense.Einsum("ij,jk->ik", {&a, &b}, options).ok());
  SparseEinsumEngine sparse;
  ASSERT_TRUE(sparse.Einsum("ij,jk->ik", {&a, &b}, options).ok());

  const std::string tree = trace.ToString();
  EXPECT_NE(tree.find("dense contraction"), std::string::npos) << tree;
  EXPECT_NE(tree.find("sparse contraction"), std::string::npos) << tree;
}

TEST(EngineTraceTest, NullTraceIsZeroOverheadPath) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();
  auto result = engine.Einsum("ij,jk->ik", {&a, &b}, EinsumOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(EngineTraceTest, TracedAndUntracedResultsAgree) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  const CooTensor a = MatrixA();
  const CooTensor b = MatrixB();
  Trace trace;
  EinsumOptions traced;
  traced.trace = &trace;
  auto with = engine.Einsum("ij,jk->ik", {&a, &b}, traced);
  auto without = engine.Einsum("ij,jk->ik", {&a, &b}, EinsumOptions{});
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->nnz(), without->nnz());
}

}  // namespace
}  // namespace einsql
