#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"

namespace einsql {
namespace {

using minidb::AsDouble;
using minidb::AsInt;

// Both backends must behave identically on the portable SQL subset; this
// suite runs every case against each.
class BackendConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "sqlite") {
      sqlite_ = SqliteBackend::Open().value();
      backend_ = sqlite_.get();
    } else {
      minidb_ = std::make_unique<MiniDbBackend>();
      backend_ = minidb_.get();
    }
  }

  SqlBackend* backend_ = nullptr;
  std::unique_ptr<SqliteBackend> sqlite_;
  std::unique_ptr<MiniDbBackend> minidb_;
};

TEST_P(BackendConformance, SimpleSelect) {
  auto r = backend_->Query("SELECT 1 + 2 AS x").value();
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(AsInt(r.rows[0][0]).value(), 3);
}

TEST_P(BackendConformance, CreateLoadQueryCooTable) {
  CooTensor t({2, 3});
  ASSERT_TRUE(t.Append({0, 1}, 2.5).ok());
  ASSERT_TRUE(t.Append({1, 2}, -1.0).ok());
  ASSERT_TRUE(backend_->CreateCooTable("t", 2, false).ok());
  ASSERT_TRUE(backend_->LoadCooTensor("t", t).ok());
  auto r = backend_
               ->Query("SELECT i0, i1, val FROM t ORDER BY i0, i1")
               .value();
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(AsInt(r.rows[0][0]).value(), 0);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[0][2]).value(), 2.5);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[1][2]).value(), -1.0);
}

TEST_P(BackendConformance, CreateCooTableReplacesExisting) {
  ASSERT_TRUE(backend_->CreateCooTable("t", 1, false).ok());
  CooTensor t({4});
  ASSERT_TRUE(t.Append({0}, 1.0).ok());
  ASSERT_TRUE(backend_->LoadCooTensor("t", t).ok());
  // Re-creating must drop the old contents.
  ASSERT_TRUE(backend_->CreateCooTable("t", 1, false).ok());
  auto r = backend_->Query("SELECT COUNT(*) AS c FROM t").value();
  EXPECT_EQ(AsInt(r.rows[0][0]).value(), 0);
}

TEST_P(BackendConformance, ComplexCooTable) {
  ComplexCooTensor t({2});
  ASSERT_TRUE(t.Append({0}, {1.5, -0.5}).ok());
  ASSERT_TRUE(backend_->CreateCooTable("q", 1, true).ok());
  ASSERT_TRUE(backend_->LoadComplexCooTensor("q", t).ok());
  auto r = backend_->Query("SELECT i0, re, im FROM q").value();
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[0][1]).value(), 1.5);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[0][2]).value(), -0.5);
}

TEST_P(BackendConformance, PaperListing4RunsIdentically) {
  auto r = backend_
               ->Query(
                   "WITH A(i, j, val) AS (VALUES (0, 0, 1.0), (1, 1, 2.0)), "
                   "B(i, j, val) AS (VALUES (0, 0, 3.0), (0, 1, 4.0), "
                   "(1, 0, 5.0), (1, 1, 6.0), (2, 1, 7.0)), "
                   "v(i, val) AS (VALUES (0, 8.0), (2, 9.0)) "
                   "SELECT A.i AS i, SUM(A.val * B.val * v.val) AS val "
                   "FROM A, B, v WHERE A.j=B.j AND B.i=v.i "
                   "GROUP BY A.i ORDER BY A.i")
               .value();
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[0][1]).value(), 24.0);
  EXPECT_DOUBLE_EQ(AsDouble(r.rows[1][1]).value(), 190.0);
}

TEST_P(BackendConformance, EmptyCteViaWhereFalse) {
  auto r = backend_
               ->Query("WITH e(i0, val) AS (SELECT 0, 0.0 WHERE 1=0) "
                       "SELECT COUNT(*) AS c FROM e")
               .value();
  EXPECT_EQ(AsInt(r.rows[0][0]).value(), 0);
}

TEST_P(BackendConformance, StatsPopulatedAfterQuery) {
  (void)backend_->Query("SELECT 1 AS x").value();
  BackendStats stats = backend_->last_stats();
  EXPECT_GE(stats.planning_seconds, 0.0);
  EXPECT_GE(stats.execution_seconds, 0.0);
}

TEST_P(BackendConformance, QueryErrorSurfaces) {
  EXPECT_FALSE(backend_->Query("SELECT * FROM does_not_exist").ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendConformance,
                         ::testing::Values("sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

TEST(SqliteBackendTest, ReportsVersionAndName) {
  auto backend = SqliteBackend::Open().value();
  EXPECT_EQ(backend->name(), "sqlite");
  EXPECT_FALSE(SqliteBackend::LibraryVersion().empty());
}

TEST(MiniDbBackendTest, NameIncludesOptimizerMode) {
  MiniDbBackend backend;
  EXPECT_EQ(backend.name(), "minidb-greedy");
  minidb::PlannerOptions options;
  options.mode = minidb::OptimizerMode::kNone;
  MiniDbBackend noopt(options);
  EXPECT_EQ(noopt.name(), "minidb-none");
}

}  // namespace
}  // namespace einsql
