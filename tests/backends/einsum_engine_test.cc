#include "backends/einsum_engine.h"

#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/reference.h"
#include "testing/almost_equal.h"

namespace einsql {
namespace {

using testing::AllCloseTol;

// Random sparse tensor with roughly `density` non-zeros.
CooTensor RandomSparse(const Shape& shape, double density, uint64_t seed) {
  CooTensor t(shape);
  Rng rng(seed);
  std::vector<int64_t> coords(shape.size());
  const int64_t total = NumElements(shape).value();
  std::vector<int64_t> strides = RowMajorStrides(shape);
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng.Bernoulli(density)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    (void)t.Append(coords, rng.UniformDouble(-2.0, 2.0));
  }
  return t;
}

struct EngineFactory {
  std::string label;
  std::function<std::unique_ptr<EinsumEngine>(
      std::vector<std::unique_ptr<SqlBackend>>*)>
      make;
};

std::vector<EngineFactory> AllEngines() {
  auto sql_engine = [](std::unique_ptr<SqlBackend> backend,
                       std::vector<std::unique_ptr<SqlBackend>>* keep) {
    SqlBackend* raw = backend.get();
    keep->push_back(std::move(backend));
    return std::make_unique<SqlEinsumEngine>(raw);
  };
  return {
      {"dense",
       [](std::vector<std::unique_ptr<SqlBackend>>*)
           -> std::unique_ptr<EinsumEngine> {
         return std::make_unique<DenseEinsumEngine>();
       }},
      {"sparse",
       [](std::vector<std::unique_ptr<SqlBackend>>*)
           -> std::unique_ptr<EinsumEngine> {
         return std::make_unique<SparseEinsumEngine>();
       }},
      {"sqlite",
       [sql_engine](std::vector<std::unique_ptr<SqlBackend>>* keep)
           -> std::unique_ptr<EinsumEngine> {
         return sql_engine(SqliteBackend::Open().value(), keep);
       }},
      {"minidb_greedy",
       [sql_engine](std::vector<std::unique_ptr<SqlBackend>>* keep)
           -> std::unique_ptr<EinsumEngine> {
         return sql_engine(std::make_unique<MiniDbBackend>(), keep);
       }},
      {"minidb_none",
       [sql_engine](std::vector<std::unique_ptr<SqlBackend>>* keep)
           -> std::unique_ptr<EinsumEngine> {
         minidb::PlannerOptions options;
         options.mode = minidb::OptimizerMode::kNone;
         return sql_engine(std::make_unique<MiniDbBackend>(options), keep);
       }},
      {"minidb_aggressive",
       [sql_engine](std::vector<std::unique_ptr<SqlBackend>>* keep)
           -> std::unique_ptr<EinsumEngine> {
         minidb::PlannerOptions options;
         options.mode = minidb::OptimizerMode::kAggressive;
         return sql_engine(std::make_unique<MiniDbBackend>(options), keep);
       }},
  };
}

struct SweepCase {
  const char* format;
  std::vector<Shape> shapes;
};

// The cross-backend conformance sweep: every engine, decomposed and flat,
// must match the brute-force oracle on every format.
class EnginesMatchReference
    : public ::testing::TestWithParam<std::tuple<SweepCase, int, bool>> {};

TEST_P(EnginesMatchReference, Agrees) {
  const auto& [c, engine_index, decompose] = GetParam();
  std::vector<CooTensor> tensors;
  std::vector<const CooTensor*> ptrs;
  for (size_t t = 0; t < c.shapes.size(); ++t) {
    tensors.push_back(RandomSparse(c.shapes[t], 0.6, 42 + t));
  }
  for (const auto& t : tensors) ptrs.push_back(&t);

  std::vector<std::unique_ptr<SqlBackend>> keep;
  auto engine = AllEngines()[engine_index].make(&keep);
  EinsumOptions options;
  options.decompose = decompose;
  auto got = engine->Einsum(c.format, ptrs, options);
  ASSERT_TRUE(got.ok()) << got.status() << " for " << c.format << " on "
                        << engine->name();
  auto expected = ReferenceEinsumCoo<double>(c.format, ptrs).value();
  std::string why;
  EXPECT_TRUE(AllCloseTol(*got, expected, {}, &why))
      << c.format << " on " << engine->name()
      << (decompose ? " decomposed" : " flat") << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginesMatchReference,
    ::testing::Combine(
        ::testing::Values(
            SweepCase{"ik,jk,j->i", {{3, 4}, {5, 4}, {5}}},
            SweepCase{"ik,kj->ij", {{3, 4}, {4, 2}}},
            SweepCase{"ii->i", {{4, 4}}},
            SweepCase{"ii->", {{4, 4}}},
            SweepCase{"ij->ji", {{3, 4}}},
            SweepCase{"i,j->ij", {{3}, {4}}},
            SweepCase{"i,ij,j->", {{3}, {3, 4}, {4}}},
            SweepCase{"d,d,d->d", {{5}, {5}, {5}}},
            SweepCase{"bik,bkj->bij", {{2, 3, 2}, {2, 2, 3}}},
            SweepCase{"ik,kl,lm,mn,nj->ij",
                      {{2, 3}, {3, 2}, {2, 3}, {3, 2}, {2, 3}}},
            SweepCase{"ijkl,ijkl->ijkl", {{2, 2, 2, 2}, {2, 2, 2, 2}}},
            SweepCase{"ijk->j", {{3, 4, 2}}},
            SweepCase{"ij,k->i", {{3, 4}, {3}}}),
        ::testing::Range(0, 6),  // engine index
        ::testing::Bool()),      // decompose
    [](const auto& info) {
      std::string name = std::get<0>(info.param).format;
      for (char& ch : name) {
        if (ch == ',') ch = '_';
        if (ch == '-' || ch == '>') ch = 'X';
      }
      return name + "_" + AllEngines()[std::get<1>(info.param)].label +
             (std::get<2>(info.param) ? "_cte" : "_flat");
    });

// Complex einsum across engines (decomposed only; the flat complex query is
// rejected beyond two factors by design).
class ComplexEnginesMatchReference : public ::testing::TestWithParam<int> {};

TEST_P(ComplexEnginesMatchReference, TwoQubitCircuitExpression) {
  // The paper's two-qubit example: a,b,ca,dbc,ed->ce (Figure 7).
  Rng rng(7);
  auto random_complex = [&](const Shape& shape) {
    ComplexCooTensor t(shape);
    std::vector<int64_t> coords(shape.size());
    std::vector<int64_t> strides = RowMajorStrides(shape);
    const int64_t total = NumElements(shape).value();
    for (int64_t flat = 0; flat < total; ++flat) {
      int64_t rem = flat;
      for (size_t d = 0; d < shape.size(); ++d) {
        coords[d] = rem / strides[d];
        rem %= strides[d];
      }
      (void)t.Append(coords, {rng.UniformDouble(-1, 1),
                              rng.UniformDouble(-1, 1)});
    }
    return t;
  };
  std::vector<ComplexCooTensor> tensors;
  tensors.push_back(random_complex({2}));
  tensors.push_back(random_complex({2}));
  tensors.push_back(random_complex({2, 2}));
  tensors.push_back(random_complex({2, 2, 2}));
  tensors.push_back(random_complex({2, 2}));
  std::vector<const ComplexCooTensor*> ptrs;
  for (const auto& t : tensors) ptrs.push_back(&t);

  std::vector<std::unique_ptr<SqlBackend>> keep;
  auto engine = AllEngines()[GetParam()].make(&keep);
  auto got = engine->ComplexEinsum("a,b,ca,dbc,ed->ce", ptrs);
  ASSERT_TRUE(got.ok()) << got.status() << " on " << engine->name();
  auto expected =
      ReferenceEinsumCoo<std::complex<double>>("a,b,ca,dbc,ed->ce", ptrs)
          .value();
  std::string why;
  EXPECT_TRUE(AllCloseTol(*got, expected, {}, &why))
      << engine->name() << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(AllEnginesComplex, ComplexEnginesMatchReference,
                         ::testing::Range(0, 6), [](const auto& info) {
                           return AllEngines()[info.param].label;
                         });

TEST(SqlEinsumEngineTest, EmptyInputTensorYieldsEmptyResult) {
  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());
  CooTensor a({2, 2});  // all zeros
  CooTensor b({2, 2});
  ASSERT_TRUE(b.Append({0, 0}, 1.0).ok());
  auto result = engine.Einsum("ik,kj->ij", {&a, &b}).value();
  EXPECT_EQ(result.nnz(), 0);
}

TEST(SqlEinsumEngineTest, ScalarOutputOverEmptyInputIsZero) {
  auto backend = SqliteBackend::Open().value();
  SqlEinsumEngine engine(backend.get());
  CooTensor a({3});
  CooTensor b({3});
  auto result = engine.Einsum("i,i->", {&a, &b}).value();
  EXPECT_EQ(result.nnz(), 0);  // empty scalar == 0
  EXPECT_TRUE(result.shape().empty());
}

TEST(SqlEinsumEngineTest, EpsilonPrunesSmallValues) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  CooTensor a({2});
  ASSERT_TRUE(a.Append({0}, 1.0).ok());
  ASSERT_TRUE(a.Append({1}, 1e-15).ok());
  CooTensor b({2});
  ASSERT_TRUE(b.Append({0}, 1.0).ok());
  ASSERT_TRUE(b.Append({1}, 1.0).ok());
  EinsumOptions options;
  options.epsilon = 1e-12;
  auto result = engine.Einsum("i,i->i", {&a, &b}, options).value();
  EXPECT_EQ(result.nnz(), 1);
}

TEST(SqlEinsumEngineTest, TensorCountMismatchFails) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  CooTensor a({2});
  EXPECT_FALSE(engine.Einsum("i,i->", {&a}).ok());
}

TEST(SqlEinsumEngineTest, BadFormatFails) {
  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  CooTensor a({2});
  EXPECT_FALSE(engine.Einsum("i->>j", {&a}).ok());
}

TEST(DenseEinsumEngineTest, NamedDense) {
  DenseEinsumEngine engine;
  EXPECT_EQ(engine.name(), "dense");
}

TEST(ParseCooResultTest, NullValueRowsSkipped) {
  minidb::Relation relation;
  relation.columns = {{"val", minidb::ValueType::kDouble}};
  relation.rows.push_back({minidb::Value(minidb::Null{})});
  auto result = ParseCooResult(relation, {}, 0.0).value();
  EXPECT_EQ(result.nnz(), 0);
}

TEST(ParseCooResultTest, ColumnCountMismatchRejected) {
  minidb::Relation relation;
  relation.columns = {{"i0", minidb::ValueType::kInt},
                      {"val", minidb::ValueType::kDouble}};
  EXPECT_FALSE(ParseCooResult(relation, {2, 2}, 0.0).ok());
}

TEST(SqlEinsumEngineTest, PlanningFeedsMetricsRegistry) {
  auto& registry = MetricsRegistry::Default();
  const int64_t programs_before =
      registry.counter("einsum.programs_built")->value();
  const MetricsSnapshot before = registry.Snapshot();

  MiniDbBackend backend;
  SqlEinsumEngine engine(&backend);
  CooTensor a({2, 3});
  ASSERT_TRUE(a.Append({0, 1}, 2.0).ok());
  CooTensor b({3, 2});
  ASSERT_TRUE(b.Append({1, 0}, 4.0).ok());
  ASSERT_TRUE(engine.Einsum("ik,kj->ij", {&a, &b}).ok());

  EXPECT_EQ(registry.counter("einsum.programs_built")->value(),
            programs_before + 1);
  EXPECT_GT(registry.counter("einsum.steps_planned")->value(), 0);
  EXPECT_GT(registry.counter("einsum.sql_programs")->value(), 0);
  const MetricsSnapshot after = registry.Snapshot();
  auto histogram_count = [](const MetricsSnapshot& snap,
                            const std::string& name) -> int64_t {
    for (const auto& h : snap.histograms) {
      if (h.name == name) return h.count;
    }
    return 0;
  };
  EXPECT_GT(histogram_count(after, "einsum.est_flops"),
            histogram_count(before, "einsum.est_flops"));
  EXPECT_GT(histogram_count(after, "einsum.sql_gen_seconds"),
            histogram_count(before, "einsum.sql_gen_seconds"));
}

}  // namespace
}  // namespace einsql
