#include "sat/cnf.h"

#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/generator.h"

namespace einsql::sat {
namespace {

CnfFormula Example() {
  // (¬a ∨ ¬d) ∧ (a ∨ b ∨ ¬c) — Figure 3 / Listing 9 of the paper.
  CnfFormula formula;
  formula.num_variables = 4;
  formula.clauses = {{{-1, -4}}, {{1, 2, -3}}};
  return formula;
}

TEST(CnfTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Validate(Example()).ok());
}

TEST(CnfTest, ValidateRejectsZeroLiteral) {
  CnfFormula formula;
  formula.num_variables = 2;
  formula.clauses = {{{1, 0}}};
  EXPECT_FALSE(Validate(formula).ok());
}

TEST(CnfTest, ValidateRejectsOutOfRange) {
  CnfFormula formula;
  formula.num_variables = 2;
  formula.clauses = {{{3}}};
  EXPECT_FALSE(Validate(formula).ok());
}

TEST(CnfTest, ValidateRejectsEmptyClause) {
  CnfFormula formula;
  formula.num_variables = 1;
  formula.clauses = {{{}}};
  EXPECT_FALSE(Validate(formula).ok());
}

TEST(CnfTest, EvaluateClause) {
  Clause clause{{1, -2}};
  EXPECT_TRUE(EvaluateClause(clause, {true, true}));
  EXPECT_TRUE(EvaluateClause(clause, {false, false}));
  EXPECT_FALSE(EvaluateClause(clause, {false, true}));
}

TEST(CnfTest, MaxClauseSize) {
  EXPECT_EQ(Example().max_clause_size(), 3);
  EXPECT_EQ(CnfFormula{}.max_clause_size(), 0);
}

TEST(CountExactTest, PaperExampleFormula) {
  // Enumerate by hand: 16 assignments; count satisfying.
  const CnfFormula formula = Example();
  double expected = 0.0;
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<bool> assignment;
    for (int v = 0; v < 4; ++v) assignment.push_back((mask >> v) & 1);
    if (Evaluate(formula, assignment)) expected += 1.0;
  }
  EXPECT_DOUBLE_EQ(CountSolutionsExact(formula).value(), expected);
}

TEST(CountExactTest, EmptyFormulaCountsAllAssignments) {
  CnfFormula formula;
  formula.num_variables = 5;
  EXPECT_DOUBLE_EQ(CountSolutionsExact(formula).value(), 32.0);
}

TEST(CountExactTest, UnsatisfiableFormula) {
  CnfFormula formula;
  formula.num_variables = 1;
  formula.clauses = {{{1}}, {{-1}}};
  EXPECT_DOUBLE_EQ(CountSolutionsExact(formula).value(), 0.0);
}

TEST(CountExactTest, MatchesEnumerationOnRandomFormulas) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int variables = 3 + trial % 6;
    CnfFormula formula =
        RandomKSat(variables, 2 + trial, 1 + trial % 3, &rng);
    double expected = 0.0;
    for (int mask = 0; mask < (1 << variables); ++mask) {
      std::vector<bool> assignment;
      for (int v = 0; v < variables; ++v) {
        assignment.push_back((mask >> v) & 1);
      }
      if (Evaluate(formula, assignment)) expected += 1.0;
    }
    EXPECT_DOUBLE_EQ(CountSolutionsExact(formula).value(), expected)
        << "trial " << trial;
  }
}

TEST(DimacsTest, RoundTrip) {
  const CnfFormula formula = Example();
  auto parsed = ParseDimacs(ToDimacs(formula)).value();
  EXPECT_EQ(parsed.num_variables, 4);
  ASSERT_EQ(parsed.clauses.size(), 2u);
  EXPECT_EQ(parsed.clauses[1].literals, (std::vector<int>{1, 2, -3}));
}

TEST(DimacsTest, ParsesCommentsAndHeader) {
  auto formula = ParseDimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n").value();
  EXPECT_EQ(formula.num_variables, 3);
  EXPECT_EQ(formula.clauses.size(), 2u);
}

TEST(DimacsTest, AcceptsMissingTrailingZero) {
  auto formula = ParseDimacs("p cnf 2 1\n1 2").value();
  EXPECT_EQ(formula.clauses.size(), 1u);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());
}

TEST(DimacsTest, RejectsClauseCountMismatch) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 5\n1 0\n").ok());
}

TEST(DimacsTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 x 0\n").ok());
}

TEST(GeneratorTest, RandomKSatShape) {
  Rng rng(9);
  CnfFormula formula = RandomKSat(10, 30, 3, &rng);
  EXPECT_EQ(formula.num_variables, 10);
  EXPECT_EQ(formula.clauses.size(), 30u);
  for (const Clause& clause : formula.clauses) {
    EXPECT_EQ(clause.literals.size(), 3u);
  }
  EXPECT_TRUE(Validate(formula).ok());
}

TEST(GeneratorTest, PackageFormulaIs3Sat) {
  PackageFormulaOptions options;
  options.num_packages = 40;
  CnfFormula formula = PackageDependencyFormula(options);
  EXPECT_TRUE(Validate(formula).ok());
  EXPECT_LE(formula.max_clause_size(), 3);
  EXPECT_GT(formula.clauses.size(), 40u);
}

TEST(GeneratorTest, PackageFormulaIsSatisfiable) {
  // Dependencies point downward, so installing the requested packages and
  // everything they require is always possible.
  PackageFormulaOptions options;
  options.num_packages = 12;
  CnfFormula formula = PackageDependencyFormula(options);
  EXPECT_GT(CountSolutionsExact(formula).value(), 0.0);
}

TEST(GeneratorTest, PackageFormulaDeterministicForSeed) {
  PackageFormulaOptions options;
  options.seed = 123;
  const std::string a = ToDimacs(PackageDependencyFormula(options));
  const std::string b = ToDimacs(PackageDependencyFormula(options));
  EXPECT_EQ(a, b);
}

TEST(GeneratorTest, TruncateClauses) {
  PackageFormulaOptions options;
  CnfFormula formula = PackageDependencyFormula(options);
  CnfFormula prefix = TruncateClauses(formula, 5);
  EXPECT_EQ(prefix.clauses.size(), 5u);
  EXPECT_EQ(prefix.num_variables, formula.num_variables);
  CnfFormula all = TruncateClauses(formula, 1 << 30);
  EXPECT_EQ(all.clauses.size(), formula.clauses.size());
}

}  // namespace
}  // namespace einsql::sat
