#include "sat/tensorize.h"

#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "sat/count.h"
#include "sat/generator.h"

namespace einsql::sat {
namespace {

CnfFormula PaperExample() {
  // (¬a ∨ ¬d) ∧ (a ∨ b ∨ ¬c): counts 10 solutions over {a,b,c,d}.
  CnfFormula formula;
  formula.num_variables = 4;
  formula.clauses = {{{-1, -4}}, {{1, 2, -3}}};
  return formula;
}

TEST(ClauseTensorTest, SingleZeroAtFalsifyingPoint) {
  // Clause (x ∨ y): falsified only at x=0, y=0 -> mask 0.
  CooTensor tensor = ClauseTensor(2, 0, false);
  EXPECT_EQ(tensor.shape(), (Shape{2, 2}));
  EXPECT_EQ(tensor.nnz(), 3);
  EXPECT_DOUBLE_EQ(tensor.At({0, 0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(tensor.At({1, 0}).value(), 1.0);
}

TEST(ClauseTensorTest, TautologyIsAllOnes) {
  CooTensor tensor = ClauseTensor(1, 0, true);
  EXPECT_EQ(tensor.nnz(), 2);
}

TEST(ClauseTensorTest, ThreeVariableClauseHasSevenOnes) {
  CooTensor tensor = ClauseTensor(3, 5, false);
  EXPECT_EQ(tensor.nnz(), 7);
  EXPECT_DOUBLE_EQ(tensor.At({1, 0, 1}).value(), 0.0);  // mask 5 = 101
}

TEST(BuildTensorNetworkTest, PaperExampleStructure) {
  auto network = BuildTensorNetwork(PaperExample()).value();
  ASSERT_EQ(network.spec.inputs.size(), 2u);
  EXPECT_EQ(network.spec.inputs[0].size(), 2u);  // clause over {a, d}
  EXPECT_EQ(network.spec.inputs[1].size(), 3u);  // clause over {a, b, c}
  EXPECT_TRUE(network.spec.output.empty());
  EXPECT_EQ(network.unique_tensors.size(), 2u);
  EXPECT_EQ(network.free_variables, 0);
}

TEST(BuildTensorNetworkTest, SharedIndexForSharedVariable) {
  // Both clauses use variable 1 (label 1); terms must share it.
  auto network = BuildTensorNetwork(PaperExample()).value();
  EXPECT_EQ(network.spec.inputs[0][0], network.spec.inputs[1][0]);
}

TEST(BuildTensorNetworkTest, DuplicateClausesShareTensors) {
  CnfFormula formula;
  formula.num_variables = 6;
  // Three clauses with the same polarity pattern (+,+): one unique tensor.
  formula.clauses = {{{1, 2}}, {{3, 4}}, {{5, 6}}};
  auto network = BuildTensorNetwork(formula).value();
  EXPECT_EQ(network.unique_tensors.size(), 1u);
  EXPECT_EQ(network.tensor_of_clause,
            (std::vector<int>{0, 0, 0}));
}

TEST(BuildTensorNetworkTest, AtMost14UniqueTensorsFor3Sat) {
  Rng rng(21);
  CnfFormula formula = RandomKSat(40, 400, 3, &rng);
  // Mix in 1- and 2-literal clauses.
  formula.clauses.push_back({{1}});
  formula.clauses.push_back({{-2}});
  formula.clauses.push_back({{3, -4}});
  auto network = BuildTensorNetwork(formula).value();
  EXPECT_LE(network.unique_tensors.size(), 14u);
}

TEST(BuildTensorNetworkTest, FreeVariablesCounted) {
  CnfFormula formula;
  formula.num_variables = 10;
  formula.clauses = {{{1, 2}}};
  auto network = BuildTensorNetwork(formula).value();
  EXPECT_EQ(network.free_variables, 8);
  EXPECT_DOUBLE_EQ(ScaleByFreeVariables(network, 3.0), 3.0 * 256.0);
}

TEST(BuildTensorNetworkTest, DuplicateLiteralIsDeduplicated) {
  CnfFormula formula;
  formula.num_variables = 1;
  formula.clauses = {{{1, 1}}};  // (x ∨ x) == (x)
  auto network = BuildTensorNetwork(formula).value();
  EXPECT_EQ(network.spec.inputs[0].size(), 1u);
  EXPECT_EQ(network.unique_tensors[0].nnz(), 1);
}

TEST(BuildTensorNetworkTest, TautologyClauseAllOnes) {
  CnfFormula formula;
  formula.num_variables = 1;
  formula.clauses = {{{1, -1}}};
  auto network = BuildTensorNetwork(formula).value();
  EXPECT_EQ(network.unique_tensors[0].nnz(), 2);
}

class CountEinsumMatchesExact : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<EinsumEngine> MakeEngine() {
    if (GetParam() == "dense") return std::make_unique<DenseEinsumEngine>();
    if (GetParam() == "sparse") return std::make_unique<SparseEinsumEngine>();
    if (GetParam() == "sqlite") {
      sqlite_ = SqliteBackend::Open().value();
      return std::make_unique<SqlEinsumEngine>(sqlite_.get());
    }
    minidb_ = std::make_unique<MiniDbBackend>();
    return std::make_unique<SqlEinsumEngine>(minidb_.get());
  }

  std::unique_ptr<SqliteBackend> sqlite_;
  std::unique_ptr<MiniDbBackend> minidb_;
};

TEST_P(CountEinsumMatchesExact, PaperExample) {
  auto engine = MakeEngine();
  EXPECT_DOUBLE_EQ(
      CountSolutionsEinsum(engine.get(), PaperExample()).value(), 10.0);
}

TEST_P(CountEinsumMatchesExact, RandomFormulas) {
  auto engine = MakeEngine();
  Rng rng(33);
  for (int trial = 0; trial < 6; ++trial) {
    CnfFormula formula = RandomKSat(4 + trial, 6 + 2 * trial, 3, &rng);
    const double expected = CountSolutionsExact(formula).value();
    auto counted = CountSolutionsEinsum(engine.get(), formula);
    ASSERT_TRUE(counted.ok()) << counted.status();
    EXPECT_DOUBLE_EQ(*counted, expected) << "trial " << trial;
  }
}

TEST_P(CountEinsumMatchesExact, PackageFormulaPrefixSweep) {
  auto engine = MakeEngine();
  PackageFormulaOptions options;
  options.num_packages = 8;
  CnfFormula formula = PackageDependencyFormula(options);
  for (int clauses : {1, 4, static_cast<int>(formula.clauses.size())}) {
    CnfFormula prefix = TruncateClauses(formula, clauses);
    const double expected = CountSolutionsExact(prefix).value();
    auto counted = CountSolutionsEinsum(engine.get(), prefix);
    ASSERT_TRUE(counted.ok()) << counted.status();
    EXPECT_DOUBLE_EQ(*counted, expected) << clauses << " clauses";
  }
}

TEST_P(CountEinsumMatchesExact, ManyVariablesBeyondAsciiLabels) {
  // 60 variables exceeds the 52 letters a textual format string can name —
  // the spec-based pipeline must handle it (the paper hit NumPy's
  // 32-dimension ceiling here; our dense engine contracts pairwise and is
  // not limited to 32 axes either).
  auto engine = MakeEngine();
  Rng rng(55);
  CnfFormula formula = RandomKSat(60, 40, 3, &rng);
  auto network = BuildTensorNetwork(formula).value();
  auto counted = CountSolutionsEinsum(engine.get(), network);
  ASSERT_TRUE(counted.ok()) << counted.status();
  EXPECT_GT(*counted, 0.0);
  // Cross-check against the dense pairwise engine (DPLL enumeration is
  // intractable on under-constrained 60-variable formulas).
  DenseEinsumEngine dense;
  EXPECT_DOUBLE_EQ(*counted,
                   CountSolutionsEinsum(&dense, network).value());
}

TEST_P(CountEinsumMatchesExact, EmptyFormula) {
  auto engine = MakeEngine();
  CnfFormula formula;
  formula.num_variables = 6;
  EXPECT_DOUBLE_EQ(CountSolutionsEinsum(engine.get(), formula).value(), 64.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, CountEinsumMatchesExact,
                         ::testing::Values("dense", "sparse", "sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace einsql::sat
