#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "sat/count.h"
#include "sat/generator.h"

namespace einsql::sat {
namespace {

CnfFormula Example() {
  CnfFormula formula;
  formula.num_variables = 3;
  formula.clauses = {{{1, -2}}, {{2, 3}}};
  return formula;
}

TEST(LiteralWeightsTest, UniformIsAllOnes) {
  LiteralWeights weights = LiteralWeights::Uniform(3);
  EXPECT_EQ(weights.negative, (std::vector<double>{1, 1, 1}));
  EXPECT_EQ(weights.positive, (std::vector<double>{1, 1, 1}));
}

TEST(WeightedCountTest, UniformWeightsEqualPlainCounting) {
  DenseEinsumEngine dense;
  const CnfFormula formula = Example();
  const double plain = CountSolutionsEinsum(&dense, formula).value();
  const double weighted =
      WeightedCountEinsum(&dense, formula, LiteralWeights::Uniform(3))
          .value();
  EXPECT_DOUBLE_EQ(weighted, plain);
}

TEST(WeightedCountTest, ExactOracleByHand) {
  // Single clause (x1) over one variable: only x1 = true satisfies.
  CnfFormula formula;
  formula.num_variables = 1;
  formula.clauses = {{{1}}};
  LiteralWeights weights;
  weights.negative = {0.3};
  weights.positive = {0.7};
  EXPECT_DOUBLE_EQ(WeightedCountExact(formula, weights).value(), 0.7);
}

TEST(WeightedCountTest, FreeVariablesContributeWeightSums) {
  // Variable 2 appears in no clause: every model is scaled by (w_f + w_t).
  CnfFormula formula;
  formula.num_variables = 2;
  formula.clauses = {{{1}}};
  LiteralWeights weights;
  weights.negative = {0.25, 0.5};
  weights.positive = {0.75, 2.0};
  DenseEinsumEngine dense;
  const double expected = 0.75 * (0.5 + 2.0);
  EXPECT_DOUBLE_EQ(WeightedCountEinsum(&dense, formula, weights).value(),
                   expected);
  EXPECT_DOUBLE_EQ(WeightedCountExact(formula, weights).value(), expected);
}

class WeightedCountEngines : public ::testing::TestWithParam<std::string> {};

TEST_P(WeightedCountEngines, MatchesExactOnRandomFormulas) {
  std::unique_ptr<SqliteBackend> sqlite;
  std::unique_ptr<MiniDbBackend> minidb;
  std::unique_ptr<EinsumEngine> engine;
  if (GetParam() == "dense") {
    engine = std::make_unique<DenseEinsumEngine>();
  } else if (GetParam() == "sparse") {
    engine = std::make_unique<SparseEinsumEngine>();
  } else if (GetParam() == "sqlite") {
    sqlite = SqliteBackend::Open().value();
    engine = std::make_unique<SqlEinsumEngine>(sqlite.get());
  } else {
    minidb = std::make_unique<MiniDbBackend>();
    engine = std::make_unique<SqlEinsumEngine>(minidb.get());
  }
  Rng rng(101);
  for (int trial = 0; trial < 5; ++trial) {
    const int variables = 4 + trial;
    CnfFormula formula = RandomKSat(variables, 5 + trial * 2, 3, &rng);
    LiteralWeights weights;
    for (int v = 0; v < variables; ++v) {
      weights.negative.push_back(rng.UniformDouble(0.1, 2.0));
      weights.positive.push_back(rng.UniformDouble(0.1, 2.0));
    }
    const double expected = WeightedCountExact(formula, weights).value();
    auto got = WeightedCountEinsum(engine.get(), formula, weights);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_NEAR(*got, expected, 1e-9 * (1.0 + expected)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, WeightedCountEngines,
                         ::testing::Values("dense", "sparse", "sqlite",
                                           "minidb"),
                         [](const auto& info) { return info.param; });

TEST(WeightedCountTest, RejectsWrongWeightArity) {
  DenseEinsumEngine dense;
  const CnfFormula formula = Example();
  LiteralWeights weights = LiteralWeights::Uniform(2);
  EXPECT_FALSE(WeightedCountEinsum(&dense, formula, weights).ok());
  EXPECT_FALSE(WeightedCountExact(formula, weights).ok());
}

}  // namespace
}  // namespace einsql::sat
