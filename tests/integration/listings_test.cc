// End-to-end reproduction of the paper's worked examples: every format
// string of Table 1 and every listing with concrete data must produce the
// published result on every engine.

#include <gtest/gtest.h>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/rng.h"
#include "core/reference.h"

namespace einsql {
namespace {

CooTensor RandomSparse(const Shape& shape, uint64_t seed) {
  CooTensor t(shape);
  Rng rng(seed);
  std::vector<int64_t> coords(shape.size());
  const auto strides = RowMajorStrides(shape);
  const int64_t total = NumElements(shape).value();
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng.Bernoulli(0.5)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    (void)t.Append(coords, rng.UniformDouble(-1.0, 1.0));
  }
  return t;
}

struct Table1Row {
  const char* operation;
  const char* format;
  std::vector<Shape> shapes;
};

// All ten rows of Table 1 with concrete shapes.
const std::vector<Table1Row>& Table1() {
  static const std::vector<Table1Row> kRows = {
      {"matrix diagonal", "ii->i", {{4, 4}}},
      {"vector outer product", "i,j->ij", {{3}, {4}}},
      {"Mahalanobis distance", "i,ij,j->", {{3}, {3, 3}, {3}}},
      {"marginalization", "ijklmno->m", {{2, 2, 2, 2, 2, 2, 2}}},
      {"batch matrix multiplication", "bik,bkj->bij", {{2, 3, 2}, {2, 2, 3}}},
      {"bilinear transformation", "ik,klj,il->ij", {{2, 3}, {3, 4, 2}, {2, 4}}},
      {"element-wise product of two 4D tensors", "ijkl,ijkl->ijkl",
       {{2, 2, 2, 2}, {2, 2, 2, 2}}},
      {"matrix chain multiplication", "ik,kl,lm,mn,nj->ij",
       {{2, 3}, {3, 2}, {2, 3}, {3, 2}, {2, 3}}},
      {"2x3 tensor network", "ij,iml,lo,jk,kmn,no->",
       {{2, 2}, {2, 2, 2}, {2, 2}, {2, 2}, {2, 2, 2}, {2, 2}}},
      {"Tucker decomposition", "ijkl,ai,bj,ck,dl->abcd",
       {{2, 2, 2, 2}, {3, 2}, {3, 2}, {3, 2}, {3, 2}}},
  };
  return kRows;
}

class Table1OnEveryEngine
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(Table1OnEveryEngine, MatchesBruteForce) {
  const auto& [row_index, backend_name] = GetParam();
  const Table1Row& row = Table1()[row_index];
  std::vector<CooTensor> tensors;
  std::vector<const CooTensor*> ptrs;
  for (size_t t = 0; t < row.shapes.size(); ++t) {
    tensors.push_back(RandomSparse(row.shapes[t], 7 * row_index + t));
  }
  for (const auto& t : tensors) ptrs.push_back(&t);

  std::unique_ptr<SqliteBackend> sqlite;
  std::unique_ptr<MiniDbBackend> minidb;
  std::unique_ptr<EinsumEngine> engine;
  if (backend_name == "sqlite") {
    sqlite = SqliteBackend::Open().value();
    engine = std::make_unique<SqlEinsumEngine>(sqlite.get());
  } else if (backend_name == "minidb") {
    minidb = std::make_unique<MiniDbBackend>();
    engine = std::make_unique<SqlEinsumEngine>(minidb.get());
  } else {
    engine = std::make_unique<DenseEinsumEngine>();
  }
  auto got = engine->Einsum(row.format, ptrs);
  ASSERT_TRUE(got.ok()) << row.operation << ": " << got.status();
  auto expected = ReferenceEinsumCoo<double>(row.format, ptrs).value();
  EXPECT_TRUE(AllClose(*got, expected, 1e-9)) << row.operation;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, Table1OnEveryEngine,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values("dense", "sqlite", "minidb")),
    [](const auto& info) {
      return "row" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// Listing 4/6 data; "ac,bc,b->a" must give [24, 190] decomposed and flat.
class Listing4 : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(Listing4, ProducesPublishedResult) {
  const auto& [backend_name, decompose] = GetParam();
  CooTensor A({2, 2});
  ASSERT_TRUE(A.Append({0, 0}, 1.0).ok());
  ASSERT_TRUE(A.Append({1, 1}, 2.0).ok());
  CooTensor B({3, 2});
  ASSERT_TRUE(B.Append({0, 0}, 3.0).ok());
  ASSERT_TRUE(B.Append({0, 1}, 4.0).ok());
  ASSERT_TRUE(B.Append({1, 0}, 5.0).ok());
  ASSERT_TRUE(B.Append({1, 1}, 6.0).ok());
  ASSERT_TRUE(B.Append({2, 1}, 7.0).ok());
  CooTensor v({3});
  ASSERT_TRUE(v.Append({0}, 8.0).ok());
  ASSERT_TRUE(v.Append({2}, 9.0).ok());

  std::unique_ptr<SqliteBackend> sqlite;
  std::unique_ptr<MiniDbBackend> minidb;
  std::unique_ptr<EinsumEngine> engine;
  if (backend_name == "sqlite") {
    sqlite = SqliteBackend::Open().value();
    engine = std::make_unique<SqlEinsumEngine>(sqlite.get());
  } else {
    minidb = std::make_unique<MiniDbBackend>();
    engine = std::make_unique<SqlEinsumEngine>(minidb.get());
  }
  EinsumOptions options;
  options.decompose = decompose;
  auto r = engine->Einsum("ac,bc,b->a", {&A, &B, &v}, options).value();
  EXPECT_DOUBLE_EQ(r.At({0}).value(), 24.0);
  EXPECT_DOUBLE_EQ(r.At({1}).value(), 190.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, Listing4,
                         ::testing::Combine(::testing::Values("sqlite",
                                                              "minidb"),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return std::get<0>(info.param) +
                                  (std::get<1>(info.param)
                                       ? std::string("_decomposed")
                                       : std::string("_flat"));
                         });

// Listing 5: element-wise product of three vectors with transitive
// equalities.
TEST(Listing5, ElementwiseTripleProduct) {
  CooTensor u({3}), v({3}), w({3});
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(u.Append({i}, static_cast<double>(i + 1)).ok());
    ASSERT_TRUE(v.Append({i}, 2.0).ok());
    ASSERT_TRUE(w.Append({i}, 0.5).ok());
  }
  auto sqlite = SqliteBackend::Open().value();
  SqlEinsumEngine engine(sqlite.get());
  auto r = engine.Einsum("d,d,d->d", {&u, &v, &w}).value();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r.At({i}).value(), (i + 1) * 1.0);
  }
}

// Listing 9: the SQL query for the Figure 3 SAT formula, run verbatim on
// both SQL engines (the paper's hand-written decomposition).
class Listing9 : public ::testing::TestWithParam<std::string> {};

TEST_P(Listing9, HandWrittenSatQuery) {
  const std::string sql =
      "WITH T1(i, j, val) AS ("
      "  VALUES (0, 0, 1), (0, 1, 1), (1, 0, 1)"
      "), T2(i, j, k, val) AS ("
      "  VALUES (0, 0, 0, 1), (0, 1, 0, 1), (0, 1, 1, 1), (1, 0, 0, 1),"
      "         (1, 0, 1, 1), (1, 1, 0, 1), (1, 1, 1, 1)"
      ") SELECT SUM(T1.val * T2.val) AS val FROM T1, T2 WHERE T1.i=T2.i";
  std::unique_ptr<SqlBackend> backend;
  if (GetParam() == "sqlite") {
    backend = SqliteBackend::Open().value();
  } else {
    backend = std::make_unique<MiniDbBackend>();
  }
  auto r = backend->Query(sql).value();
  ASSERT_EQ(r.num_rows(), 1);
  // T1 is the (¬a ∨ ¬d) clause tensor over (a, d); T2 the (a ∨ b ∨ ¬c)
  // tensor over (a, b, c); joining on the shared variable a and summing
  // counts the models: 10 over {a, b, c, d}.
  EXPECT_DOUBLE_EQ(minidb::AsDouble(r.rows[0][0]).value(), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, Listing9,
                         ::testing::Values("sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace einsql
