// Determinism of morsel-driven parallel execution across all four
// application domains (graphical models, #SAT, triple store, quantum
// simulation): the full einsum pipeline must produce identical results —
// every coordinate and every double bit-for-bit — when intra-operator
// parallelism is toggled, and when the worker count changes at a fixed
// morsel size.
//
// The two comparisons pin down the two halves of the contract:
//   * sequential vs parallel (default morsel size): tier-1 workloads fit
//     in one morsel, so turning parallelism on cannot change anything;
//   * 1 thread vs 8 threads (tiny morsel size, many morsels): morsel
//     boundaries fix the floating-point summation order, so the thread
//     count never changes the result even when partial sums are merged.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "common/rng.h"
#include "graphical/generator.h"
#include "graphical/inference.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"
#include "sat/count.h"
#include "sat/generator.h"
#include "triplestore/generator.h"
#include "triplestore/query.h"

namespace einsql {
namespace {

struct EngineConfig {
  bool parallel = false;
  int threads = 0;
  int64_t morsel_rows = 0;  // 0 = keep the default
};

struct ComparisonCase {
  std::string name;
  EngineConfig a;
  EngineConfig b;
};

// The two contract checks described in the file comment.
const std::vector<ComparisonCase>& Cases() {
  static const std::vector<ComparisonCase> kCases = {
      {"sequential_vs_parallel", {false, 0, 0}, {true, 8, 0}},
      {"threads1_vs_8", {true, 1, 64}, {true, 8, 64}},
  };
  return kCases;
}

std::unique_ptr<MiniDbBackend> MakeBackend(const EngineConfig& config) {
  auto backend = std::make_unique<MiniDbBackend>();
  if (config.parallel) backend->set_threads(config.threads);
  if (config.morsel_rows > 0) {
    backend->database().executor_options().morsel_rows = config.morsel_rows;
  }
  return backend;
}

// Bit-exact COO equality: same nonzeros in the same order with the same
// doubles (EXPECT_EQ on double is exact equality, not a tolerance).
void ExpectSameTensor(const CooTensor& a, const CooTensor& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  ASSERT_EQ(a.rank(), b.rank());
  for (int64_t k = 0; k < a.nnz(); ++k) {
    for (int d = 0; d < a.rank(); ++d) {
      EXPECT_EQ(a.raw_coords()[k * a.rank() + d],
                b.raw_coords()[k * b.rank() + d])
          << "entry " << k << " axis " << d;
    }
    EXPECT_EQ(a.ValueAt(k), b.ValueAt(k)) << "entry " << k;
  }
}

void ExpectSameTensor(const ComplexCooTensor& a, const ComplexCooTensor& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  ASSERT_EQ(a.rank(), b.rank());
  for (int64_t k = 0; k < a.nnz(); ++k) {
    for (int d = 0; d < a.rank(); ++d) {
      EXPECT_EQ(a.raw_coords()[k * a.rank() + d],
                b.raw_coords()[k * b.rank() + d])
          << "entry " << k << " axis " << d;
    }
    EXPECT_EQ(a.ValueAt(k).real(), b.ValueAt(k).real()) << "entry " << k;
    EXPECT_EQ(a.ValueAt(k).imag(), b.ValueAt(k).imag()) << "entry " << k;
  }
}

class DeterminismTest : public ::testing::TestWithParam<int> {
 protected:
  const ComparisonCase& Case() const { return Cases()[GetParam()]; }
};

TEST_P(DeterminismTest, GraphicalInference) {
  auto model = graphical::BreastCancerLikeModel();
  Rng rng(42);
  auto query = graphical::RandomQuery(model, /*query_variable=*/0,
                                      /*batch=*/8, &rng);
  auto network = graphical::BuildInferenceNetwork(model, query).value();

  auto backend_a = MakeBackend(Case().a);
  auto backend_b = MakeBackend(Case().b);
  SqlEinsumEngine engine_a(backend_a.get()), engine_b(backend_b.get());
  auto result_a =
      engine_a.EinsumSpecified(network.spec, network.operands(), {});
  auto result_b =
      engine_b.EinsumSpecified(network.spec, network.operands(), {});
  ASSERT_TRUE(result_a.ok()) << result_a.status();
  ASSERT_TRUE(result_b.ok()) << result_b.status();
  ExpectSameTensor(*result_a, *result_b);
}

TEST_P(DeterminismTest, SatModelCounting) {
  Rng rng(7);
  auto formula = sat::RandomKSat(/*num_variables=*/12, /*num_clauses=*/30,
                                 /*k=*/3, &rng);
  auto backend_a = MakeBackend(Case().a);
  auto backend_b = MakeBackend(Case().b);
  SqlEinsumEngine engine_a(backend_a.get()), engine_b(backend_b.get());
  auto count_a = sat::CountSolutionsEinsum(&engine_a, formula);
  auto count_b = sat::CountSolutionsEinsum(&engine_b, formula);
  ASSERT_TRUE(count_a.ok()) << count_a.status();
  ASSERT_TRUE(count_b.ok()) << count_b.status();
  EXPECT_EQ(*count_a, *count_b);  // exact, not a tolerance
}

TEST_P(DeterminismTest, TriplestoreGoldMedalQuery) {
  triplestore::OlympicsOptions options;
  options.num_athletes = 60;
  options.results_per_athlete = 3;
  options.num_games = 8;
  options.num_events = 40;
  auto store = triplestore::GenerateOlympics(options);
  auto query = triplestore::GoldMedalQuery();

  auto backend_a = MakeBackend(Case().a);
  auto backend_b = MakeBackend(Case().b);
  ASSERT_TRUE(store.LoadInto(backend_a.get()).ok());
  ASSERT_TRUE(store.LoadInto(backend_b.get()).ok());
  auto rows_a = triplestore::AnswerWithSql(backend_a.get(), store, query);
  auto rows_b = triplestore::AnswerWithSql(backend_b.get(), store, query);
  ASSERT_TRUE(rows_a.ok()) << rows_a.status();
  ASSERT_TRUE(rows_b.ok()) << rows_b.status();
  ASSERT_EQ(rows_a->size(), rows_b->size());
  for (size_t k = 0; k < rows_a->size(); ++k) {
    EXPECT_EQ((*rows_a)[k].term, (*rows_b)[k].term) << "row " << k;
    EXPECT_EQ((*rows_a)[k].count, (*rows_b)[k].count) << "row " << k;
  }
}

TEST_P(DeterminismTest, QuantumCircuitSimulation) {
  auto circuit = quantum::SycamoreLikeCircuit(/*num_qubits=*/6, /*depth=*/4);
  const std::vector<int> initial_bits(6, 0);

  auto backend_a = MakeBackend(Case().a);
  auto backend_b = MakeBackend(Case().b);
  SqlEinsumEngine engine_a(backend_a.get()), engine_b(backend_b.get());
  auto state_a = quantum::SimulateEinsum(&engine_a, circuit, initial_bits);
  auto state_b = quantum::SimulateEinsum(&engine_b, circuit, initial_bits);
  ASSERT_TRUE(state_a.ok()) << state_a.status();
  ASSERT_TRUE(state_b.ok()) << state_b.status();
  ExpectSameTensor(*state_a, *state_b);
}

INSTANTIATE_TEST_SUITE_P(Contracts, DeterminismTest,
                         ::testing::Range(0, 2), [](const auto& info) {
                           return Cases()[info.param].name;
                         });

}  // namespace
}  // namespace einsql
