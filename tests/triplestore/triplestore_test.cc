#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "triplestore/generator.h"
#include "triplestore/query.h"

namespace einsql::triplestore {
namespace {

TripleStore SmallStore() {
  // Alice-knows-Bob, Bob-plays-piano from the paper's intro, plus gold
  // medal data for the Listing 7 query.
  TripleStore store;
  store.Add("alice", "knows", "bob");
  store.Add("bob", "plays", "piano");
  store.Add("instance:0", "walls:athlete", "athlete:0");
  store.Add("instance:0", "walls:medal", "medal:Gold");
  store.Add("instance:1", "walls:athlete", "athlete:0");
  store.Add("instance:1", "walls:medal", "medal:Gold");
  store.Add("instance:2", "walls:athlete", "athlete:1");
  store.Add("instance:2", "walls:medal", "medal:Gold");
  store.Add("instance:3", "walls:athlete", "athlete:1");
  store.Add("instance:3", "walls:medal", "medal:Silver");
  store.Add("athlete:0", "rdfs:label", "\"Ada\"");
  store.Add("athlete:1", "rdfs:label", "\"Bob\"");
  return store;
}

TEST(DictionaryTest, InternAndLookup) {
  Dictionary dictionary;
  const int64_t a = dictionary.Intern("a");
  const int64_t b = dictionary.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dictionary.Intern("a"), a);
  EXPECT_EQ(dictionary.Lookup("b").value(), b);
  EXPECT_EQ(dictionary.TermOf(a).value(), "a");
  EXPECT_FALSE(dictionary.Lookup("missing").ok());
  EXPECT_FALSE(dictionary.TermOf(99).ok());
  EXPECT_EQ(dictionary.size(), 2);
}

TEST(TripleStoreTest, AddAndCount) {
  TripleStore store = SmallStore();
  EXPECT_EQ(store.num_triples(), 12);
  EXPECT_GT(store.num_terms(), 10);
  EXPECT_GT(store.Sparsity(), 0.0);
  EXPECT_LT(store.Sparsity(), 1.0);
}

TEST(TripleStoreTest, LoadIntoBackend) {
  TripleStore store = SmallStore();
  MiniDbBackend backend;
  ASSERT_TRUE(store.LoadInto(&backend).ok());
  auto count = backend.Query("SELECT COUNT(*) AS c FROM T").value();
  EXPECT_EQ(minidb::AsInt(count.rows[0][0]).value(), store.num_triples());
}

TEST(QueryCompileTest, GoldQuerySqlShape) {
  TripleStore store = SmallStore();
  auto sql = CompileQueryToSql(store, GoldMedalQuery()).value();
  // Three slice CTEs over T, an einsum over them, descending order.
  EXPECT_NE(sql.find("S0(i0, i1, val)"), std::string::npos) << sql;
  EXPECT_NE(sql.find("S1(i0, val)"), std::string::npos);
  EXPECT_NE(sql.find("S2(i0, i1, val)"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY val DESC"), std::string::npos);
  EXPECT_NE(sql.find("FROM T"), std::string::npos);
}

TEST(QueryCompileTest, RejectsUnboundSelectVariable) {
  TripleStore store = SmallStore();
  PatternQuery query = GoldMedalQuery();
  query.select_variable = "?nowhere";
  EXPECT_FALSE(CompileQueryToSql(store, query).ok());
  query.select_variable = "name";  // missing '?'
  EXPECT_FALSE(CompileQueryToSql(store, query).ok());
}

TEST(QueryCompileTest, RejectsEmptyPatternList) {
  TripleStore store = SmallStore();
  PatternQuery query;
  query.select_variable = "?x";
  EXPECT_FALSE(CompileQueryToSql(store, query).ok());
}

class GoldQueryBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<SqlBackend> MakeBackend() {
    if (GetParam() == "sqlite") {
      return SqliteBackend::Open().value();
    }
    return std::make_unique<MiniDbBackend>();
  }
};

TEST_P(GoldQueryBackends, MatchesNaiveMatcher) {
  TripleStore store = SmallStore();
  auto backend = MakeBackend();
  ASSERT_TRUE(store.LoadInto(backend.get()).ok());
  auto sql_rows =
      AnswerWithSql(backend.get(), store, GoldMedalQuery()).value();
  auto naive_rows = AnswerNaive(store, GoldMedalQuery()).value();
  ASSERT_EQ(sql_rows.size(), naive_rows.size());
  // Ada has 2 golds, Bob has 1.
  ASSERT_EQ(sql_rows.size(), 2u);
  EXPECT_EQ(sql_rows[0].term, "\"Ada\"");
  EXPECT_DOUBLE_EQ(sql_rows[0].count, 2.0);
  EXPECT_EQ(sql_rows[1].term, "\"Bob\"");
  EXPECT_DOUBLE_EQ(sql_rows[1].count, 1.0);
}

TEST_P(GoldQueryBackends, SyntheticOlympicsAgreesWithNaive) {
  OlympicsOptions options;
  options.num_athletes = 40;
  options.results_per_athlete = 4;
  options.medal_fraction = 0.5;
  TripleStore store = GenerateOlympics(options);
  auto backend = MakeBackend();
  ASSERT_TRUE(store.LoadInto(backend.get()).ok());
  auto sql_rows =
      AnswerWithSql(backend.get(), store, GoldMedalQuery()).value();
  auto naive_rows = AnswerNaive(store, GoldMedalQuery()).value();
  ASSERT_EQ(sql_rows.size(), naive_rows.size());
  // Compare as multisets of (term, count): SQL tie order is unspecified.
  auto key = [](const CountedTerm& row) {
    return row.term + "#" + std::to_string(row.count);
  };
  std::multiset<std::string> sql_set, naive_set;
  for (const auto& row : sql_rows) sql_set.insert(key(row));
  for (const auto& row : naive_rows) naive_set.insert(key(row));
  EXPECT_EQ(sql_set, naive_set);
  // And the descending order is respected.
  for (size_t k = 1; k < sql_rows.size(); ++k) {
    EXPECT_GE(sql_rows[k - 1].count, sql_rows[k].count);
  }
}

TEST_P(GoldQueryBackends, UnknownTermYieldsEmptyResult) {
  TripleStore store = SmallStore();
  auto backend = MakeBackend();
  ASSERT_TRUE(store.LoadInto(backend.get()).ok());
  PatternQuery query;
  query.patterns = {{"?instance", "walls:medal", "medal:Platinum"},
                    {"?instance", "walls:athlete", "?athlete"}};
  query.select_variable = "?athlete";
  auto rows = AnswerWithSql(backend.get(), store, query).value();
  EXPECT_TRUE(rows.empty());
}

TEST_P(GoldQueryBackends, RepeatedVariableWithinPattern) {
  TripleStore store;
  store.Add("x", "self", "x");
  store.Add("x", "self", "y");
  store.Add("y", "p", "z");
  auto backend = MakeBackend();
  ASSERT_TRUE(store.LoadInto(backend.get()).ok());
  PatternQuery query;
  query.patterns = {{"?a", "self", "?a"}};
  query.select_variable = "?a";
  auto rows = AnswerWithSql(backend.get(), store, query).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].term, "x");
}


TEST_P(GoldQueryBackends, MultiVariableSelect) {
  TripleStore store = SmallStore();
  auto backend = MakeBackend();
  ASSERT_TRUE(store.LoadInto(backend.get()).ok());
  // Athlete and medal per instance: SELECT ?athlete ?medal.
  MultiPatternQuery query;
  query.patterns = {{"?instance", "walls:athlete", "?athlete"},
                    {"?instance", "walls:medal", "?medal"}};
  query.select_variables = {"?athlete", "?medal"};
  auto sql_rows = AnswerMultiWithSql(backend.get(), store, query).value();
  auto naive_rows = AnswerMultiNaive(store, query).value();
  ASSERT_EQ(sql_rows.size(), naive_rows.size());
  auto key = [](const CountedRow& row) {
    std::string k;
    for (const std::string& term : row.terms) k += term + "|";
    return k + std::to_string(row.count);
  };
  std::multiset<std::string> sql_set, naive_set;
  for (const auto& row : sql_rows) sql_set.insert(key(row));
  for (const auto& row : naive_rows) naive_set.insert(key(row));
  EXPECT_EQ(sql_set, naive_set);
  // athlete:0 won 2 golds — the top row.
  bool found = false;
  for (const auto& row : sql_rows) {
    if (row.terms == std::vector<std::string>{"athlete:0", "medal:Gold"}) {
      EXPECT_DOUBLE_EQ(row.count, 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(GoldQueryBackends, MultiSelectRejectsDuplicates) {
  TripleStore store = SmallStore();
  MultiPatternQuery query;
  query.patterns = {{"?a", "walls:medal", "?m"}};
  query.select_variables = {"?a", "?a"};
  EXPECT_FALSE(CompileMultiQueryToSql(store, query).ok());
  query.select_variables = {};
  EXPECT_FALSE(CompileMultiQueryToSql(store, query).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, GoldQueryBackends,
                         ::testing::Values("sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

TEST(GeneratorTest, DeterministicAndShaped) {
  OlympicsOptions options;
  options.num_athletes = 25;
  TripleStore a = GenerateOlympics(options);
  TripleStore b = GenerateOlympics(options);
  EXPECT_EQ(a.num_triples(), b.num_triples());
  EXPECT_EQ(a.num_terms(), b.num_terms());
  // Each athlete: 1 label + results×(athlete, games, event) + some medals.
  EXPECT_GE(a.num_triples(), 25 * (1 + 3 * 3));
}

}  // namespace
}  // namespace einsql::triplestore
