#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "graphical/generator.h"
#include "graphical/inference.h"

namespace einsql::graphical {
namespace {

// A three-variable chain A - B - C with hand-written potentials.
PairwiseModel ChainModel() {
  PairwiseModel model;
  model.variables = {{"A", 2}, {"B", 3}, {"C", 2}};
  model.edges.push_back(
      {0, 1,
       DenseTensor::FromData({2, 3}, {1.0, 2.0, 0.5, 0.25, 1.5, 3.0})
           .value()});
  model.edges.push_back(
      {1, 2,
       DenseTensor::FromData({3, 2}, {2.0, 1.0, 0.5, 0.5, 1.0, 4.0})
           .value()});
  return model;
}

TEST(ModelTest, ValidateAcceptsChain) {
  EXPECT_TRUE(Validate(ChainModel()).ok());
}

TEST(ModelTest, ValidateRejectsBadEdges) {
  PairwiseModel model = ChainModel();
  model.edges[0].v = 7;
  EXPECT_FALSE(Validate(model).ok());
  model = ChainModel();
  model.edges[0].u = model.edges[0].v;
  EXPECT_FALSE(Validate(model).ok());
}

TEST(ModelTest, ValidateRejectsShapeMismatch) {
  PairwiseModel model = ChainModel();
  model.edges[0].table = DenseTensor::Zeros({2, 2}).value();
  EXPECT_FALSE(Validate(model).ok());
}

TEST(ModelTest, ValidateRejectsNegativePotential) {
  PairwiseModel model = ChainModel();
  model.edges[0].table[0] = -1.0;
  EXPECT_FALSE(Validate(model).ok());
}

TEST(ModelTest, FromInteractionMatrix) {
  // Two binary variables; a single non-zero block between them.
  std::vector<Variable> variables = {{"x", 2}, {"y", 2}};
  auto q = DenseTensor::Zeros({4, 4}).value();
  // Block (x, y): rows 0..1, columns 2..3.
  ASSERT_TRUE(q.Set({0, 2}, 0.5).ok());
  ASSERT_TRUE(q.Set({2, 0}, 0.5).ok());  // symmetry
  auto model = FromInteractionMatrix(variables, q).value();
  ASSERT_EQ(model.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(model.edges[0].table.At({0, 0}).value(), std::exp(0.5));
  EXPECT_DOUBLE_EQ(model.edges[0].table.At({1, 1}).value(), 1.0);
}

TEST(ModelTest, FromInteractionMatrixRejectsAsymmetry) {
  std::vector<Variable> variables = {{"x", 2}, {"y", 2}};
  auto q = DenseTensor::Zeros({4, 4}).value();
  ASSERT_TRUE(q.Set({0, 2}, 1.0).ok());
  EXPECT_FALSE(FromInteractionMatrix(variables, q).ok());
}

TEST(ModelTest, FromInteractionMatrixRejectsWrongSize) {
  std::vector<Variable> variables = {{"x", 2}, {"y", 2}};
  auto q = DenseTensor::Zeros({3, 3}).value();
  EXPECT_FALSE(FromInteractionMatrix(variables, q).ok());
}

TEST(InferenceTest, NetworkStructure) {
  PairwiseModel model = ChainModel();
  InferenceQuery query;
  query.query_variable = 0;
  query.evidence_variables = {1, 2};
  query.evidence_values = {{0, 1}, {2, 0}};
  auto network = BuildInferenceNetwork(model, query).value();
  // 2 edges + 2 evidence matrices.
  EXPECT_EQ(network.tensors.size(), 4u);
  EXPECT_EQ(network.spec.output.size(), 2u);  // (batch, query)
}

TEST(InferenceTest, RejectsBadQueries) {
  PairwiseModel model = ChainModel();
  InferenceQuery query;
  query.query_variable = 9;
  query.evidence_variables = {1};
  query.evidence_values = {{0}};
  EXPECT_FALSE(BuildInferenceNetwork(model, query).ok());
  query.query_variable = 0;
  query.evidence_variables = {0};
  EXPECT_FALSE(BuildInferenceNetwork(model, query).ok());  // query==evidence
  query.evidence_variables = {1, 1};
  query.evidence_values = {{0, 0}};
  EXPECT_FALSE(BuildInferenceNetwork(model, query).ok());  // duplicate
  query.evidence_variables = {1};
  query.evidence_values = {{5}};
  EXPECT_FALSE(BuildInferenceNetwork(model, query).ok());  // out of range
  query.evidence_values = {};
  EXPECT_FALSE(BuildInferenceNetwork(model, query).ok());  // empty batch
}

TEST(InferenceTest, BruteForceChainByHand) {
  // P(A | B=0, C=1) ∝ Σ over nothing: ψAB[a][0] * ψBC[0][1].
  PairwiseModel model = ChainModel();
  InferenceQuery query;
  query.query_variable = 0;
  query.evidence_variables = {1, 2};
  query.evidence_values = {{0, 1}};
  auto posterior = PosteriorBruteForce(model, query).value();
  const double w0 = 1.0 * 1.0;   // a=0: ψAB[0][0]=1, ψBC[0][1]=1
  const double w1 = 0.25 * 1.0;  // a=1: ψAB[1][0]=0.25
  EXPECT_NEAR(posterior.At({0, 0}).value(), w0 / (w0 + w1), 1e-12);
  EXPECT_NEAR(posterior.At({0, 1}).value(), w1 / (w0 + w1), 1e-12);
}

class PosteriorEngines : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<EinsumEngine> MakeEngine() {
    if (GetParam() == "dense") return std::make_unique<DenseEinsumEngine>();
    if (GetParam() == "sparse") return std::make_unique<SparseEinsumEngine>();
    if (GetParam() == "sqlite") {
      sqlite_ = SqliteBackend::Open().value();
      return std::make_unique<SqlEinsumEngine>(sqlite_.get());
    }
    minidb_ = std::make_unique<MiniDbBackend>();
    return std::make_unique<SqlEinsumEngine>(minidb_.get());
  }

  std::unique_ptr<SqliteBackend> sqlite_;
  std::unique_ptr<MiniDbBackend> minidb_;
};

TEST_P(PosteriorEngines, ChainMatchesBruteForce) {
  auto engine = MakeEngine();
  PairwiseModel model = ChainModel();
  InferenceQuery query;
  query.query_variable = 0;
  query.evidence_variables = {1, 2};
  query.evidence_values = {{0, 1}, {2, 0}, {1, 1}};
  auto expected = PosteriorBruteForce(model, query).value();
  auto got = Posterior(engine.get(), model, query).value();
  EXPECT_TRUE(AllClose(got, expected, 1e-9));
}

TEST_P(PosteriorEngines, BreastCancerModelMatchesBruteForce) {
  auto engine = MakeEngine();
  PairwiseModel model = BreastCancerLikeModel();
  Rng rng(77);
  InferenceQuery query = RandomQuery(model, /*query_variable=*/0,
                                     /*batch_size=*/4, &rng);
  auto expected = PosteriorBruteForce(model, query).value();
  auto got = Posterior(engine.get(), model, query).value();
  EXPECT_TRUE(AllClose(got, expected, 1e-8));
}

TEST_P(PosteriorEngines, PartialEvidence) {
  auto engine = MakeEngine();
  PairwiseModel model = ChainModel();
  InferenceQuery query;
  query.query_variable = 2;
  query.evidence_variables = {0};  // B marginalized out
  query.evidence_values = {{1}};
  auto expected = PosteriorBruteForce(model, query).value();
  auto got = Posterior(engine.get(), model, query).value();
  EXPECT_TRUE(AllClose(got, expected, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Engines, PosteriorEngines,
                         ::testing::Values("dense", "sparse", "sqlite", "minidb"),
                         [](const auto& info) { return info.param; });


TEST(MostLikelyStateTest, AgreesWithPosteriorArgmax) {
  DenseEinsumEngine dense;
  PairwiseModel model = BreastCancerLikeModel();
  Rng rng(88);
  InferenceQuery query = RandomQuery(model, /*query_variable=*/3,
                                     /*batch_size=*/3, &rng);
  auto posterior = Posterior(&dense, model, query).value();
  auto best = MostLikelyState(&dense, model, query).value();
  ASSERT_EQ(best.size(), 3u);
  for (int b = 0; b < 3; ++b) {
    const int64_t states = posterior.shape()[1];
    for (int64_t x = 0; x < states; ++x) {
      EXPECT_LE(posterior.At({b, x}).value(),
                posterior.At({b, best[b]}).value() + 1e-12);
    }
  }
}

TEST(GeneratorTest, BreastCancerShapeMatchesPaper) {
  PairwiseModel model = BreastCancerLikeModel();
  EXPECT_TRUE(Validate(model).ok());
  EXPECT_EQ(model.num_variables(), 10);
  EXPECT_EQ(model.edges.size(), 21u);
  // The extreme edge shapes the paper reports: 2×3 and 11×7.
  bool has_2x3 = false, has_11x7 = false;
  for (const EdgeFactor& edge : model.edges) {
    if (edge.table.shape() == Shape{2, 3}) has_2x3 = true;
    if (edge.table.shape() == Shape{11, 7}) has_11x7 = true;
  }
  EXPECT_TRUE(has_2x3);
  EXPECT_TRUE(has_11x7);
}

TEST(GeneratorTest, RandomModelConnectedAndValid) {
  Rng rng(13);
  PairwiseModel model = RandomPairwiseModel(6, 2, 4, 9, &rng);
  EXPECT_TRUE(Validate(model).ok());
  EXPECT_EQ(model.edges.size(), 9u);
}

TEST(GeneratorTest, RandomQueryShape) {
  PairwiseModel model = ChainModel();
  Rng rng(14);
  InferenceQuery query = RandomQuery(model, 1, 5, &rng);
  EXPECT_EQ(query.query_variable, 1);
  EXPECT_EQ(query.evidence_variables, (std::vector<int>{0, 2}));
  EXPECT_EQ(query.batch_size(), 5);
}

}  // namespace
}  // namespace einsql::graphical
