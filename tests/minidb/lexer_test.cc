#include "minidb/lexer.h"

#include <gtest/gtest.h>

namespace einsql::minidb {
namespace {

std::vector<TokenKind> Kinds(std::string_view sql) {
  auto tokens = Tokenize(sql).value();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputIsJustEof) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(Kinds("  \n\t "), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  EXPECT_EQ(Kinds("SELECT select SeLeCt"),
            (std::vector<TokenKind>{TokenKind::kSelect, TokenKind::kSelect,
                                    TokenKind::kSelect, TokenKind::kEof}));
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  auto tokens = Tokenize("FooBar _x a1").value();
  EXPECT_EQ(tokens[0].text, "FooBar");
  EXPECT_EQ(tokens[1].text, "_x");
  EXPECT_EQ(tokens[2].text, "a1");
}

TEST(LexerTest, IntegerLiteral) {
  auto tokens = Tokenize("12345").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 12345);
}

TEST(LexerTest, FloatLiterals) {
  auto tokens = Tokenize("1.5 .25 2e3 1.5e-2").value();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.015);
}

TEST(LexerTest, HugeIntegerFallsBackToDouble) {
  auto tokens = Tokenize("99999999999999999999999").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_GT(tokens[0].double_value, 1e22);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Tokenize("'it''s'").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = Tokenize("\"weird name\"").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
}

TEST(LexerTest, LineComments) {
  EXPECT_EQ(Kinds("SELECT -- comment here\n 1"),
            (std::vector<TokenKind>{TokenKind::kSelect,
                                    TokenKind::kIntLiteral, TokenKind::kEof}));
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Kinds("= != <> < <= > >= + - * / % ( ) , . ;"),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNotEq, TokenKind::kNotEq,
                TokenKind::kLt, TokenKind::kLtEq, TokenKind::kGt,
                TokenKind::kGtEq, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                TokenKind::kDot, TokenKind::kSemicolon, TokenKind::kEof}));
}

TEST(LexerTest, BadCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("SELECT\n  x").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, QualifiedColumnTokens) {
  EXPECT_EQ(Kinds("A.i0"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kDot,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, ExplainAnalyzeAreKeywords) {
  EXPECT_EQ(Kinds("EXPLAIN ANALYZE"),
            (std::vector<TokenKind>{TokenKind::kExplain, TokenKind::kAnalyze,
                                    TokenKind::kEof}));
  // Case-insensitive like every other keyword.
  EXPECT_EQ(Kinds("explain Analyze"),
            (std::vector<TokenKind>{TokenKind::kExplain, TokenKind::kAnalyze,
                                    TokenKind::kEof}));
  auto tokens = Tokenize("explain").value();
  EXPECT_EQ(tokens[0].text, "explain");  // spelling preserved for identifiers
}

}  // namespace
}  // namespace einsql::minidb
