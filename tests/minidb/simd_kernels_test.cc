// SIMD-vs-scalar bit-identity tests for the vector kernels: every kernel
// run with SIMD enabled must produce byte-identical output (kind, validity
// bytes, payloads — doubles compared by bit pattern) to the scalar twin,
// over columns containing NULLs, NaN, infinities, extreme magnitudes,
// signed zeros, and int64 boundary values. Also covers the selection
// vector builders and strategy-independent join-table behavior with SIMD
// toggled.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/simd.h"
#include "minidb/vector_ops.h"

namespace einsql::minidb {
namespace {

uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

// Random int column with ~1/8 NULLs and boundary values mixed in. When
// `extremes` is false, INT64_MIN is left out: INT64_MIN / -1 (and % -1)
// raise SIGFPE on x86 in the scalar semantics both paths share, so div
// and mod are exercised on the tamer distribution.
ColumnVector RandIntColumn(int64_t n, uint64_t seed, bool extremes = true) {
  ColumnVector col;
  col.kind = ColumnVector::Kind::kInt;
  col.valid.resize(n);
  col.ints.resize(n);
  uint64_t state = seed;
  const int64_t specials[] = {0,
                              1,
                              -1,
                              std::numeric_limits<int64_t>::max(),
                              extremes ? std::numeric_limits<int64_t>::min()
                                       : int64_t{-7},
                              42};
  for (int64_t i = 0; i < n; ++i) {
    col.valid[i] = NextRand(&state) % 8 != 0;
    const uint64_t pick = NextRand(&state);
    col.ints[i] = pick % 4 == 0
                      ? specials[pick % 6]
                      : static_cast<int64_t>(NextRand(&state)) - (1 << 30);
  }
  return col;
}

// Random double column with NULLs, NaN, infinities, signed zeros, and
// denormal-scale magnitudes.
ColumnVector RandDoubleColumn(int64_t n, uint64_t seed) {
  ColumnVector col;
  col.kind = ColumnVector::Kind::kDouble;
  col.valid.resize(n);
  col.doubles.resize(n);
  uint64_t state = seed;
  const double specials[] = {0.0,
                             -0.0,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             1e308,
                             -1e-300};
  for (int64_t i = 0; i < n; ++i) {
    col.valid[i] = NextRand(&state) % 8 != 0;
    const uint64_t pick = NextRand(&state);
    col.doubles[i] =
        pick % 4 == 0 ? specials[pick % 8]
                      : static_cast<double>(NextRand(&state) % 200000) / 100.0 -
                            1000.0;
  }
  return col;
}

// Byte-identity: same kind, same validity bytes, and payloads identical
// by bit pattern (so NaN == NaN and +0.0 != -0.0).
void ExpectBitIdentical(const ColumnVector& a, const ColumnVector& b) {
  ASSERT_EQ(a.kind, b.kind);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.valid, b.valid);
  for (int64_t i = 0; i < a.size(); ++i) {
    if (!a.valid[i]) continue;  // payload under NULL is unspecified
    switch (a.kind) {
      case ColumnVector::Kind::kInt:
        EXPECT_EQ(a.ints[i], b.ints[i]) << "element " << i;
        break;
      case ColumnVector::Kind::kDouble: {
        uint64_t abits, bbits;
        std::memcpy(&abits, &a.doubles[i], 8);
        std::memcpy(&bbits, &b.doubles[i], 8);
        EXPECT_EQ(abits, bbits)
            << "element " << i << ": " << a.doubles[i] << " vs "
            << b.doubles[i];
        break;
      }
      case ColumnVector::Kind::kText:
        EXPECT_EQ(a.texts[i], b.texts[i]) << "element " << i;
        break;
      case ColumnVector::Kind::kValue:
        EXPECT_EQ(a.values[i], b.values[i]) << "element " << i;
        break;
    }
  }
}

// Runs `op` twice — SIMD on, SIMD off — and asserts byte-identical output.
template <typename Fn>
void ExpectSimdInvariant(const Fn& op) {
  Result<ColumnVector> with_simd = [&] {
    simd::ScopedEnable on(true);
    return op();
  }();
  Result<ColumnVector> without = [&] {
    simd::ScopedEnable off(false);
    return op();
  }();
  ASSERT_EQ(with_simd.ok(), without.ok());
  if (!with_simd.ok()) return;
  ExpectBitIdentical(*with_simd, *without);
}

constexpr int64_t kN = 1027;  // odd length: exercises the scalar tail

TEST(SimdKernels, IntArithBitIdentical) {
  const ColumnVector a = RandIntColumn(kN, 1);
  const ColumnVector b = RandIntColumn(kN, 2);
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul}) {
    ExpectSimdInvariant([&] { return VecArith(op, a, b); });
  }
  // Div/mod on the INT64_MIN-free distribution (see RandIntColumn).
  const ColumnVector ta = RandIntColumn(kN, 1, /*extremes=*/false);
  const ColumnVector tb = RandIntColumn(kN, 2, /*extremes=*/false);
  for (BinaryOp op : {BinaryOp::kDiv, BinaryOp::kMod}) {
    ExpectSimdInvariant([&] { return VecArith(op, ta, tb); });
  }
}

TEST(SimdKernels, DoubleArithBitIdentical) {
  const ColumnVector a = RandDoubleColumn(kN, 3);
  const ColumnVector b = RandDoubleColumn(kN, 4);
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                      BinaryOp::kDiv, BinaryOp::kMod}) {
    ExpectSimdInvariant([&] { return VecArith(op, a, b); });
  }
}

TEST(SimdKernels, MixedArithBitIdentical) {
  const ColumnVector a = RandIntColumn(kN, 5);
  const ColumnVector b = RandDoubleColumn(kN, 6);
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                      BinaryOp::kDiv}) {
    ExpectSimdInvariant([&] { return VecArith(op, a, b); });
    ExpectSimdInvariant([&] { return VecArith(op, b, a); });
  }
}

TEST(SimdKernels, IntCompareBitIdentical) {
  const ColumnVector a = RandIntColumn(kN, 7);
  const ColumnVector b = RandIntColumn(kN, 8);
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNotEq, BinaryOp::kLt,
                      BinaryOp::kLtEq, BinaryOp::kGt, BinaryOp::kGtEq}) {
    ExpectSimdInvariant([&] { return VecCompare(op, a, b); });
  }
}

TEST(SimdKernels, DoubleCompareBitIdenticalIncludingNaN) {
  const ColumnVector a = RandDoubleColumn(kN, 9);
  const ColumnVector b = RandDoubleColumn(kN, 10);
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNotEq, BinaryOp::kLt,
                      BinaryOp::kLtEq, BinaryOp::kGt, BinaryOp::kGtEq}) {
    ExpectSimdInvariant([&] { return VecCompare(op, a, b); });
    ExpectSimdInvariant([&] { return VecCompare(op, a, a); });
  }
}

TEST(SimdKernels, LogicBitIdentical) {
  const ColumnVector a = RandIntColumn(kN, 11);
  const ColumnVector b = RandIntColumn(kN, 12);
  ExpectSimdInvariant(
      [&] { return Result<ColumnVector>(VecAnd(a, b)); });
  ExpectSimdInvariant([&] { return Result<ColumnVector>(VecOr(a, b)); });
  ExpectSimdInvariant([&] { return Result<ColumnVector>(VecNot(a)); });
}

TEST(SimdKernels, NegateBitIdentical) {
  const ColumnVector ints = RandIntColumn(kN, 13);
  const ColumnVector doubles = RandDoubleColumn(kN, 14);
  ExpectSimdInvariant([&] { return VecNegate(ints); });
  ExpectSimdInvariant([&] { return VecNegate(doubles); });
}

TEST(SimdKernels, SelectionBuildersMatchTruthyAt) {
  for (uint64_t seed : {21ull, 22ull}) {
    const ColumnVector cond = RandIntColumn(kN, seed);
    const SelVector sel = BuildSelection(cond);
    // The selection is exactly the ascending truthy set.
    std::vector<int32_t> expected;
    for (int64_t i = 0; i < cond.size(); ++i) {
      if (TruthyAt(cond, i)) expected.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(sel.idx, expected);

    // Refining with a second condition keeps exactly the doubly-truthy
    // subset (cond2 is indexed by *position within sel*).
    ColumnVector cond2 = RandIntColumn(sel.size(), seed + 100);
    SelVector refined = sel;
    RefineSelection(cond2, &refined);
    std::vector<int32_t> expected2;
    for (int64_t j = 0; j < sel.size(); ++j) {
      if (TruthyAt(cond2, j)) expected2.push_back(sel.idx[j]);
    }
    EXPECT_EQ(refined.idx, expected2);
  }
}

TEST(SimdKernels, AllNullAndEmptyColumns) {
  const ColumnVector nulls = ColumnVector::Nulls(kN);
  const ColumnVector ints = RandIntColumn(kN, 31);
  ExpectSimdInvariant([&] { return VecArith(BinaryOp::kAdd, nulls, ints); });
  ExpectSimdInvariant([&] { return VecCompare(BinaryOp::kLt, nulls, ints); });
  ExpectSimdInvariant(
      [&] { return Result<ColumnVector>(VecAnd(nulls, ints)); });
  EXPECT_TRUE(BuildSelection(nulls).empty());

  const ColumnVector empty = ColumnVector::Nulls(0);
  ExpectSimdInvariant([&] { return VecArith(BinaryOp::kMul, empty, empty); });
  EXPECT_TRUE(BuildSelection(empty).empty());
}

}  // namespace
}  // namespace einsql::minidb
