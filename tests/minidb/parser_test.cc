#include "minidb/parser.h"

#include <gtest/gtest.h>

namespace einsql::minidb {
namespace {

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseStatement("SELECT 1").value();
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  const QueryBody& body = stmt.select->body;
  ASSERT_EQ(body.select_list.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(body.select_list[0].expr->literal), 1);
  EXPECT_TRUE(body.from.empty());
}

TEST(ParserTest, SelectWithAllClauses) {
  auto stmt = ParseStatement(
                  "SELECT a.i AS x, SUM(a.val * b.val) AS v "
                  "FROM t1 a, t2 b WHERE a.j = b.j AND a.i > 0 "
                  "GROUP BY a.i ORDER BY v DESC LIMIT 10")
                  .value();
  const QueryBody& body = stmt.select->body;
  EXPECT_EQ(body.select_list.size(), 2u);
  EXPECT_EQ(body.select_list[0].alias, "x");
  EXPECT_EQ(body.from.size(), 2u);
  EXPECT_EQ(body.from[0].name, "t1");
  EXPECT_EQ(body.from[0].effective_alias(), "a");
  ASSERT_TRUE(body.where != nullptr);
  EXPECT_EQ(body.group_by.size(), 1u);
  ASSERT_EQ(body.order_by.size(), 1u);
  EXPECT_TRUE(body.order_by[0].descending);
  EXPECT_EQ(body.limit, 10);
}

TEST(ParserTest, WithClause) {
  auto stmt = ParseStatement(
                  "WITH k(i, val) AS (SELECT j, SUM(v) FROM t GROUP BY j), "
                  "m AS (VALUES (1, 2.0)) "
                  "SELECT * FROM k, m")
                  .value();
  ASSERT_EQ(stmt.select->ctes.size(), 2u);
  EXPECT_EQ(stmt.select->ctes[0].name, "k");
  EXPECT_EQ(stmt.select->ctes[0].column_names,
            (std::vector<std::string>{"i", "val"}));
  EXPECT_TRUE(stmt.select->ctes[1].body->is_values);
  EXPECT_TRUE(stmt.select->body.select_list[0].is_star);
}

TEST(ParserTest, ValuesAsTopLevel) {
  auto stmt = ParseStatement("VALUES (1, 'a'), (2, 'b')").value();
  const QueryBody& body = stmt.select->body;
  EXPECT_TRUE(body.is_values);
  ASSERT_EQ(body.values_rows.size(), 2u);
  EXPECT_EQ(body.values_rows[0].size(), 2u);
}

TEST(ParserTest, NegativeNumberLiteralFolded) {
  auto stmt = ParseStatement("VALUES (-3, -2.5)").value();
  const auto& row = stmt.select->body.values_rows[0];
  EXPECT_EQ(std::get<int64_t>(row[0]->literal), -3);
  EXPECT_DOUBLE_EQ(std::get<double>(row[1]->literal), -2.5);
}

TEST(ParserTest, JoinSyntaxFoldsOnIntoWhere) {
  auto stmt = ParseStatement(
                  "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1")
                  .value();
  const QueryBody& body = stmt.select->body;
  EXPECT_EQ(body.from.size(), 2u);
  ASSERT_TRUE(body.where != nullptr);
  // (a.x = b.x) AND (a.y > 1)
  EXPECT_EQ(body.where->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, CrossJoin) {
  auto stmt = ParseStatement("SELECT * FROM a CROSS JOIN b").value();
  EXPECT_EQ(stmt.select->body.from.size(), 2u);
  EXPECT_FALSE(ParseStatement("SELECT * FROM a CROSS JOIN b ON a.x=b.x").ok());
}

TEST(ParserTest, CreateTable) {
  auto stmt =
      ParseStatement("CREATE TABLE T (i INT, j INTEGER, val DOUBLE, s TEXT)")
          .value();
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  const CreateTableStmt& create = *stmt.create_table;
  EXPECT_EQ(create.table, "T");
  ASSERT_EQ(create.columns.size(), 4u);
  EXPECT_EQ(create.columns[0].second, ValueType::kInt);
  EXPECT_EQ(create.columns[2].second, ValueType::kDouble);
  EXPECT_EQ(create.columns[3].second, ValueType::kText);
}

TEST(ParserTest, CreateTableVarcharLength) {
  auto stmt = ParseStatement("CREATE TABLE T (s VARCHAR(100))").value();
  EXPECT_EQ(stmt.create_table->columns[0].second, ValueType::kText);
}

TEST(ParserTest, CreateTableUnknownTypeFails) {
  EXPECT_FALSE(ParseStatement("CREATE TABLE T (x BLOB)").ok());
}

TEST(ParserTest, InsertRows) {
  auto stmt =
      ParseStatement("INSERT INTO T VALUES (1, 2.0), (3, 4.0)").value();
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  EXPECT_EQ(stmt.insert->rows.size(), 2u);
}

TEST(ParserTest, InsertWithColumnList) {
  auto stmt = ParseStatement("INSERT INTO T (j, i) VALUES (2, 1)").value();
  EXPECT_EQ(stmt.insert->columns, (std::vector<std::string>{"j", "i"}));
}

TEST(ParserTest, DropTable) {
  auto stmt = ParseStatement("DROP TABLE T").value();
  EXPECT_EQ(stmt.kind, StatementKind::kDropTable);
  EXPECT_FALSE(stmt.drop_table->if_exists);
  auto stmt2 = ParseStatement("DROP TABLE IF EXISTS T").value();
  EXPECT_TRUE(stmt2.drop_table->if_exists);
}

TEST(ParserTest, DeleteWithWhere) {
  auto stmt = ParseStatement("DELETE FROM T WHERE i = 3").value();
  EXPECT_EQ(stmt.kind, StatementKind::kDelete);
  EXPECT_TRUE(stmt.delete_stmt->where != nullptr);
}


TEST(ParserTest, UnionAllChain) {
  auto stmt = ParseStatement(
                  "SELECT a FROM t UNION ALL SELECT b FROM u "
                  "UNION ALL SELECT c FROM v ORDER BY a LIMIT 5")
                  .value();
  const QueryBody& body = stmt.select->body;
  EXPECT_EQ(body.union_all.size(), 2u);
  // ORDER BY / LIMIT hoisted to the outermost body.
  EXPECT_EQ(body.order_by.size(), 1u);
  EXPECT_EQ(body.limit, 5);
  for (const auto& member : body.union_all) {
    EXPECT_TRUE(member->order_by.empty());
    EXPECT_FALSE(member->limit.has_value());
  }
}

TEST(ParserTest, UnionRequiresAll) {
  EXPECT_FALSE(ParseStatement("SELECT 1 UNION SELECT 2").ok());
}

TEST(ParserTest, UnionAllRejectsValuesMember) {
  EXPECT_FALSE(ParseStatement("SELECT 1 UNION ALL VALUES (2)").ok());
}

TEST(ParserTest, ExplainFlag) {
  auto stmt = ParseStatement("EXPLAIN SELECT 1").value();
  EXPECT_TRUE(stmt.select->explain);
  EXPECT_FALSE(stmt.select->explain_analyze);
  auto plain = ParseStatement("SELECT 1").value();
  EXPECT_FALSE(plain.select->explain);
  EXPECT_FALSE(ParseStatement("EXPLAIN DROP TABLE t").ok());
}

TEST(ParserTest, ExplainAnalyzeFlag) {
  auto stmt = ParseStatement("EXPLAIN ANALYZE SELECT 1").value();
  EXPECT_TRUE(stmt.select->explain);
  EXPECT_TRUE(stmt.select->explain_analyze);
  auto with = ParseStatement("EXPLAIN ANALYZE WITH c AS (SELECT 1) "
                             "SELECT * FROM c")
                  .value();
  EXPECT_TRUE(with.select->explain_analyze);
}

TEST(ParserTest, ExplainOnNonSelectReportsPreciseError) {
  auto result = ParseStatement("EXPLAIN ANALYZE INSERT INTO t VALUES (1)");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("EXPLAIN ANALYZE requires a SELECT"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;

  auto plain = ParseStatement("EXPLAIN CREATE TABLE t (x INT)");
  ASSERT_FALSE(plain.ok());
  EXPECT_NE(plain.status().ToString().find("EXPLAIN requires a SELECT"),
            std::string::npos)
      << plain.status();
}

TEST(ParserTest, ExplainAndAnalyzeRemainValidIdentifiers) {
  // Non-reserved keywords: usable wherever an identifier is expected.
  auto stmt = ParseStatement("SELECT explain FROM t").value();
  ASSERT_EQ(stmt.select->body.select_list.size(), 1u);
  auto aliased =
      ParseStatement("SELECT 1 AS analyze FROM explain AS explain").value();
  EXPECT_EQ(aliased.select->body.select_list[0].alias, "analyze");
  EXPECT_TRUE(ParseStatement("SELECT t.explain, analyze FROM t").ok());
  EXPECT_TRUE(
      ParseStatement("EXPLAIN SELECT explain FROM analyze").ok());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseStatement("SELECT 1;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 SELECT 2").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());
}

TEST(ParserTest, ErrorsIncludePosition) {
  auto result = ParseStatement("SELECT FROM");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(ParseExpressionTest, Precedence) {
  auto e = ParseExpression("1 + 2 * 3").value();
  // Must parse as 1 + (2 * 3).
  EXPECT_EQ(e->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e->right->binary_op, BinaryOp::kMul);
}

TEST(ParseExpressionTest, ComparisonBindsLooserThanArithmetic) {
  auto e = ParseExpression("a + 1 = b * 2").value();
  EXPECT_EQ(e->binary_op, BinaryOp::kEq);
  EXPECT_EQ(e->left->binary_op, BinaryOp::kAdd);
}

TEST(ParseExpressionTest, AndOrPrecedence) {
  auto e = ParseExpression("a = 1 OR b = 2 AND c = 3").value();
  // OR at the top, AND beneath.
  EXPECT_EQ(e->binary_op, BinaryOp::kOr);
  EXPECT_EQ(e->right->binary_op, BinaryOp::kAnd);
}

TEST(ParseExpressionTest, NotAndIsNull) {
  auto e = ParseExpression("NOT x IS NULL").value();
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_EQ(e->unary_op, UnaryOp::kNot);
  EXPECT_EQ(e->left->kind, ExprKind::kIsNull);
  auto e2 = ParseExpression("x IS NOT NULL").value();
  EXPECT_TRUE(e2->is_null_negated);
}

TEST(ParseExpressionTest, FunctionCalls) {
  auto e = ParseExpression("SUM(a.val * b.val)").value();
  EXPECT_EQ(e->kind, ExprKind::kFunction);
  EXPECT_EQ(e->function, "sum");
  ASSERT_EQ(e->args.size(), 1u);
  auto star = ParseExpression("COUNT(*)").value();
  EXPECT_TRUE(star->star_argument);
}

TEST(ParseExpressionTest, Parentheses) {
  auto e = ParseExpression("(1 + 2) * 3").value();
  EXPECT_EQ(e->binary_op, BinaryOp::kMul);
  EXPECT_EQ(e->left->binary_op, BinaryOp::kAdd);
}

TEST(ParseExpressionTest, QualifiedAndUnqualifiedColumns) {
  auto q = ParseExpression("t.col").value();
  EXPECT_EQ(q->table, "t");
  EXPECT_EQ(q->column, "col");
  auto u = ParseExpression("col").value();
  EXPECT_EQ(u->table, "");
}

TEST(ParseExpressionTest, CloneIsDeep) {
  auto e = ParseExpression("a + SUM(b)").value();
  auto clone = e->Clone();
  EXPECT_EQ(e->ToString(), clone->ToString());
  EXPECT_NE(e->left.get(), clone->left.get());
}

TEST(ParseExpressionTest, ContainsAggregate) {
  EXPECT_TRUE(ContainsAggregate(*ParseExpression("1 + SUM(x)").value()));
  EXPECT_TRUE(ContainsAggregate(*ParseExpression("COUNT(*)").value()));
  EXPECT_FALSE(ContainsAggregate(*ParseExpression("abs(x) + 1").value()));
}

}  // namespace
}  // namespace einsql::minidb
