#include "minidb/value.h"

#include <gtest/gtest.h>

namespace einsql::minidb {
namespace {

TEST(ValueTest, TypeOf) {
  EXPECT_EQ(TypeOf(Value(Null{})), ValueType::kNull);
  EXPECT_EQ(TypeOf(Value(int64_t{4})), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value(2.5)), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), ValueType::kText);
}

TEST(ValueTest, IsNull) {
  EXPECT_TRUE(IsNull(Value(Null{})));
  EXPECT_FALSE(IsNull(Value(int64_t{0})));
}

TEST(ValueTest, AsDoubleAndAsInt) {
  EXPECT_DOUBLE_EQ(AsDouble(Value(int64_t{3})).value(), 3.0);
  EXPECT_DOUBLE_EQ(AsDouble(Value(2.5)).value(), 2.5);
  EXPECT_FALSE(AsDouble(Value(std::string("x"))).ok());
  EXPECT_FALSE(AsDouble(Value(Null{})).ok());
  EXPECT_EQ(AsInt(Value(2.9)).value(), 2);
  EXPECT_EQ(AsInt(Value(int64_t{-5})).value(), -5);
}

TEST(ValueTest, ValueToString) {
  EXPECT_EQ(ValueToString(Value(Null{})), "NULL");
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(std::string("hi"))), "hi");
}

TEST(CompareValuesTest, NumericCrossType) {
  EXPECT_EQ(CompareValues(Value(int64_t{2}), Value(2.0)), 0);
  EXPECT_LT(CompareValues(Value(int64_t{1}), Value(1.5)), 0);
  EXPECT_GT(CompareValues(Value(3.5), Value(int64_t{3})), 0);
}

TEST(CompareValuesTest, SortClasses) {
  // NULL < numbers < text.
  EXPECT_LT(CompareValues(Value(Null{}), Value(int64_t{0})), 0);
  EXPECT_LT(CompareValues(Value(int64_t{999}), Value(std::string(""))), 0);
  EXPECT_EQ(CompareValues(Value(Null{}), Value(Null{})), 0);
}

TEST(CompareValuesTest, Text) {
  EXPECT_LT(CompareValues(Value(std::string("a")), Value(std::string("b"))),
            0);
  EXPECT_EQ(CompareValues(Value(std::string("a")), Value(std::string("a"))),
            0);
}

TEST(SqlEqualsTest, NullNeverEquals) {
  EXPECT_FALSE(SqlEquals(Value(Null{}), Value(Null{})));
  EXPECT_FALSE(SqlEquals(Value(Null{}), Value(int64_t{1})));
}

TEST(SqlEqualsTest, CrossTypeNumeric) {
  EXPECT_TRUE(SqlEquals(Value(int64_t{7}), Value(7.0)));
  EXPECT_FALSE(SqlEquals(Value(int64_t{7}), Value(std::string("7"))));
}

TEST(ArithmeticTest, IntStaysInt) {
  EXPECT_EQ(std::get<int64_t>(Add(Value(int64_t{2}), Value(int64_t{3})).value()),
            5);
  EXPECT_EQ(std::get<int64_t>(
                Multiply(Value(int64_t{4}), Value(int64_t{5})).value()),
            20);
}

TEST(ArithmeticTest, PromotionToDouble) {
  Value v = Add(Value(int64_t{2}), Value(0.5)).value();
  EXPECT_EQ(TypeOf(v), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 2.5);
}

TEST(ArithmeticTest, NullPropagates) {
  EXPECT_TRUE(IsNull(Add(Value(Null{}), Value(int64_t{1})).value()));
  EXPECT_TRUE(IsNull(Multiply(Value(2.0), Value(Null{})).value()));
}

TEST(ArithmeticTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(IsNull(Divide(Value(int64_t{1}), Value(int64_t{0})).value()));
  EXPECT_TRUE(IsNull(Divide(Value(1.0), Value(0.0)).value()));
}

TEST(ArithmeticTest, IntegerDivisionTruncates) {
  EXPECT_EQ(std::get<int64_t>(
                Divide(Value(int64_t{7}), Value(int64_t{2})).value()),
            3);
}

TEST(ArithmeticTest, TextIsRejected) {
  EXPECT_FALSE(Add(Value(std::string("a")), Value(int64_t{1})).ok());
  EXPECT_FALSE(Negate(Value(std::string("a"))).ok());
}

TEST(ArithmeticTest, Negate) {
  EXPECT_EQ(std::get<int64_t>(Negate(Value(int64_t{5})).value()), -5);
  EXPECT_DOUBLE_EQ(std::get<double>(Negate(Value(2.5)).value()), -2.5);
  EXPECT_TRUE(IsNull(Negate(Value(Null{})).value()));
}

TEST(HashValueTest, IntAndDoubleHashAlike) {
  EXPECT_EQ(HashValue(Value(int64_t{42})), HashValue(Value(42.0)));
}

TEST(HashValueTest, RowKeyOrderMatters) {
  std::vector<Value> ab = {Value(int64_t{1}), Value(int64_t{2})};
  std::vector<Value> ba = {Value(int64_t{2}), Value(int64_t{1})};
  EXPECT_NE(HashRowKey(ab), HashRowKey(ba));
}

}  // namespace
}  // namespace einsql::minidb
