// Tests for IntKeyJoinTable: strategy selection from key statistics,
// match enumeration order (ascending entry ids — the join result contract),
// out-of-range and missing probes, multi-column keys, and extreme key
// values that must force the radix layout.

#include "minidb/join_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace einsql::minidb {
namespace {

std::vector<int64_t> Matches(const IntKeyJoinTable& table,
                             const std::vector<int64_t>& probe) {
  std::vector<int64_t> out;
  const Status status = table.ForEachMatch(probe.data(), [&](int64_t e) {
    out.push_back(e);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  return out;
}

TEST(IntKeyJoinTable, DenseKeysPickDirectAddress) {
  // Dense einsum-style index column 0..999: key space 1000 <= 65536.
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(i % 100);
  IntKeyJoinTable table(keys.data(), 1000, 1);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kDirectAddress);
  // Every key 0..99 has 10 entries, ascending (build order).
  const std::vector<int64_t> got = Matches(table, {7});
  ASSERT_EQ(got.size(), 10u);
  for (size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r], static_cast<int64_t>(7 + 100 * r));
  }
}

TEST(IntKeyJoinTable, SparseKeysPickRadix) {
  // Key space far beyond the 2^22 ceiling: radix layout.
  std::vector<int64_t> keys = {0, 1'000'000'000, -5, 1'000'000'000, 77};
  IntKeyJoinTable table(keys.data(), 5, 1);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kRadixChained);
  EXPECT_EQ(Matches(table, {1'000'000'000}), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(Matches(table, {-5}), (std::vector<int64_t>{2}));
  EXPECT_TRUE(Matches(table, {6}).empty());
}

TEST(IntKeyJoinTable, ExtremeKeysAreSafe) {
  // min/max int64 extents wrap in uint64 arithmetic; must choose radix and
  // still probe correctly.
  std::vector<int64_t> keys = {std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(), 0};
  IntKeyJoinTable table(keys.data(), 3, 1);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kRadixChained);
  EXPECT_EQ(Matches(table, {std::numeric_limits<int64_t>::min()}),
            (std::vector<int64_t>{0}));
  EXPECT_EQ(Matches(table, {std::numeric_limits<int64_t>::max()}),
            (std::vector<int64_t>{1}));
  EXPECT_EQ(Matches(table, {0}), (std::vector<int64_t>{2}));
}

TEST(IntKeyJoinTable, MultiColumnDirect) {
  // 2-d keys over [0,16) x [0,16): volume 256, direct.
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      keys.push_back(i);
      keys.push_back(j);
    }
  }
  IntKeyJoinTable table(keys.data(), 256, 2);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kDirectAddress);
  EXPECT_EQ(Matches(table, {3, 11}), (std::vector<int64_t>{3 * 16 + 11}));
  // Probes outside the observed key space match nothing (and must not
  // touch out-of-bounds slots).
  EXPECT_TRUE(Matches(table, {16, 0}).empty());
  EXPECT_TRUE(Matches(table, {-1, 5}).empty());
  EXPECT_TRUE(Matches(table, {3, 200}).empty());
}

TEST(IntKeyJoinTable, MultiColumnRadixPreservesBuildOrder) {
  // Wide 2-d key *extent* (the second column spans 0..2^30, far beyond
  // the slot ceiling): radix, duplicate keys keep ascending entry order.
  std::vector<int64_t> keys = {
      5, 1 << 30,  // entry 0
      5, 1 << 30,  // entry 1 (duplicate)
      6, 0,        // entry 2 (stretches column 1's extent)
      5, 1 << 30,  // entry 3 (duplicate)
  };
  IntKeyJoinTable table(keys.data(), 4, 2);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kRadixChained);
  EXPECT_EQ(Matches(table, {5, 1 << 30}), (std::vector<int64_t>{0, 1, 3}));
  EXPECT_EQ(Matches(table, {6, 0}), (std::vector<int64_t>{2}));
}

TEST(IntKeyJoinTable, LargeSharedOffsetStaysDirect) {
  // Direct addressing depends on extents, not magnitudes: keys clustered
  // around 2^30 with a small spread still take the perfect-hash layout.
  std::vector<int64_t> keys = {(1 << 30) + 5, (1 << 30) + 5, (1 << 30) + 9};
  IntKeyJoinTable table(keys.data(), 3, 1);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kDirectAddress);
  EXPECT_EQ(Matches(table, {(1 << 30) + 5}), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Matches(table, {(1 << 30) + 9}), (std::vector<int64_t>{2}));
  EXPECT_TRUE(Matches(table, {5}).empty());
}

TEST(IntKeyJoinTable, NegativeDenseRangeIsDirect) {
  // Direct addressing is offset-based: a dense range of negative keys
  // still qualifies.
  std::vector<int64_t> keys;
  for (int64_t i = -50; i < 50; ++i) keys.push_back(i);
  IntKeyJoinTable table(keys.data(), 100, 1);
  EXPECT_EQ(table.strategy(), IntKeyJoinTable::Strategy::kDirectAddress);
  EXPECT_EQ(Matches(table, {-50}), (std::vector<int64_t>{0}));
  EXPECT_EQ(Matches(table, {49}), (std::vector<int64_t>{99}));
  EXPECT_TRUE(Matches(table, {50}).empty());
  EXPECT_TRUE(Matches(table, {-51}).empty());
}

TEST(IntKeyJoinTable, EmptyBuildSide) {
  IntKeyJoinTable table(nullptr, 0, 2);
  EXPECT_EQ(table.num_entries(), 0);
  EXPECT_TRUE(Matches(table, {1, 2}).empty());
}

TEST(IntKeyJoinTable, ErrorStopsEnumeration) {
  std::vector<int64_t> keys = {4, 4, 4};
  IntKeyJoinTable table(keys.data(), 3, 1);
  int calls = 0;
  const int64_t probe = 4;
  const Status status = table.ForEachMatch(&probe, [&](int64_t) {
    ++calls;
    return calls == 2 ? Status::InvalidArgument("stop") : Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace einsql::minidb
