// Differential testing: randomly generated queries from the portable SQL
// subset must produce identical results on MiniDB and SQLite. This is the
// property that makes the einsum queries portable (§3.1) — any divergence
// here is a correctness bug in MiniDB (or a portability bug in the subset).

#include <gtest/gtest.h>

#include <sstream>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/rng.h"

namespace einsql::minidb {
namespace {

// A seeded random query generator over a fixed two-table schema.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    // A third of the queries mirror the shape sqlgen emits for decomposed
    // einsum programs (§3.3): a LEFT-join-free WITH chain of SUM/GROUP BY
    // steps, each consuming the previous CTE.
    if (rng_.Bernoulli(0.33)) return GenerateCteChain();
    std::ostringstream sql;
    const bool aggregate = rng_.Bernoulli(0.5);
    const bool join = rng_.Bernoulli(0.5);
    sql << "SELECT ";
    std::vector<std::string> outputs;
    if (aggregate) {
      outputs.push_back("g0");
      sql << "a.g AS g0, ";
      const int aggs = 1 + rng_.UniformInt(0, 1);
      for (int k = 0; k < aggs; ++k) {
        sql << AggExpr() << " AS agg" << k;
        outputs.push_back("agg" + std::to_string(k));
        if (k + 1 < aggs) sql << ", ";
      }
    } else {
      const int columns = 1 + rng_.UniformInt(0, 2);
      for (int k = 0; k < columns; ++k) {
        sql << ScalarExpr(join) << " AS c" << k;
        outputs.push_back("c" + std::to_string(k));
        if (k + 1 < columns) sql << ", ";
      }
    }
    sql << " FROM ta a";
    if (join) sql << ", tb b";
    std::vector<std::string> conjuncts;
    if (join) conjuncts.push_back("a.k = b.k");
    if (rng_.Bernoulli(0.7)) conjuncts.push_back(Predicate(join));
    if (!conjuncts.empty()) {
      sql << " WHERE " << conjuncts[0];
      for (size_t k = 1; k < conjuncts.size(); ++k) {
        sql << " AND " << conjuncts[k];
      }
    }
    if (aggregate) {
      sql << " GROUP BY a.g";
      if (rng_.Bernoulli(0.4)) sql << " HAVING COUNT(*) >= 1";
    }
    // Deterministic row order: sort by every output column.
    sql << " ORDER BY ";
    for (size_t k = 0; k < outputs.size(); ++k) {
      if (k > 0) sql << ", ";
      sql << outputs[k];
    }
    if (rng_.Bernoulli(0.3)) {
      sql << " LIMIT " << rng_.UniformInt(1, 8);
    }
    return sql.str();
  }

 private:
  // WITH c0 AS (aggregate of ta), c1 AS (c0 joined against tb and
  // re-aggregated), ... SELECT ... FROM cN ORDER BY ... [LIMIT ...] —
  // the same chain-of-contractions shape the einsum SQL generator produces,
  // with comma joins only (the portable subset has no LEFT JOIN).
  std::string GenerateCteChain() {
    std::ostringstream sql;
    const int steps = 2 + static_cast<int>(rng_.UniformInt(0, 2));
    sql << "WITH c0 AS (SELECT a.g AS k, SUM("
        << (rng_.Bernoulli(0.5) ? "a.x" : "a.x * a.k")
        << ") AS v FROM ta a";
    if (rng_.Bernoulli(0.5)) sql << " WHERE a.k > " << rng_.UniformInt(0, 3);
    sql << " GROUP BY a.g)";
    for (int s = 1; s < steps; ++s) {
      sql << ", c" << s << " AS (";
      const std::string prev = "c" + std::to_string(s - 1);
      if (rng_.Bernoulli(0.6)) {
        // Contraction step: join the running CTE against a base relation on
        // the shared index and SUM the product, exactly like R1-R4 per step.
        sql << "SELECT p.k AS k, SUM(p.v * b.y) AS v FROM " << prev
            << " p, tb b WHERE p.k = b.k GROUP BY p.k";
      } else {
        // Reduction-only step: no new relation, just re-aggregate.
        sql << "SELECT p.k AS k, SUM(p.v) AS v FROM " << prev
            << " p GROUP BY p.k";
      }
      sql << ")";
    }
    sql << " SELECT k, v FROM c" << steps - 1 << " ORDER BY k, v";
    if (rng_.Bernoulli(0.4)) sql << " LIMIT " << rng_.UniformInt(1, 5);
    return sql.str();
  }

  std::string Column(bool join) {
    static const char* kA[] = {"a.g", "a.k", "a.x"};
    static const char* kB[] = {"b.k", "b.y"};
    if (join && rng_.Bernoulli(0.4)) {
      return kB[rng_.UniformInt(0, 1)];
    }
    return kA[rng_.UniformInt(0, 2)];
  }

  std::string ScalarExpr(bool join) {
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return Column(join);
      case 1:
        return Column(join) + " + " + Column(join);
      case 2:
        return Column(join) + " * 2";
      default:
        return "CASE WHEN " + Column(join) + " > 2 THEN 1 ELSE 0 END";
    }
  }

  std::string AggExpr() {
    switch (rng_.UniformInt(0, 4)) {
      case 0:
        return "SUM(a.x)";
      case 1:
        return "COUNT(*)";
      case 2:
        return "MIN(a.x)";
      case 3:
        return "MAX(a.k)";
      default:
        return "SUM(a.x * a.k)";
    }
  }

  std::string Predicate(bool join) {
    switch (rng_.UniformInt(0, 4)) {
      case 0:
        return Column(join) + " > " + std::to_string(rng_.UniformInt(0, 4));
      case 1:
        return Column(join) + " BETWEEN 1 AND 3";
      case 2:
        return Column(join) + " IN (0, 2, 4)";
      case 3:
        return Column(join) + " IS NOT NULL";
      default:
        return "(" + Column(join) + " < 3 OR " + Column(join) + " = 4)";
    }
  }

  Rng rng_;
};

class DifferentialSql : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSql, MiniDbMatchesSqlite) {
  Rng data_rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::ostringstream rows_a, rows_b;
  for (int r = 0; r < 40; ++r) {
    if (r > 0) rows_a << ", ";
    rows_a << "(" << data_rng.UniformInt(0, 3) << ", "
           << data_rng.UniformInt(0, 5) << ", "
           << (data_rng.Bernoulli(0.1)
                   ? std::string("NULL")
                   : std::to_string(data_rng.UniformInt(-40, 40)) + ".5")
           << ")";
  }
  for (int r = 0; r < 25; ++r) {
    if (r > 0) rows_b << ", ";
    rows_b << "(" << data_rng.UniformInt(0, 5) << ", "
           << data_rng.UniformInt(-9, 9) << ".25)";
  }
  const std::string ddl_a = "CREATE TABLE ta (g INT, k INT, x DOUBLE)";
  const std::string ddl_b = "CREATE TABLE tb (k INT, y DOUBLE)";
  const std::string ins_a = "INSERT INTO ta VALUES " + rows_a.str();
  const std::string ins_b = "INSERT INTO tb VALUES " + rows_b.str();

  MiniDbBackend minidb;
  auto sqlite = SqliteBackend::Open().value();
  for (SqlBackend* backend :
       std::initializer_list<SqlBackend*>{&minidb, sqlite.get()}) {
    ASSERT_TRUE(backend->Execute(ddl_a).ok());
    ASSERT_TRUE(backend->Execute(ddl_b).ok());
    ASSERT_TRUE(backend->Execute(ins_a).ok());
    ASSERT_TRUE(backend->Execute(ins_b).ok());
  }

  QueryGenerator generator(static_cast<uint64_t>(GetParam()));
  for (int q = 0; q < 25; ++q) {
    const std::string sql = generator.Generate();
    auto a = minidb.Query(sql);
    auto b = sqlite->Query(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql << "\nminidb: " << a.status()
                              << "\nsqlite: " << b.status();
    if (!a.ok()) continue;
    ASSERT_EQ(a->num_rows(), b->num_rows()) << sql;
    ASSERT_EQ(a->num_columns(), b->num_columns()) << sql;
    for (int64_t r = 0; r < a->num_rows(); ++r) {
      for (int c = 0; c < a->num_columns(); ++c) {
        const Value& va = a->rows[r][c];
        const Value& vb = b->rows[r][c];
        if (IsNull(va) || IsNull(vb)) {
          EXPECT_EQ(IsNull(va), IsNull(vb)) << sql << " row " << r;
          continue;
        }
        const double da = AsDouble(va).value();
        const double db = AsDouble(vb).value();
        EXPECT_NEAR(da, db, 1e-9 * (1.0 + std::abs(db)))
            << sql << " row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSql, ::testing::Range(0, 12),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace einsql::minidb
