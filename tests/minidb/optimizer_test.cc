#include <gtest/gtest.h>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

PlannerOptions Mode(OptimizerMode mode) {
  PlannerOptions options;
  options.mode = mode;
  return options;
}

void Seed(Database* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE small (k INT, v DOUBLE)").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE big (k INT, v DOUBLE)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO small VALUES (0, 1.0), (1, 2.0)").ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back({Value(i % 2), Value(1.0)});
  }
  ASSERT_TRUE(db->BulkInsert("big", std::move(rows)).ok());
}

// All optimizer modes must compute identical results.
class OptimizerModesAgree : public ::testing::TestWithParam<OptimizerMode> {};

TEST_P(OptimizerModesAgree, JoinAggregate) {
  Database db(Mode(GetParam()));
  Seed(&db);
  auto result = db.Execute(
      "SELECT small.k, SUM(small.v * big.v) AS s FROM small, big "
      "WHERE small.k = big.k GROUP BY small.k ORDER BY small.k");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.num_rows(), 2);
  EXPECT_DOUBLE_EQ(AsDouble(result->relation.rows[0][1]).value(), 250.0);
  EXPECT_DOUBLE_EQ(AsDouble(result->relation.rows[1][1]).value(), 500.0);
}

TEST_P(OptimizerModesAgree, CteChain) {
  Database db(Mode(GetParam()));
  auto result = db.Execute(
      "WITH a(x, v) AS (VALUES (0, 2.0), (1, 3.0)), "
      "b(x, v) AS (SELECT x, v * 10 FROM a), "
      "c(x, v) AS (SELECT a.x, SUM(a.v * b.v) FROM a, b WHERE a.x = b.x "
      "GROUP BY a.x) "
      "SELECT SUM(v) AS s FROM c");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(AsDouble(result->relation.rows[0][0]).value(),
                   2.0 * 20.0 + 3.0 * 30.0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, OptimizerModesAgree,
                         ::testing::Values(OptimizerMode::kNone,
                                           OptimizerMode::kGreedy,
                                           OptimizerMode::kAggressive),
                         [](const auto& info) {
                           return OptimizerModeToString(info.param);
                         });

TEST(OptimizerTest, GreedyStartsJoinFromSmallRelation) {
  Database db(Mode(OptimizerMode::kGreedy));
  Seed(&db);
  auto plan = db.Prepare(
                    "SELECT COUNT(*) AS c FROM big, small "
                    "WHERE big.k = small.k")
                  .value();
  // The left-deep tree should place `small` first despite FROM order.
  const PlanNode* node = plan.root.get();
  while (!node->children.empty()) node = node->children[0].get();
  EXPECT_EQ(node->table_name, "small");
}

TEST(OptimizerTest, NoneModeKeepsFromOrder) {
  Database db(Mode(OptimizerMode::kNone));
  Seed(&db);
  auto plan = db.Prepare(
                    "SELECT COUNT(*) AS c FROM big, small "
                    "WHERE big.k = small.k")
                  .value();
  const PlanNode* node = plan.root.get();
  while (!node->children.empty()) node = node->children[0].get();
  EXPECT_EQ(node->table_name, "big");
}

TEST(OptimizerTest, AggressiveDeduplicatesIdenticalCtes) {
  Database db(Mode(OptimizerMode::kAggressive));
  auto plan = db.Prepare(
                    "WITH t1(i, val) AS (VALUES (0, 1.0), (1, 1.0)), "
                    "t2(i, val) AS (VALUES (0, 1.0), (1, 1.0)), "
                    "t3(i, val) AS (VALUES (0, 2.0)) "
                    "SELECT SUM(t1.val * t2.val * t3.val) AS s "
                    "FROM t1, t2, t3 "
                    "WHERE t1.i = t2.i AND t2.i = t3.i")
                  .value();
  // t1 and t2 are structurally identical and must collapse into one CTE.
  EXPECT_EQ(plan.ctes.size(), 2u);
  // Result must be unaffected.
  Database db2(Mode(OptimizerMode::kAggressive));
  auto result = db2.Execute(
      "WITH t1(i, val) AS (VALUES (0, 1.0), (1, 1.0)), "
      "t2(i, val) AS (VALUES (0, 1.0), (1, 1.0)), "
      "t3(i, val) AS (VALUES (0, 2.0)) "
      "SELECT SUM(t1.val * t2.val * t3.val) AS s "
      "FROM t1, t2, t3 "
      "WHERE t1.i = t2.i AND t2.i = t3.i");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(AsDouble(result->relation.rows[0][0]).value(), 2.0);
}

TEST(OptimizerTest, GreedyDoesNotDeduplicateCtes) {
  Database db(Mode(OptimizerMode::kGreedy));
  auto plan = db.Prepare(
                    "WITH t1(i) AS (VALUES (0)), t2(i) AS (VALUES (0)) "
                    "SELECT COUNT(*) AS c FROM t1, t2")
                  .value();
  EXPECT_EQ(plan.ctes.size(), 2u);
}

TEST(OptimizerTest, ExhaustiveModeExceedsBudgetOnLargeCteChains) {
  PlannerOptions options = Mode(OptimizerMode::kExhaustive);
  options.optimizer_budget = 100'000;
  Database db(options);
  // Build a WITH chain of 40 CTEs: 2^40 enumeration leaves >> budget.
  std::string sql = "WITH c0(x) AS (VALUES (1))";
  for (int i = 1; i < 40; ++i) {
    sql += ", c" + std::to_string(i) + "(x) AS (SELECT x + 1 FROM c" +
           std::to_string(i - 1) + ")";
  }
  sql += " SELECT x FROM c39";
  auto result = db.Execute(sql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(OptimizerTest, ExhaustiveModeFinishesSmallQueries) {
  Database db(Mode(OptimizerMode::kExhaustive));
  auto result = db.Execute(
      "WITH a(x) AS (VALUES (1), (2)), b(y) AS (SELECT x * 2 FROM a) "
      "SELECT SUM(y) AS s FROM b");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(AsInt(result->relation.rows[0][0]).value(), 6);
}

TEST(OptimizerTest, PlanToStringMentionsOperators) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b DOUBLE)").ok());
  auto plan =
      db.Prepare("SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY s DESC")
          .value();
  const std::string dump = plan.ToString();
  EXPECT_NE(dump.find("HashAggregate"), std::string::npos) << dump;
  EXPECT_NE(dump.find("Sort"), std::string::npos);
  EXPECT_NE(dump.find("Scan t"), std::string::npos);
}

TEST(OptimizerTest, ModeNames) {
  EXPECT_STREQ(OptimizerModeToString(OptimizerMode::kNone), "none");
  EXPECT_STREQ(OptimizerModeToString(OptimizerMode::kGreedy), "greedy");
  EXPECT_STREQ(OptimizerModeToString(OptimizerMode::kAggressive),
               "aggressive");
  EXPECT_STREQ(OptimizerModeToString(OptimizerMode::kExhaustive),
               "exhaustive");
}

}  // namespace
}  // namespace einsql::minidb
