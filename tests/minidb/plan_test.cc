#include "minidb/plan.h"

#include <gtest/gtest.h>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

TEST(ResolveColumnTest, Unqualified) {
  Schema schema = {{"a", "i"}, {"a", "val"}, {"b", "j"}};
  EXPECT_EQ(ResolveColumn(schema, "", "val").value(), 1);
  EXPECT_EQ(ResolveColumn(schema, "", "j").value(), 2);
}

TEST(ResolveColumnTest, Qualified) {
  Schema schema = {{"a", "i"}, {"b", "i"}};
  EXPECT_EQ(ResolveColumn(schema, "a", "i").value(), 0);
  EXPECT_EQ(ResolveColumn(schema, "b", "i").value(), 1);
}

TEST(ResolveColumnTest, AmbiguousUnqualified) {
  Schema schema = {{"a", "i"}, {"b", "i"}};
  auto result = ResolveColumn(schema, "", "i");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ambiguous"), std::string::npos);
}

TEST(ResolveColumnTest, NotFound) {
  Schema schema = {{"a", "i"}};
  EXPECT_EQ(ResolveColumn(schema, "", "zzz").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(ResolveColumn(schema, "wrong", "i").ok());
}

TEST(ResolveColumnTest, CaseInsensitive) {
  Schema schema = {{"Table", "Col"}};
  EXPECT_EQ(ResolveColumn(schema, "TABLE", "col").value(), 0);
}

TEST(PlanKindTest, Names) {
  EXPECT_STREQ(PlanKindToString(PlanKind::kScan), "Scan");
  EXPECT_STREQ(PlanKindToString(PlanKind::kJoin), "HashJoin");
  EXPECT_STREQ(PlanKindToString(PlanKind::kAggregate), "HashAggregate");
}

class PlanFromQuery : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE a (i INT, x DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("CREATE TABLE b (i INT, y DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO a VALUES (1, 2.0)").ok());
  }
  Database db_;
};

TEST_F(PlanFromQuery, CloneIsStructurallyIdentical) {
  auto plan = db_.Prepare(
                    "SELECT a.i, SUM(a.x * b.y) AS s FROM a, b "
                    "WHERE a.i = b.i AND a.x > 0 GROUP BY a.i "
                    "ORDER BY s DESC LIMIT 3")
                  .value();
  auto clone = plan.root->Clone();
  EXPECT_EQ(plan.root->Fingerprint(), clone->Fingerprint());
  EXPECT_EQ(plan.root->ToString(), clone->ToString());
}

TEST_F(PlanFromQuery, FingerprintDistinguishesPlans) {
  auto p1 = db_.Prepare("SELECT i FROM a WHERE x > 1").value();
  auto p2 = db_.Prepare("SELECT i FROM a WHERE x > 2").value();
  auto p3 = db_.Prepare("SELECT i FROM a WHERE x > 1").value();
  EXPECT_NE(p1.root->Fingerprint(), p2.root->Fingerprint());
  EXPECT_EQ(p1.root->Fingerprint(), p3.root->Fingerprint());
}

TEST_F(PlanFromQuery, ToStringShowsOperatorsAndEstimates) {
  auto plan = db_.Prepare(
                    "WITH c(i) AS (VALUES (1), (2)) "
                    "SELECT COUNT(*) AS n FROM a, c WHERE a.i = c.i")
                  .value();
  const std::string dump = plan.ToString();
  EXPECT_NE(dump.find("CTE c"), std::string::npos) << dump;
  EXPECT_NE(dump.find("Values (2 rows)"), std::string::npos);
  EXPECT_NE(dump.find("HashJoin"), std::string::npos);
  EXPECT_NE(dump.find("rows"), std::string::npos);
}

TEST_F(PlanFromQuery, EstimatedRowsReflectTableSizes) {
  ASSERT_TRUE(
      db_.Execute("INSERT INTO a VALUES (2, 1.0), (3, 1.0), (4, 1.0)").ok());
  auto plan = db_.Prepare("SELECT i FROM a").value();
  // Scan of 4 rows propagates through the projection estimate.
  EXPECT_DOUBLE_EQ(plan.root->est_rows, 4.0);
}

TEST(RelationToStringTest, TruncatesLongOutput) {
  Relation r;
  r.columns = {{"v", ValueType::kInt}};
  for (int64_t i = 0; i < 30; ++i) r.rows.push_back({Value(i)});
  const std::string text = r.ToString(5);
  EXPECT_NE(text.find("25 more rows"), std::string::npos) << text;
}

}  // namespace
}  // namespace einsql::minidb
