// Tests for the §5-inspired execution features: prepared-plan reuse (plan
// caching) and concurrent materialization of independent CTEs.

#include <gtest/gtest.h>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

TEST(PreparedQueryTest, ReexecutesWithoutPlanning) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, v DOUBLE)");
  RunSql(&db, "INSERT INTO t VALUES (0, 1.0), (1, 2.0)");
  auto plan = db.Prepare("SELECT SUM(v) AS s FROM t").value();
  auto first = db.ExecutePrepared(plan).value();
  EXPECT_DOUBLE_EQ(AsDouble(first.relation.rows[0][0]).value(), 3.0);
  EXPECT_DOUBLE_EQ(first.stats.planning_seconds(), 0.0);

  // The prepared plan sees rows inserted later (it pins the table object,
  // not a snapshot).
  RunSql(&db, "INSERT INTO t VALUES (2, 4.0)");
  auto second = db.ExecutePrepared(plan).value();
  EXPECT_DOUBLE_EQ(AsDouble(second.relation.rows[0][0]).value(), 7.0);
}

TEST(PreparedQueryTest, RepeatedExecutionIsStable) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (5), (7)");
  auto plan = db.Prepare("SELECT v FROM t ORDER BY v DESC").value();
  for (int round = 0; round < 10; ++round) {
    auto result = db.ExecutePrepared(plan).value();
    ASSERT_EQ(result.relation.num_rows(), 2);
    EXPECT_EQ(AsInt(result.relation.rows[0][0]).value(), 7);
  }
}

TEST(ParallelCteTest, IndependentCtesProduceSameResult) {
  Database sequential;
  Database parallel;
  parallel.executor_options().parallel_ctes = true;
  parallel.executor_options().num_threads = 4;
  const std::string sql =
      "WITH a(x) AS (VALUES (1), (2), (3)), "
      "b(x) AS (VALUES (10), (20)), "
      "c(x) AS (VALUES (100)), "
      "d(x) AS (SELECT a.x * 2 FROM a), "
      "e(x) AS (SELECT b.x + c.x FROM b, c) "
      "SELECT SUM(d.x) + SUM(e.x) AS total FROM d, e";
  auto expected = sequential.Execute(sql).value();
  auto got = parallel.Execute(sql).value();
  EXPECT_EQ(CompareValues(expected.relation.rows[0][0],
                          got.relation.rows[0][0]),
            0);
}

TEST(ParallelCteTest, DeepChainRespectsDependencies) {
  Database db;
  db.executor_options().parallel_ctes = true;
  db.executor_options().num_threads = 8;
  // c_k depends on c_{k-1}: no parallelism available, order must hold.
  std::string sql = "WITH c0(x) AS (VALUES (1))";
  for (int k = 1; k < 30; ++k) {
    sql += ", c" + std::to_string(k) + "(x) AS (SELECT x + 1 FROM c" +
           std::to_string(k - 1) + ")";
  }
  sql += " SELECT x FROM c29";
  auto result = db.Execute(sql).value();
  EXPECT_EQ(AsInt(result.relation.rows[0][0]).value(), 30);
}

TEST(ParallelCteTest, WideFanoutAggregatesCorrectly) {
  Database db;
  db.executor_options().parallel_ctes = true;
  // 40 independent single-row CTEs cross-joined into one sum.
  std::string sql = "WITH ";
  for (int k = 0; k < 40; ++k) {
    if (k > 0) sql += ", ";
    sql += "t" + std::to_string(k) + "(x) AS (VALUES (" +
           std::to_string(k) + "))";
  }
  sql += ", total(v) AS (SELECT ";
  for (int k = 0; k < 40; ++k) {
    if (k > 0) sql += " + ";
    sql += "t" + std::to_string(k) + ".x";
  }
  sql += " FROM ";
  for (int k = 0; k < 40; ++k) {
    if (k > 0) sql += ", ";
    sql += "t" + std::to_string(k);
  }
  sql += ") SELECT v FROM total";
  auto result = db.Execute(sql).value();
  EXPECT_EQ(AsInt(result.relation.rows[0][0]).value(), 39 * 40 / 2);
}

TEST(ParallelCteTest, ErrorInOneCteSurfaces) {
  Database db;
  db.executor_options().parallel_ctes = true;
  // Division produces NULL, not an error, in this engine — use an unknown
  // function to force a runtime error inside a CTE.
  auto result = db.Execute(
      "WITH a(x) AS (VALUES (1)), b(x) AS (SELECT nosuchfn(x) FROM a) "
      "SELECT x FROM b");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace einsql::minidb
