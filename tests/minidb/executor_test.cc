#include <gtest/gtest.h>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

// Convenience: run a query and return the relation, failing the test on
// error.
Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

double D(const Value& v) { return AsDouble(v).value(); }
int64_t I(const Value& v) { return AsInt(v).value(); }

TEST(DatabaseTest, SelectConstant) {
  Database db;
  Relation r = RunSql(&db, "SELECT 1 + 2 AS x, 'abc' AS s");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(I(r.rows[0][0]), 3);
  EXPECT_EQ(std::get<std::string>(r.rows[0][1]), "abc");
  EXPECT_EQ(r.columns[0].name, "x");
}

TEST(DatabaseTest, SelectWithoutFromWhereFalse) {
  Database db;
  Relation r = RunSql(&db, "SELECT 1 WHERE 1=0");
  EXPECT_EQ(r.num_rows(), 0);
}

TEST(DatabaseTest, CreateInsertSelect) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, val DOUBLE)");
  RunSql(&db, "INSERT INTO t VALUES (0, 1.5), (1, 2.5), (2, 4.0)");
  Relation r = RunSql(&db, "SELECT i, val FROM t ORDER BY i");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[2][0]), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[2][1]), 4.0);
}

TEST(DatabaseTest, InsertWithColumnListReorders) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, j INT)");
  RunSql(&db, "INSERT INTO t (j, i) VALUES (20, 10)");
  Relation r = RunSql(&db, "SELECT i, j FROM t");
  EXPECT_EQ(I(r.rows[0][0]), 10);
  EXPECT_EQ(I(r.rows[0][1]), 20);
}

TEST(DatabaseTest, InsertArityMismatchFails) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, j INT)");
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST(DatabaseTest, DropTable) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "DROP TABLE t");
  EXPECT_FALSE(db.Execute("SELECT * FROM t").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE t").ok());
  RunSql(&db, "DROP TABLE IF EXISTS t");
}

TEST(DatabaseTest, DeleteWithWhere) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3), (4)");
  RunSql(&db, "DELETE FROM t WHERE i % 2 = 0");
  Relation r = RunSql(&db, "SELECT i FROM t ORDER BY i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 1);
  EXPECT_EQ(I(r.rows[1][0]), 3);
}

TEST(DatabaseTest, WhereFilters) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, val DOUBLE)");
  RunSql(&db, "INSERT INTO t VALUES (0, 1.0), (1, -2.0), (2, 3.0)");
  Relation r = RunSql(&db, "SELECT i FROM t WHERE val > 0 ORDER BY i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 0);
  EXPECT_EQ(I(r.rows[1][0]), 2);
}

TEST(DatabaseTest, HashJoinOnEquality) {
  Database db;
  RunSql(&db, "CREATE TABLE a (i INT, x DOUBLE)");
  RunSql(&db, "CREATE TABLE b (i INT, y DOUBLE)");
  RunSql(&db, "INSERT INTO a VALUES (1, 10.0), (2, 20.0), (3, 30.0)");
  RunSql(&db, "INSERT INTO b VALUES (2, 200.0), (3, 300.0), (4, 400.0)");
  Relation r =
      RunSql(&db, "SELECT a.i, a.x + b.y AS s FROM a, b WHERE a.i = b.i "
               "ORDER BY a.i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 220.0);
  EXPECT_DOUBLE_EQ(D(r.rows[1][1]), 330.0);
}

TEST(DatabaseTest, CrossJoinWithoutPredicate) {
  Database db;
  RunSql(&db, "CREATE TABLE a (i INT)");
  RunSql(&db, "CREATE TABLE b (j INT)");
  RunSql(&db, "INSERT INTO a VALUES (1), (2)");
  RunSql(&db, "INSERT INTO b VALUES (10), (20), (30)");
  Relation r = RunSql(&db, "SELECT a.i, b.j FROM a, b");
  EXPECT_EQ(r.num_rows(), 6);
}

TEST(DatabaseTest, SelfJoinWithAliases) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, v INT)");
  RunSql(&db, "INSERT INTO t VALUES (0, 1), (1, 2), (2, 4)");
  Relation r = RunSql(&db,
                   "SELECT x.i, x.v * y.v AS p FROM t x, t y "
                   "WHERE x.i = y.i ORDER BY x.i");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[2][1]), 16);
}

TEST(DatabaseTest, ThreeWayJoinTransitive) {
  Database db;
  RunSql(&db, "CREATE TABLE u (i INT, v INT)");
  RunSql(&db, "CREATE TABLE v (i INT, v INT)");
  RunSql(&db, "CREATE TABLE w (i INT, v INT)");
  for (const char* t : {"u", "v", "w"}) {
    RunSql(&db, std::string("INSERT INTO ") + t + " VALUES (0, 2), (1, 3)");
  }
  Relation r = RunSql(&db,
                   "SELECT u.i, u.v * v.v * w.v AS p FROM u, v, w "
                   "WHERE u.i = v.i AND v.i = w.i ORDER BY u.i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][1]), 8);
  EXPECT_EQ(I(r.rows[1][1]), 27);
}

TEST(DatabaseTest, GroupByWithSum) {
  Database db;
  RunSql(&db, "CREATE TABLE t (g INT, v DOUBLE)");
  RunSql(&db, "INSERT INTO t VALUES (0, 1.0), (0, 2.0), (1, 5.0)");
  Relation r = RunSql(&db, "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 3.0);
  EXPECT_DOUBLE_EQ(D(r.rows[1][1]), 5.0);
}

TEST(DatabaseTest, AggregatesOverWholeTable) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (4), (1), (3)");
  Relation r = RunSql(&db,
                   "SELECT SUM(v) AS s, COUNT(*) AS c, AVG(v) AS a, "
                   "MIN(v) AS lo, MAX(v) AS hi FROM t");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(I(r.rows[0][0]), 8);
  EXPECT_EQ(I(r.rows[0][1]), 3);
  EXPECT_DOUBLE_EQ(D(r.rows[0][2]), 8.0 / 3.0);
  EXPECT_EQ(I(r.rows[0][3]), 1);
  EXPECT_EQ(I(r.rows[0][4]), 4);
}

TEST(DatabaseTest, SumOverEmptyTableIsNullCountZero) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  Relation r = RunSql(&db, "SELECT SUM(v) AS s, COUNT(*) AS c FROM t");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_TRUE(IsNull(r.rows[0][0]));
  EXPECT_EQ(I(r.rows[0][1]), 0);
}

TEST(DatabaseTest, GroupByOnEmptyTableIsEmpty) {
  Database db;
  RunSql(&db, "CREATE TABLE t (g INT, v INT)");
  Relation r = RunSql(&db, "SELECT g, SUM(v) FROM t GROUP BY g");
  EXPECT_EQ(r.num_rows(), 0);
}

TEST(DatabaseTest, AggregateSkipsNulls) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (NULL), (3)");
  Relation r = RunSql(&db, "SELECT SUM(v) AS s, COUNT(v) AS c FROM t");
  EXPECT_EQ(I(r.rows[0][0]), 4);
  EXPECT_EQ(I(r.rows[0][1]), 2);
}

TEST(DatabaseTest, SumOfProductInsideGroups) {
  Database db;
  RunSql(&db, "CREATE TABLE a (k INT, v DOUBLE)");
  RunSql(&db, "CREATE TABLE b (k INT, v DOUBLE)");
  RunSql(&db, "INSERT INTO a VALUES (0, 2.0), (1, 3.0)");
  RunSql(&db, "INSERT INTO b VALUES (0, 10.0), (0, 20.0), (1, 5.0)");
  Relation r = RunSql(&db,
                   "SELECT a.k, SUM(a.v * b.v) AS s FROM a, b "
                   "WHERE a.k = b.k GROUP BY a.k ORDER BY a.k");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 60.0);
  EXPECT_DOUBLE_EQ(D(r.rows[1][1]), 15.0);
}

TEST(DatabaseTest, DistinctRemovesDuplicates) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (1), (2), (2), (2)");
  Relation r = RunSql(&db, "SELECT DISTINCT v FROM t ORDER BY v");
  ASSERT_EQ(r.num_rows(), 2);
}

TEST(DatabaseTest, OrderByDescendingAndLimit) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (3), (1), (4), (1), (5)");
  Relation r = RunSql(&db, "SELECT v FROM t ORDER BY v DESC LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 5);
  EXPECT_EQ(I(r.rows[1][0]), 4);
}

TEST(DatabaseTest, OrderByPosition) {
  Database db;
  RunSql(&db, "CREATE TABLE t (a INT, b INT)");
  RunSql(&db, "INSERT INTO t VALUES (2, 9), (1, 8)");
  Relation r = RunSql(&db, "SELECT a, b FROM t ORDER BY 1");
  EXPECT_EQ(I(r.rows[0][0]), 1);
}

TEST(DatabaseTest, StarExpansion) {
  Database db;
  RunSql(&db, "CREATE TABLE t (a INT, b INT)");
  RunSql(&db, "INSERT INTO t VALUES (1, 2)");
  Relation r = RunSql(&db, "SELECT * FROM t");
  ASSERT_EQ(r.num_columns(), 2);
  EXPECT_EQ(r.columns[0].name, "a");
}

TEST(DatabaseTest, CteBasic) {
  Database db;
  Relation r = RunSql(&db,
                   "WITH nums(n) AS (VALUES (1), (2), (3)) "
                   "SELECT SUM(n) AS total FROM nums");
  EXPECT_EQ(I(r.rows[0][0]), 6);
}

TEST(DatabaseTest, CteChainReferencesEarlierCte) {
  Database db;
  Relation r = RunSql(&db,
                   "WITH a(x) AS (VALUES (1), (2)), "
                   "b(y) AS (SELECT x * 10 FROM a) "
                   "SELECT SUM(y) AS s FROM b");
  EXPECT_EQ(I(r.rows[0][0]), 30);
}

TEST(DatabaseTest, CteReferencedTwice) {
  Database db;
  Relation r = RunSql(&db,
                   "WITH a(x) AS (VALUES (1), (2)) "
                   "SELECT SUM(l.x * r.x) AS s FROM a l, a r");
  EXPECT_EQ(I(r.rows[0][0]), 9);  // (1+2)*(1+2)
}

TEST(DatabaseTest, PaperListing4EinsumQuery) {
  // The complete example from the paper (Listing 4): ac,bc,b->a.
  Database db;
  Relation r = RunSql(&db,
                   "WITH A(i, j, val) AS ("
                   "  VALUES (0, 0, 1.0), (1, 1, 2.0)"
                   "), B(i, j, val) AS ("
                   "  VALUES (0, 0, 3.0), (0, 1, 4.0), (1, 0, 5.0),"
                   "         (1, 1, 6.0), (2, 1, 7.0)"
                   "), v(i, val) AS ("
                   "  VALUES (0, 8.0), (2, 9.0)"
                   ") SELECT A.i AS i,"
                   "         SUM(A.val * B.val * v.val) AS val"
                   "  FROM   A, B, v"
                   "  WHERE  A.j=B.j AND B.i=v.i"
                   "  GROUP  BY A.i ORDER BY A.i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 24.0);
  EXPECT_DOUBLE_EQ(D(r.rows[1][1]), 190.0);
}

TEST(DatabaseTest, PaperListing6DecomposedQuery) {
  Database db;
  Relation r = RunSql(&db,
                   "WITH A(i, j, val) AS ("
                   "  VALUES (0, 0, 1.0), (1, 1, 2.0)"
                   "), B(i, j, val) AS ("
                   "  VALUES (0, 0, 3.0), (0, 1, 4.0), (1, 0, 5.0),"
                   "         (1, 1, 6.0), (2, 1, 7.0)"
                   "), v(i, val) AS ("
                   "  VALUES (0, 8.0), (2, 9.0)"
                   "), k(i, val) AS ("
                   "  SELECT B.j, SUM(v.val * B.val)"
                   "  FROM v, B WHERE v.i=B.i GROUP BY B.j"
                   ") SELECT A.i AS i, SUM(k.val * A.val) AS val"
                   "  FROM k, A WHERE k.i=A.j GROUP BY A.i ORDER BY A.i");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 24.0);
  EXPECT_DOUBLE_EQ(D(r.rows[1][1]), 190.0);
}

TEST(DatabaseTest, EmptyValuesBranchViaWhereFalse) {
  Database db;
  Relation r = RunSql(&db,
                   "WITH e(i, val) AS (SELECT 0, 0.0 WHERE 1=0) "
                   "SELECT COUNT(*) AS c FROM e");
  EXPECT_EQ(I(r.rows[0][0]), 0);
}

TEST(DatabaseTest, ScalarFunctions) {
  Database db;
  Relation r = RunSql(&db,
                   "SELECT abs(-3) AS a, coalesce(NULL, 7) AS c, "
                   "length('abcd') AS l, mod(7, 3) AS m, floor(2.7) AS f, "
                   "sqrt(9.0) AS q, pow(2, 10) AS p");
  EXPECT_EQ(I(r.rows[0][0]), 3);
  EXPECT_EQ(I(r.rows[0][1]), 7);
  EXPECT_EQ(I(r.rows[0][2]), 4);
  EXPECT_EQ(I(r.rows[0][3]), 1);
  EXPECT_DOUBLE_EQ(D(r.rows[0][4]), 2.0);
  EXPECT_DOUBLE_EQ(D(r.rows[0][5]), 3.0);
  EXPECT_DOUBLE_EQ(D(r.rows[0][6]), 1024.0);
}

TEST(DatabaseTest, NullComparisonsAreNotTrue) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (NULL)");
  Relation eq = RunSql(&db, "SELECT COUNT(*) AS c FROM t WHERE v = v");
  EXPECT_EQ(I(eq.rows[0][0]), 1);  // NULL = NULL is not true
  Relation is_null = RunSql(&db, "SELECT COUNT(*) AS c FROM t WHERE v IS NULL");
  EXPECT_EQ(I(is_null.rows[0][0]), 1);
}


TEST(DatabaseTest, NullJoinKeysNeverMatch) {
  Database db;
  RunSql(&db, "CREATE TABLE a (k INT, x INT)");
  RunSql(&db, "CREATE TABLE b (k INT, y INT)");
  RunSql(&db, "INSERT INTO a VALUES (NULL, 1), (2, 2)");
  RunSql(&db, "INSERT INTO b VALUES (NULL, 10), (2, 20)");
  Relation r = RunSql(&db,
                      "SELECT a.x, b.y FROM a, b WHERE a.k = b.k");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(I(r.rows[0][0]), 2);
}

TEST(DatabaseTest, DistinctTreatsNullsAsEqual) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (NULL), (NULL), (1)");
  Relation r = RunSql(&db, "SELECT DISTINCT v FROM t");
  EXPECT_EQ(r.num_rows(), 2);
}

TEST(DatabaseTest, GroupByNullGroupsTogether) {
  Database db;
  RunSql(&db, "CREATE TABLE t (g INT, v INT)");
  RunSql(&db, "INSERT INTO t VALUES (NULL, 1), (NULL, 2), (3, 4)");
  Relation r = RunSql(&db, "SELECT g, SUM(v) AS s FROM t GROUP BY g "
                           "ORDER BY s");
  ASSERT_EQ(r.num_rows(), 2);
  // NULL group sums 1+2=3; group 3 sums 4.
  EXPECT_EQ(I(r.rows[0][1]), 3);
  EXPECT_EQ(I(r.rows[1][1]), 4);
}

TEST(DatabaseTest, OrderBySortsNullsFirst) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (2), (NULL), (1)");
  Relation r = RunSql(&db, "SELECT v FROM t ORDER BY v");
  EXPECT_TRUE(IsNull(r.rows[0][0]));
  EXPECT_EQ(I(r.rows[1][0]), 1);
}

TEST(DatabaseTest, UnknownTableError) {
  Database db;
  auto result = db.Execute("SELECT * FROM missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, UnknownColumnError) {
  Database db;
  RunSql(&db, "CREATE TABLE t (a INT)");
  EXPECT_FALSE(db.Execute("SELECT b FROM t").ok());
}

TEST(DatabaseTest, AmbiguousColumnError) {
  Database db;
  RunSql(&db, "CREATE TABLE a (x INT)");
  RunSql(&db, "CREATE TABLE b (x INT)");
  RunSql(&db, "INSERT INTO a VALUES (1)");
  RunSql(&db, "INSERT INTO b VALUES (1)");
  EXPECT_FALSE(db.Execute("SELECT x FROM a, b").ok());
}

TEST(DatabaseTest, DuplicateAliasRejected) {
  Database db;
  RunSql(&db, "CREATE TABLE t (x INT)");
  EXPECT_FALSE(db.Execute("SELECT * FROM t a, t a").ok());
}

TEST(DatabaseTest, AggregateOutsideAggregationFailsInWhere) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(db.Execute("SELECT v FROM t WHERE SUM(v) > 0").ok());
}

TEST(DatabaseTest, StatsArePopulated) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2)");
  auto result = db.Execute("SELECT SUM(v) FROM t").value();
  EXPECT_GE(result.stats.parse_seconds, 0.0);
  EXPECT_GE(result.stats.plan_seconds, 0.0);
  EXPECT_GT(result.stats.total_seconds(), 0.0);
}

TEST(DatabaseTest, PrepareReturnsPlanWithoutExecuting) {
  Database db;
  RunSql(&db, "CREATE TABLE t (v INT)");
  QueryStats stats;
  auto plan = db.Prepare("SELECT SUM(v) AS s FROM t", &stats).value();
  EXPECT_TRUE(plan.root != nullptr);
  EXPECT_GE(stats.planning_seconds(), 0.0);
  EXPECT_FALSE(db.Prepare("CREATE TABLE u (v INT)").ok());
}

TEST(DatabaseTest, BulkInsertFastPath) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"i", ValueType::kInt},
                                   {"val", ValueType::kDouble}})
                  .ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1000; ++i) {
    rows.push_back({Value(i), Value(static_cast<double>(i) * 0.5)});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  Relation r = RunSql(&db, "SELECT COUNT(*) AS c, SUM(val) AS s FROM t");
  EXPECT_EQ(I(r.rows[0][0]), 1000);
  EXPECT_DOUBLE_EQ(D(r.rows[0][1]), 0.5 * 999.0 * 1000.0 / 2.0);
}

TEST(DatabaseTest, CaseInsensitiveNames) {
  Database db;
  RunSql(&db, "CREATE TABLE Tensor (I INT, Val DOUBLE)");
  RunSql(&db, "INSERT INTO tensor VALUES (1, 2.0)");
  Relation r = RunSql(&db, "SELECT i, VAL FROM TENSOR");
  EXPECT_EQ(r.num_rows(), 1);
}

}  // namespace
}  // namespace einsql::minidb
