// NULL-semantics edge cases for the vectorized kernels, asserted equal
// between the row interpreter and the column-at-a-time path: three-valued
// comparisons and connectives, NULL propagation through arithmetic,
// aggregates over all-NULL and empty inputs, and the typed int fast path
// degrading on NULL keys (row skip for joins, generic fallback for
// GROUP BY and the whole-path abandon for untyped values).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

void Configure(Database* db, bool vectorized, bool parallel) {
  db->executor_options().vectorized = vectorized;
  db->executor_options().parallel_operators = parallel;
  db->executor_options().parallel_ctes = false;
  db->executor_options().num_threads = parallel ? 4 : 0;
  db->executor_options().morsel_rows = 2;
}

void ExpectSameRelation(const Relation& a, const Relation& b,
                        std::string_view what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.rows[r], b.rows[r]) << what << ": row " << r;
  }
}

void ExpectVectorMatchesRow(const std::vector<std::string>& load,
                            std::string_view sql) {
  Database row_seq, vec_seq, row_par, vec_par;
  Configure(&row_seq, /*vectorized=*/false, /*parallel=*/false);
  Configure(&vec_seq, /*vectorized=*/true, /*parallel=*/false);
  Configure(&row_par, /*vectorized=*/false, /*parallel=*/true);
  Configure(&vec_par, /*vectorized=*/true, /*parallel=*/true);
  for (const std::string& statement : load) {
    RunSql(&row_seq, statement);
    RunSql(&vec_seq, statement);
    RunSql(&row_par, statement);
    RunSql(&vec_par, statement);
  }
  const Relation expected = RunSql(&row_seq, sql);
  ExpectSameRelation(expected, RunSql(&vec_seq, sql), "vectorized sequential");
  ExpectSameRelation(RunSql(&row_par, sql), RunSql(&vec_par, sql),
                     "vectorized parallel (morsel_rows=2)");
}

// i=2 and i=5 carry NULL values; i=6 is NULL in both columns.
const std::vector<std::string> kNullable = {
    "CREATE TABLE n (i INT, v DOUBLE)",
    "INSERT INTO n VALUES (0, 1.0), (1, -2.0), (2, NULL), (3, 4.0), "
    "(4, 0.0), (5, NULL), (NULL, 7.0), (NULL, NULL)"};

// ---------------------------------------------------------------------
// Three-valued logic in filters
// ---------------------------------------------------------------------

TEST(VectorizedNullTest, ComparisonsAgainstNullNeverPass) {
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE v > 0.0");
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE v <= 1.0");
  ExpectVectorMatchesRow(kNullable, "SELECT v FROM n WHERE i = i");
  // A literal NULL comparison is NULL for every row.
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE v = NULL");
}

TEST(VectorizedNullTest, IsNullPredicates) {
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE v IS NULL");
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE v IS NOT NULL");
  ExpectVectorMatchesRow(
      kNullable, "SELECT i FROM n WHERE i IS NULL AND v IS NOT NULL");
}

TEST(VectorizedNullTest, ConnectivesWithNullOperands) {
  // NULL AND false = false, NULL AND true = NULL, NULL OR true = true,
  // NULL OR false = NULL, NOT NULL = NULL — only definite-true rows pass.
  ExpectVectorMatchesRow(kNullable,
                         "SELECT i FROM n WHERE v > 0.0 AND i < 100");
  ExpectVectorMatchesRow(kNullable,
                         "SELECT i FROM n WHERE v > 0.0 OR i = 4");
  ExpectVectorMatchesRow(kNullable, "SELECT i FROM n WHERE NOT (v > 0.0)");
  ExpectVectorMatchesRow(
      kNullable, "SELECT i FROM n WHERE NOT (v > 0.0 OR i IS NULL)");
}

TEST(VectorizedNullTest, NullsAsProjectedTruthValues) {
  ExpectVectorMatchesRow(
      kNullable, "SELECT v > 0.0, v IS NULL, NOT (i = 3) FROM n");
}

// ---------------------------------------------------------------------
// Selectivity extremes over all-NULL columns: 0% (nothing passes), 100%
// (everything passes), and exactly-one-row selections must agree with the
// row path — these are the boundary shapes of the selection-vector filter
// (empty selection early-out, full selection, singleton gather).
// ---------------------------------------------------------------------

// 20 rows whose `x` column is entirely NULL; `i` is 0..19 so predicates
// can dial in any selectivity. Small morsels (morsel_rows=2 in Configure)
// put batch boundaries inside every run of rows.
const std::vector<std::string> kAllNullColumn = {
    "CREATE TABLE an (i INT, x DOUBLE)",
    "INSERT INTO an VALUES "
    "(0, NULL), (1, NULL), (2, NULL), (3, NULL), (4, NULL), "
    "(5, NULL), (6, NULL), (7, NULL), (8, NULL), (9, NULL), "
    "(10, NULL), (11, NULL), (12, NULL), (13, NULL), (14, NULL), "
    "(15, NULL), (16, NULL), (17, NULL), (18, NULL), (19, NULL)"};

TEST(VectorizedNullTest, ZeroSelectivityOverAllNullColumn) {
  // Predicates on the all-NULL column are NULL for every row: the
  // selection is empty in every batch (the early-out path).
  ExpectVectorMatchesRow(kAllNullColumn, "SELECT i FROM an WHERE x > 0.0");
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i, x FROM an WHERE x = x");
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i FROM an WHERE x IS NOT NULL AND i < 100");
}

TEST(VectorizedNullTest, FullSelectivityOverAllNullColumn) {
  // Every row passes: the selection is the identity in every batch, and
  // the projected all-NULL column must survive the gather untouched.
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i, x FROM an WHERE x IS NULL");
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT x FROM an WHERE i >= 0 OR x > 1.0");
}

TEST(VectorizedNullTest, SingleRowSelectivityOverAllNullColumn) {
  // Exactly one surviving row, in the first, a middle, and the last
  // batch position respectively.
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i, x FROM an WHERE i = 0 AND x IS NULL");
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i, x FROM an WHERE i = 11");
  ExpectVectorMatchesRow(kAllNullColumn,
                         "SELECT i, x FROM an WHERE i = 19 AND x IS NULL");
}

// ---------------------------------------------------------------------
// NULL propagation through arithmetic
// ---------------------------------------------------------------------

TEST(VectorizedNullTest, ArithmeticPropagatesNull) {
  ExpectVectorMatchesRow(kNullable,
                         "SELECT i + 1, v * 2.0, i - v, -v FROM n");
  ExpectVectorMatchesRow(kNullable, "SELECT i / 0, i % 0, v / 0.0 FROM n");
  ExpectVectorMatchesRow(kNullable, "SELECT i + NULL FROM n");
}

// ---------------------------------------------------------------------
// Aggregates over NULLs, all-NULL groups, and empty inputs
// ---------------------------------------------------------------------

TEST(VectorizedNullTest, AggregatesSkipNulls) {
  ExpectVectorMatchesRow(
      kNullable,
      "SELECT SUM(v), COUNT(v), COUNT(*), MIN(v), MAX(v), AVG(v) FROM n");
}

TEST(VectorizedNullTest, SumOverAllNullColumnIsNull) {
  const std::vector<std::string> load = {
      "CREATE TABLE z (g INT, x DOUBLE)",
      "INSERT INTO z VALUES (0, NULL), (0, NULL), (1, 2.0), (1, NULL)"};
  // Group 0 is all-NULL: SUM/AVG/MIN/MAX are NULL, COUNT(x) is 0.
  ExpectVectorMatchesRow(
      load,
      "SELECT g, SUM(x), AVG(x), MIN(x), MAX(x), COUNT(x), COUNT(*) "
      "FROM z GROUP BY g");
}

TEST(VectorizedNullTest, GlobalAggregateOverEmptyTable) {
  const std::vector<std::string> load = {"CREATE TABLE e (x DOUBLE)"};
  ExpectVectorMatchesRow(
      load, "SELECT SUM(x), AVG(x), MIN(x), MAX(x), COUNT(x), COUNT(*) "
            "FROM e");
}

TEST(VectorizedNullTest, NullGroupKeysGroupTogether) {
  // GROUP BY treats NULL keys as one group — the typed int path cannot
  // represent that, so both executors must take the generic build.
  ExpectVectorMatchesRow(kNullable,
                         "SELECT i, COUNT(*), SUM(v) FROM n GROUP BY i");
}

// ---------------------------------------------------------------------
// Typed int fast path degradation
// ---------------------------------------------------------------------

TEST(VectorizedNullTest, JoinSkipsNullKeys) {
  const std::vector<std::string> load = {
      "CREATE TABLE a (i INT, v DOUBLE)", "CREATE TABLE b (i INT, w DOUBLE)",
      "INSERT INTO a VALUES (1, 1.0), (NULL, 2.0), (2, 3.0), (NULL, 4.0)",
      "INSERT INTO b VALUES (1, 10.0), (NULL, 20.0), (2, 30.0)"};
  // NULL = NULL is not true: NULL-keyed rows on either side never join.
  ExpectVectorMatchesRow(load,
                         "SELECT a.i, a.v, b.w FROM a, b WHERE a.i = b.i");
}

TEST(VectorizedNullTest, UntypedKeyAbandonsTypedJoinPath) {
  const std::vector<std::string> load = {
      "CREATE TABLE a (i INT)", "CREATE TABLE b (i DOUBLE)",
      "INSERT INTO a VALUES (1), (NULL), (2), (3)",
      "INSERT INTO b VALUES (1.0), (NULL), (2.5), (3.0)"};
  ExpectVectorMatchesRow(load, "SELECT a.i, b.i FROM a, b WHERE a.i = b.i");
}

TEST(VectorizedNullTest, DistinctTreatsNullsEqual) {
  ExpectVectorMatchesRow(kNullable, "SELECT DISTINCT i FROM n");
  ExpectVectorMatchesRow(kNullable, "SELECT DISTINCT i, v FROM n");
}

}  // namespace
}  // namespace einsql::minidb
