// Golden-snapshot tests for EXPLAIN and (normalized) EXPLAIN ANALYZE: a
// fixed query set is planned at every optimizer level and executed on the
// row and vectorized paths, and the rendered text must match the files
// checked in under tests/minidb/snapshots/. Plan or rendering changes are
// caught as diffs; intentional changes regenerate with
//
//   ./build/tests/minidb/explain_snapshot_test --update-snapshots
//
// EXPLAIN output is deterministic as-is. EXPLAIN ANALYZE contains wall
// times, which are scrubbed (`time=<T>`, `Execution: <T>`) before
// comparison; everything else — actual rows, group/build sizes, error
// factors, the vectorized= marker — must be stable.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

bool g_update_snapshots = false;

std::string SnapshotPath(const std::string& name) {
  return std::string(EINSQL_SNAPSHOT_DIR) + "/" + name + ".txt";
}

void CheckSnapshot(const std::string& name, const std::string& actual) {
  const std::string path = SnapshotPath(name);
  if (g_update_snapshots) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing snapshot " << path
      << " — regenerate with: explain_snapshot_test --update-snapshots";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "snapshot " << name << " diverged; if the change is intentional, "
      << "regenerate with: explain_snapshot_test --update-snapshots";
}

// Renders the one-text-column EXPLAIN relation back into plain text.
std::string DumpText(const Relation& relation) {
  std::string text;
  for (const Row& row : relation.rows) {
    text += std::get<std::string>(row[0]);
    text += "\n";
  }
  return text;
}

// Scrubs the nondeterministic fields of EXPLAIN ANALYZE: wall times, and
// the memory-accounting byte counts (estimates involve sizeof(Value) and
// friends, which differ across platforms/compilers — the *presence* of
// mem=/hash_mem=/Peak memory is pinned, the magnitudes are not).
std::string Normalize(const std::string& text) {
  static const std::regex kTime("time=[0-9.]+ ms");
  static const std::regex kExec("Execution: [0-9.]+ ms");
  static const std::regex kMem("mem=[0-9.]+ (B|KiB|MiB|GiB)");
  static const std::regex kPeak("Peak memory: [0-9.]+ (B|KiB|MiB|GiB)");
  std::string out = std::regex_replace(text, kTime, "time=<T>");
  out = std::regex_replace(out, kExec, "Execution: <T>");
  out = std::regex_replace(out, kMem, "mem=<M>");  // also hash_mem=
  return std::regex_replace(out, kPeak, "Peak memory: <M>");
}

struct SnapshotQuery {
  const char* id;
  const char* sql;
};

// The fixed query set: the paper's core einsum shapes (matmul-style
// join+aggregate, trace-style self-filter) plus a plain filter/project
// pipeline and a HAVING query, over small deterministic tables.
const SnapshotQuery kQueries[] = {
    {"matmul",
     "SELECT A.i AS i, B.j AS j, SUM(A.val * B.val) AS val "
     "FROM A, B WHERE A.j = B.i GROUP BY A.i, B.j"},
    {"trace", "SELECT SUM(A.val) AS val FROM A WHERE A.i = A.j"},
    {"filter_project",
     "SELECT A.i + A.j, A.val * 2.0 FROM A WHERE A.val > 0.5"},
    {"having",
     "SELECT A.i, COUNT(*) AS c FROM A GROUP BY A.i HAVING COUNT(*) > 1"},
};

void LoadTables(Database* db) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE A (i INT, j INT, val DOUBLE)").ok());
  ASSERT_TRUE(
      db->Execute("CREATE TABLE B (i INT, j INT, val DOUBLE)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO A VALUES (0, 0, 1.5), (0, 1, 2.0), "
                          "(1, 0, -1.0), (1, 1, 4.0), (2, 2, 0.5), "
                          "(2, 0, 3.0), (0, 2, 0.25)")
                  .ok());
  ASSERT_TRUE(db->Execute("INSERT INTO B VALUES (0, 0, 3.0), (0, 1, -2.0), "
                          "(1, 1, 1.0), (2, 0, 5.0), (1, 2, 2.5)")
                  .ok());
}

// Executors stay sequential (threads/morsel counts would differ across
// machines) and pin every env-settable option.
void Configure(Database* db, bool vectorized) {
  db->executor_options().vectorized = vectorized;
  db->executor_options().parallel_operators = false;
  db->executor_options().parallel_ctes = false;
  db->executor_options().num_threads = 0;
  db->executor_options().morsel_rows = 16384;
}

TEST(ExplainSnapshotTest, PlansAcrossOptimizerLevels) {
  const OptimizerMode kModes[] = {OptimizerMode::kNone, OptimizerMode::kGreedy,
                                  OptimizerMode::kAggressive,
                                  OptimizerMode::kExhaustive};
  for (OptimizerMode mode : kModes) {
    PlannerOptions planner;
    planner.mode = mode;
    Database db(planner);
    Configure(&db, /*vectorized=*/false);
    LoadTables(&db);
    for (const SnapshotQuery& query : kQueries) {
      auto result = db.Execute(std::string("EXPLAIN ") + query.sql);
      ASSERT_TRUE(result.ok()) << result.status() << "\nSQL: " << query.sql;
      CheckSnapshot(
          std::string(query.id) + "_" + OptimizerModeToString(mode),
          DumpText(result->relation));
    }
  }
}

TEST(ExplainSnapshotTest, AnalyzeRowVersusVector) {
  for (const bool vectorized : {false, true}) {
    Database db;
    Configure(&db, vectorized);
    LoadTables(&db);
    for (const SnapshotQuery& query : kQueries) {
      auto result = db.Execute(std::string("EXPLAIN ANALYZE ") + query.sql);
      ASSERT_TRUE(result.ok()) << result.status() << "\nSQL: " << query.sql;
      CheckSnapshot(std::string(query.id) + "_analyze_" +
                        (vectorized ? "vec" : "row"),
                    Normalize(DumpText(result->relation)));
    }
  }
}

}  // namespace
}  // namespace einsql::minidb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-snapshots") {
      einsql::minidb::g_update_snapshots = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
