// Row-vs-vector differential battery: every query here runs on the row
// interpreter, the vectorized executor, and the vectorized executor over
// real morsels (parallel, morsel_rows=2), and the results must be
// *identical* — not merely toleranced. Covers the kernel surface (filter
// predicates, projection arithmetic, joins, aggregation), the fallback
// rules (scalar functions, CASE, text), and the error-timing contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

// Pin every option the environment can set (the CI matrix forces
// MINIDB_VECTORIZED / MINIDB_PARALLEL on), so each database runs exactly
// the configuration the test names.
void Configure(Database* db, bool vectorized, bool parallel) {
  db->executor_options().vectorized = vectorized;
  db->executor_options().parallel_operators = parallel;
  db->executor_options().parallel_ctes = false;
  db->executor_options().num_threads = parallel ? 4 : 0;
  db->executor_options().morsel_rows = 2;
}

// Exact relation equality, including value *types* (int64 1 != double
// 1.0): the vectorized path must preserve int-vs-double identity.
void ExpectSameRelation(const Relation& a, const Relation& b,
                        std::string_view what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.rows[r], b.rows[r]) << what << ": row " << r;
  }
}

// The differential harness: loads the same statements into four
// databases — row/sequential, vectorized/sequential, row/parallel,
// vectorized/parallel — and requires bit-identical results between row
// and vectorized at equal morsel settings.
void ExpectVectorMatchesRow(const std::vector<std::string>& load,
                            std::string_view sql) {
  Database row_seq, vec_seq, row_par, vec_par;
  Configure(&row_seq, /*vectorized=*/false, /*parallel=*/false);
  Configure(&vec_seq, /*vectorized=*/true, /*parallel=*/false);
  Configure(&row_par, /*vectorized=*/false, /*parallel=*/true);
  Configure(&vec_par, /*vectorized=*/true, /*parallel=*/true);
  for (const std::string& statement : load) {
    RunSql(&row_seq, statement);
    RunSql(&vec_seq, statement);
    RunSql(&row_par, statement);
    RunSql(&vec_par, statement);
  }
  const Relation expected = RunSql(&row_seq, sql);
  ExpectSameRelation(expected, RunSql(&vec_seq, sql), "vectorized sequential");
  ExpectSameRelation(RunSql(&row_par, sql), RunSql(&vec_par, sql),
                     "vectorized parallel (morsel_rows=2)");
}

const std::vector<std::string> kNumbers = {
    "CREATE TABLE t (i INT, j INT, v DOUBLE)",
    "INSERT INTO t VALUES (0, 0, 1.5), (1, 2, -2.0), (2, 2, 0.25), "
    "(3, 0, 4.0), (4, 4, -0.5), (5, 3, 2.0), (6, 6, 0.0), (7, 5, 8.5)"};

// ---------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------

TEST(VectorizedFilterTest, IntComparisons) {
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i >= 3");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i = j");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i <> j");
}

TEST(VectorizedFilterTest, DoubleAndCrossTypeComparisons) {
  ExpectVectorMatchesRow(kNumbers, "SELECT v FROM t WHERE v > 0.0");
  // int column vs double literal: numeric comparison across storage class.
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i < 3.5");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE v <= i");
}

TEST(VectorizedFilterTest, BooleanConnectives) {
  ExpectVectorMatchesRow(kNumbers,
                         "SELECT i FROM t WHERE i > 1 AND v < 3.0");
  ExpectVectorMatchesRow(kNumbers,
                         "SELECT i FROM t WHERE i = 0 OR j = 2 OR v > 4.0");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE NOT (i = j)");
  ExpectVectorMatchesRow(
      kNumbers, "SELECT i FROM t WHERE NOT (i > 2 AND NOT (j = 0))");
}

TEST(VectorizedFilterTest, ArithmeticInsidePredicate) {
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i + j > 5");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE i % 2 = 0");
  // Division by zero yields NULL, which never passes a filter.
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE 10 / j > 2");
  ExpectVectorMatchesRow(kNumbers, "SELECT i FROM t WHERE -i < -3");
}

TEST(VectorizedFilterTest, TextEquality) {
  const std::vector<std::string> load = {
      "CREATE TABLE s (k INT, name TEXT)",
      "INSERT INTO s VALUES (1, 'alpha'), (2, 'beta'), (3, 'alpha'), "
      "(4, 'gamma')"};
  ExpectVectorMatchesRow(load, "SELECT k FROM s WHERE name = 'alpha'");
  ExpectVectorMatchesRow(load, "SELECT k FROM s WHERE name < 'beta'");
  // Text vs number ranks text higher — never equal, ordered after.
  ExpectVectorMatchesRow(load, "SELECT k FROM s WHERE name > 5");
}

// ---------------------------------------------------------------------
// Projection kernels
// ---------------------------------------------------------------------

TEST(VectorizedProjectTest, Arithmetic) {
  ExpectVectorMatchesRow(
      kNumbers, "SELECT i + j, i - j, i * j, v * 2.0, -v FROM t");
  // Int division truncates; int modulo; both NULL on zero divisor.
  ExpectVectorMatchesRow(kNumbers, "SELECT i / 2, 7 % 3, i / j, i % j FROM t");
  // Mixed int/double arithmetic promotes to double.
  ExpectVectorMatchesRow(kNumbers, "SELECT i + v, v / 2, i * 0.5 FROM t");
}

TEST(VectorizedProjectTest, PreservesIntVsDoubleIdentity) {
  // 4 / 2 is int 2; 4 / 2.0 is double 2.0 — EXPECT_EQ on the variant rows
  // inside the harness distinguishes them.
  ExpectVectorMatchesRow(kNumbers, "SELECT i / 2, i / 2.0 FROM t");
  ExpectVectorMatchesRow(kNumbers, "SELECT i + 1, i + 1.0 FROM t");
}

TEST(VectorizedProjectTest, ComparisonAndLogicAsValues) {
  ExpectVectorMatchesRow(kNumbers, "SELECT i > 2, i = j, NOT (v > 0) FROM t");
}

TEST(VectorizedProjectTest, ScalarFunctionFallsBackToRowPath) {
  // abs()/mod() are not vectorizable: the project node must silently use
  // the row interpreter and still match.
  ExpectVectorMatchesRow(kNumbers, "SELECT abs(v), mod(i, 3) FROM t");
  ExpectVectorMatchesRow(kNumbers,
                         "SELECT CASE WHEN i > 3 THEN i ELSE j END FROM t");
}

TEST(VectorizedProjectTest, MixedClassColumnStaysExact) {
  // A column holding both ints and doubles must transpose as variants
  // (kValue) so each element's storage class survives.
  const std::vector<std::string> load = {
      "CREATE TABLE m (x DOUBLE)",
      "INSERT INTO m VALUES (1), (2.5), (3), (0.25)"};
  ExpectVectorMatchesRow(load, "SELECT x, x + 1, x * 2 FROM m");
  ExpectVectorMatchesRow(load, "SELECT x FROM m WHERE x > 1");
}

// ---------------------------------------------------------------------
// Join key extraction
// ---------------------------------------------------------------------

TEST(VectorizedJoinTest, TypedIntKeys) {
  const std::vector<std::string> load = {
      "CREATE TABLE a (i INT, v DOUBLE)",
      "CREATE TABLE b (i INT, w DOUBLE)",
      "INSERT INTO a VALUES (0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), "
      "(1, 5.0)",
      "INSERT INTO b VALUES (1, 10.0), (2, 20.0), (1, 30.0), (5, 50.0)"};
  ExpectVectorMatchesRow(
      load, "SELECT a.i, a.v, b.w FROM a, b WHERE a.i = b.i");
  ExpectVectorMatchesRow(
      load,
      "SELECT SUM(a.v * b.w) AS dot FROM a, b WHERE a.i = b.i");
}

TEST(VectorizedJoinTest, UntypedKeysFallBackGenerically) {
  // A double in a declared-int key column defeats the typed path on both
  // executors; results must still agree (1 joins 1.0 numerically).
  const std::vector<std::string> load = {
      "CREATE TABLE a (i INT)", "CREATE TABLE b (i DOUBLE)",
      "INSERT INTO a VALUES (1), (2), (3)",
      "INSERT INTO b VALUES (1.0), (2.5), (3.0)"};
  ExpectVectorMatchesRow(load,
                         "SELECT a.i, b.i FROM a, b WHERE a.i = b.i");
}

// ---------------------------------------------------------------------
// Aggregation kernels
// ---------------------------------------------------------------------

TEST(VectorizedAggregateTest, GlobalAggregates) {
  ExpectVectorMatchesRow(
      kNumbers,
      "SELECT SUM(i), COUNT(*), MIN(v), MAX(v), AVG(v), SUM(v) FROM t");
}

TEST(VectorizedAggregateTest, GroupByTypedIntKey) {
  ExpectVectorMatchesRow(
      kNumbers,
      "SELECT j, SUM(v), COUNT(*), MIN(i), MAX(i) FROM t GROUP BY j");
}

TEST(VectorizedAggregateTest, GroupByExpressionKey) {
  ExpectVectorMatchesRow(kNumbers,
                         "SELECT i % 3, SUM(v) FROM t GROUP BY i % 3");
}

TEST(VectorizedAggregateTest, SumIntThenDoublePromotion) {
  // SUM over a mixed int/double column switches from exact int folding to
  // double at the first double — the promotion point must match the row
  // fold exactly.
  const std::vector<std::string> load = {
      "CREATE TABLE m (g INT, x DOUBLE)",
      "INSERT INTO m VALUES (0, 1), (0, 2), (0, 0.5), (0, 3), "
      "(1, 4), (1, 5)"};
  ExpectVectorMatchesRow(load, "SELECT g, SUM(x), AVG(x) FROM m GROUP BY g");
}

TEST(VectorizedAggregateTest, AggregateOfExpression) {
  ExpectVectorMatchesRow(kNumbers,
                         "SELECT j, SUM(i * v), MAX(i + j) FROM t GROUP BY j");
}

TEST(VectorizedAggregateTest, Having) {
  ExpectVectorMatchesRow(
      kNumbers,
      "SELECT j, SUM(v) AS s FROM t GROUP BY j HAVING COUNT(*) > 1");
}

TEST(VectorizedAggregateTest, EmptyInput) {
  const std::vector<std::string> load = {"CREATE TABLE e (i INT, v DOUBLE)"};
  ExpectVectorMatchesRow(load,
                         "SELECT SUM(v), COUNT(*), MIN(i), AVG(v) FROM e");
  ExpectVectorMatchesRow(load, "SELECT i, SUM(v) FROM e GROUP BY i");
}

TEST(VectorizedAggregateTest, CaseArgumentFallsBackToRowPath) {
  ExpectVectorMatchesRow(
      kNumbers,
      "SELECT j, SUM(CASE WHEN i > 2 THEN v ELSE 0.0 END) FROM t GROUP BY j");
}

// ---------------------------------------------------------------------
// The paper's einsum query shapes, end to end
// ---------------------------------------------------------------------

TEST(VectorizedEinsumQueryTest, TraceAndMatrixProduct) {
  const std::vector<std::string> load = {
      "CREATE TABLE A (i INT, j INT, val DOUBLE)",
      "CREATE TABLE B (i INT, j INT, val DOUBLE)",
      "INSERT INTO A VALUES (0, 0, 1.5), (0, 1, 2.0), (1, 0, -1.0), "
      "(1, 1, 4.0), (2, 2, 0.5)",
      "INSERT INTO B VALUES (0, 0, 3.0), (0, 1, -2.0), (1, 1, 1.0), "
      "(2, 0, 5.0)"};
  // trace: ii->
  ExpectVectorMatchesRow(load,
                         "SELECT SUM(A.val) AS val FROM A WHERE A.i = A.j");
  // matmul: ik,kj->ij
  ExpectVectorMatchesRow(
      load,
      "SELECT A.i AS i, B.j AS j, SUM(A.val * B.val) AS val "
      "FROM A, B WHERE A.j = B.i GROUP BY A.i, B.j");
}

// ---------------------------------------------------------------------
// Error-timing contract
// ---------------------------------------------------------------------

TEST(VectorizedErrorTest, ShortCircuitSkipsErrorEagerEvalWouldHit) {
  // Every row short-circuits the AND before the text arithmetic, so the
  // row interpreter never errors. The eager vectorized kernel does — and
  // must transparently retry the morsel on the row path.
  const std::vector<std::string> load = {
      "CREATE TABLE s (i INT, name TEXT)",
      "INSERT INTO s VALUES (5, 'x'), (6, 'y'), (7, 'z')"};
  ExpectVectorMatchesRow(load,
                         "SELECT i FROM s WHERE i < 3 AND name + 1 > 0");
}

TEST(VectorizedErrorTest, GenuineErrorsStillSurface) {
  Database vec;
  Configure(&vec, /*vectorized=*/true, /*parallel=*/false);
  RunSql(&vec, "CREATE TABLE s (i INT, name TEXT)");
  RunSql(&vec, "INSERT INTO s VALUES (1, 'x')");
  auto result = vec.Execute("SELECT name + 1 FROM s");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Observability: EXPLAIN ANALYZE reports vectorized=
// ---------------------------------------------------------------------

TEST(VectorizedProfileTest, ExplainAnalyzeMarksVectorizedOperators) {
  Database vec;
  Configure(&vec, /*vectorized=*/true, /*parallel=*/false);
  RunSql(&vec, "CREATE TABLE t (i INT, v DOUBLE)");
  RunSql(&vec, "INSERT INTO t VALUES (1, 2.0), (2, 3.0)");
  RunSql(&vec, "SELECT i FROM t WHERE v > 2.0");
  ASSERT_NE(vec.last_profile(), nullptr);
  EXPECT_NE(vec.last_profile()->ToString().find("vectorized=on"),
            std::string::npos)
      << vec.last_profile()->ToString();
}

TEST(VectorizedProfileTest, RowPathDoesNotClaimVectorized) {
  Database row;
  Configure(&row, /*vectorized=*/false, /*parallel=*/false);
  RunSql(&row, "CREATE TABLE t (i INT, v DOUBLE)");
  RunSql(&row, "INSERT INTO t VALUES (1, 2.0)");
  RunSql(&row, "SELECT i FROM t WHERE v > 1.0");
  ASSERT_NE(row.last_profile(), nullptr);
  // No operator line may claim the column kernels; the query footer
  // reports the morsel counters and must show zero vectorized morsels.
  const std::string text = row.last_profile()->ToString();
  EXPECT_EQ(text.find("vectorized=on"), std::string::npos) << text;
  EXPECT_NE(text.find("vectorized=0"), std::string::npos) << text;
}

TEST(VectorizedProfileTest, FallbackOperatorNotMarkedVectorized) {
  Database vec;
  Configure(&vec, /*vectorized=*/true, /*parallel=*/false);
  RunSql(&vec, "CREATE TABLE t (i INT)");
  RunSql(&vec, "INSERT INTO t VALUES (1), (2)");
  // CASE is not vectorizable: the project runs on the row path.
  RunSql(&vec, "SELECT CASE WHEN i > 1 THEN 1 ELSE 0 END FROM t");
  ASSERT_NE(vec.last_profile(), nullptr);
  EXPECT_EQ(vec.last_profile()->ToString().find("vectorized=on"),
            std::string::npos)
      << vec.last_profile()->ToString();
}

}  // namespace
}  // namespace einsql::minidb
