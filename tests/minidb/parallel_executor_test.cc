// Unit tests for morsel-driven intra-operator parallelism: morsel boundary
// cases, accumulator merging, the typed int-key fast path (and its generic
// fallback), the hash-based DISTINCT, LIMIT clamping, and the
// threads/morsels runtime metrics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

double D(const Value& v) { return AsDouble(v).value(); }
int64_t I(const Value& v) { return AsInt(v).value(); }

// Enables morsel parallelism with a tiny morsel size so even small test
// inputs split into many morsels. Pins the faithful morsel policy: these
// tests assert exact morsel/thread counts and fixed-boundary determinism,
// which the machine-adaptive planner would collapse away.
void EnableParallel(Database* db, int threads = 4, int64_t morsel_rows = 2) {
  db->executor_options().parallel_operators = true;
  db->executor_options().num_threads = threads;
  db->executor_options().morsel_rows = morsel_rows;
  db->executor_options().adaptive_parallelism = false;
}

// Exact relation equality: same shape, every value identical (doubles
// compared by value, not by tolerance).
void ExpectSameRelation(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.rows[r], b.rows[r]) << "row " << r;
  }
}

// Runs `sql` against a fresh database loaded by `load`, sequentially and
// with parallel operators, and expects identical results.
void ExpectParallelMatchesSequential(
    const std::vector<std::string>& load, std::string_view sql,
    int64_t morsel_rows = 2) {
  Database sequential, parallel;
  // Pin the baseline to sequential even when MINIDB_PARALLEL is set in the
  // environment (the TSan CI job forces it on).
  sequential.executor_options().parallel_operators = false;
  EnableParallel(&parallel, /*threads=*/4, morsel_rows);
  for (const std::string& statement : load) {
    RunSql(&sequential, statement);
    RunSql(&parallel, statement);
  }
  ExpectSameRelation(RunSql(&sequential, sql), RunSql(&parallel, sql));
}

// ---------------------------------------------------------------------
// Morsel boundary cases
// ---------------------------------------------------------------------

TEST(MorselBoundaryTest, EmptyInput) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (i INT, val DOUBLE)"},
      "SELECT i, val FROM t WHERE val > 0");
}

TEST(MorselBoundaryTest, SingleRow) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (i INT, val DOUBLE)",
       "INSERT INTO t VALUES (7, 1.5)"},
      "SELECT i, val * 2 FROM t WHERE val > 0");
}

TEST(MorselBoundaryTest, ExactlyOneMorsel) {
  // Four input rows with morsel_rows=4: one morsel, begin/end at the edge.
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (i INT, val DOUBLE)",
       "INSERT INTO t VALUES (0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)"},
      "SELECT i, val FROM t WHERE i >= 1", /*morsel_rows=*/4);
}

TEST(MorselBoundaryTest, MorselRowsOne) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (i INT, val DOUBLE)",
       "INSERT INTO t VALUES (0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), "
       "(4, 5.0)"},
      "SELECT i + 1, val * val FROM t", /*morsel_rows=*/1);
}

TEST(MorselBoundaryTest, FilterPreservesInputOrder) {
  Database db;
  EnableParallel(&db);
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (5), (3), (9), (1), (7), (2), (8)");
  Relation r = RunSql(&db, "SELECT i FROM t WHERE i > 2");
  ASSERT_EQ(r.num_rows(), 5);
  // Morsel-order concatenation keeps the sequential row order.
  EXPECT_EQ(I(r.rows[0][0]), 5);
  EXPECT_EQ(I(r.rows[1][0]), 3);
  EXPECT_EQ(I(r.rows[2][0]), 9);
  EXPECT_EQ(I(r.rows[3][0]), 7);
  EXPECT_EQ(I(r.rows[4][0]), 8);
}

// ---------------------------------------------------------------------
// Aggregation: accumulator merge across morsels
// ---------------------------------------------------------------------

TEST(AccumulatorMergeTest, EmptyInputGlobalAggregate) {
  Database db;
  EnableParallel(&db);
  RunSql(&db, "CREATE TABLE t (i INT, val DOUBLE)");
  Relation r = RunSql(&db,
                      "SELECT COUNT(*), SUM(val), MIN(val), MAX(val), "
                      "AVG(val) FROM t");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(I(r.rows[0][0]), 0);
  EXPECT_TRUE(IsNull(r.rows[0][1]));
  EXPECT_TRUE(IsNull(r.rows[0][2]));
  EXPECT_TRUE(IsNull(r.rows[0][3]));
  EXPECT_TRUE(IsNull(r.rows[0][4]));
}

TEST(AccumulatorMergeTest, NullsSkippedAcrossMorsels) {
  // With morsel_rows=2 the NULL rows land in different morsels than the
  // values; COUNT/SUM/AVG must skip them, COUNT(*) must not.
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (g INT, v INT)",
       "INSERT INTO t VALUES (1, NULL), (1, 10), (2, NULL), (2, NULL), "
       "(1, 20), (2, 5), (1, NULL), (2, 7)"},
      "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) "
      "FROM t GROUP BY g ORDER BY g");
  Database db;
  EnableParallel(&db);
  RunSql(&db, "CREATE TABLE t (g INT, v INT)");
  RunSql(&db,
         "INSERT INTO t VALUES (1, NULL), (1, 10), (2, NULL), (2, NULL), "
         "(1, 20), (2, 5), (1, NULL), (2, 7)");
  Relation r = RunSql(&db,
                      "SELECT g, COUNT(*), COUNT(v), SUM(v) FROM t "
                      "GROUP BY g ORDER BY g");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][1]), 4);
  EXPECT_EQ(I(r.rows[0][2]), 2);
  EXPECT_EQ(I(r.rows[0][3]), 30);
  EXPECT_EQ(I(r.rows[1][3]), 12);
}

TEST(AccumulatorMergeTest, IntToDoublePromotionAcrossMorsels) {
  // The first morsels sum ints, a later one hits a double: the merged sum
  // must promote exactly like the sequential row-at-a-time fold.
  Database db;
  EnableParallel(&db, /*threads=*/4, /*morsel_rows=*/2);
  RunSql(&db, "CREATE TABLE t (v DOUBLE)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3), (4), (5), (0.5)");
  Relation r = RunSql(&db, "SELECT SUM(v) FROM t");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(TypeOf(r.rows[0][0]), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(D(r.rows[0][0]), 15.5);
  // All-int stays an int sum even when split across morsels.
  Relation s = RunSql(&db, "SELECT SUM(v) FROM t WHERE v > 0.6");
  EXPECT_EQ(TypeOf(s.rows[0][0]), ValueType::kInt);
  EXPECT_EQ(I(s.rows[0][0]), 15);
}

TEST(AccumulatorMergeTest, GroupOrderIsFirstOccurrence) {
  // Merging morsel tables in morsel order must reproduce the global
  // first-occurrence group order of sequential execution.
  Database db;
  EnableParallel(&db, /*threads=*/4, /*morsel_rows=*/2);
  RunSql(&db, "CREATE TABLE t (g INT)");
  RunSql(&db, "INSERT INTO t VALUES (3), (1), (4), (1), (5), (3), (2)");
  Relation r = RunSql(&db, "SELECT g, COUNT(*) FROM t GROUP BY g");
  ASSERT_EQ(r.num_rows(), 5);
  EXPECT_EQ(I(r.rows[0][0]), 3);
  EXPECT_EQ(I(r.rows[1][0]), 1);
  EXPECT_EQ(I(r.rows[2][0]), 4);
  EXPECT_EQ(I(r.rows[3][0]), 5);
  EXPECT_EQ(I(r.rows[4][0]), 2);
}

TEST(AccumulatorMergeTest, HavingAndNullGroupKeys) {
  // NULL group keys must group together (forcing the typed fallback), and
  // HAVING runs after the merge.
  ExpectParallelMatchesSequential(
      {"CREATE TABLE t (g INT, v INT)",
       "INSERT INTO t VALUES (NULL, 1), (1, 2), (NULL, 3), (1, 4), "
       "(2, 5), (NULL, 6)"},
      "SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 5");
}

// ---------------------------------------------------------------------
// Joins: parallel probe, typed fast path, generic fallback
// ---------------------------------------------------------------------

TEST(ParallelJoinTest, HashJoinMatchesSequential) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE a (i INT, j INT, val DOUBLE)",
       "CREATE TABLE b (j INT, k INT, val DOUBLE)",
       "INSERT INTO a VALUES (0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), "
       "(1, 1, 4.0), (2, 2, 5.0), (3, 9, 6.0)",
       "INSERT INTO b VALUES (0, 0, 10.0), (0, 1, 20.0), (1, 0, 30.0), "
       "(2, 1, 40.0)"},
      "SELECT a.i, b.k, a.val * b.val FROM a, b WHERE a.j = b.j");
}

TEST(ParallelJoinTest, JoinOutputOrderDeterministic) {
  Database db;
  EnableParallel(&db);
  RunSql(&db, "CREATE TABLE a (i INT)");
  RunSql(&db, "CREATE TABLE b (i INT, tag INT)");
  RunSql(&db, "INSERT INTO a VALUES (2), (1), (2), (3), (1), (2)");
  RunSql(&db, "INSERT INTO b VALUES (1, 100), (2, 200), (2, 201), (3, 300)");
  Relation r = RunSql(&db,
                      "SELECT a.i, b.tag FROM a, b WHERE a.i = b.i");
  ASSERT_EQ(r.num_rows(), 9);
  // Probe order (probe-side input order), build order within a key. The
  // optimizer probes with b here, so rows follow b's input order.
  const int64_t expected[] = {100, 100, 200, 200, 200, 201, 201, 201, 300};
  for (int64_t r_idx = 0; r_idx < 9; ++r_idx) {
    EXPECT_EQ(I(r.rows[r_idx][1]), expected[r_idx]) << "row " << r_idx;
  }
}

TEST(ParallelJoinTest, NullKeysNeverJoin) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE a (i INT)", "CREATE TABLE b (i INT)",
       "INSERT INTO a VALUES (1), (NULL), (2), (NULL)",
       "INSERT INTO b VALUES (NULL), (1), (2)"},
      "SELECT a.i, b.i FROM a, b WHERE a.i = b.i");
}

TEST(ParallelJoinTest, CrossJoinMatchesSequential) {
  ExpectParallelMatchesSequential(
      {"CREATE TABLE a (i INT)", "CREATE TABLE b (j INT)",
       "INSERT INTO a VALUES (0), (1), (2), (3), (4)",
       "INSERT INTO b VALUES (10), (20), (30)"},
      "SELECT a.i, b.j FROM a, b");
}

TEST(ParallelJoinTest, TypedFallbackOnDoubleInIntColumn) {
  // MiniDB is dynamically typed at storage: a double can land in a
  // declared-INT key column via BulkInsert, and 1.0 must still join with
  // 1. The typed path detects the mismatch at runtime and the operator
  // redoes the work generically.
  for (const bool parallel : {false, true}) {
    Database db;
    if (parallel) EnableParallel(&db);
    RunSql(&db, "CREATE TABLE a (i INT, atag INT)");
    RunSql(&db, "CREATE TABLE b (i INT, btag INT)");
    ASSERT_TRUE(db.BulkInsert("a", {{Value(int64_t{1}), Value(int64_t{11})},
                                    {Value(2.0), Value(int64_t{12})},
                                    {Value(int64_t{3}), Value(int64_t{13})}})
                    .ok());
    ASSERT_TRUE(db.BulkInsert("b", {{Value(1.0), Value(int64_t{21})},
                                    {Value(int64_t{2}), Value(int64_t{22})}})
                    .ok());
    Relation r = RunSql(
        &db, "SELECT a.atag, b.btag FROM a, b WHERE a.i = b.i ORDER BY a.atag");
    ASSERT_EQ(r.num_rows(), 2) << (parallel ? "parallel" : "sequential");
    EXPECT_EQ(I(r.rows[0][0]), 11);
    EXPECT_EQ(I(r.rows[0][1]), 21);
    EXPECT_EQ(I(r.rows[1][0]), 12);
    EXPECT_EQ(I(r.rows[1][1]), 22);
  }
}

TEST(ParallelJoinTest, TypedGroupByFallbackOnDoubleKey) {
  for (const bool parallel : {false, true}) {
    Database db;
    if (parallel) EnableParallel(&db);
    RunSql(&db, "CREATE TABLE t (g INT, v INT)");
    // 1 and 1.0 are the same group under SQL numeric equality.
    ASSERT_TRUE(db.BulkInsert("t", {{Value(int64_t{1}), Value(int64_t{5})},
                                    {Value(1.0), Value(int64_t{6})},
                                    {Value(int64_t{2}), Value(int64_t{7})}})
                    .ok());
    Relation r =
        RunSql(&db, "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g");
    ASSERT_EQ(r.num_rows(), 2) << (parallel ? "parallel" : "sequential");
    EXPECT_EQ(I(r.rows[0][1]), 11);
    EXPECT_EQ(I(r.rows[1][1]), 7);
  }
}

// ---------------------------------------------------------------------
// LIMIT: parser rejection and executor clamping
// ---------------------------------------------------------------------

TEST(LimitTest, NegativeLimitRejectedByParser) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  auto result = db.Execute("SELECT i FROM t LIMIT -1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("LIMIT must be non-negative"),
            std::string::npos)
      << result.status();
}

TEST(LimitTest, ExecutorClampsOutOfRangeLimit) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  // LIMIT larger than the input returns everything.
  EXPECT_EQ(RunSql(&db, "SELECT i FROM t LIMIT 99").num_rows(), 3);
  EXPECT_EQ(RunSql(&db, "SELECT i FROM t LIMIT 0").num_rows(), 0);
  // A plan constructed with a negative limit (bypassing the parser) is
  // clamped instead of forming an invalid iterator range.
  auto plan = db.Prepare("SELECT i FROM t LIMIT 2");
  ASSERT_TRUE(plan.ok()) << plan.status();
  PlanNode* node = plan->root.get();
  while (node != nullptr && node->kind != PlanKind::kLimit) {
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  ASSERT_NE(node, nullptr);
  node->limit = -5;
  auto result = db.ExecutePrepared(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relation.num_rows(), 0);
}

// ---------------------------------------------------------------------
// DISTINCT: hash-based duplicate elimination
// ---------------------------------------------------------------------

TEST(DistinctTest, FirstOccurrenceOrder) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (3), (1), (3), (2), (1), (3)");
  Relation r = RunSql(&db, "SELECT DISTINCT i FROM t");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[0][0]), 3);
  EXPECT_EQ(I(r.rows[1][0]), 1);
  EXPECT_EQ(I(r.rows[2][0]), 2);
}

TEST(DistinctTest, NullsAreDuplicates) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (NULL), (1), (NULL), (1), (NULL)");
  Relation r = RunSql(&db, "SELECT DISTINCT i FROM t");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_TRUE(IsNull(r.rows[0][0]));
  EXPECT_EQ(I(r.rows[1][0]), 1);
}

TEST(DistinctTest, IntAndDoubleAreEqualKeys) {
  // 1 and 1.0 dedup to one row, even in a declared-INT column (typed-path
  // fallback).
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT)");
  ASSERT_TRUE(db.BulkInsert("t", {{Value(int64_t{1})},
                                  {Value(1.0)},
                                  {Value(int64_t{2})}})
                  .ok());
  Relation r = RunSql(&db, "SELECT DISTINCT i FROM t");
  EXPECT_EQ(r.num_rows(), 2);
}

TEST(DistinctTest, MultiColumnTypedKeys) {
  Database db;
  RunSql(&db, "CREATE TABLE t (i INT, j INT)");
  RunSql(&db,
         "INSERT INTO t VALUES (1, 1), (1, 2), (1, 1), (2, 1), (2, 1), "
         "(1, 2)");
  Relation r = RunSql(&db, "SELECT DISTINCT i, j FROM t");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[0][0]), 1);
  EXPECT_EQ(I(r.rows[0][1]), 1);
  EXPECT_EQ(I(r.rows[1][1]), 2);
  EXPECT_EQ(I(r.rows[2][0]), 2);
}

// ---------------------------------------------------------------------
// Runtime metrics: threads/morsels in profiles and EXPLAIN ANALYZE
// ---------------------------------------------------------------------

TEST(ParallelMetricsTest, ProfileRecordsThreadsAndMorsels) {
  Database db;
  EnableParallel(&db, /*threads=*/3, /*morsel_rows=*/2);
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3), (4), (5), (6)");
  RunSql(&db, "SELECT i FROM t WHERE i > 0");
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->max_threads_used(), 3);
  // Project over Filter: both morselized, 6 rows / 2 per morsel = 3.
  EXPECT_EQ(profile->root.morsels, 3);
  EXPECT_EQ(profile->root.threads_used, 3);
}

TEST(ParallelMetricsTest, SequentialProfileReportsOneThread) {
  Database db;
  db.executor_options().parallel_operators = false;  // defeat MINIDB_PARALLEL
  db.executor_options().parallel_ctes = false;
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  RunSql(&db, "SELECT i FROM t WHERE i > 1");
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->max_threads_used(), 1);
  // Sequential execution never records morsels, so EXPLAIN ANALYZE output
  // is unchanged from pre-parallelism builds.
  EXPECT_EQ(profile->root.morsels, 0);
}

TEST(ParallelMetricsTest, ExplainAnalyzeShowsThreads) {
  Database db;
  EnableParallel(&db, /*threads=*/2, /*morsel_rows=*/2);
  RunSql(&db, "CREATE TABLE t (i INT)");
  RunSql(&db, "INSERT INTO t VALUES (1), (2), (3), (4)");
  Relation r = RunSql(&db, "EXPLAIN ANALYZE SELECT i FROM t WHERE i > 1");
  std::string dump;
  for (const Row& row : r.rows) {
    dump += std::get<std::string>(row[0]);
    dump += "\n";
  }
  EXPECT_NE(dump.find("threads=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("morsels=2"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------
// Thread-count invariance: results are a function of morsel_rows only
// ---------------------------------------------------------------------

TEST(ThreadInvarianceTest, SameResultForOneAndManyThreads) {
  auto run = [](int threads) {
    Database db;
    EnableParallel(&db, threads, /*morsel_rows=*/3);
    RunSql(&db, "CREATE TABLE t (g INT, v DOUBLE)");
    RunSql(&db,
           "INSERT INTO t VALUES (0, 0.1), (1, 0.2), (0, 0.3), (1, 0.4), "
           "(0, 0.5), (1, 0.6), (0, 0.7), (1, 0.8), (0, 0.9), (1, 1.1), "
           "(0, 1.3), (1, 1.7)");
    return RunSql(&db,
                  "SELECT g, SUM(v), AVG(v), MIN(v), MAX(v) FROM t "
                  "GROUP BY g");
  };
  Relation one = run(1);
  Relation eight = run(8);
  ASSERT_EQ(one.num_rows(), eight.num_rows());
  for (int64_t r = 0; r < one.num_rows(); ++r) {
    EXPECT_EQ(one.rows[r], eight.rows[r]) << "row " << r;
  }
}

}  // namespace
}  // namespace einsql::minidb
