// EXPLAIN ANALYZE and QueryProfile: the annotated plan dump, per-operator
// runtime metrics, and their agreement with hand-computed cardinalities.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/trace.h"
#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Database WithJoinTables() {
  Database db;
  EXPECT_TRUE(db.Execute("CREATE TABLE l (k INT, v INT)").ok());
  EXPECT_TRUE(db.Execute("CREATE TABLE r (k INT, w INT)").ok());
  // l: keys 1,1,2,3 — r: keys 1,2,2 — join on k yields 2+1+2 = ... per key:
  // k=1 matches 2x1=2 rows, k=2 matches 1x2=2 rows, k=3 matches 0. Total 4.
  EXPECT_TRUE(
      db.Execute("INSERT INTO l VALUES (1,10), (1,11), (2,20), (3,30)").ok());
  EXPECT_TRUE(db.Execute("INSERT INTO r VALUES (1,100), (2,200), (2,201)")
                  .ok());
  return db;
}

std::string DumpText(const Relation& relation) {
  std::string text;
  for (const Row& row : relation.rows) {
    text += std::get<std::string>(row[0]);
    text += "\n";
  }
  return text;
}

TEST(ExplainAnalyzeTest, AnnotatesOperatorsWithActualRows) {
  Database db = WithJoinTables();
  auto result =
      db.Execute("EXPLAIN ANALYZE SELECT l.k, SUM(r.w) FROM l, r "
                 "WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string text = DumpText(result->relation);
  EXPECT_NE(text.find("Main:"), std::string::npos) << text;
  EXPECT_NE(text.find("HashAggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("HashJoin"), std::string::npos) << text;
  EXPECT_NE(text.find("actual="), std::string::npos) << text;
  EXPECT_NE(text.find("time="), std::string::npos) << text;
  EXPECT_NE(text.find("err="), std::string::npos) << text;
  EXPECT_NE(text.find("Execution:"), std::string::npos) << text;
  // The join really produced 4 rows and the aggregate 2 groups.
  EXPECT_NE(text.find("actual=4 rows"), std::string::npos) << text;
  EXPECT_NE(text.find("groups=2"), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, OperatorTextMatchesExplain) {
  Database db = WithJoinTables();
  auto plain = db.Execute(
      "EXPLAIN SELECT l.k, SUM(r.w) FROM l, r WHERE l.k = r.k GROUP BY l.k");
  auto analyze = db.Execute(
      "EXPLAIN ANALYZE SELECT l.k, SUM(r.w) FROM l, r "
      "WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(analyze.ok());

  // Every operator head line of EXPLAIN ("<indent>HeadLine  ~N rows")
  // appears verbatim in the ANALYZE dump up to and including the estimate,
  // so the two renderings line up column-for-column.
  const std::string analyzed = DumpText(analyze->relation);
  for (const Row& row : plain->relation.rows) {
    const std::string line = std::get<std::string>(row[0]);
    const size_t est = line.find("  ~");
    if (est == std::string::npos) continue;  // "Main:" etc.
    const std::string head =
        line.substr(line.find_first_not_of(' '),
                    line.find(" rows", est) - line.find_first_not_of(' '));
    EXPECT_NE(analyzed.find(head), std::string::npos)
        << "missing operator: " << head << "\nin:\n" << analyzed;
  }
}

TEST(ExplainAnalyzeTest, RequiresSelect) {
  Database db;
  auto result = db.Execute("EXPLAIN ANALYZE DROP TABLE t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("EXPLAIN ANALYZE requires"),
            std::string::npos)
      << result.status();
}

TEST(QueryProfileTest, RowCountsMatchHandComputedJoin) {
  Database db = WithJoinTables();
  auto result = db.Execute(
      "SELECT l.k, SUM(r.w) FROM l, r WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->relation.num_rows(), 2);

  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->exec_seconds, 0.0);

  // Root: HashAggregate over the join. 2 groups out, 4 join rows in.
  const OperatorProfile& agg = profile->root;
  EXPECT_EQ(agg.kind, PlanKind::kAggregate);
  EXPECT_EQ(agg.actual_rows, 2);
  EXPECT_EQ(agg.input_rows, 4);
  EXPECT_EQ(agg.hash_entries, 2);
  ASSERT_EQ(agg.children.size(), 1u);

  const OperatorProfile& join = agg.children[0];
  EXPECT_EQ(join.kind, PlanKind::kJoin);
  EXPECT_EQ(join.actual_rows, 4);
  // Join consumed both scans: 4 left rows + 3 right rows.
  EXPECT_EQ(join.input_rows, 7);
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].actual_rows + join.children[1].actual_rows, 7);
  // The build side is the right input (the optimizer picks the join order,
  // so it may be either table).
  EXPECT_EQ(join.hash_entries, join.children[1].actual_rows);

  EXPECT_GE(agg.est_error(), 1.0);
  EXPECT_GE(join.est_error(), 1.0);
}

TEST(QueryProfileTest, ScanAndFilterCounts) {
  Database db = WithJoinTables();
  auto result = db.Execute("SELECT v FROM l WHERE v >= 20");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->relation.num_rows(), 2);
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  // Project <- Filter <- Scan (exact shape may fold the filter into the
  // scan depending on the planner; just check the leaf saw all 4 rows and
  // the root produced 2).
  EXPECT_EQ(profile->root.actual_rows, 2);
  const OperatorProfile* leaf = &profile->root;
  while (!leaf->children.empty()) leaf = &leaf->children[0];
  EXPECT_EQ(leaf->actual_rows, 4);
}

TEST(QueryProfileTest, CteProfilesMirrorPlan) {
  Database db = WithJoinTables();
  auto result = db.Execute(
      "WITH a AS (SELECT k FROM l), b AS (SELECT k FROM r) "
      "SELECT a.k FROM a, b WHERE a.k = b.k");
  ASSERT_TRUE(result.ok());
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->ctes.size(), 2u);
  EXPECT_EQ(profile->ctes[0].name, "a");
  EXPECT_EQ(profile->ctes[1].name, "b");
  EXPECT_EQ(profile->ctes[0].rows, 4);
  EXPECT_EQ(profile->ctes[1].rows, 3);
}

TEST(QueryProfileTest, ParallelCtesFillEverySlot) {
  Database db = WithJoinTables();
  db.executor_options().parallel_ctes = true;
  db.executor_options().num_threads = 4;
  Trace trace;
  db.set_trace(&trace);
  auto result = db.Execute(
      "WITH a AS (SELECT k FROM l), b AS (SELECT k FROM r), "
      "c AS (SELECT k FROM l WHERE k > 1), d AS (SELECT k FROM r WHERE k < 2) "
      "SELECT (SELECT COUNT(*) FROM a) + (SELECT COUNT(*) FROM b) + "
      "(SELECT COUNT(*) FROM c) + (SELECT COUNT(*) FROM d)");
  if (!result.ok()) {
    // Scalar subqueries may be unsupported; fall back to a join query.
    result = db.Execute(
        "WITH a AS (SELECT k FROM l), b AS (SELECT k FROM r), "
        "c AS (SELECT k FROM l WHERE k > 1) "
        "SELECT a.k FROM a, b, c WHERE a.k = b.k AND b.k = c.k");
  }
  ASSERT_TRUE(result.ok()) << result.status();
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  ASSERT_GE(profile->ctes.size(), 3u);
  for (const auto& cte : profile->ctes) {
    EXPECT_FALSE(cte.name.empty());
    EXPECT_GE(cte.wall_seconds, 0.0);
  }
  // Every CTE materialization produced a span nested under the execute
  // span, even from worker threads.
  const std::string tree = trace.ToString();
  for (const auto& cte : profile->ctes) {
    EXPECT_NE(tree.find("cte " + cte.name), std::string::npos) << tree;
  }
}

TEST(QueryProfileTest, InvalidatedOnFailedExecution) {
  Database db = WithJoinTables();
  ASSERT_TRUE(db.Execute("SELECT k FROM l").ok());
  ASSERT_NE(db.last_profile(), nullptr);
  ASSERT_FALSE(db.Execute("SELECT nope FROM l").ok());
  // Planning failed before execution: profile no longer valid.
  EXPECT_EQ(db.last_profile(), nullptr);
}

TEST(QueryProfileTest, ExecutePreparedCollectsProfile) {
  Database db = WithJoinTables();
  auto plan = db.Prepare("SELECT k FROM l");
  ASSERT_TRUE(plan.ok());
  auto result = db.ExecutePrepared(*plan);
  ASSERT_TRUE(result.ok());
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->root.actual_rows, 4);
}

TEST(ExplainTest, PlanShowsPerCteEstimates) {
  Database db = WithJoinTables();
  auto result = db.Execute(
      "EXPLAIN WITH a AS (SELECT k FROM l) SELECT k FROM a");
  ASSERT_TRUE(result.ok());
  const std::string text = DumpText(result->relation);
  EXPECT_NE(text.find("CTE a (~"), std::string::npos) << text;
  EXPECT_NE(text.find("rows):"), std::string::npos) << text;
}

TEST(QueryProfileTest, MemoryAccountingPopulated) {
  Database db = WithJoinTables();
  auto result = db.Execute(
      "SELECT l.k, SUM(r.w) FROM l, r WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok());
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);

  // Join and aggregate materialize output and build hash tables; both
  // estimates must be nonzero for nonempty inputs.
  const OperatorProfile& agg = profile->root;
  ASSERT_EQ(agg.kind, PlanKind::kAggregate);
  EXPECT_GT(agg.mem_bytes, 0);
  EXPECT_GT(agg.hash_bytes, 0);
  ASSERT_EQ(agg.children.size(), 1u);
  const OperatorProfile& join = agg.children[0];
  EXPECT_GT(join.mem_bytes, 0);
  EXPECT_GT(join.hash_bytes, 0);
  // Scans expose stored tables without copying: no materialization charge.
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].mem_bytes, 0);
  EXPECT_EQ(join.children[1].mem_bytes, 0);

  // The query-level peak covers at least the largest single holding, and
  // at most everything the query ever charged at once.
  EXPECT_GE(profile->peak_memory_bytes,
            std::max(agg.mem_bytes, join.mem_bytes));
  EXPECT_LE(profile->peak_memory_bytes,
            agg.mem_bytes + agg.hash_bytes + join.mem_bytes +
                join.hash_bytes);
}

TEST(QueryProfileTest, MorselCountersVectorizedOn) {
  Database db = WithJoinTables();
  db.executor_options().vectorized = true;
  auto result = db.Execute(
      "SELECT l.k, SUM(r.w) FROM l, r WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok());
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  // All-numeric join + aggregate: every attempted morsel takes the
  // vectorized kernels, nothing falls back to the row interpreter.
  EXPECT_GT(profile->morsels_executed, 0);
  EXPECT_GT(profile->vectorized_morsels, 0);
  EXPECT_EQ(profile->row_fallback_morsels, 0);
  EXPECT_LE(profile->vectorized_morsels + profile->row_fallback_morsels,
            profile->morsels_executed);
}

TEST(QueryProfileTest, MorselCountersVectorizedOff) {
  Database db = WithJoinTables();
  db.executor_options().vectorized = false;
  auto result = db.Execute(
      "SELECT l.k, SUM(r.w) FROM l, r WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok());
  const QueryProfile* profile = db.last_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->vectorized_morsels, 0);
  EXPECT_EQ(profile->row_fallback_morsels, 0);
}

TEST(ExplainAnalyzeTest, ReportsMemoryAndMorselFooter) {
  Database db = WithJoinTables();
  db.executor_options().vectorized = true;
  auto result =
      db.Execute("EXPLAIN ANALYZE SELECT l.k, SUM(r.w) FROM l, r "
                 "WHERE l.k = r.k GROUP BY l.k");
  ASSERT_TRUE(result.ok());
  const std::string text = DumpText(result->relation);
  EXPECT_NE(text.find("Peak memory: "), std::string::npos) << text;
  EXPECT_NE(text.find("mem="), std::string::npos) << text;
  EXPECT_NE(text.find("hash_mem="), std::string::npos) << text;
  EXPECT_NE(text.find("Morsels: "), std::string::npos) << text;
  EXPECT_NE(text.find("vectorized="), std::string::npos) << text;
}

}  // namespace
}  // namespace einsql::minidb
