// Tests for the extended SQL surface: HAVING, BETWEEN, IN, CASE WHEN.
// Every behaviour is cross-checked against SQLite through the backend
// layer, since both engines must execute the same portable SQL.

#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "minidb/database.h"

namespace einsql::minidb {
namespace {

Relation RunSql(Database* db, std::string_view sql) {
  auto result = db->Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? result->relation : Relation{};
}

int64_t I(const Value& v) { return AsInt(v).value(); }

Database WithNumbers() {
  Database db;
  (void)db.Execute("CREATE TABLE t (g INT, v INT)");
  (void)db.Execute(
      "INSERT INTO t VALUES (0, 1), (0, 2), (1, 5), (1, 6), (2, 100)");
  return db;
}

TEST(HavingTest, FiltersGroups) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT g, SUM(v) AS s FROM t GROUP BY g "
                      "HAVING SUM(v) > 5 ORDER BY g");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 1);
  EXPECT_EQ(I(r.rows[1][0]), 2);
}

TEST(HavingTest, CanReferenceGroupColumns) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT g, COUNT(*) AS c FROM t GROUP BY g "
                      "HAVING g < 2 ORDER BY g");
  EXPECT_EQ(r.num_rows(), 2);
}

TEST(HavingTest, AggregateNotInSelectList) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT g FROM t GROUP BY g HAVING MIN(v) >= 5 "
                      "ORDER BY g");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 1);
}

TEST(HavingTest, RequiresGroupBy) {
  Database db = WithNumbers();
  EXPECT_FALSE(db.Execute("SELECT SUM(v) FROM t HAVING SUM(v) > 0").ok());
}

TEST(BetweenTest, InclusiveBounds) {
  Database db = WithNumbers();
  Relation r =
      RunSql(&db, "SELECT v FROM t WHERE v BETWEEN 2 AND 5 ORDER BY v");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 2);
  EXPECT_EQ(I(r.rows[1][0]), 5);
}

TEST(BetweenTest, NotBetween) {
  Database db = WithNumbers();
  Relation r = RunSql(
      &db, "SELECT v FROM t WHERE NOT (v BETWEEN 2 AND 99) ORDER BY v");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(I(r.rows[0][0]), 1);
  EXPECT_EQ(I(r.rows[1][0]), 100);
}

TEST(InTest, LiteralList) {
  Database db = WithNumbers();
  Relation r =
      RunSql(&db, "SELECT v FROM t WHERE v IN (1, 5, 100) ORDER BY v");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[2][0]), 100);
}

TEST(InTest, NotIn) {
  Database db = WithNumbers();
  Relation r =
      RunSql(&db, "SELECT v FROM t WHERE NOT v IN (1, 2) ORDER BY v");
  EXPECT_EQ(r.num_rows(), 3);
}

TEST(CaseTest, SearchedCase) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT v, CASE WHEN v < 3 THEN 'small' "
                      "WHEN v < 10 THEN 'medium' ELSE 'large' END AS bucket "
                      "FROM t ORDER BY v");
  ASSERT_EQ(r.num_rows(), 5);
  EXPECT_EQ(std::get<std::string>(r.rows[0][1]), "small");
  EXPECT_EQ(std::get<std::string>(r.rows[2][1]), "medium");
  EXPECT_EQ(std::get<std::string>(r.rows[4][1]), "large");
}

TEST(CaseTest, MissingElseYieldsNull) {
  Database db;
  Relation r = RunSql(&db, "SELECT CASE WHEN 1 = 2 THEN 7 END AS x");
  EXPECT_TRUE(IsNull(r.rows[0][0]));
}

TEST(CaseTest, InsideAggregate) {
  // Conditional counting: the classic pivot idiom.
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT SUM(CASE WHEN v < 10 THEN 1 ELSE 0 END) AS "
                      "small_count FROM t");
  EXPECT_EQ(I(r.rows[0][0]), 4);
}

TEST(CaseTest, SimpleCaseRejected) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT CASE 1 WHEN 1 THEN 2 END").ok());
}

TEST(CaseTest, InWhereClause) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT v FROM t WHERE CASE WHEN g = 0 THEN v ELSE 0 "
                      "END > 1");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(I(r.rows[0][0]), 2);
}


TEST(ExplainTest, ReturnsPlanText) {
  Database db = WithNumbers();
  Relation r = RunSql(&db, "EXPLAIN SELECT g, SUM(v) FROM t GROUP BY g");
  ASSERT_GT(r.num_rows(), 1);
  ASSERT_EQ(r.num_columns(), 1);
  std::string all;
  for (const Row& row : r.rows) all += std::get<std::string>(row[0]) + "\n";
  EXPECT_NE(all.find("HashAggregate"), std::string::npos) << all;
  EXPECT_NE(all.find("Scan t"), std::string::npos);
}

TEST(ExplainTest, DoesNotExecute) {
  Database db;
  // EXPLAIN of a query over a missing column fails at plan time — but a
  // valid plan is never executed, so an expensive query explains instantly.
  RunSql(&db, "CREATE TABLE big (v INT)");
  auto result = db.Execute("EXPLAIN SELECT a.v FROM big a, big b, big c");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->stats.exec_seconds, 0.0);
}

TEST(ExplainTest, RejectsNonSelect) {
  Database db;
  EXPECT_FALSE(db.Execute("EXPLAIN CREATE TABLE t (v INT)").ok());
}


TEST(UnionAllTest, ConcatenatesRows) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT v FROM t WHERE v < 3 "
                      "UNION ALL SELECT v FROM t WHERE v > 50 "
                      "ORDER BY v");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[0][0]), 1);
  EXPECT_EQ(I(r.rows[2][0]), 100);
}

TEST(UnionAllTest, KeepsDuplicates) {
  Database db;
  Relation r = RunSql(&db, "SELECT 1 AS x UNION ALL SELECT 1 ORDER BY x");
  EXPECT_EQ(r.num_rows(), 2);
}

TEST(UnionAllTest, ThreeWayChainWithAggregates) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT SUM(v) AS s FROM t WHERE g = 0 "
                      "UNION ALL SELECT SUM(v) FROM t WHERE g = 1 "
                      "UNION ALL SELECT SUM(v) FROM t WHERE g = 2 "
                      "ORDER BY s");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[0][0]), 3);
  EXPECT_EQ(I(r.rows[1][0]), 11);
  EXPECT_EQ(I(r.rows[2][0]), 100);
}

TEST(UnionAllTest, LimitAppliesToWholeUnion) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "SELECT v FROM t UNION ALL SELECT v FROM t "
                      "ORDER BY v DESC LIMIT 3");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(I(r.rows[0][0]), 100);
  EXPECT_EQ(I(r.rows[1][0]), 100);
}

TEST(UnionAllTest, RejectsColumnCountMismatch) {
  Database db = WithNumbers();
  EXPECT_FALSE(
      db.Execute("SELECT v FROM t UNION ALL SELECT g, v FROM t").ok());
}

TEST(UnionAllTest, RejectsBareUnion) {
  Database db = WithNumbers();
  EXPECT_FALSE(db.Execute("SELECT v FROM t UNION SELECT v FROM t").ok());
}

TEST(UnionAllTest, WorksInsideCte) {
  Database db = WithNumbers();
  Relation r = RunSql(&db,
                      "WITH u(v) AS (SELECT v FROM t WHERE g = 0 "
                      "UNION ALL SELECT v FROM t WHERE g = 1) "
                      "SELECT SUM(v) AS s FROM u");
  EXPECT_EQ(I(r.rows[0][0]), 14);
}

// Cross-engine conformance: the same feature queries must produce identical
// results on SQLite.
class FeatureConformance : public ::testing::TestWithParam<const char*> {};

TEST_P(FeatureConformance, MatchesSqlite) {
  const std::string setup =
      "CREATE TABLE t (g INT, v DOUBLE);";
  const std::string inserts =
      "INSERT INTO t VALUES (0, 1.0), (0, 2.5), (1, 5.0), (1, -6.0), "
      "(2, 100.0), (2, 0.0);";
  MiniDbBackend minidb;
  auto sqlite = SqliteBackend::Open().value();
  for (SqlBackend* backend :
       std::initializer_list<SqlBackend*>{&minidb, sqlite.get()}) {
    ASSERT_TRUE(backend->Execute(setup).ok());
    ASSERT_TRUE(backend->Execute(inserts).ok());
  }
  auto a = minidb.Query(GetParam());
  auto b = sqlite->Query(GetParam());
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->num_rows(), b->num_rows()) << GetParam();
  ASSERT_EQ(a->num_columns(), b->num_columns());
  for (int64_t r = 0; r < a->num_rows(); ++r) {
    for (int c = 0; c < a->num_columns(); ++c) {
      EXPECT_EQ(CompareValues(a->rows[r][c], b->rows[r][c]), 0)
          << GetParam() << " row " << r << " col " << c << ": "
          << ValueToString(a->rows[r][c]) << " vs "
          << ValueToString(b->rows[r][c]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FeatureConformance,
    ::testing::Values(
        "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 1 "
        "ORDER BY g",
        "SELECT v FROM t WHERE v BETWEEN 0 AND 5 ORDER BY v",
        "SELECT v FROM t WHERE v IN (1.0, 100.0) ORDER BY v",
        "SELECT CASE WHEN v < 0 THEN 0 - v ELSE v END AS m FROM t "
        "ORDER BY m",
        "SELECT g, COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi FROM t "
        "GROUP BY g HAVING COUNT(*) = 2 ORDER BY g",
        "SELECT SUM(CASE WHEN v > 0 THEN 1 ELSE 0 END) AS p FROM t",
        "SELECT v FROM t WHERE g = 0 UNION ALL SELECT v FROM t WHERE g = 2 "
        "ORDER BY v"));

}  // namespace
}  // namespace einsql::minidb
