#include <gtest/gtest.h>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"

namespace einsql::quantum {
namespace {

bool StatesClose(const std::vector<Amplitude>& a,
                 const std::vector<Amplitude>& b, double tolerance = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (std::abs(a[k] - b[k]) > tolerance) return false;
  }
  return true;
}

double Norm(const std::vector<Amplitude>& state) {
  double total = 0.0;
  for (const Amplitude& amplitude : state) total += std::norm(amplitude);
  return total;
}

TEST(GatesTest, AllGatesAreUnitary) {
  for (const Gate& gate :
       {H(0), X(0), Y(0), Z(0), S(0), T(0), SqrtX(0), SqrtY(0), SqrtW(0),
        Rz(0, 0.7), CX(0, 1), CZ(0, 1), FSim(0, 1, 1.1, 0.4), Swap(0, 1),
        Toffoli(0, 1, 2)}) {
    EXPECT_TRUE(IsUnitary(gate).value()) << gate.name;
  }
}

TEST(GatesTest, SqrtGatesSquareToTheirBase) {
  // Apply √X twice to |0>: must equal X|0> = |1>.
  Circuit circuit;
  circuit.num_qubits = 1;
  circuit.gates = {SqrtX(0), SqrtX(0)};
  auto state = SimulateStatevector(circuit, {0}).value();
  EXPECT_NEAR(std::abs(state[1]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(state[0]), 0.0, 1e-12);
}

TEST(CircuitTest, ValidateChecksQubits) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(5)};
  EXPECT_FALSE(Validate(circuit).ok());
  circuit.gates = {CX(1, 1)};
  EXPECT_FALSE(Validate(circuit).ok());
  circuit.gates = {H(0), CX(0, 1)};
  EXPECT_TRUE(Validate(circuit).ok());
}

TEST(StatevectorTest, BellState) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(0), CX(0, 1)};
  auto state = SimulateStatevector(circuit, {0, 0}).value();
  const double inv_sqrt2 = 0.7071067811865475244;
  EXPECT_NEAR(state[0].real(), inv_sqrt2, 1e-12);  // |00>
  EXPECT_NEAR(std::abs(state[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(state[2]), 0.0, 1e-12);
  EXPECT_NEAR(state[3].real(), inv_sqrt2, 1e-12);  // |11>
}

TEST(StatevectorTest, InitialStateRespected) {
  Circuit circuit;
  circuit.num_qubits = 2;
  auto state = SimulateStatevector(circuit, {1, 0}).value();
  EXPECT_NEAR(std::abs(state[1]), 1.0, 1e-12);  // qubit0 = 1 => index 1
}

TEST(StatevectorTest, CzAppliesPhase) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {CZ(0, 1)};
  auto state = SimulateStatevector(circuit, {1, 1}).value();
  EXPECT_NEAR(state[3].real(), -1.0, 1e-12);
}

TEST(StatevectorTest, NormPreservedOnRandomCircuit) {
  Circuit circuit = SycamoreLikeCircuit(6, 8, /*seed=*/3);
  auto state = SimulateStatevector(circuit, std::vector<int>(6, 0)).value();
  EXPECT_NEAR(Norm(state), 1.0, 1e-9);
}

TEST(NetworkTest, PaperTwoQubitExampleStructure) {
  // Figure 7: two H gates and a CX — format a,b,ca,dbc,ed->ce.
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(0), CX(0, 1), H(1)};
  auto network = BuildCircuitNetwork(circuit, {0, 0}).value();
  // 2 inputs + 3 gate tensors.
  ASSERT_EQ(network.spec.inputs.size(), 5u);
  EXPECT_EQ(network.spec.inputs[2].size(), 2u);  // H on qubit 0
  EXPECT_EQ(network.spec.inputs[3].size(), 3u);  // CX as rank-3 tensor
  EXPECT_EQ(network.spec.output.size(), 2u);
}

TEST(NetworkTest, DiagonalGateDoesNotRenameWires) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {CZ(0, 1)};
  auto network = BuildCircuitNetwork(circuit, {0, 0}).value();
  // Output wires are still the input labels.
  EXPECT_EQ(network.spec.output[0], network.spec.inputs[0][0]);
  EXPECT_EQ(network.spec.output[1], network.spec.inputs[1][0]);
}

TEST(NetworkTest, RejectsBadInitialState) {
  Circuit circuit;
  circuit.num_qubits = 1;
  EXPECT_FALSE(BuildCircuitNetwork(circuit, {2}).ok());
  EXPECT_FALSE(BuildCircuitNetwork(circuit, {0, 0}).ok());
}

class EinsumSimulationEngines : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<EinsumEngine> MakeEngine() {
    if (GetParam() == "dense") return std::make_unique<DenseEinsumEngine>();
    if (GetParam() == "sparse") return std::make_unique<SparseEinsumEngine>();
    if (GetParam() == "sqlite") {
      sqlite_ = SqliteBackend::Open().value();
      return std::make_unique<SqlEinsumEngine>(sqlite_.get());
    }
    minidb_ = std::make_unique<MiniDbBackend>();
    return std::make_unique<SqlEinsumEngine>(minidb_.get());
  }

  void ExpectMatchesStatevector(const Circuit& circuit,
                                const std::vector<int>& initial) {
    auto engine = MakeEngine();
    auto amplitudes = SimulateEinsum(engine.get(), circuit, initial);
    ASSERT_TRUE(amplitudes.ok()) << amplitudes.status();
    auto got = AmplitudesToStatevector(*amplitudes).value();
    auto expected = SimulateStatevector(circuit, initial).value();
    EXPECT_TRUE(StatesClose(got, expected)) << "on " << engine->name();
  }

  std::unique_ptr<SqliteBackend> sqlite_;
  std::unique_ptr<MiniDbBackend> minidb_;
};

TEST_P(EinsumSimulationEngines, BellCircuit) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(0), CX(0, 1)};
  ExpectMatchesStatevector(circuit, {0, 0});
}

TEST_P(EinsumSimulationEngines, PaperFigure7AllInitialStates) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(0), CX(0, 1), H(1)};
  for (int s = 0; s < 4; ++s) {
    ExpectMatchesStatevector(circuit, {s & 1, (s >> 1) & 1});
  }
}

TEST_P(EinsumSimulationEngines, GateZoo) {
  Circuit circuit;
  circuit.num_qubits = 3;
  circuit.gates = {H(0),      T(1),          SqrtW(2), CX(0, 2),
                   CZ(1, 2),  FSim(0, 1, 0.9, 0.3),    S(0),
                   SqrtY(1),  Rz(2, 1.234),  CX(2, 0), Y(1)};
  ExpectMatchesStatevector(circuit, {0, 1, 0});
}

TEST_P(EinsumSimulationEngines, SycamoreLikeSmall) {
  Circuit circuit = SycamoreLikeCircuit(5, 4, /*seed=*/19);
  ExpectMatchesStatevector(circuit, std::vector<int>(5, 0));
}

TEST_P(EinsumSimulationEngines, NormIsOne) {
  auto engine = MakeEngine();
  Circuit circuit = SycamoreLikeCircuit(4, 6, /*seed=*/23);
  auto amplitudes =
      SimulateEinsum(engine.get(), circuit, {0, 0, 0, 0}).value();
  auto state = AmplitudesToStatevector(amplitudes).value();
  EXPECT_NEAR(Norm(state), 1.0, 1e-9);
}


TEST_P(EinsumSimulationEngines, SingleAmplitudeMatchesStatevector) {
  auto engine = MakeEngine();
  Circuit circuit = SycamoreLikeCircuit(6, 4, /*seed=*/31);
  const std::vector<int> zeros(6, 0);
  auto oracle = SimulateStatevector(circuit, zeros).value();
  for (int pattern : {0, 1, 21, 63}) {
    std::vector<int> bits(6);
    int64_t index = 0;
    for (int q = 0; q < 6; ++q) {
      bits[q] = (pattern >> q) & 1;
      index |= static_cast<int64_t>(bits[q]) << q;
    }
    auto amplitude =
        SimulateAmplitudeEinsum(engine.get(), circuit, zeros, bits);
    ASSERT_TRUE(amplitude.ok()) << amplitude.status();
    EXPECT_NEAR(std::abs(*amplitude - oracle[index]), 0.0, 1e-9)
        << "pattern " << pattern << " on " << engine->name();
  }
}

TEST(AmplitudeTest, RejectsBadOutputBits) {
  DenseEinsumEngine dense;
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {H(0)};
  EXPECT_FALSE(SimulateAmplitudeEinsum(&dense, circuit, {0, 0}, {0}).ok());
  EXPECT_FALSE(
      SimulateAmplitudeEinsum(&dense, circuit, {0, 0}, {0, 2}).ok());
}


TEST(StatevectorTest, SwapExchangesQubits) {
  Circuit circuit;
  circuit.num_qubits = 2;
  circuit.gates = {Swap(0, 1)};
  auto state = SimulateStatevector(circuit, {1, 0}).value();
  EXPECT_NEAR(std::abs(state[2]), 1.0, 1e-12);  // qubit1 now set
}

TEST(StatevectorTest, ToffoliFlipsOnlyWhenBothControlsSet) {
  Circuit circuit;
  circuit.num_qubits = 3;
  circuit.gates = {Toffoli(0, 1, 2)};
  auto flipped = SimulateStatevector(circuit, {1, 1, 0}).value();
  EXPECT_NEAR(std::abs(flipped[0b111]), 1.0, 1e-12);
  auto unchanged = SimulateStatevector(circuit, {1, 0, 0}).value();
  EXPECT_NEAR(std::abs(unchanged[0b001]), 1.0, 1e-12);
}

TEST_P(EinsumSimulationEngines, SwapAndToffoliThroughEinsum) {
  Circuit circuit;
  circuit.num_qubits = 3;
  circuit.gates = {H(0), H(1), Swap(0, 2), Toffoli(0, 1, 2), T(2),
                   Toffoli(2, 1, 0), Swap(1, 2)};
  ExpectMatchesStatevector(circuit, {0, 0, 1});
}

TEST(CircuitTest, ToffoliValidation) {
  Circuit circuit;
  circuit.num_qubits = 3;
  circuit.gates = {Toffoli(0, 1, 1)};  // duplicate qubit
  EXPECT_FALSE(Validate(circuit).ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, EinsumSimulationEngines,
                         ::testing::Values("dense", "sparse", "sqlite", "minidb"),
                         [](const auto& info) { return info.param; });

TEST(SycamoreTest, GateCountsScaleWithDepth) {
  Circuit a = SycamoreLikeCircuit(9, 2);
  Circuit b = SycamoreLikeCircuit(9, 8);
  EXPECT_TRUE(Validate(a).ok());
  EXPECT_TRUE(Validate(b).ok());
  EXPECT_GT(b.gates.size(), a.gates.size());
  // Every cycle contributes one single-qubit gate per qubit.
  EXPECT_GE(a.gates.size(), 2u * 9u);
}

TEST(SycamoreTest, DeterministicForSeed) {
  Circuit a = SycamoreLikeCircuit(7, 5, 42);
  Circuit b = SycamoreLikeCircuit(7, 5, 42);
  ASSERT_EQ(a.gates.size(), b.gates.size());
  for (size_t g = 0; g < a.gates.size(); ++g) {
    EXPECT_EQ(a.gates[g].name, b.gates[g].name);
    EXPECT_EQ(a.gates[g].qubits, b.gates[g].qubits);
  }
}

TEST(SycamoreTest, NeverRepeatsSingleQubitGate) {
  Circuit circuit = SycamoreLikeCircuit(4, 10, 5);
  std::vector<std::string> last(4);
  for (const Gate& gate : circuit.gates) {
    if (gate.kind != GateKind::kOneQubit) continue;
    const int q = gate.qubits[0];
    EXPECT_NE(gate.name, last[q]);
    last[q] = gate.name;
  }
}

TEST(AmplitudesToStatevectorTest, RejectsNonQubitAxes) {
  ComplexCooTensor tensor({3});
  EXPECT_FALSE(AmplitudesToStatevector(tensor).ok());
}

}  // namespace
}  // namespace einsql::quantum
