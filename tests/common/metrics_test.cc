#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace einsql {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int k = 0; k < kPerThread; ++k) c.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentSetMaxKeepsMaximum) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int k = 0; k < 5000; ++k) g.SetMax(t * 1000 + (k % 100));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(g.value(), 8099.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.Record(1.0);
  h.Record(4.0);
  h.Record(16.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
}

TEST(HistogramTest, NonPositiveValuesLandInBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.count(), 2);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  // Bucket b covers (2^(b-1+kMinExp), 2^(b+kMinExp)]. A value of exactly
  // 1.0 = 2^0 must land in the bucket whose upper bound is 1.0.
  Histogram h;
  h.Record(1.0);
  const int bucket = -Histogram::kMinExp;
  EXPECT_EQ(h.bucket_count(bucket), 1);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(bucket), 1.0);
  // 1.5 is in (1, 2]: next bucket up.
  h.Record(1.5);
  EXPECT_EQ(h.bucket_count(bucket + 1), 1);
}

TEST(HistogramTest, ExtremeValuesClampToEdgeBuckets) {
  Histogram h;
  h.Record(1e-300);
  h.Record(1e300);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 1);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(-Histogram::kMinExp + 1), 0);
}

TEST(HistogramTest, ConcurrentRecordsKeepCountAndExtremes) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int k = 1; k <= kPerThread; ++k) {
        h.Record(static_cast<double>(t * kPerThread + k));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), kThreads * kPerThread);
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.current(), 150);
  EXPECT_EQ(tracker.peak(), 150);
  tracker.Release(120);
  EXPECT_EQ(tracker.current(), 30);
  EXPECT_EQ(tracker.peak(), 150);
  tracker.Add(10);
  EXPECT_EQ(tracker.peak(), 150);  // did not pass the old high-water mark
}

TEST(MemoryTrackerTest, ConcurrentPeakIsAtLeastSerialBound) {
  MemoryTracker tracker;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker] {
      for (int k = 0; k < 1000; ++k) {
        tracker.Add(64);
        tracker.Release(64);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracker.current(), 0);
  EXPECT_GE(tracker.peak(), 64);
}

TEST(MetricKeyTest, NoLabels) { EXPECT_EQ(MetricKey("a.b", {}), "a.b"); }

TEST(MetricKeyTest, WithLabels) {
  EXPECT_EQ(MetricKey("rows", {{"engine", "minidb"}, {"op", "scan"}}),
            "rows{engine=\"minidb\",op=\"scan\"}");
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.count");
  Counter* b = registry.counter("x.count");
  EXPECT_EQ(a, b);
  Counter* labeled = registry.counter("x.count", {{"k", "v"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, registry.counter("x.count", {{"k", "v"}}));
}

TEST(MetricsRegistryTest, SnapshotReflectsValues) {
  MetricsRegistry registry;
  registry.counter("c.one")->Increment(7);
  registry.gauge("g.one")->Set(2.5);
  registry.histogram("h.one")->Record(3.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("c.one"), 7);
  EXPECT_EQ(snapshot.CounterValue("missing", -1), -1);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("g.one"), 2.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].sum, 3.0);
}

TEST(MetricsRegistryTest, ResetKeepsPointersValidAndZeroesValues) {
  MetricsRegistry registry;
  Counter* c = registry.counter("keep.me");
  c->Increment(10);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  c->Increment(1);
  EXPECT_EQ(registry.Snapshot().CounterValue("keep.me"), 1);
}

TEST(MetricsRegistryTest, SnapshotKeysAreSorted) {
  MetricsRegistry registry;
  registry.counter("zz.last")->Increment();
  registry.counter("aa.first")->Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "aa.first");
  EXPECT_EQ(snapshot.counters[1].name, "zz.last");
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int k = 0; k < 1000; ++k) {
        registry.counter("shared.count")->Increment();
        registry.histogram("shared.hist")->Record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("shared.count"), 8000);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 8000);
}

TEST(QuantileTest, ExactForSingleBucketIsClampedToExtremes) {
  Histogram h;
  for (int k = 0; k < 100; ++k) h.Record(10.0);
  MetricsRegistry registry;  // build a sample by hand via a registry
  Histogram* rh = registry.histogram("q");
  for (int k = 0; k < 100; ++k) rh->Record(10.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& sample = snapshot.histograms[0];
  // All mass in one bucket whose true extremes are both 10: every
  // quantile must report exactly 10.
  EXPECT_DOUBLE_EQ(sample.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(sample.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(sample.Quantile(1.0), 10.0);
}

TEST(QuantileTest, MonotoneAcrossSpreadData) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("spread");
  for (int k = 1; k <= 1024; ++k) h->Record(static_cast<double>(k));
  const auto sample = registry.Snapshot().histograms[0];
  const double p10 = sample.Quantile(0.1);
  const double p50 = sample.Quantile(0.5);
  const double p90 = sample.Quantile(0.9);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  EXPECT_GE(p10, sample.min);
  EXPECT_LE(p90, sample.max);
  // Log-bucket interpolation is coarse but should land within a factor
  // of two of the true median (512).
  EXPECT_GT(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
}

TEST(ExpositionTest, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.counter("c", {{"k", "v"}})->Increment(3);
  registry.gauge("g")->Set(1.5);
  registry.histogram("h")->Record(2.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c{k=\\\"v\\\"}\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(ExpositionTest, EmptyRegistryJsonIsWellFormedSkeleton) {
  MetricsRegistry registry;
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

TEST(ExpositionTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("minidb.rows-scanned", {{"op", "scan"}})->Increment(12);
  registry.gauge("minidb.peak")->Set(4096);
  registry.histogram("einsum.plan.seconds")->Record(0.25);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE minidb_rows_scanned counter"),
            std::string::npos);
  EXPECT_NE(text.find("minidb_rows_scanned{op=\"scan\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE minidb_peak gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE einsum_plan_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("einsum_plan_seconds_count 1"), std::string::npos);
}

TEST(DefaultRegistryTest, IsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace einsql
