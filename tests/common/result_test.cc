#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace einsql {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<std::string> good = std::string("x");
  Result<std::string> bad = Status::Internal("no");
  EXPECT_EQ(good.value_or("y"), "x");
  EXPECT_EQ(bad.value_or("y"), "y");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto wrapper = [&]() -> Result<int> {
    EINSQL_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  EXPECT_EQ(wrapper().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnAssignsValue) {
  auto succeeds = []() -> Result<int> { return 41; };
  auto wrapper = [&]() -> Result<int> {
    EINSQL_ASSIGN_OR_RETURN(int v, succeeds());
    return v + 1;
  };
  ASSERT_TRUE(wrapper().ok());
  EXPECT_EQ(wrapper().value(), 42);
}

TEST(ResultTest, AssignOrReturnWorksTwiceInOneFunction) {
  auto succeeds = [](int x) -> Result<int> { return x; };
  auto wrapper = [&]() -> Result<int> {
    EINSQL_ASSIGN_OR_RETURN(int a, succeeds(1));
    EINSQL_ASSIGN_OR_RETURN(int b, succeeds(2));
    return a + b;
  };
  EXPECT_EQ(wrapper().value(), 3);
}

}  // namespace
}  // namespace einsql
