#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace einsql {
namespace {

// Minimal recursive-descent JSON validator — enough to assert that
// ToChromeJson emits syntactically valid JSON without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(TraceTest, EmptyTraceSerializes) {
  Trace trace;
  EXPECT_EQ(trace.span_count(), 0u);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(TraceTest, ImplicitNestingFollowsOpenSpans) {
  Trace trace;
  const auto outer = trace.BeginSpan("outer");
  const auto inner = trace.BeginSpan("inner");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  const auto sibling = trace.BeginSpan("sibling");
  trace.EndSpan(sibling);

  const std::string tree = trace.ToString();
  // "inner" is indented below "outer"; "sibling" is back at top level.
  const size_t outer_pos = tree.find("outer");
  const size_t inner_pos = tree.find("inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  const size_t inner_line = tree.rfind('\n', inner_pos);
  EXPECT_NE(tree.substr(inner_line + 1, inner_pos - inner_line - 1), "");

  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos) << json;
}

TEST(TraceTest, ExplicitParentOverridesThreadStack) {
  Trace trace;
  const auto parent = trace.BeginSpan("parent");
  trace.EndSpan(parent);
  // "parent" is closed, so implicit nesting would yield a top-level span.
  const auto child = trace.BeginSpan("child", parent);
  trace.EndSpan(child);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos) << json;
}

TEST(TraceTest, AttributesSerialize) {
  Trace trace;
  const auto span = trace.BeginSpan("work");
  trace.SetAttribute(span, "rows", static_cast<int64_t>(42));
  trace.SetAttribute(span, "cost", 1.5);
  trace.SetAttribute(span, "note", "say \"hi\"");
  trace.EndSpan(span);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"rows\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"note\": \"say \\\"hi\\\"\""), std::string::npos)
      << json;
}

TEST(TraceTest, ReSettingAttributeOverwrites) {
  Trace trace;
  const auto span = trace.BeginSpan("work");
  trace.SetAttribute(span, "rows", static_cast<int64_t>(1));
  trace.SetAttribute(span, "rows", static_cast<int64_t>(2));
  trace.EndSpan(span);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("\"rows\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos) << json;
}

TEST(TraceTest, EndingUnknownSpanIsNoop) {
  Trace trace;
  trace.EndSpan(123);
  trace.EndSpan(Trace::kNoParent);
  const auto span = trace.BeginSpan("work");
  trace.EndSpan(span);
  trace.EndSpan(span);  // double close
  EXPECT_EQ(trace.span_count(), 1u);
}

TEST(TraceTest, CountersEmitCounterEvents) {
  Trace trace;
  trace.AddCounter("queue_depth", 3.0);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("queue_depth"), std::string::npos) << json;
}

TEST(TraceTest, OpenSpansSerializeWithoutMutation) {
  Trace trace;
  (void)trace.BeginSpan("still-open");
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("still-open"), std::string::npos);
}

TEST(TraceTest, ScopedSpanToleratesNullTrace) {
  ScopedSpan span(nullptr, "nothing");
  span.SetAttribute("rows", static_cast<int64_t>(1));
  span.End();
  EXPECT_EQ(span.id(), Trace::kNoParent);
}

TEST(TraceTest, ScopedSpanEndsOnDestruction) {
  Trace trace;
  {
    ScopedSpan span(&trace, "scoped");
    span.SetAttribute("rows", static_cast<int64_t>(7));
  }
  EXPECT_EQ(trace.span_count(), 1u);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("scoped"), std::string::npos);
}

TEST(TraceTest, CrossThreadChildrenNestUnderExplicitParent) {
  Trace trace;
  const auto parent = trace.BeginSpan("spawn");
  std::vector<std::thread> workers;
  for (int k = 0; k < 4; ++k) {
    workers.emplace_back([&trace, parent, k] {
      const auto span = trace.BeginSpan("worker", parent);
      trace.SetAttribute(span, "index", static_cast<int64_t>(k));
      trace.EndSpan(span);
    });
  }
  for (auto& w : workers) w.join();
  trace.EndSpan(parent);
  EXPECT_EQ(trace.span_count(), 5u);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(TraceTest, ThreadSafetySmoke) {
  Trace trace;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace] {
      for (int k = 0; k < kSpansPerThread; ++k) {
        const auto outer = trace.BeginSpan("outer");
        const auto inner = trace.BeginSpan("inner");
        trace.SetAttribute(inner, "k", static_cast<int64_t>(k));
        trace.EndSpan(inner);
        trace.EndSpan(outer);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(trace.span_count(),
            static_cast<size_t>(kThreads * kSpansPerThread * 2));
  EXPECT_TRUE(JsonChecker(trace.ToChromeJson()).Valid());
}

TEST(TraceTest, WriteJsonFileRoundTrips) {
  Trace trace;
  const auto span = trace.BeginSpan("io");
  trace.EndSpan(span);
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(trace.WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_NE(buffer.str().find("io"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01""b", 3)), "a\\u0001b");
}

TEST(JsonEscapeTest, EscapesEveryControlCharacter) {
  // All of 0x00-0x1F must render as escapes — raw control bytes inside a
  // JSON string are invalid and break chrome://tracing imports.
  for (int c = 1; c < 0x20; ++c) {
    const std::string input(1, static_cast<char>(c));
    const std::string escaped = JsonEscape(input);
    EXPECT_GE(escaped.size(), 2u) << "control char " << c << " not escaped";
    EXPECT_EQ(escaped[0], '\\') << "control char " << c;
  }
  EXPECT_EQ(JsonEscape("\t"), "\\t");
  EXPECT_EQ(JsonEscape("\r"), "\\r");
  EXPECT_EQ(JsonEscape(std::string_view("\x1f", 1)), "\\u001f");
}

TEST(JsonEscapeTest, MixedSpecialsRoundTripInOrder) {
  EXPECT_EQ(JsonEscape("a\"\\\n\tb"), "a\\\"\\\\\\n\\tb");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(JsonEscape("π ≈ 3"), "π ≈ 3");
}

TEST(TraceTest, SpanNamesWithSpecialCharactersSerializeValidly) {
  Trace trace;
  const char* names[] = {
      "quote \" in name",          "back\\slash",
      "newline\nname",             "tab\tname",
      "cte \"weird\"\\path\nend",  "unicode π name",
  };
  for (const char* name : names) {
    const auto span = trace.BeginSpan(name);
    trace.SetAttribute(span, "note", "attr with \"quotes\" and \\slashes\n");
    trace.EndSpan(span);
  }
  // A control character in a span name (possible via generated CTE names)
  // must not produce raw bytes in the JSON output.
  const auto ctl = trace.BeginSpan(std::string_view("ctl\x02name", 8));
  trace.EndSpan(ctl);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("quote \\\" in name"), std::string::npos) << json;
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos) << json;
  EXPECT_NE(json.find("newline\\nname"), std::string::npos) << json;
  EXPECT_NE(json.find("ctl\\u0002name"), std::string::npos) << json;
  int raw_control_bytes = 0;
  for (char c : json) {
    if (static_cast<unsigned char>(c) < 0x20 && c != '\n') {
      ++raw_control_bytes;
    }
  }
  EXPECT_EQ(raw_control_bytes, 0) << "raw control bytes in JSON output";
}

TEST(TraceTest, ConcurrentWorkersWithAttributesAndCounters) {
  // Workers concurrently open/close spans (implicit and explicit parents),
  // set attributes on shared and private spans, and sample counters. Run
  // under the TSan CI leg, this is the data-race proof for the whole
  // recording surface.
  Trace trace;
  const auto root = trace.BeginSpan("root");
  constexpr int kThreads = 8;
  constexpr int kIterations = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace, root, t] {
      for (int k = 0; k < kIterations; ++k) {
        const auto span =
            trace.BeginSpan(k % 2 == 0 ? "even \"span\"" : "odd\\span", root);
        trace.SetAttribute(span, "thread", static_cast<int64_t>(t));
        trace.SetAttribute(span, "label", "worker \"quoted\"\n");
        // Attribute writes on the shared root race by design; last writer
        // wins, but every interleaving must be safe.
        trace.SetAttribute(root, "last_thread", static_cast<int64_t>(t));
        trace.AddCounter("iterations", static_cast<double>(k));
        trace.EndSpan(span);
      }
    });
  }
  for (auto& w : workers) w.join();
  trace.EndSpan(root);
  EXPECT_EQ(trace.span_count(),
            static_cast<size_t>(kThreads * kIterations + 1));
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("even \\\"span\\\""), std::string::npos);
  EXPECT_NE(json.find("odd\\\\span"), std::string::npos);
}

TEST(TraceTest, ConcurrentSerializationWhileRecording) {
  // ToChromeJson/ToString/span_count are const and documented thread-safe:
  // serialize concurrently with active recording.
  Trace trace;
  std::atomic<bool> stop{false};
  std::thread recorder([&trace, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto span = trace.BeginSpan("busy");
      trace.SetAttribute(span, "x", 1.5);
      trace.EndSpan(span);
    }
  });
  for (int k = 0; k < 50; ++k) {
    EXPECT_TRUE(JsonChecker(trace.ToChromeJson()).Valid());
    (void)trace.ToString();
    (void)trace.span_count();
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  EXPECT_TRUE(JsonChecker(trace.ToChromeJson()).Valid());
}

}  // namespace
}  // namespace einsql
