#include "common/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace einsql {
namespace {

// Minimal recursive-descent JSON validator — enough to assert that
// ToChromeJson emits syntactically valid JSON without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(TraceTest, EmptyTraceSerializes) {
  Trace trace;
  EXPECT_EQ(trace.span_count(), 0u);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(TraceTest, ImplicitNestingFollowsOpenSpans) {
  Trace trace;
  const auto outer = trace.BeginSpan("outer");
  const auto inner = trace.BeginSpan("inner");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  const auto sibling = trace.BeginSpan("sibling");
  trace.EndSpan(sibling);

  const std::string tree = trace.ToString();
  // "inner" is indented below "outer"; "sibling" is back at top level.
  const size_t outer_pos = tree.find("outer");
  const size_t inner_pos = tree.find("inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  const size_t inner_line = tree.rfind('\n', inner_pos);
  EXPECT_NE(tree.substr(inner_line + 1, inner_pos - inner_line - 1), "");

  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos) << json;
}

TEST(TraceTest, ExplicitParentOverridesThreadStack) {
  Trace trace;
  const auto parent = trace.BeginSpan("parent");
  trace.EndSpan(parent);
  // "parent" is closed, so implicit nesting would yield a top-level span.
  const auto child = trace.BeginSpan("child", parent);
  trace.EndSpan(child);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos) << json;
}

TEST(TraceTest, AttributesSerialize) {
  Trace trace;
  const auto span = trace.BeginSpan("work");
  trace.SetAttribute(span, "rows", static_cast<int64_t>(42));
  trace.SetAttribute(span, "cost", 1.5);
  trace.SetAttribute(span, "note", "say \"hi\"");
  trace.EndSpan(span);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"rows\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"note\": \"say \\\"hi\\\"\""), std::string::npos)
      << json;
}

TEST(TraceTest, ReSettingAttributeOverwrites) {
  Trace trace;
  const auto span = trace.BeginSpan("work");
  trace.SetAttribute(span, "rows", static_cast<int64_t>(1));
  trace.SetAttribute(span, "rows", static_cast<int64_t>(2));
  trace.EndSpan(span);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("\"rows\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos) << json;
}

TEST(TraceTest, EndingUnknownSpanIsNoop) {
  Trace trace;
  trace.EndSpan(123);
  trace.EndSpan(Trace::kNoParent);
  const auto span = trace.BeginSpan("work");
  trace.EndSpan(span);
  trace.EndSpan(span);  // double close
  EXPECT_EQ(trace.span_count(), 1u);
}

TEST(TraceTest, CountersEmitCounterEvents) {
  Trace trace;
  trace.AddCounter("queue_depth", 3.0);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("queue_depth"), std::string::npos) << json;
}

TEST(TraceTest, OpenSpansSerializeWithoutMutation) {
  Trace trace;
  (void)trace.BeginSpan("still-open");
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("still-open"), std::string::npos);
}

TEST(TraceTest, ScopedSpanToleratesNullTrace) {
  ScopedSpan span(nullptr, "nothing");
  span.SetAttribute("rows", static_cast<int64_t>(1));
  span.End();
  EXPECT_EQ(span.id(), Trace::kNoParent);
}

TEST(TraceTest, ScopedSpanEndsOnDestruction) {
  Trace trace;
  {
    ScopedSpan span(&trace, "scoped");
    span.SetAttribute("rows", static_cast<int64_t>(7));
  }
  EXPECT_EQ(trace.span_count(), 1u);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("scoped"), std::string::npos);
}

TEST(TraceTest, CrossThreadChildrenNestUnderExplicitParent) {
  Trace trace;
  const auto parent = trace.BeginSpan("spawn");
  std::vector<std::thread> workers;
  for (int k = 0; k < 4; ++k) {
    workers.emplace_back([&trace, parent, k] {
      const auto span = trace.BeginSpan("worker", parent);
      trace.SetAttribute(span, "index", static_cast<int64_t>(k));
      trace.EndSpan(span);
    });
  }
  for (auto& w : workers) w.join();
  trace.EndSpan(parent);
  EXPECT_EQ(trace.span_count(), 5u);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(TraceTest, ThreadSafetySmoke) {
  Trace trace;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace] {
      for (int k = 0; k < kSpansPerThread; ++k) {
        const auto outer = trace.BeginSpan("outer");
        const auto inner = trace.BeginSpan("inner");
        trace.SetAttribute(inner, "k", static_cast<int64_t>(k));
        trace.EndSpan(inner);
        trace.EndSpan(outer);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(trace.span_count(),
            static_cast<size_t>(kThreads * kSpansPerThread * 2));
  EXPECT_TRUE(JsonChecker(trace.ToChromeJson()).Valid());
}

TEST(TraceTest, WriteJsonFileRoundTrips) {
  Trace trace;
  const auto span = trace.BeginSpan("io");
  trace.EndSpan(span);
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(trace.WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_NE(buffer.str().find("io"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01""b", 3)), "a\\u0001b");
}

}  // namespace
}  // namespace einsql
