#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace einsql {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit over 1000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    double v = rng.UniformDouble(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, NormalHasReasonableMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

}  // namespace
}  // namespace einsql
