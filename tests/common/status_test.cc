#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace einsql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad index ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad index 42");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad index 42");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorRendersToString) {
  std::ostringstream os;
  os << Status::IOError("disk gone");
  EXPECT_EQ(os.str(), "IOError: disk gone");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    EINSQL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto wrapper = []() -> Status {
    EINSQL_RETURN_IF_ERROR(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, MixedMessagePieces) {
  Status s = Status::OutOfRange("value ", 3.5, " exceeds ", 2);
  EXPECT_EQ(s.message(), "value 3.500000 exceeds 2");
}

}  // namespace
}  // namespace einsql
