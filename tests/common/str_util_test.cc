#include "common/str_util.h"

#include <gtest/gtest.h>

namespace einsql {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputIsSingleEmptyPiece) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> pieces = {"ik", "jk", "j"};
  EXPECT_EQ(Join(pieces, ","), "ik,jk,j");
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(CaseTest, ToLowerToUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("group", "groupby"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("SELECT 1", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(ParseInt64Test, ParsesValid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13 ").value(), 13);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseDoubleTest, ParsesValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.0junk").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(DoubleToSqlLiteralTest, RoundTripsExactly) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e-300, 3.141592653589793,
                   123456789.123456789}) {
    EXPECT_DOUBLE_EQ(ParseDouble(DoubleToSqlLiteral(v)).value(), v) << v;
  }
}

TEST(DoubleToSqlLiteralTest, AlwaysLooksLikeAFloat) {
  EXPECT_EQ(DoubleToSqlLiteral(1.0), "1.0");
  EXPECT_EQ(DoubleToSqlLiteral(-3.0), "-3.0");
  EXPECT_NE(DoubleToSqlLiteral(1e30).find('e'), std::string::npos);
}

TEST(StrCatTest, MixesTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

}  // namespace
}  // namespace einsql
