#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace einsql {
namespace {

JsonValue MustParse(std::string_view text) {
  Result<JsonValue> result = JsonValue::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.ok() ? std::move(result).value() : JsonValue();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool(true));
  EXPECT_DOUBLE_EQ(MustParse("3.25").AsDouble(), 3.25);
  EXPECT_EQ(MustParse("-17").AsInt(), -17);
  EXPECT_DOUBLE_EQ(MustParse("1e3").AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("2.5E-2").AsDouble(), 0.025);
  EXPECT_EQ(MustParse("\"hello\"").AsString(), "hello");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d")").AsString(), "a\"b\\c/d");
  EXPECT_EQ(MustParse(R"("\n\t\r\b\f")").AsString(), "\n\t\r\b\f");
  EXPECT_EQ(MustParse(R"("A")").AsString(), "A");
  EXPECT_EQ(MustParse(R"("é")").AsString(), "\xc3\xa9");    // é
  EXPECT_EQ(MustParse(R"("€")").AsString(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, Arrays) {
  const JsonValue doc = MustParse("[1, 2, [3, 4], \"x\"]");
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.items().size(), 4u);
  EXPECT_EQ(doc.items()[0].AsInt(), 1);
  EXPECT_EQ(doc.items()[2].items()[1].AsInt(), 4);
  EXPECT_EQ(doc.items()[3].AsString(), "x");
  EXPECT_TRUE(MustParse("[]").items().empty());
}

TEST(JsonParseTest, Objects) {
  const JsonValue doc =
      MustParse(R"({"name": "fig2", "seconds": 0.125, "nested": {"n": 5}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc["name"].AsString(), "fig2");
  EXPECT_DOUBLE_EQ(doc["seconds"].AsDouble(), 0.125);
  EXPECT_EQ(doc["nested"]["n"].AsInt(), 5);
  EXPECT_TRUE(doc.Has("name"));
  EXPECT_FALSE(doc.Has("absent"));
}

TEST(JsonParseTest, MissingKeysChainSafely) {
  const JsonValue doc = MustParse(R"({"a": 1})");
  EXPECT_TRUE(doc["b"].is_null());
  EXPECT_TRUE(doc["b"]["c"]["d"].is_null());
  EXPECT_EQ(doc["b"]["c"].AsInt(42), 42);
}

TEST(JsonParseTest, KeysPreserveDocumentOrder) {
  const JsonValue doc = MustParse(R"({"zz": 1, "aa": 2, "mm": 3})");
  ASSERT_EQ(doc.keys().size(), 3u);
  EXPECT_EQ(doc.keys()[0], "zz");
  EXPECT_EQ(doc.keys()[1], "aa");
  EXPECT_EQ(doc.keys()[2], "mm");
}

TEST(JsonParseTest, DuplicateKeysFirstWins) {
  const JsonValue doc = MustParse(R"({"k": 1, "k": 2})");
  EXPECT_EQ(doc["k"].AsInt(), 1);
  EXPECT_EQ(doc.keys().size(), 1u);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const JsonValue doc = MustParse(" \n\t { \"a\" : [ 1 , 2 ] } \r\n ");
  EXPECT_EQ(doc["a"].items().size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad \\x escape\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\u12").ok());
  EXPECT_FALSE(JsonValue::Parse("1.2.3").ok());
  EXPECT_FALSE(JsonValue::Parse("nan").ok());
  EXPECT_FALSE(JsonValue::Parse("{1: 2}").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int k = 0; k < 100; ++k) deep += '[';
  for (int k = 0; k < 100; ++k) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 32 levels is fine.
  std::string ok;
  for (int k = 0; k < 32; ++k) ok += '[';
  for (int k = 0; k < 32; ++k) ok += ']';
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonParseTest, BenchReportShapedDocument) {
  // The exact shape bench_report reads back as a baseline.
  const char* text = R"({
    "schema_version": 1,
    "git_sha": "abc123",
    "benches": [
      {"bench": "fig2_triplestore", "config": {"rows": 1000},
       "seconds": {"median": 0.012, "p10": 0.011, "p90": 0.014},
       "rows": 42}
    ]
  })";
  const JsonValue doc = MustParse(text);
  EXPECT_EQ(doc["schema_version"].AsInt(), 1);
  ASSERT_EQ(doc["benches"].items().size(), 1u);
  const JsonValue& bench = doc["benches"].items()[0];
  EXPECT_EQ(bench["bench"].AsString(), "fig2_triplestore");
  EXPECT_DOUBLE_EQ(bench["seconds"]["median"].AsDouble(), 0.012);
  EXPECT_EQ(bench["config"]["rows"].AsInt(), 1000);
}

TEST(JsonParseTest, WrongKindAccessorsFallBack) {
  const JsonValue doc = MustParse("[1]");
  EXPECT_EQ(doc.AsString(), "");
  EXPECT_EQ(doc.AsInt(9), 9);
  EXPECT_TRUE(doc["key"].is_null());  // operator[] on non-object
  EXPECT_TRUE(MustParse("5").items().empty());
  EXPECT_TRUE(MustParse("5").keys().empty());
}

}  // namespace
}  // namespace einsql
