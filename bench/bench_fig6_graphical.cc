// Reproduces Figure 6: graphical-model inference throughput as a function
// of the evidence batch size (number of patients embedded in one query).
//
// Paper setup: the breast-cancer pairwise model (21 edge matrices, shapes
// ℝ^{2×3} … ℝ^{11×7}); P(recurrence | all patient data) for batches of
// one-hot evidence matrices. Expected shape: the dense engine (opt_einsum
// role) leads at every batch size; row-store throughput degrades faster
// with growing batch than the in-memory configurations.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/program.h"
#include "graphical/generator.h"

namespace {

using namespace einsql;            // NOLINT
using namespace einsql::graphical; // NOLINT

struct Fig6Case {
  InferenceQuery query;
  InferenceNetwork network;
  ContractionProgram program;
};

Fig6Case BuildCase(const PairwiseModel& model, int batch) {
  Rng rng(1000 + batch);
  Fig6Case c;
  c.query = RandomQuery(model, /*query_variable=*/0, batch, &rng);
  c.network = BuildInferenceNetwork(model, c.query).value();
  std::vector<Shape> shapes;
  for (const CooTensor& t : c.network.tensors) shapes.push_back(t.shape());
  c.program =
      BuildProgram(c.network.spec, shapes, PathAlgorithm::kElimination).value();
  return c;
}

void RunInference(benchmark::State& state, EinsumEngine* engine,
                  const PairwiseModel* model, const Fig6Case* c) {
  EinsumOptions options = bench::BenchSession::Get().Traced();
  for (auto _ : state) {
    // A full solve embeds the (fresh) evidence and contracts; the
    // contraction path is precomputed, as in the paper.
    auto network = BuildInferenceNetwork(*model, c->query);
    if (!network.ok()) {
      state.SkipWithError(network.status().ToString().c_str());
      return;
    }
    auto raw = engine->RunProgram(c->program, network->operands(), options);
    if (!raw.ok()) {
      state.SkipWithError(raw.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(raw->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("fig6_graphical", engine);
  state.counters["batch"] = static_cast<double>(c->query.batch_size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  auto model = std::make_shared<PairwiseModel>(BreastCancerLikeModel());
  auto engines = std::make_shared<std::vector<bench::NamedEngine>>(
      bench::StandardEngines());
  auto cases = std::make_shared<std::vector<Fig6Case>>();
  for (int batch : {1, 4, 16, 64, 256}) {
    cases->push_back(BuildCase(*model, batch));
  }
  for (auto& engine : *engines) {
    for (auto& c : *cases) {
      const std::string name = "fig6_graphical/" + engine.label +
                               "/batch:" +
                               std::to_string(c.query.batch_size());
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&engine, model, &c](benchmark::State& state) {
            RunInference(state, engine.engine.get(), model.get(), &c);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
