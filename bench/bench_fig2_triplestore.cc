// Reproduces Figure 2: throughput of the gold-medal SPARQL query (Listing
// 7) over the synthetic Olympic dataset, answered with Einstein summation
// in SQL on every backend versus the interpreted graph-matching baseline
// (the RDFLib stand-in).
//
// Expected shape: every relational engine beats the interpreted matcher;
// the optimizing in-memory configuration leads (HyPer's role in the paper).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "triplestore/generator.h"
#include "triplestore/query.h"

namespace {

using namespace einsql;               // NOLINT
using namespace einsql::triplestore;  // NOLINT

TripleStore MakeDataset() {
  OlympicsOptions options;
  options.num_athletes = 2000;
  options.results_per_athlete = 3;
  options.medal_fraction = 0.15;
  options.seed = 7;
  return GenerateOlympics(options);
}

void RunSqlQuery(benchmark::State& state, SqlBackend* backend,
                 const TripleStore* store) {
  const PatternQuery query = GoldMedalQuery();
  for (auto _ : state) {
    auto rows = AnswerWithSql(backend, *store, query);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("fig2_triplestore", backend->name(),
                                          backend->last_stats());
}

void RunNaiveQuery(benchmark::State& state, const TripleStore* store) {
  const PatternQuery query = GoldMedalQuery();
  for (auto _ : state) {
    auto rows = AnswerNaive(*store, query);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  auto store = std::make_shared<TripleStore>(MakeDataset());
  auto engines = std::make_shared<std::vector<bench::NamedEngine>>();
  engines->push_back(bench::MakeSqliteEngine());
  engines->push_back(
      bench::MakeMiniDbEngine(einsql::minidb::OptimizerMode::kGreedy));
  engines->push_back(
      bench::MakeMiniDbEngine(einsql::minidb::OptimizerMode::kAggressive));
  engines->push_back(
      bench::MakeMiniDbEngine(einsql::minidb::OptimizerMode::kNone));
  for (auto& engine : *engines) {
    auto status = store->LoadInto(engine.backend.get());
    if (!status.ok()) {
      fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const std::string name = "fig2_triplestore/" + engine.label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&engine, store](benchmark::State& state) {
          RunSqlQuery(state, engine.backend.get(), store.get());
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "fig2_triplestore/naive-matcher",
      [store](benchmark::State& state) { RunNaiveQuery(state, store.get()); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
