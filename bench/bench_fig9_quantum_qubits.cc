// Reproduces Figure 9: quantum-circuit simulation throughput as a function
// of the qubit count, with the depth fixed at 6.
//
// Expected shape: for few qubits the SQL engines are competitive, but the
// output is the *dense* rank-n amplitude tensor (2^n complex values);
// representing it in a sparse COO relation is increasingly wasteful, so
// the dense engine pulls away as qubits grow — the paper's headline
// observation for this figure.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/program.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"

namespace {

using namespace einsql;           // NOLINT
using namespace einsql::quantum;  // NOLINT

struct QuantumCase {
  CircuitNetwork network;
  ContractionProgram program;
  int qubits = 0;
};

QuantumCase BuildCase(int qubits, int depth) {
  QuantumCase c;
  Circuit circuit = SycamoreLikeCircuit(qubits, depth, /*seed=*/13);
  c.network =
      BuildCircuitNetwork(circuit, std::vector<int>(qubits, 0)).value();
  std::vector<Shape> shapes;
  for (const ComplexCooTensor& t : c.network.tensors) {
    shapes.push_back(t.shape());
  }
  c.program =
      BuildProgram(c.network.spec, shapes, PathAlgorithm::kElimination)
          .value();
  c.qubits = qubits;
  return c;
}

void RunSimulation(benchmark::State& state, EinsumEngine* engine,
                   const QuantumCase* c) {
  const auto operands = c->network.operands();
  EinsumOptions options = bench::BenchSession::Get().Traced();
  for (auto _ : state) {
    auto amplitudes = engine->RunComplexProgram(c->program, operands, options);
    if (!amplitudes.ok()) {
      state.SkipWithError(amplitudes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(amplitudes->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("fig9_quantum_qubits", engine);
  state.counters["qubits"] = static_cast<double>(c->qubits);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  constexpr int kDepth = 6;
  auto engines = std::make_shared<std::vector<einsql::bench::NamedEngine>>(
      einsql::bench::StandardEngines());
  auto cases = std::make_shared<std::vector<QuantumCase>>();
  for (int qubits : {4, 6, 8, 10, 12, 14}) {
    cases->push_back(BuildCase(qubits, kDepth));
  }
  for (auto& engine : *engines) {
    for (auto& c : *cases) {
      const std::string name = "fig9_quantum_qubits/" + engine.label +
                               "/qubits:" + std::to_string(c.qubits);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&engine, &c](benchmark::State& state) {
            RunSimulation(state, engine.engine.get(), &c);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
