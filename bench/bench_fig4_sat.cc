// Reproduces Figure 4: #SAT throughput (problems solved per second) as a
// function of the clause count of a package-dependency 3-SAT formula.
//
// Paper setup: the Anaconda `conda install sqlite` formula (718 clauses,
// 378 variables), truncated to varying clause counts; every implementation
// uses the identical precomputed contraction sequence. Expected shape:
// SQLite beats opt_einsum on this dense small-tensor workload; heavier
// optimizers fall behind as queries grow; throughput drops roughly
// geometrically with clause count (log-scale axis in the paper).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/program.h"
#include "sat/count.h"
#include "sat/generator.h"

namespace {

using namespace einsql;       // NOLINT
using namespace einsql::sat;  // NOLINT

struct Fig4Case {
  SatTensorNetwork network;
  ContractionProgram program;
  double expected_count = 0.0;
};

// The full conda-like formula: 189 packages x 2 versions = 378 variables,
// ~718 clauses, all of size <= 3.
CnfFormula FullFormula() {
  PackageFormulaOptions options;
  options.num_packages = 189;
  options.versions_per_package = 2;
  options.dependencies_per_version = 1.25;
  options.seed = 2023;
  return PackageDependencyFormula(options);
}

Fig4Case BuildCase(const CnfFormula& formula, int clauses) {
  Fig4Case c;
  c.network =
      BuildTensorNetwork(TruncateClauses(formula, clauses)).value();
  std::vector<Shape> shapes;
  for (const CooTensor* t : c.network.operands()) shapes.push_back(t->shape());
  // Bucket elimination: the expression has hundreds of operands (§3.3) and
  // pairwise greedy wanders into astronomically large intermediates here.
  c.program =
      BuildProgram(c.network.spec, shapes, PathAlgorithm::kElimination)
          .value();
  return c;
}

void RunSolve(benchmark::State& state, EinsumEngine* engine,
              const Fig4Case* c) {
  const auto operands = c->network.operands();
  EinsumOptions options = bench::BenchSession::Get().Traced();
  for (auto _ : state) {
    auto result = engine->RunProgram(c->program, operands, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("fig4_sat", engine);
  state.counters["clauses"] = static_cast<double>(c->network.spec.inputs.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  const CnfFormula formula = FullFormula();
  auto engines = std::make_shared<std::vector<bench::NamedEngine>>(
      bench::StandardEngines());
  auto cases = std::make_shared<std::vector<Fig4Case>>();
  const int full = static_cast<int>(formula.clauses.size());
  for (int clauses : {50, 100, 200, 400, full}) {
    cases->push_back(BuildCase(formula, clauses));
  }
  for (auto& engine : *engines) {
    for (auto& c : *cases) {
      const std::string name =
          "fig4_sat/" + engine.label + "/clauses:" +
          std::to_string(c.network.spec.inputs.size());
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&engine, &c](benchmark::State& state) {
            RunSolve(state, engine.engine.get(), &c);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
