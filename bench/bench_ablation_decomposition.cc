// Ablation for §3.3 / §5: does forcing the contraction order through CTE
// decomposition matter, or can the engine's own optimizer save the flat
// single query (mapping rules R1-R4 applied once over all inputs)?
//
// Expected shape: decomposed queries win clearly; the flat query is
// workable only while the engine's join optimizer accidentally finds a
// good order, and "no optimization" (joins in FROM order = naive einsum)
// is the worst configuration — the paper's observation that "blindly
// executing joins before GROUP BY is an inefficient strategy".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "core/program.h"
#include "sat/count.h"
#include "sat/generator.h"

namespace {

using namespace einsql;       // NOLINT
using namespace einsql::sat;  // NOLINT

struct AblationCase {
  SatTensorNetwork network;
  ContractionProgram program;
};

AblationCase BuildCase(int clauses) {
  PackageFormulaOptions options;
  options.num_packages = 24;
  options.seed = 77;
  AblationCase c;
  c.network =
      BuildTensorNetwork(
          TruncateClauses(PackageDependencyFormula(options), clauses))
          .value();
  std::vector<Shape> shapes;
  for (const CooTensor* t : c.network.operands()) shapes.push_back(t->shape());
  c.program =
      BuildProgram(c.network.spec, shapes, PathAlgorithm::kElimination)
          .value();
  return c;
}

void RunCase(benchmark::State& state, EinsumEngine* engine,
             const AblationCase* c, bool decompose) {
  const auto operands = c->network.operands();
  EinsumOptions options = bench::BenchSession::Get().Traced();
  options.decompose = decompose;
  for (auto _ : state) {
    auto result = engine->RunProgram(c->program, operands, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases(
      decompose ? "ablation_decomposition/decomposed"
                : "ablation_decomposition/flat",
      engine);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  auto c = std::make_shared<AblationCase>(BuildCase(40));
  auto engines = std::make_shared<std::vector<bench::NamedEngine>>();
  engines->push_back(bench::MakeSqliteEngine());
  engines->push_back(bench::MakeMiniDbEngine(minidb::OptimizerMode::kGreedy));
  engines->push_back(bench::MakeMiniDbEngine(minidb::OptimizerMode::kNone));
  for (auto& engine : *engines) {
    for (bool decompose : {true, false}) {
      const std::string name = "ablation_decomposition/" + engine.label +
                               (decompose ? "/decomposed" : "/flat");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&engine, c, decompose](benchmark::State& state) {
            RunCase(state, engine.engine.get(), c.get(), decompose);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
