// Scaling smoke benchmark for morsel-driven intra-operator parallelism:
// one synthetic einsum-shaped workload (hash join + GROUP BY SUM over COO
// operands), executed with 1 worker thread and with N worker threads on the
// same prepared plan and the same morsel size.
//
// Writes a small JSON report (default BENCH_parallel.json, or the path
// given by --out=<file>) with both timings, the speedup, and whether the
// two results were identical — which they must be: for a fixed morsel size
// the thread count never changes query output, including double SUMs.
//
// Usage: bench_parallel_scaling [--threads=N] [--rows=R] [--out=file.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "minidb/database.h"

namespace {

using namespace einsql;          // NOLINT
using namespace einsql::minidb;  // NOLINT

// Deterministic LCG so both tables are reproducible across runs.
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

// A COO matrix table name(i, j, val) with `rows` random entries.
Status LoadMatrix(Database* db, const std::string& name, int64_t rows,
                  int64_t i_dim, int64_t j_dim, uint64_t seed) {
  EINSQL_RETURN_IF_ERROR(db->CreateTable(
      name, {{"i", ValueType::kInt}, {"j", ValueType::kInt},
             {"val", ValueType::kDouble}}));
  uint64_t state = seed;
  std::vector<Row> data;
  data.reserve(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t i = static_cast<int64_t>(NextRand(&state) % i_dim);
    const int64_t j = static_cast<int64_t>(NextRand(&state) % j_dim);
    const double val =
        static_cast<double>(NextRand(&state) % 1000) / 1000.0 - 0.5;
    data.push_back({Value(i), Value(j), Value(val)});
  }
  return db->BulkInsert(name, std::move(data));
}

// Executes the prepared plan `reps` times with the given worker count and
// returns the fastest execution time; `result` receives the last result.
Result<double> TimedRun(Database* db, const QueryPlan& plan, int threads,
                        int reps, Relation* result) {
  db->executor_options().parallel_operators = true;
  db->executor_options().num_threads = threads;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    EINSQL_ASSIGN_OR_RETURN(QueryResult query, db->ExecutePrepared(plan));
    best = std::min(best, query.stats.exec_seconds);
    *result = std::move(query.relation);
  }
  return best;
}

bool SameRelation(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (a.rows[r] != b.rows[r]) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  int threads = 0;  // 0 = hardware concurrency
  int64_t rows = 65536;
  std::string out_file = "BENCH_parallel.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--rows=", 0) == 0) {
      rows = std::atoll(arg.c_str() + 7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_file = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  Database db;
  // Matmul-shaped contraction: ~rows/2048 entries share each inner index,
  // so the join fans out to roughly rows * rows/2048 intermediate rows —
  // enough work for the probe and aggregation morsels to matter.
  Status status = LoadMatrix(&db, "A", rows, 64, 2048, 1);
  if (status.ok()) status = LoadMatrix(&db, "B", rows, 2048, 64, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string sql =
      "SELECT A.i AS i, B.j AS j, SUM(A.val * B.val) AS val "
      "FROM A, B WHERE A.j = B.i GROUP BY A.i, B.j";
  auto plan = db.Prepare(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "prepare: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  Relation sequential_result, parallel_result;
  auto sequential =
      TimedRun(&db, *plan, /*threads=*/1, /*reps=*/3, &sequential_result);
  auto parallel = TimedRun(&db, *plan, threads, /*reps=*/3, &parallel_result);
  if (!sequential.ok() || !parallel.ok()) {
    const Status& failed =
        !sequential.ok() ? sequential.status() : parallel.status();
    std::fprintf(stderr, "execute: %s\n", failed.ToString().c_str());
    return 1;
  }
  const bool identical = SameRelation(sequential_result, parallel_result);
  const double speedup = *parallel > 0.0 ? *sequential / *parallel : 0.0;

  std::FILE* f = std::fopen(out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s'\n", out_file.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"parallel_scaling\",\n"
               "  \"rows_per_operand\": %lld,\n"
               "  \"result_rows\": %lld,\n"
               "  \"threads\": %d,\n"
               "  \"seconds_1_thread\": %.9f,\n"
               "  \"seconds_n_threads\": %.9f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"identical_results\": %s\n"
               "}\n",
               static_cast<long long>(rows),
               static_cast<long long>(parallel_result.num_rows()), threads,
               *sequential, *parallel, speedup,
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("1 thread: %.3f ms, %d threads: %.3f ms, speedup %.2fx, %s\n",
              *sequential * 1e3, threads, *parallel * 1e3, speedup,
              identical ? "results identical" : "RESULTS DIFFER");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
