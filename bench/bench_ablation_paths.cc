// Ablation for §3.3: how much does contraction-path quality matter? The
// same tensor networks are contracted on the dense engine along paths
// found by each algorithm (naive left-to-right, pairwise greedy, bucket
// elimination, exact DP where feasible).
//
// Expected shape: naive is orders of magnitude slower (or infeasible) on
// tensor networks; bucket elimination dominates pairwise greedy on SAT
// networks; all algorithms coincide on tiny expressions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/cost.h"
#include "core/program.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"
#include "sat/generator.h"
#include "sat/tensorize.h"

namespace {

using namespace einsql;  // NOLINT

struct PathCase {
  std::string workload;
  EinsumSpec spec;
  std::vector<CooTensor> storage;
  std::vector<const CooTensor*> operands;
};

PathCase SatCase(int clauses) {
  sat::PackageFormulaOptions options;
  options.num_packages = 48;
  options.seed = 5;
  auto network = sat::BuildTensorNetwork(sat::TruncateClauses(
                                             sat::PackageDependencyFormula(options), clauses))
                     .value();
  PathCase c;
  c.workload = "sat" + std::to_string(clauses);
  c.spec = network.spec;
  c.storage = network.unique_tensors;
  for (int index : network.tensor_of_clause) {
    c.operands.push_back(&c.storage[index]);
  }
  return c;
}

void RunWithPath(benchmark::State& state, const PathCase* c,
                 PathAlgorithm algorithm) {
  std::vector<Shape> shapes;
  for (const CooTensor* t : c->operands) shapes.push_back(t->shape());
  auto program = BuildProgram(c->spec, shapes, algorithm);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  if (program->est_flops > 5e9) {
    state.SkipWithError("path too expensive to execute (see est_flops)");
    return;
  }
  DenseEinsumEngine dense;
  for (auto _ : state) {
    auto result = dense.RunProgram(*program, c->operands,
                                   bench::BenchSession::Get().Traced());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["est_flops"] = program->est_flops;
  state.counters["largest_intermediate"] =
      TermSize(program.value().steps.empty()
                   ? Term{}
                   : program->steps.back().result_term,
               program->extents);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  auto cases = std::make_shared<std::vector<PathCase>>();
  cases->push_back(SatCase(60));
  cases->push_back(SatCase(160));
  for (auto& c : *cases) {
    for (PathAlgorithm algorithm :
         {PathAlgorithm::kNaive, PathAlgorithm::kGreedy,
          PathAlgorithm::kElimination, PathAlgorithm::kBranch}) {
      const std::string name = "ablation_paths/" + c.workload + "/" +
                               PathAlgorithmToString(algorithm);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&c, algorithm](benchmark::State& state) {
            RunWithPath(state, &c, algorithm);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
