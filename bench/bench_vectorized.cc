// Row-vs-vectorized smoke benchmark: filter/aggregate-heavy einsum-shaped
// queries executed on the same prepared plan by the tuple-at-a-time
// interpreter and by the column-at-a-time kernels, sequentially and with
// identical morsel settings, so the two results must be bit-identical
// (see docs/vectorization.md).
//
// Writes a JSON report (default BENCH_vectorized.json, or --out=<file>)
// with per-query timings, speedups, and the identity verdict. The exit
// code flags correctness only: 0 when every query's vectorized result is
// identical to the row result, 1 on any mismatch. Speedup is reported,
// not gated, so slow CI machines can't turn a perf wobble into a red
// build — the ≥2x expectation is asserted by humans reading the report.
//
// Usage: bench_vectorized [--rows=R] [--out=file.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "minidb/database.h"

namespace {

using namespace einsql;          // NOLINT
using namespace einsql::minidb;  // NOLINT

// Deterministic LCG so the tables are reproducible across runs.
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

// A COO matrix table name(i, j, val) with `rows` random entries.
Status LoadMatrix(Database* db, const std::string& name, int64_t rows,
                  int64_t i_dim, int64_t j_dim, uint64_t seed) {
  EINSQL_RETURN_IF_ERROR(db->CreateTable(
      name, {{"i", ValueType::kInt}, {"j", ValueType::kInt},
             {"val", ValueType::kDouble}}));
  uint64_t state = seed;
  std::vector<Row> data;
  data.reserve(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t i = static_cast<int64_t>(NextRand(&state) % i_dim);
    const int64_t j = static_cast<int64_t>(NextRand(&state) % j_dim);
    const double val =
        static_cast<double>(NextRand(&state) % 1000) / 1000.0 - 0.5;
    data.push_back({Value(i), Value(j), Value(val)});
  }
  return db->BulkInsert(name, std::move(data));
}

// Executes the prepared plan `reps` times with the given executor flavor
// and returns the fastest execution time; `result` receives the last
// result. Both flavors stay sequential so the comparison isolates
// vectorization.
Result<double> TimedRun(Database* db, const QueryPlan& plan, bool vectorized,
                        int reps, Relation* result) {
  db->executor_options().vectorized = vectorized;
  db->executor_options().parallel_operators = false;
  db->executor_options().num_threads = 0;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    EINSQL_ASSIGN_OR_RETURN(QueryResult query, db->ExecutePrepared(plan));
    best = std::min(best, query.stats.exec_seconds);
    *result = std::move(query.relation);
  }
  return best;
}

bool SameRelation(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (a.rows[r] != b.rows[r]) return false;
  }
  return true;
}

struct BenchQuery {
  const char* id;
  const char* sql;
};

// Filter/aggregate-heavy shapes from the paper's workload: a diagonal
// trace (selective filter feeding a global SUM), an arithmetic-dense
// predicate with aggregate-of-expression, and a filtered GROUP BY.
const BenchQuery kQueries[] = {
    {"trace", "SELECT SUM(A.val) FROM A WHERE A.i = A.j"},
    {"filter_sum",
     "SELECT SUM(A.val * A.val), COUNT(*) FROM A "
     "WHERE (A.i * 7 + A.j * 3) % 31 < 2 AND A.val > -0.4"},
    {"filter_group",
     "SELECT A.i, SUM(A.val), COUNT(*) FROM A "
     "WHERE A.j % 4 = 1 GROUP BY A.i"},
};

int Run(int argc, char** argv) {
  int64_t rows = 1 << 20;
  std::string out_file = "BENCH_vectorized.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--rows=", 0) == 0) {
      rows = std::atoll(arg.c_str() + 7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_file = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  Database db;
  Status status = LoadMatrix(&db, "A", rows, 4096, 4096, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  std::FILE* f = std::fopen(out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s'\n", out_file.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"vectorized\",\n"
               "  \"rows\": %lld,\n"
               "  \"queries\": [\n",
               static_cast<long long>(rows));

  bool all_identical = true;
  bool first = true;
  for (const BenchQuery& query : kQueries) {
    auto plan = db.Prepare(query.sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "prepare %s: %s\n", query.id,
                   plan.status().ToString().c_str());
      std::fclose(f);
      return 1;
    }
    Relation row_result, vec_result;
    auto row_time =
        TimedRun(&db, *plan, /*vectorized=*/false, /*reps=*/3, &row_result);
    auto vec_time =
        TimedRun(&db, *plan, /*vectorized=*/true, /*reps=*/3, &vec_result);
    if (!row_time.ok() || !vec_time.ok()) {
      const Status& failed =
          !row_time.ok() ? row_time.status() : vec_time.status();
      std::fprintf(stderr, "execute %s: %s\n", query.id,
                   failed.ToString().c_str());
      std::fclose(f);
      return 1;
    }
    const bool identical = SameRelation(row_result, vec_result);
    all_identical = all_identical && identical;
    const double speedup = *vec_time > 0.0 ? *row_time / *vec_time : 0.0;
    std::fprintf(f,
                 "%s    {\"query\": \"%s\", \"result_rows\": %lld,\n"
                 "     \"seconds_row\": %.9f, \"seconds_vectorized\": %.9f,\n"
                 "     \"speedup\": %.3f, \"identical_results\": %s}",
                 first ? "" : ",\n", query.id,
                 static_cast<long long>(vec_result.num_rows()), *row_time,
                 *vec_time, speedup, identical ? "true" : "false");
    first = false;
    std::printf("%-12s row %8.3f ms, vectorized %8.3f ms, speedup %5.2fx, %s\n",
                query.id, *row_time * 1e3, *vec_time * 1e3, speedup,
                identical ? "results identical" : "RESULTS DIFFER");
  }
  std::fprintf(f,
               "\n  ],\n"
               "  \"identical_results\": %s\n"
               "}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
