// Ablation for the sparse-versus-dense discussion (§1, §4.1, §5): where
// does SQL Einstein summation beat a dense engine? A single matrix product
// "ik,kj->ij" is swept over input density.
//
// Expected shape: at low density the SQL engines process only the stored
// non-zeros while the dense engine pays for the full n² tensors, so SQL
// wins; as density approaches 1 the dense engine overtakes by a wide
// margin (COO storage of a dense problem is "rather inefficient", §3.1 —
// and the triplestore of §4.1 is the extreme sparse case, 1e-13 density).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "core/program.h"

namespace {

using namespace einsql;  // NOLINT

CooTensor RandomSparse(const Shape& shape, double density, uint64_t seed) {
  CooTensor t(shape);
  Rng rng(seed);
  std::vector<int64_t> coords(shape.size());
  const auto strides = RowMajorStrides(shape);
  const int64_t total = NumElements(shape).value();
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng.Bernoulli(density)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    (void)t.Append(coords, rng.UniformDouble(-1.0, 1.0));
  }
  return t;
}

struct DensityCase {
  double density;
  CooTensor a;
  CooTensor b;
  ContractionProgram program;
};

DensityCase BuildCase(int64_t n, double density) {
  DensityCase c{density, RandomSparse({n, n}, density, 1),
                RandomSparse({n, n}, density, 2), {}};
  c.program = BuildProgram("ik,kj->ij", {{n, n}, {n, n}},
                           PathAlgorithm::kAuto)
                  .value();
  return c;
}

void RunCase(benchmark::State& state, EinsumEngine* engine,
             const DensityCase* c) {
  const std::vector<const CooTensor*> operands = {&c->a, &c->b};
  for (auto _ : state) {
    auto result = engine->RunProgram(c->program, operands,
                                     bench::BenchSession::Get().Traced());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("ablation_density", engine);
  state.counters["density"] = c->density;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  constexpr int64_t kN = 128;
  auto engines = std::make_shared<std::vector<bench::NamedEngine>>();
  engines->push_back(bench::MakeDenseEngine());
  engines->push_back(bench::MakeSparseEngine());
  engines->push_back(bench::MakeSqliteEngine());
  engines->push_back(bench::MakeMiniDbEngine(minidb::OptimizerMode::kGreedy));
  auto cases = std::make_shared<std::vector<DensityCase>>();
  for (double density : {0.002, 0.01, 0.05, 0.2, 1.0}) {
    cases->push_back(BuildCase(kN, density));
  }
  for (auto& engine : *engines) {
    for (auto& c : *cases) {
      char label[64];
      std::snprintf(label, sizeof(label), "ablation_density/%s/density:%g",
                    engine.label.c_str(), c.density);
      benchmark::RegisterBenchmark(
          label,
          [&engine, &c](benchmark::State& state) {
            RunCase(state, engine.engine.get(), &c);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
