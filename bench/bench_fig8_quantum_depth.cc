// Reproduces Figure 8: quantum-circuit simulation throughput as a function
// of circuit depth, with the qubit count fixed at 10.
//
// Paper setup: Sycamore-style circuits, complex amplitudes carried through
// SQL as (re, im) column pairs with the hard-coded complex product (§4.4).
// Expected shape: throughput decays smoothly with depth for every engine;
// the SQL engines track the dense baseline within a constant factor since
// the network is still contracted pairwise along the same path.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/program.h"
#include "quantum/sycamore.h"
#include "quantum/to_einsum.h"

namespace {

using namespace einsql;           // NOLINT
using namespace einsql::quantum;  // NOLINT

struct QuantumCase {
  CircuitNetwork network;
  ContractionProgram program;
  int parameter = 0;  // depth or qubit count
};

QuantumCase BuildCase(int qubits, int depth) {
  QuantumCase c;
  Circuit circuit = SycamoreLikeCircuit(qubits, depth, /*seed=*/11);
  c.network =
      BuildCircuitNetwork(circuit, std::vector<int>(qubits, 0)).value();
  std::vector<Shape> shapes;
  for (const ComplexCooTensor& t : c.network.tensors) {
    shapes.push_back(t.shape());
  }
  c.program =
      BuildProgram(c.network.spec, shapes, PathAlgorithm::kElimination)
          .value();
  c.parameter = depth;
  return c;
}

void RunSimulation(benchmark::State& state, EinsumEngine* engine,
                   const QuantumCase* c, const char* counter) {
  const auto operands = c->network.operands();
  EinsumOptions options = bench::BenchSession::Get().Traced();
  for (auto _ : state) {
    auto amplitudes = engine->RunComplexProgram(c->program, operands, options);
    if (!amplitudes.ok()) {
      state.SkipWithError(amplitudes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(amplitudes->nnz());
  }
  state.SetItemsProcessed(state.iterations());
  bench::BenchSession::Get().RecordPhases("fig8_quantum_depth", engine);
  state.counters[counter] = static_cast<double>(c->parameter);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  constexpr int kQubits = 10;
  auto engines = std::make_shared<std::vector<einsql::bench::NamedEngine>>(
      einsql::bench::StandardEngines());
  auto cases = std::make_shared<std::vector<QuantumCase>>();
  for (int depth : {2, 4, 6, 8, 12, 16}) {
    cases->push_back(BuildCase(kQubits, depth));
  }
  for (auto& engine : *engines) {
    for (auto& c : *cases) {
      const std::string name = "fig8_quantum_depth/" + engine.label +
                               "/depth:" + std::to_string(c.parameter);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&engine, &c](benchmark::State& state) {
            RunSimulation(state, engine.engine.get(), &c, "depth");
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
