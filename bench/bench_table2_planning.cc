// Reproduces Table 2: planning time versus execution time for one large
// decomposed #SAT Einstein summation query (the paper uses a 952-clause
// formula; this harness generates a package formula of comparable size).
//
// Methodology as in the paper: "we measure the time to determine a query
// plan. We then subtract the time needed to compute the query plan from
// the total runtime of the query to obtain only the execution time."
// Expected shape:
//   * the dense engine (opt_einsum role) has no SQL planning at all,
//   * the lightweight engines plan in milliseconds,
//   * the aggressive optimizer's global passes make planning a visible
//     fraction of the total (HyPer's role: planning dominated),
//   * the exhaustive optimizer never finishes planning and reports N/A
//     (DuckDB 0.5's role; the paper terminated it after five hours).

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/program.h"
#include "core/sqlgen.h"
#include "sat/count.h"
#include "sat/generator.h"

namespace {

using namespace einsql;       // NOLINT
using namespace einsql::sat;  // NOLINT

void PrintRow(const std::string& name, const std::string& planning,
              const std::string& execution) {
  std::printf("%-22s %14s %16s\n", name.c_str(), planning.c_str(),
              execution.c_str());
}

std::string Seconds(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  // A formula of the same size class as the paper's 952-clause instance.
  PackageFormulaOptions options;
  options.num_packages = 252;
  options.versions_per_package = 2;
  options.dependencies_per_version = 1.4;
  options.seed = 4;
  const CnfFormula formula = PackageDependencyFormula(options);

  const SatTensorNetwork network = BuildTensorNetwork(formula).value();
  std::vector<Shape> shapes;
  for (const CooTensor* t : network.operands()) shapes.push_back(t->shape());
  const ContractionProgram program =
      BuildProgram(network.spec, shapes, PathAlgorithm::kElimination).value();
  const std::vector<const CooTensor*> operands = network.operands();
  const std::string sql =
      GenerateEinsumSql(program, operands, SqlGenOptions{}).value();

  std::printf("Table 2: planning vs execution time, #SAT with %zu clauses "
              "(%d variables), query text %.0f KB\n\n",
              formula.clauses.size(), formula.num_variables,
              sql.size() / 1024.0);
  PrintRow("engine", "planning", "execution");
  PrintRow("------", "--------", "---------");

  // Dense engine: contraction path precomputed outside; no SQL planning.
  {
    DenseEinsumEngine dense;
    Stopwatch watch;
    auto result = dense.RunProgram(program, operands, EinsumOptions{});
    const double execution = watch.ElapsedSeconds();
    if (!result.ok()) {
      PrintRow("dense", "0.000 s", "error");
    } else {
      PrintRow("dense (opt_einsum role)", "0.000 s", Seconds(execution));
    }
  }

  // SQL backends: planning = statement compilation, execution = the rest.
  std::vector<bench::NamedEngine> engines;
  engines.push_back(bench::MakeSqliteEngine());
  engines.push_back(bench::MakeMiniDbEngine(minidb::OptimizerMode::kGreedy));
  engines.push_back(
      bench::MakeMiniDbEngine(minidb::OptimizerMode::kAggressive));
  engines.push_back(bench::MakeMiniDbEngine(minidb::OptimizerMode::kNone));
  for (auto& engine : engines) {
    auto result = engine.backend->Query(sql);
    if (!result.ok()) {
      PrintRow(engine.label, "error", result.status().ToString());
      continue;
    }
    const BackendStats stats = engine.backend->last_stats();
    bench::BenchSession::Get().RecordPhases("table2_planning", engine.label,
                                            stats);
    PrintRow(engine.label, Seconds(stats.planning_seconds),
             Seconds(stats.execution_seconds));
  }

  // The exhaustive optimizer: planning never completes within budget.
  {
    minidb::PlannerOptions planner;
    planner.mode = minidb::OptimizerMode::kExhaustive;
    planner.optimizer_budget = 200'000'000;  // a few seconds of search
    MiniDbBackend backend(planner);
    Stopwatch watch;
    auto result = backend.Query(sql);
    if (result.ok()) {
      const BackendStats stats = backend.last_stats();
      PrintRow(backend.name(), Seconds(stats.planning_seconds),
               Seconds(stats.execution_seconds));
    } else {
      char note[64];
      std::snprintf(note, sizeof(note), "N/A (gave up after %.1f s)",
                    watch.ElapsedSeconds());
      PrintRow(backend.name(), note, "N/A");
    }
  }
  return 0;
}
