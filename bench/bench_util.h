#ifndef EINSQL_BENCH_BENCH_UTIL_H_
#define EINSQL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace einsql::bench {

/// Session-wide benchmark instrumentation, driven by harness flags that the
/// benchmark mains strip from argv *before* benchmark::Initialize:
///
///   --trace=<file>.json   collect spans from every engine (pipeline phases,
///                         per-CTE materialization, per-operator metrics)
///                         and write Chrome trace_event JSON at exit
///   --phase-log=<file>    append one JSON object per recorded measurement:
///                         {"bench", "engine", "planning_seconds",
///                          "execution_seconds", "rows"}
///   --threads=<n>         run every MiniDB engine with morsel-driven
///                         intra-operator parallelism on n workers (0 =
///                         hardware concurrency); omit for sequential
///                         execution
///   --metrics=<file>      write the process-global metrics registry as
///                         JSON at exit (counters, gauges, histograms
///                         accumulated across every measured iteration)
class BenchSession {
 public:
  static BenchSession& Get() {
    static BenchSession session;
    return session;
  }

  /// Removes the flags above from argv (call before benchmark::Initialize,
  /// which rejects unknown options). A malformed value (e.g.
  /// --threads=garbage) is a fatal usage error: silently benchmarking with
  /// a default would produce numbers labeled as something they are not.
  void ConsumeFlags(int* argc, char** argv) {
    int out = 1;
    for (int a = 1; a < *argc; ++a) {
      const std::string arg = argv[a];
      if (arg.rfind("--trace=", 0) == 0) {
        trace_file_ = arg.substr(8);
      } else if (arg.rfind("--phase-log=", 0) == 0) {
        phase_log_file_ = arg.substr(12);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        metrics_file_ = arg.substr(10);
      } else if (arg.rfind("--threads=", 0) == 0) {
        const Result<int64_t> n = ParseInt64(arg.substr(10));
        if (!n.ok() || *n < 0 || *n > 4096) {
          std::fprintf(stderr,
                       "invalid %s: expected a thread count in [0, 4096] "
                       "(0 = hardware concurrency)\n",
                       arg.c_str());
          std::exit(2);
        }
        threads_ = static_cast<int>(*n);
        use_threads_ = true;
      } else {
        argv[out++] = argv[a];
      }
    }
    *argc = out;
    argv[*argc] = nullptr;
  }

  /// The session span sink, or null when --trace was not given.
  Trace* trace() { return trace_file_.empty() ? nullptr : &trace_; }

  /// True when --threads was given; `threads` is its value (0 = hardware
  /// concurrency).
  bool use_threads() const { return use_threads_; }
  int threads() const { return threads_; }

  /// `base` with the session trace attached (no-op when tracing is off).
  EinsumOptions Traced(EinsumOptions base = {}) {
    base.trace = trace();
    return base;
  }

  /// Appends one phase record to the phase log (no-op when disabled).
  void RecordPhases(const std::string& bench, const std::string& engine,
                    const BackendStats& stats) {
    if (phase_log_file_.empty()) return;
    char line[512];
    std::snprintf(line, sizeof(line),
                  "{\"bench\": \"%s\", \"engine\": \"%s\", "
                  "\"planning_seconds\": %.9f, \"execution_seconds\": %.9f, "
                  "\"rows\": %lld}\n",
                  JsonEscape(bench).c_str(), JsonEscape(engine).c_str(),
                  stats.planning_seconds, stats.execution_seconds,
                  static_cast<long long>(stats.result_rows));
    std::lock_guard<std::mutex> lock(mutex_);
    std::FILE* f = std::fopen(phase_log_file_.c_str(), "a");
    if (f == nullptr) return;
    std::fputs(line, f);
    std::fclose(f);
  }

  /// Convenience for measurement loops that only hold an EinsumEngine*:
  /// records the backend's last stats when the engine is SQL-based.
  void RecordPhases(const std::string& bench, EinsumEngine* engine) {
    if (phase_log_file_.empty() || engine == nullptr) return;
    if (auto* sql = dynamic_cast<SqlEinsumEngine*>(engine)) {
      RecordPhases(bench, sql->backend()->name(),
                   sql->backend()->last_stats());
    }
  }

  ~BenchSession() {
    if (!metrics_file_.empty()) {
      const std::string json =
          MetricsRegistry::Default().Snapshot().ToJson();
      std::FILE* f = std::fopen(metrics_file_.c_str(), "w");
      if (f != nullptr) {
        std::fputs(json.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::fprintf(stderr, "metrics written to %s\n",
                     metrics_file_.c_str());
      } else {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     metrics_file_.c_str());
      }
    }
    if (trace_file_.empty()) return;
    const Status status = trace_.WriteJsonFile(trace_file_);
    if (status.ok()) {
      std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                   trace_file_.c_str(), trace_.span_count());
    } else {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   status.ToString().c_str());
    }
  }

 private:
  BenchSession() = default;

  std::string trace_file_;
  std::string phase_log_file_;
  std::string metrics_file_;
  bool use_threads_ = false;
  int threads_ = 0;
  Trace trace_;
  std::mutex mutex_;
};

/// One engine under benchmark, with the backend it owns (if any).
///
/// Mapping to the paper's systems (see DESIGN.md):
///   dense              → opt_einsum with a NumPy backend
///   sparse             → a tensor-native engine (Tentris role, §6)
///   sqlite             → SQLite (the actual library, embedded)
///   minidb-greedy      → a lightweight engine honoring the decomposition
///   minidb-aggressive  → an optimizing in-memory DBMS (HyPer role)
///   minidb-none        → DuckDB with optimizations disabled
struct NamedEngine {
  std::string label;
  std::unique_ptr<SqlBackend> backend;  // null for the dense engine
  std::unique_ptr<EinsumEngine> engine;
};

inline NamedEngine MakeDenseEngine() {
  NamedEngine named;
  named.label = "dense";
  named.engine = std::make_unique<DenseEinsumEngine>();
  return named;
}

inline NamedEngine MakeSparseEngine() {
  NamedEngine named;
  named.label = "sparse";
  named.engine = std::make_unique<SparseEinsumEngine>();
  return named;
}

inline NamedEngine MakeSqliteEngine() {
  NamedEngine named;
  named.label = "sqlite";
  named.backend = SqliteBackend::Open().value();
  named.backend->set_trace(BenchSession::Get().trace());
  named.engine = std::make_unique<SqlEinsumEngine>(named.backend.get());
  return named;
}

inline NamedEngine MakeMiniDbEngine(minidb::OptimizerMode mode) {
  NamedEngine named;
  minidb::PlannerOptions options;
  options.mode = mode;
  auto backend = std::make_unique<MiniDbBackend>(options);
  if (BenchSession::Get().use_threads()) {
    backend->set_threads(BenchSession::Get().threads());
  }
  named.label = backend->name();
  named.backend = std::move(backend);
  named.backend->set_trace(BenchSession::Get().trace());
  named.engine = std::make_unique<SqlEinsumEngine>(named.backend.get());
  return named;
}

/// The standard engine line-up of the figure benchmarks.
inline std::vector<NamedEngine> StandardEngines() {
  std::vector<NamedEngine> engines;
  engines.push_back(MakeDenseEngine());
  engines.push_back(MakeSparseEngine());
  engines.push_back(MakeSqliteEngine());
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kGreedy));
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kAggressive));
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kNone));
  return engines;
}

}  // namespace einsql::bench

#endif  // EINSQL_BENCH_BENCH_UTIL_H_
