#ifndef EINSQL_BENCH_BENCH_UTIL_H_
#define EINSQL_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"

namespace einsql::bench {

/// One engine under benchmark, with the backend it owns (if any).
///
/// Mapping to the paper's systems (see DESIGN.md):
///   dense              → opt_einsum with a NumPy backend
///   sparse             → a tensor-native engine (Tentris role, §6)
///   sqlite             → SQLite (the actual library, embedded)
///   minidb-greedy      → a lightweight engine honoring the decomposition
///   minidb-aggressive  → an optimizing in-memory DBMS (HyPer role)
///   minidb-none        → DuckDB with optimizations disabled
struct NamedEngine {
  std::string label;
  std::unique_ptr<SqlBackend> backend;  // null for the dense engine
  std::unique_ptr<EinsumEngine> engine;
};

inline NamedEngine MakeDenseEngine() {
  NamedEngine named;
  named.label = "dense";
  named.engine = std::make_unique<DenseEinsumEngine>();
  return named;
}

inline NamedEngine MakeSparseEngine() {
  NamedEngine named;
  named.label = "sparse";
  named.engine = std::make_unique<SparseEinsumEngine>();
  return named;
}

inline NamedEngine MakeSqliteEngine() {
  NamedEngine named;
  named.label = "sqlite";
  named.backend = SqliteBackend::Open().value();
  named.engine = std::make_unique<SqlEinsumEngine>(named.backend.get());
  return named;
}

inline NamedEngine MakeMiniDbEngine(minidb::OptimizerMode mode) {
  NamedEngine named;
  minidb::PlannerOptions options;
  options.mode = mode;
  auto backend = std::make_unique<MiniDbBackend>(options);
  named.label = backend->name();
  named.backend = std::move(backend);
  named.engine = std::make_unique<SqlEinsumEngine>(named.backend.get());
  return named;
}

/// The standard engine line-up of the figure benchmarks.
inline std::vector<NamedEngine> StandardEngines() {
  std::vector<NamedEngine> engines;
  engines.push_back(MakeDenseEngine());
  engines.push_back(MakeSparseEngine());
  engines.push_back(MakeSqliteEngine());
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kGreedy));
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kAggressive));
  engines.push_back(MakeMiniDbEngine(minidb::OptimizerMode::kNone));
  return engines;
}

}  // namespace einsql::bench

#endif  // EINSQL_BENCH_BENCH_UTIL_H_
