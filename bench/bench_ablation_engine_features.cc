// Ablation for the §5 discussion: how much do the two engine-side remedies
// the paper proposes actually help on repetitive einsum queries?
//   1. plan caching  — "Einstein summation problems are often repetitive …
//      caching the query plans could avoid redundant computations";
//   2. concurrent CTEs — "finding independent computations (common table
//      expressions) that can be executed concurrently is a rather
//      lightweight optimization".
//
// One decomposed #SAT query is executed on MiniDB (a) parsed+planned every
// time, (b) from a cached plan, (c) from a cached plan with parallel CTE
// materialization.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/program.h"
#include "core/sqlgen.h"
#include "sat/generator.h"
#include "sat/tensorize.h"

namespace {

using namespace einsql;          // NOLINT
using namespace einsql::sat;     // NOLINT
using namespace einsql::minidb;  // NOLINT

std::string BuildQuery() {
  PackageFormulaOptions options;
  options.num_packages = 60;
  options.seed = 12;
  const CnfFormula formula = PackageDependencyFormula(options);
  const SatTensorNetwork network = BuildTensorNetwork(formula).value();
  std::vector<Shape> shapes;
  for (const CooTensor* t : network.operands()) shapes.push_back(t->shape());
  const ContractionProgram program =
      BuildProgram(network.spec, shapes, PathAlgorithm::kElimination).value();
  return GenerateEinsumSql(program, network.operands(), SqlGenOptions{})
      .value();
}

void FullPipeline(benchmark::State& state, const std::string* sql) {
  Database db;
  db.set_trace(bench::BenchSession::Get().trace());
  for (auto _ : state) {
    auto result = db.Execute(*sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->relation.num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}

void CachedPlan(benchmark::State& state, const std::string* sql,
                bool parallel) {
  Database db;
  db.set_trace(bench::BenchSession::Get().trace());
  if (parallel) db.executor_options().parallel_ctes = true;
  auto plan = db.Prepare(*sql);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = db.ExecutePrepared(*plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->relation.num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession::Get().ConsumeFlags(&argc, argv);
  auto sql = std::make_shared<std::string>(BuildQuery());
  benchmark::RegisterBenchmark(
      "ablation_engine/parse_plan_execute",
      [sql](benchmark::State& state) { FullPipeline(state, sql.get()); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "ablation_engine/cached_plan",
      [sql](benchmark::State& state) { CachedPlan(state, sql.get(), false); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "ablation_engine/cached_plan_parallel_ctes",
      [sql](benchmark::State& state) { CachedPlan(state, sql.get(), true); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
