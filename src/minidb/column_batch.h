#ifndef EINSQL_MINIDB_COLUMN_BATCH_H_
#define EINSQL_MINIDB_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minidb/table.h"
#include "minidb/value.h"

namespace einsql::minidb {

struct SelVector;  // defined below

/// One column of a batch in columnar form: a typed data vector plus a
/// validity byte-map (1 = non-NULL). The representation is chosen per batch
/// from the values actually present, never from declared types alone:
///   kInt    — every non-NULL value is an int64,
///   kDouble — every non-NULL value is a double (pure, no int mixing: a
///             mixed int/double column must stay kValue so int-vs-double
///             identity of each element survives the round trip),
///   kText   — every non-NULL value is text,
///   kValue  — anything else (mixed storage classes); elements stay as
///             Value variants and kernels fall back to element-wise
///             Value operations.
/// An all-NULL column is represented as kInt with an all-zero validity map.
struct ColumnVector {
  enum class Kind { kInt, kDouble, kText, kValue };

  Kind kind = Kind::kInt;
  /// 1 = non-NULL. Always sized to the column length, for every kind.
  std::vector<uint8_t> valid;
  std::vector<int64_t> ints;        // kInt
  std::vector<double> doubles;      // kDouble
  std::vector<std::string> texts;   // kText
  std::vector<Value> values;        // kValue

  int64_t size() const { return static_cast<int64_t>(valid.size()); }
  bool IsValid(int64_t i) const { return valid[i] != 0; }

  /// Materializes element `i` back into a row Value. The round trip
  /// Value -> column -> Value is exact, including int-vs-double identity.
  Value GetValue(int64_t i) const;

  /// Constant columns: `n` copies of one value.
  static ColumnVector Constant(const Value& v, int64_t n);
  /// All-NULL column of length n.
  static ColumnVector Nulls(int64_t n);
  /// Non-null int column (e.g. the 0/1 output of a comparison kernel).
  static ColumnVector FromInts(std::vector<int64_t> data);

  /// Builds the column for slot `col` from rows [begin, end) of `rows`,
  /// scanning the actual values to pick the tightest representation.
  static ColumnVector FromRows(const std::vector<Row>& rows, int64_t begin,
                               int64_t end, int col);

  /// Gathering variant: builds the column from rows begin + sel.idx[j],
  /// j in [0, sel.size()) — the transpose of a selected batch.
  static ColumnVector FromRows(const std::vector<Row>& rows, int64_t begin,
                               const SelVector& sel, int col);
};

/// A selection vector: the batch-relative indices of rows that survived a
/// filter step, in ascending order. Kernels never consume a SelVector
/// directly — batches gather (compact) the selected rows at transpose
/// time, so every kernel runs full-occupancy over dense lanes and the
/// gather doubles as the materialize-on-demand escape hatch for row-path
/// fallback (docs/kernels.md).
struct SelVector {
  std::vector<int32_t> idx;

  int64_t size() const { return static_cast<int64_t>(idx.size()); }
  bool empty() const { return idx.empty(); }
};

/// A columnar view of one morsel of a row relation: rows [begin, end) of
/// the backing row vector, transposed into ColumnVectors on demand. Only
/// the slots an expression actually references are ever converted — a
/// filter touching 1 of 40 columns transposes exactly that one column.
///
/// One morsel becomes one batch: under morsel-driven parallel execution
/// each worker builds a batch for its morsel; sequential execution is the
/// degenerate one-batch-spanning-the-input case, mirroring the morsel
/// model (docs/parallelism.md).
///
/// A batch may additionally carry a SelVector (selected form): it then
/// presents only rows begin + sel[i], densely renumbered 0..sel.size().
/// Transposition gathers exactly the selected rows, so downstream kernels
/// are selection-agnostic. The SelVector must outlive the batch.
class ColumnBatch {
 public:
  ColumnBatch(const std::vector<Row>& rows, int64_t begin, int64_t end)
      : rows_(&rows), begin_(begin), end_(end) {}
  ColumnBatch(const std::vector<Row>& rows, int64_t begin, int64_t end,
              const SelVector* sel)
      : rows_(&rows), begin_(begin), end_(end), sel_(sel) {}

  int64_t num_rows() const { return sel_ ? sel_->size() : end_ - begin_; }
  int64_t begin_row() const { return begin_; }
  const std::vector<Row>& rows() const { return *rows_; }

  /// Absolute index (into rows()) of batch row `i`.
  int64_t RowAt(int64_t i) const {
    return sel_ ? begin_ + sel_->idx[i] : begin_ + i;
  }

  /// The column for input slot `slot`, transposing (and, in selected form,
  /// gathering) it on first use. The reference stays valid for the
  /// lifetime of the batch. Logically const (the cache is an
  /// implementation detail), but not thread-safe: a batch belongs to
  /// exactly one morsel worker.
  const ColumnVector& Column(int slot) const;

 private:
  const std::vector<Row>* rows_;
  int64_t begin_;
  int64_t end_;
  const SelVector* sel_ = nullptr;
  // Per slot, lazily transposed.
  mutable std::vector<std::unique_ptr<ColumnVector>> columns_;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_COLUMN_BATCH_H_
