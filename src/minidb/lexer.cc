#include "minidb/lexer.h"

#include <cctype>
#include <map>

#include "common/str_util.h"

namespace einsql::minidb {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kOrder: return "ORDER";
    case TokenKind::kAsc: return "ASC";
    case TokenKind::kDesc: return "DESC";
    case TokenKind::kLimit: return "LIMIT";
    case TokenKind::kAs: return "AS";
    case TokenKind::kWith: return "WITH";
    case TokenKind::kValues: return "VALUES";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kCreate: return "CREATE";
    case TokenKind::kTable: return "TABLE";
    case TokenKind::kInsert: return "INSERT";
    case TokenKind::kInto: return "INTO";
    case TokenKind::kDrop: return "DROP";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kDistinct: return "DISTINCT";
    case TokenKind::kCross: return "CROSS";
    case TokenKind::kJoin: return "JOIN";
    case TokenKind::kInner: return "INNER";
    case TokenKind::kOn: return "ON";
    case TokenKind::kDelete: return "DELETE";
    case TokenKind::kCase: return "CASE";
    case TokenKind::kWhen: return "WHEN";
    case TokenKind::kThen: return "THEN";
    case TokenKind::kElse: return "ELSE";
    case TokenKind::kEnd: return "END";
    case TokenKind::kBetween: return "BETWEEN";
    case TokenKind::kIn: return "IN";
    case TokenKind::kIs: return "IS";
    case TokenKind::kUnion: return "UNION";
    case TokenKind::kAll: return "ALL";
    case TokenKind::kExplain: return "EXPLAIN";
    case TokenKind::kAnalyze: return "ANALYZE";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kStar: return "*";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "=";
    case TokenKind::kNotEq: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLtEq: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGtEq: return ">=";
    case TokenKind::kSemicolon: return ";";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& KeywordMap() {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"select", TokenKind::kSelect},   {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},     {"group", TokenKind::kGroup},
      {"by", TokenKind::kBy},           {"order", TokenKind::kOrder},
      {"asc", TokenKind::kAsc},         {"desc", TokenKind::kDesc},
      {"limit", TokenKind::kLimit},     {"as", TokenKind::kAs},
      {"with", TokenKind::kWith},       {"values", TokenKind::kValues},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},         {"create", TokenKind::kCreate},
      {"table", TokenKind::kTable},     {"insert", TokenKind::kInsert},
      {"into", TokenKind::kInto},       {"drop", TokenKind::kDrop},
      {"null", TokenKind::kNull},       {"distinct", TokenKind::kDistinct},
      {"cross", TokenKind::kCross},     {"join", TokenKind::kJoin},
      {"inner", TokenKind::kInner},     {"on", TokenKind::kOn},
      {"delete", TokenKind::kDelete},   {"case", TokenKind::kCase},
      {"when", TokenKind::kWhen},       {"then", TokenKind::kThen},
      {"else", TokenKind::kElse},       {"end", TokenKind::kEnd},
      {"between", TokenKind::kBetween}, {"in", TokenKind::kIn},
      {"is", TokenKind::kIs},         {"union", TokenKind::kUnion},
      {"all", TokenKind::kAll},       {"explain", TokenKind::kExplain},
      {"analyze", TokenKind::kAnalyze},
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t pos = 0;
  int line = 1, column = 1;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (pos < sql.size() && sql[pos] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++pos;
    }
  };
  auto make = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };

  while (pos < sql.size()) {
    const char c = sql[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comments.
    if (c == '-' && pos + 1 < sql.size() && sql[pos + 1] == '-') {
      while (pos < sql.size() && sql[pos] != '\n') advance(1);
      continue;
    }
    // Numbers: integer or float (with optional exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[pos + 1])))) {
      size_t end = pos;
      bool is_float = false;
      while (end < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[end]))) {
        ++end;
      }
      if (end < sql.size() && sql[end] == '.') {
        is_float = true;
        ++end;
        while (end < sql.size() &&
               std::isdigit(static_cast<unsigned char>(sql[end]))) {
          ++end;
        }
      }
      if (end < sql.size() && (sql[end] == 'e' || sql[end] == 'E')) {
        size_t exp = end + 1;
        if (exp < sql.size() && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < sql.size() &&
            std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          is_float = true;
          end = exp;
          while (end < sql.size() &&
                 std::isdigit(static_cast<unsigned char>(sql[end]))) {
            ++end;
          }
        }
      }
      std::string text(sql.substr(pos, end - pos));
      Token t = make(is_float ? TokenKind::kFloatLiteral
                              : TokenKind::kIntLiteral,
                     text);
      if (is_float) {
        EINSQL_ASSIGN_OR_RETURN(t.double_value, ParseDouble(text));
      } else {
        auto parsed = ParseInt64(text);
        if (parsed.ok()) {
          t.int_value = parsed.value();
        } else {
          // Integer literal too large for int64: fall back to double.
          t.kind = TokenKind::kFloatLiteral;
          EINSQL_ASSIGN_OR_RETURN(t.double_value, ParseDouble(text));
        }
      }
      tokens.push_back(std::move(t));
      advance(end - pos);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos;
      while (end < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[end])) ||
              sql[end] == '_')) {
        ++end;
      }
      std::string text(sql.substr(pos, end - pos));
      auto it = KeywordMap().find(ToLower(text));
      if (it != KeywordMap().end()) {
        tokens.push_back(make(it->second, text));
      } else {
        tokens.push_back(make(TokenKind::kIdentifier, text));
      }
      advance(end - pos);
      continue;
    }
    // Quoted identifiers.
    if (c == '"') {
      size_t end = pos + 1;
      while (end < sql.size() && sql[end] != '"') ++end;
      if (end >= sql.size()) {
        return Status::ParseError("unterminated quoted identifier at line ",
                                  line);
      }
      tokens.push_back(make(TokenKind::kIdentifier,
                            std::string(sql.substr(pos + 1, end - pos - 1))));
      advance(end + 1 - pos);
      continue;
    }
    // String literals with '' escaping.
    if (c == '\'') {
      std::string text;
      size_t end = pos + 1;
      while (end < sql.size()) {
        if (sql[end] == '\'') {
          if (end + 1 < sql.size() && sql[end + 1] == '\'') {
            text.push_back('\'');
            end += 2;
            continue;
          }
          break;
        }
        text.push_back(sql[end]);
        ++end;
      }
      if (end >= sql.size()) {
        return Status::ParseError("unterminated string literal at line ",
                                  line);
      }
      tokens.push_back(make(TokenKind::kStringLiteral, text));
      advance(end + 1 - pos);
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char next) {
      return pos + 1 < sql.size() && sql[pos + 1] == next;
    };
    TokenKind kind;
    size_t length = 1;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case ',': kind = TokenKind::kComma; break;
      case '.': kind = TokenKind::kDot; break;
      case '*': kind = TokenKind::kStar; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '/': kind = TokenKind::kSlash; break;
      case '%': kind = TokenKind::kPercent; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '=': kind = TokenKind::kEq; break;
      case '!':
        if (!two('=')) {
          return Status::ParseError("unexpected '!' at line ", line);
        }
        kind = TokenKind::kNotEq;
        length = 2;
        break;
      case '<':
        if (two('=')) {
          kind = TokenKind::kLtEq;
          length = 2;
        } else if (two('>')) {
          kind = TokenKind::kNotEq;
          length = 2;
        } else {
          kind = TokenKind::kLt;
        }
        break;
      case '>':
        if (two('=')) {
          kind = TokenKind::kGtEq;
          length = 2;
        } else {
          kind = TokenKind::kGt;
        }
        break;
      default:
        return Status::ParseError("unexpected character '",
                                  std::string(1, c), "' at line ", line,
                                  ", column ", column);
    }
    tokens.push_back(make(kind, std::string(sql.substr(pos, length))));
    advance(length);
  }
  tokens.push_back(make(TokenKind::kEof, ""));
  return tokens;
}

}  // namespace einsql::minidb
