#ifndef EINSQL_MINIDB_VALUE_H_
#define EINSQL_MINIDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace einsql::minidb {

/// SQL NULL marker.
struct Null {
  bool operator==(const Null&) const { return true; }
};

/// A runtime SQL value: NULL, 64-bit integer, double, or text.
/// MiniDB follows the usual dynamic-typing model of lightweight engines
/// (SQLite-style): arithmetic promotes integers to doubles on contact.
using Value = std::variant<Null, int64_t, double, std::string>;

/// Storage classes of a Value / column.
enum class ValueType { kNull, kInt, kDouble, kText };

/// Returns the storage class of `v`.
ValueType TypeOf(const Value& v);

/// Returns "NULL", "INT", "DOUBLE", or "TEXT".
const char* ValueTypeToString(ValueType type);

/// True iff `v` is NULL.
bool IsNull(const Value& v);

/// Numeric accessors; TEXT and NULL are errors.
Result<double> AsDouble(const Value& v);
Result<int64_t> AsInt(const Value& v);

/// Renders a value for result display ("NULL", "42", "1.5", "abc").
std::string ValueToString(const Value& v);

/// Three-way comparison for ORDER BY and equality joins. NULL sorts before
/// everything; numbers compare numerically across int/double; text compares
/// lexicographically; numbers sort before text (SQLite ordering).
int CompareValues(const Value& a, const Value& b);

/// SQL equality for join keys and WHERE: NULL never equals anything.
bool SqlEquals(const Value& a, const Value& b);

/// Arithmetic with SQL NULL propagation. Division by zero yields NULL
/// (SQLite behaviour). Text operands are errors.
Result<Value> Add(const Value& a, const Value& b);
Result<Value> Subtract(const Value& a, const Value& b);
Result<Value> Multiply(const Value& a, const Value& b);
Result<Value> Divide(const Value& a, const Value& b);
/// MOD: int % int when both sides are ints, fmod otherwise; a zero divisor
/// yields NULL. Shared by the row interpreter and the vectorized kernels.
Result<Value> Modulo(const Value& a, const Value& b);
Result<Value> Negate(const Value& a);

/// Hash for join/aggregation keys; numerically equal int/double hash alike.
size_t HashValue(const Value& v);

/// Hash of a composite key.
size_t HashRowKey(const std::vector<Value>& key);

/// Hash of a packed all-integer composite key — the typed fast path for
/// join/group/distinct keys whose columns are all declared `kInt` (einsum
/// index columns). Mixes raw int64 values without the Value variant
/// dispatch or the int-through-double normalization of HashValue; only
/// valid when every key value really is an int64, which the executor
/// verifies before switching to this path.
size_t HashIntKey(const int64_t* key, size_t n);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_VALUE_H_
