#include "minidb/value.h"

#include <cmath>
#include <functional>

#include "common/str_util.h"

namespace einsql::minidb {

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    default:
      return ValueType::kText;
  }
}

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kText:
      return "TEXT";
  }
  return "?";
}

bool IsNull(const Value& v) { return std::holds_alternative<Null>(v); }

Result<double> AsDouble(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const double* d = std::get_if<double>(&v)) return *d;
  return Status::InvalidArgument("cannot interpret ", ValueToString(v),
                                 " as a number");
}

Result<int64_t> AsInt(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return *i;
  if (const double* d = std::get_if<double>(&v)) {
    return static_cast<int64_t>(*d);
  }
  return Status::InvalidArgument("cannot interpret ", ValueToString(v),
                                 " as an integer");
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble:
      return DoubleToSqlLiteral(std::get<double>(v));
    case ValueType::kText:
      return std::get<std::string>(v);
  }
  return "?";
}

namespace {

// Sort-class rank: NULL < numbers < text.
int RankOf(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1;
    case ValueType::kText:
      return 2;
  }
  return 3;
}

}  // namespace

int CompareValues(const Value& a, const Value& b) {
  const int ra = RankOf(a), rb = RankOf(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      const double da = AsDouble(a).value();
      const double db = AsDouble(b).value();
      if (da < db) return -1;
      if (da > db) return 1;
      return 0;
    }
    default: {
      const std::string& sa = std::get<std::string>(a);
      const std::string& sb = std::get<std::string>(b);
      return sa < sb ? -1 : (sa > sb ? 1 : 0);
    }
  }
}

bool SqlEquals(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) return false;
  if (RankOf(a) != RankOf(b)) return false;
  return CompareValues(a, b) == 0;
}

namespace {

// Applies `int_op`/`double_op` with SQL NULL propagation.
template <typename IntOp, typename DoubleOp>
Result<Value> Arith(const Value& a, const Value& b, IntOp int_op,
                    DoubleOp double_op) {
  if (IsNull(a) || IsNull(b)) return Value(Null{});
  if (TypeOf(a) == ValueType::kText || TypeOf(b) == ValueType::kText) {
    return Status::InvalidArgument("arithmetic on text value");
  }
  if (TypeOf(a) == ValueType::kInt && TypeOf(b) == ValueType::kInt) {
    return int_op(std::get<int64_t>(a), std::get<int64_t>(b));
  }
  EINSQL_ASSIGN_OR_RETURN(double da, AsDouble(a));
  EINSQL_ASSIGN_OR_RETURN(double db, AsDouble(b));
  return double_op(da, db);
}

}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return Value(x + y); },
      [](double x, double y) { return Value(x + y); });
}

Result<Value> Subtract(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return Value(x - y); },
      [](double x, double y) { return Value(x - y); });
}

Result<Value> Multiply(const Value& a, const Value& b) {
  return Arith(
      a, b, [](int64_t x, int64_t y) { return Value(x * y); },
      [](double x, double y) { return Value(x * y); });
}

Result<Value> Divide(const Value& a, const Value& b) {
  return Arith(
      a, b,
      [](int64_t x, int64_t y) {
        return y == 0 ? Value(Null{}) : Value(x / y);
      },
      [](double x, double y) {
        return y == 0.0 ? Value(Null{}) : Value(x / y);
      });
}

Result<Value> Modulo(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) return Value(Null{});
  if (TypeOf(a) == ValueType::kInt && TypeOf(b) == ValueType::kInt) {
    const int64_t divisor = std::get<int64_t>(b);
    if (divisor == 0) return Value(Null{});
    return Value(std::get<int64_t>(a) % divisor);
  }
  EINSQL_ASSIGN_OR_RETURN(double da, AsDouble(a));
  EINSQL_ASSIGN_OR_RETURN(double db, AsDouble(b));
  if (db == 0.0) return Value(Null{});
  return Value(std::fmod(da, db));
}

Result<Value> Negate(const Value& a) {
  if (IsNull(a)) return Value(Null{});
  if (TypeOf(a) == ValueType::kInt) return Value(-std::get<int64_t>(a));
  if (TypeOf(a) == ValueType::kDouble) return Value(-std::get<double>(a));
  return Status::InvalidArgument("cannot negate text value");
}

size_t HashValue(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
      // Hash ints through double so 1 and 1.0 land in the same bucket.
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(v)));
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(v));
    case ValueType::kText:
      return std::hash<std::string>()(std::get<std::string>(v));
  }
  return 0;
}

size_t HashRowKey(const std::vector<Value>& key) {
  size_t h = 0x345678u;
  for (const Value& v : key) {
    h = h * 1000003u ^ HashValue(v);
  }
  return h;
}

size_t HashIntKey(const int64_t* key, size_t n) {
  // splitmix64-style finalizer per component, combined with the same
  // polynomial scheme as HashRowKey.
  uint64_t h = 0x345678u;
  for (size_t k = 0; k < n; ++k) {
    uint64_t x = static_cast<uint64_t>(key[k]) + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    h = h * 1000003u ^ x;
  }
  return static_cast<size_t>(h);
}

}  // namespace einsql::minidb
