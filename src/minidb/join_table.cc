#include "minidb/join_table.h"

#include <algorithm>

namespace einsql::minidb {

namespace {

// Upper bounds for the direct-address layout. The floor lets small builds
// (the common einsum case: a few thousand entries over dense dimensions)
// use direct addressing even when the key space is larger than 2n; the
// ceiling caps the slot array at 2^22 entries (16 MiB of int32 heads) no
// matter how many entries there are.
constexpr uint64_t kDirectFloorSlots = 65536;
constexpr uint64_t kDirectCeilSlots = uint64_t{1} << 22;

}  // namespace

IntKeyJoinTable::IntKeyJoinTable(const int64_t* keys, int64_t num_entries,
                                 size_t arity)
    : arity_(arity), num_entries_(num_entries) {
  if (num_entries == 0) {
    // Empty build side: a one-bucket radix table probes safely (every
    // probe scans an empty range) without touching the key array at all.
    strategy_ = Strategy::kRadixChained;
    mask_ = 0;
    bucket_start_.assign(2, 0);
    return;
  }
  // Pass 1: per-column min/max. These statistics pick the layout; for the
  // direct layout they also *are* the hash function.
  mins_.assign(arity, 0);
  std::vector<int64_t> maxs(arity, 0);
  for (size_t k = 0; k < arity; ++k) {
    int64_t lo = keys[k], hi = keys[k];
    for (int64_t e = 1; e < num_entries; ++e) {
      const int64_t v = keys[e * arity + k];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    mins_[k] = lo;
    maxs[k] = hi;
  }

  // Key-space volume in uint64 (difference arithmetic is wrap-safe for the
  // full int64 range; a wrapped or overflowing volume simply fails the
  // bound and selects the radix layout).
  const uint64_t max_slots =
      std::min(kDirectCeilSlots,
               std::max(kDirectFloorSlots,
                        2 * static_cast<uint64_t>(num_entries)));
  uint64_t volume = 1;
  bool direct = true;
  extents_.assign(arity, 0);
  for (size_t k = 0; k < arity && direct; ++k) {
    const uint64_t extent = static_cast<uint64_t>(maxs[k]) -
                            static_cast<uint64_t>(mins_[k]) + 1;
    extents_[k] = extent;
    direct = extent != 0 && extent <= max_slots && volume <= max_slots / extent;
    volume *= extent;
  }
  direct = direct && volume <= max_slots;

  if (direct) {
    strategy_ = Strategy::kDirectAddress;
    strides_.assign(arity, 1);
    for (size_t k = arity; k-- > 1;) {
      strides_[k - 1] =
          strides_[k] * static_cast<int64_t>(extents_[k]);
    }
    head_.assign(volume, -1);
    next_.assign(num_entries, -1);
    // Chains are threaded back to front so each head reaches its entries
    // in ascending id order — the emit order of the bucket-vector scheme
    // this table replaces.
    for (int64_t e = num_entries; e-- > 0;) {
      int64_t slot = 0;
      for (size_t k = 0; k < arity; ++k) {
        slot += static_cast<int64_t>(static_cast<uint64_t>(keys[e * arity + k]) -
                                     static_cast<uint64_t>(mins_[k])) *
                strides_[k];
      }
      next_[e] = head_[slot];
      head_[slot] = static_cast<int32_t>(e);
    }
    return;
  }

  strategy_ = Strategy::kRadixChained;
  size_t buckets = 16;
  while (buckets < 2 * static_cast<size_t>(num_entries)) buckets *= 2;
  mask_ = buckets - 1;
  // Counting sort by hash radix: histogram, exclusive prefix sums, then a
  // stable forward fill — ids within a bucket end up ascending.
  std::vector<int64_t> hashes(num_entries);
  bucket_start_.assign(buckets + 1, 0);
  for (int64_t e = 0; e < num_entries; ++e) {
    hashes[e] =
        static_cast<int64_t>(HashIntKey(keys + e * arity, arity) & mask_);
    ++bucket_start_[hashes[e] + 1];
  }
  for (size_t b = 0; b < buckets; ++b) {
    bucket_start_[b + 1] += bucket_start_[b];
  }
  order_.assign(num_entries, 0);
  sorted_keys_.assign(static_cast<size_t>(num_entries) * arity, 0);
  std::vector<int64_t> cursor(bucket_start_.begin(), bucket_start_.end() - 1);
  for (int64_t e = 0; e < num_entries; ++e) {
    const int64_t pos = cursor[hashes[e]]++;
    order_[pos] = static_cast<int32_t>(e);
    std::copy(keys + e * arity, keys + (e + 1) * arity,
              sorted_keys_.begin() + pos * arity);
  }
}

}  // namespace einsql::minidb
