#include "minidb/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "minidb/column_batch.h"
#include "minidb/expr_eval.h"
#include "minidb/expr_eval_vec.h"
#include "minidb/flat_index.h"
#include "minidb/join_table.h"
#include "minidb/vector_ops.h"

namespace einsql::minidb {

namespace {

/// Shared materialized relations; scans return their backing table without
/// copying.
using RelationPtr = std::shared_ptr<const Relation>;

/// Vectorized operators process each morsel in fixed-size chunks so every
/// pass (column materialization, kernel, selection) stays cache-resident
/// even when the sequential "morsel" is the whole input. Chunks run in row
/// order into the same output/accumulator state, so the chunk size never
/// changes results — it is invisible to the morsel-level determinism
/// contract.
constexpr int64_t kVecChunkRows = 2048;

/// Adaptive morsel planning (ExecutorOptions::adaptive_parallelism): a
/// worker is only "useful" if it gets at least this many rows — below
/// that, thread spawn and work-stealing bookkeeping cost more than the
/// work itself.
constexpr int64_t kMinRowsPerWorker = 8192;
/// And each useful worker should see a handful of morsels, enough for the
/// atomic-counter scheduler to balance skew without drowning in per-morsel
/// state.
constexpr int64_t kMorselsPerWorker = 4;

// Flattens the top-level AND chain of a predicate into its conjuncts, in
// left-to-right evaluation order. A non-AND predicate is its own single
// conjunct.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kBinary && expr.binary_op == BinaryOp::kAnd) {
    CollectConjuncts(*expr.left, out);
    CollectConjuncts(*expr.right, out);
    return;
  }
  out->push_back(&expr);
}

/// Process-global engine counters, looked up once and cached so the hot
/// path pays a pointer dereference plus a relaxed atomic op.
struct EngineMetrics {
  Counter* queries;
  Counter* rows_scanned;
  Counter* rows_joined;
  Counter* rows_aggregated;
  Counter* hash_entries;
  Counter* morsels_executed;
  Counter* vec_morsels;
  Counter* vec_fallback_morsels;
  Counter* bytes_materialized;
  Counter* ctes_materialized;
  Gauge* query_peak_bytes;
  Histogram* exec_seconds;
};

EngineMetrics& Metrics() {
  static EngineMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Default();
    EngineMetrics m;
    m.queries = registry.counter("minidb.queries");
    m.rows_scanned = registry.counter("minidb.rows_scanned");
    m.rows_joined = registry.counter("minidb.rows_joined");
    m.rows_aggregated = registry.counter("minidb.rows_aggregated");
    m.hash_entries = registry.counter("minidb.hash_entries");
    m.morsels_executed = registry.counter("minidb.morsels_executed");
    m.vec_morsels = registry.counter("minidb.vectorized_morsels");
    m.vec_fallback_morsels =
        registry.counter("minidb.row_fallback_morsels");
    m.bytes_materialized = registry.counter("minidb.bytes_materialized");
    m.ctes_materialized = registry.counter("minidb.ctes_materialized");
    m.query_peak_bytes = registry.gauge("minidb.query_peak_bytes");
    m.exec_seconds = registry.histogram("minidb.exec_seconds");
    return m;
  }();
  return metrics;
}

/// Accounting estimate of a materialized relation: row/value containers
/// plus out-of-line string payloads. Uses logical sizes (not capacities)
/// so the figure is deterministic across allocators and growth policies.
int64_t ApproxRelationBytes(const Relation& rel) {
  int64_t bytes = static_cast<int64_t>(sizeof(Relation)) +
                  static_cast<int64_t>(rel.columns.size() * sizeof(Column));
  for (const Row& row : rel.rows) {
    bytes += static_cast<int64_t>(sizeof(Row)) +
             static_cast<int64_t>(row.size() * sizeof(Value));
    for (const Value& v : row) {
      if (const std::string* s = std::get_if<std::string>(&v)) {
        bytes += static_cast<int64_t>(s->size());
      }
    }
  }
  return bytes;
}

/// Accounting estimate of a two-level hash table (bucket map -> candidate
/// indices -> per-entry key payload of `key_bytes`).
int64_t ApproxHashTableBytes(int64_t entries, int64_t key_bytes) {
  // Per entry: the key payload, its index slot in a bucket vector, and a
  // share of the unordered_map node + control overhead.
  return entries * (key_bytes + 8 + 48);
}

/// RAII span of tracked bytes: Add on construction, Release on scope exit.
/// Used for hash tables whose lifetime is one operator evaluation.
class ScopedTrackedBytes {
 public:
  ScopedTrackedBytes(MemoryTracker* mem, int64_t bytes)
      : mem_(mem), bytes_(bytes) {
    mem_->Add(bytes_);
  }
  ~ScopedTrackedBytes() { mem_->Release(bytes_); }
  ScopedTrackedBytes(const ScopedTrackedBytes&) = delete;
  ScopedTrackedBytes& operator=(const ScopedTrackedBytes&) = delete;

 private:
  MemoryTracker* mem_;
  int64_t bytes_;
};

class Executor {
 public:
  Executor(const QueryPlan& plan, const ExecutorOptions& options,
           QueryProfile* profile)
      : plan_(plan),
        options_(options),
        trace_(options.trace),
        profile_(profile) {}

  Result<Relation> Run() {
    Stopwatch total;
    ScopedSpan exec_span(trace_, "minidb execute");
    if (profile_ != nullptr) profile_->ctes.resize(plan_.ctes.size());
    if (options_.parallel_ctes && plan_.ctes.size() > 1) {
      EINSQL_RETURN_IF_ERROR(MaterializeCtesInParallel(exec_span.id()));
    } else {
      cte_results_.reserve(plan_.ctes.size());
      for (size_t i = 0; i < plan_.ctes.size(); ++i) {
        EINSQL_ASSIGN_OR_RETURN(RelationPtr result,
                                MaterializeCte(static_cast<int>(i),
                                               Trace::kInheritParent));
        cte_results_.push_back(std::move(result));
      }
    }
    ScopedSpan root_span(trace_, "root evaluation");
    EINSQL_ASSIGN_OR_RETURN(
        RelationPtr result,
        Execute(*plan_.root, profile_ != nullptr ? &profile_->root : nullptr));
    root_span.SetAttribute("rows", result->num_rows());
    root_span.End();
    // Capture the memory high-water mark while every CTE and the result
    // are still held: this is the query's simultaneous-bytes peak.
    const double seconds = total.ElapsedSeconds();
    if (profile_ != nullptr) {
      profile_->exec_seconds = seconds;
      profile_->peak_memory_bytes = mem_.peak();
      profile_->morsels_executed =
          morsels_executed_.load(std::memory_order_relaxed);
      profile_->vectorized_morsels =
          vec_morsels_.load(std::memory_order_relaxed);
      profile_->row_fallback_morsels =
          fallback_morsels_.load(std::memory_order_relaxed);
    }
    EngineMetrics& metrics = Metrics();
    metrics.queries->Increment();
    if (profile_ != nullptr && !profile_->ctes.empty()) {
      metrics.ctes_materialized->Increment(
          static_cast<int64_t>(profile_->ctes.size()));
    }
    metrics.exec_seconds->Record(seconds);
    metrics.query_peak_bytes->SetMax(static_cast<double>(mem_.peak()));
    return *result;  // copy out the final relation
  }

 private:
  // ---------------------------------------------------------------------
  // Morsel infrastructure
  // ---------------------------------------------------------------------

  // How an operator's input rows are split across workers. Sequential
  // execution (parallel_operators off) is the degenerate case of the same
  // machinery — one morsel spanning the whole input on one thread — so
  // both modes share one code path per operator.
  struct MorselPlan {
    int64_t morsel_rows = 0;
    int64_t num_morsels = 0;
    int threads = 1;
  };

  int WorkerCount() const {
    return options_.num_threads > 0
               ? options_.num_threads
               : static_cast<int>(
                     std::max(1u, std::thread::hardware_concurrency()));
  }

  // `order_preserving` marks operators whose per-morsel results concatenate
  // without any merge (filter/project/join): for those, morsel boundaries
  // are invisible in the output, so the adaptive policy may collapse them
  // freely. Aggregates pass false — their double SUM/AVG partial-sum
  // grouping is part of the result contract and must not depend on the
  // scheduling decision of the day.
  MorselPlan PlanMorsels(int64_t num_rows, bool order_preserving) const {
    MorselPlan plan;
    if (!options_.parallel_operators) {
      plan.morsel_rows = std::max<int64_t>(1, num_rows);
      plan.num_morsels = num_rows == 0 ? 0 : 1;
      plan.threads = 1;
      return plan;
    }
    if (!options_.adaptive_parallelism) {
      // Faithful policy: fixed-size morsels, exactly the requested workers.
      plan.morsel_rows = std::max<int64_t>(1, options_.morsel_rows);
      plan.num_morsels =
          num_rows == 0 ? 0
                        : (num_rows + plan.morsel_rows - 1) / plan.morsel_rows;
      plan.threads = static_cast<int>(std::min<int64_t>(
          WorkerCount(), std::max<int64_t>(1, plan.num_morsels)));
      return plan;
    }
    // Adaptive policy. Everything that shapes morsel *boundaries* below
    // depends only on the machine (hardware concurrency) and the input
    // size — never on num_threads — so the "same result for any thread
    // count" guarantee survives: threads only changes who runs a morsel.
    const int64_t hw = static_cast<int64_t>(
        std::max(1u, std::thread::hardware_concurrency()));
    const int64_t useful = std::min(
        hw, std::max<int64_t>(1, num_rows / kMinRowsPerWorker));
    const int64_t target_morsels =
        useful == 1 ? 1 : kMorselsPerWorker * useful;
    plan.morsel_rows = std::max<int64_t>(
        std::max<int64_t>(1, options_.morsel_rows),
        (num_rows + target_morsels - 1) / std::max<int64_t>(1, target_morsels));
    if (order_preserving && useful == 1) {
      // One useful worker and no merge sensitivity: one input-spanning
      // morsel skips all per-morsel bookkeeping.
      plan.morsel_rows = std::max<int64_t>(1, num_rows);
    }
    plan.num_morsels =
        num_rows == 0 ? 0
                      : (num_rows + plan.morsel_rows - 1) / plan.morsel_rows;
    plan.threads = static_cast<int>(std::min<int64_t>(
        std::min<int64_t>(WorkerCount(), useful),
        std::max<int64_t>(1, plan.num_morsels)));
    return plan;
  }

  // Runs body(morsel_index, begin_row, end_row) over every morsel of
  // [0, num_rows). Workers pull the next morsel index from an atomic
  // counter; per-morsel statuses keep error reporting deterministic (the
  // lowest failing morsel wins regardless of scheduling).
  template <typename Body>
  Status RunMorsels(int64_t num_rows, const MorselPlan& plan,
                    const char* span_name, Trace::SpanId parent,
                    const Body& body) {
    if (plan.num_morsels == 0) return Status::OK();
    morsels_executed_.fetch_add(plan.num_morsels, std::memory_order_relaxed);
    Metrics().morsels_executed->Increment(plan.num_morsels);
    std::vector<Status> statuses(plan.num_morsels);
    std::atomic<int64_t> next{0};
    // Per-morsel spans only make sense when the splitter is actually on;
    // gate on parallel_operators so sequential traces stay one span per
    // operator.
    const bool morsel_spans =
        trace_ != nullptr && options_.parallel_operators;
    auto worker = [&]() {
      while (true) {
        const int64_t m = next.fetch_add(1);
        if (m >= plan.num_morsels) return;
        const int64_t begin = m * plan.morsel_rows;
        const int64_t end = std::min(num_rows, begin + plan.morsel_rows);
        if (morsel_spans) {
          // Workers have no open spans of their own: parent explicitly
          // under the operator's span.
          ScopedSpan span(trace_, span_name, parent);
          span.SetAttribute("morsel", m);
          span.SetAttribute("rows", end - begin);
          statuses[m] = body(m, begin, end);
        } else {
          statuses[m] = body(m, begin, end);
        }
      }
    };
    if (plan.threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(plan.threads);
      for (int t = 0; t < plan.threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
    for (const Status& status : statuses) {
      EINSQL_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  // Concatenates per-morsel output buffers in morsel order — the
  // determinism guarantee: output order matches sequential execution no
  // matter which worker ran which morsel.
  static void ConcatParts(std::vector<Row>* out,
                          std::vector<std::vector<Row>>* parts) {
    size_t total = out->size();
    for (const auto& part : *parts) total += part.size();
    out->reserve(total);
    for (auto& part : *parts) {
      out->insert(out->end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
      part.clear();
    }
  }

  // Only recorded under parallel execution: sequential runs keep
  // `morsels == 0` so EXPLAIN ANALYZE output is unchanged from before
  // morsel-driven execution existed.
  void RecordMorsels(OperatorProfile* prof, const MorselPlan& plan) const {
    if (prof == nullptr || !options_.parallel_operators) return;
    prof->threads_used = plan.threads;
    prof->morsels = plan.num_morsels;
  }

  // Books an operator that attempted vectorized execution: `fallbacks` of
  // its `plan.num_morsels` morsels retried on the row interpreter. Updates
  // the query-level tallies, the global counters, and the profile flag.
  void RecordVectorized(OperatorProfile* prof, const MorselPlan& plan,
                        bool attempted, int64_t fallbacks) {
    if (prof != nullptr) prof->vectorized = attempted && fallbacks == 0;
    if (!attempted || plan.num_morsels == 0) return;
    const int64_t clean = plan.num_morsels - fallbacks;
    vec_morsels_.fetch_add(clean, std::memory_order_relaxed);
    Metrics().vec_morsels->Increment(clean);
    if (fallbacks > 0) {
      fallback_morsels_.fetch_add(fallbacks, std::memory_order_relaxed);
      Metrics().vec_fallback_morsels->Increment(fallbacks);
    }
  }

  // ---------------------------------------------------------------------
  // Typed key extraction (the int64 fast path)
  // ---------------------------------------------------------------------

  enum class KeyClass {
    kInts,     // all key values are int64; `out` is filled
    kHasNull,  // a key is NULL: skip the row (never joins / typed-groups)
    kUntyped,  // a non-NULL, non-int value: abandon the typed path
  };

  static KeyClass ClassifyIntKey(const Row& row, const std::vector<int>& slots,
                                 int64_t* out) {
    for (size_t k = 0; k < slots.size(); ++k) {
      const Value& v = row[slots[k]];
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out[k] = *i;
        continue;
      }
      return IsNull(v) ? KeyClass::kHasNull : KeyClass::kUntyped;
    }
    return KeyClass::kInts;
  }

  // ---------------------------------------------------------------------
  // CTE materialization (unchanged: one task per CTE level)
  // ---------------------------------------------------------------------

  // Collects the CTE indices a plan subtree references.
  static void CollectCteRefs(const PlanNode& node, std::vector<int>* refs) {
    if (node.kind == PlanKind::kCteScan) refs->push_back(node.cte_index);
    for (const auto& child : node.children) CollectCteRefs(*child, refs);
  }

  // Materializes one CTE, recording its span (under `parent`, which must be
  // explicit when running on a worker thread) and its profile slot. With a
  // pre-sized profile->ctes vector, each index is written by exactly one
  // thread.
  Result<RelationPtr> MaterializeCte(int index, Trace::SpanId parent) {
    const QueryPlan::Cte& cte = plan_.ctes[index];
    Stopwatch watch;
    ScopedSpan span(trace_, StrCat("cte ", cte.name), parent);
    OperatorProfile* prof = nullptr;
    if (profile_ != nullptr) {
      QueryProfile::CteProfile& slot = profile_->ctes[index];
      slot.name = cte.name;
      slot.est_rows = cte.plan->est_rows;
      prof = &slot.root;
    }
    EINSQL_ASSIGN_OR_RETURN(RelationPtr result, Execute(*cte.plan, prof));
    if (profile_ != nullptr) {
      QueryProfile::CteProfile& slot = profile_->ctes[index];
      slot.rows = result->num_rows();
      slot.wall_seconds = watch.ElapsedSeconds();
    }
    span.SetAttribute("est_rows", cte.plan->est_rows);
    span.SetAttribute("actual_rows", result->num_rows());
    return result;
  }

  // Levels the CTE dependency graph and materializes each level on a
  // thread pool: all CTEs of a level depend only on earlier levels, so they
  // can run concurrently (each worker writes its own pre-sized slot).
  Status MaterializeCtesInParallel(Trace::SpanId parent_span) {
    const int n = static_cast<int>(plan_.ctes.size());
    std::vector<int> level(n, 0);
    for (int i = 0; i < n; ++i) {
      std::vector<int> refs;
      CollectCteRefs(*plan_.ctes[i].plan, &refs);
      for (int dep : refs) {
        if (dep >= 0 && dep < i) level[i] = std::max(level[i], level[dep] + 1);
      }
    }
    const int max_level = *std::max_element(level.begin(), level.end());
    cte_results_.assign(n, nullptr);
    const int workers = WorkerCount();
    for (int current = 0; current <= max_level; ++current) {
      std::vector<int> batch;
      for (int i = 0; i < n; ++i) {
        if (level[i] == current) batch.push_back(i);
      }
      std::atomic<size_t> next{0};
      std::vector<Status> statuses(batch.size());
      auto worker = [&]() {
        while (true) {
          const size_t k = next.fetch_add(1);
          if (k >= batch.size()) return;
          // Worker threads have no open spans of their own: parent the CTE
          // span explicitly under the executor's top-level span.
          auto result = MaterializeCte(batch[k], parent_span);
          if (result.ok()) {
            cte_results_[batch[k]] = std::move(result).value();
          } else {
            statuses[k] = result.status();
          }
        }
      };
      const int threads =
          std::min<int>(workers, static_cast<int>(batch.size()));
      if (threads <= 1) {
        worker();
      } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
      }
      for (const Status& status : statuses) {
        EINSQL_RETURN_IF_ERROR(status);
      }
    }
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Operator evaluation
  // ---------------------------------------------------------------------

  // Evaluates one operator, recording its metrics into `prof` (may be
  // null) and, when tracing, emitting a span with est-vs-actual
  // cardinality attributes. Wall time is inclusive of the subtree.
  Result<RelationPtr> Execute(const PlanNode& node, OperatorProfile* prof) {
    // When tracing without an external profile, collect into a scratch so
    // span attributes (hash-table sizes, input rows) are still available.
    OperatorProfile scratch;
    if (prof == nullptr && trace_ != nullptr) prof = &scratch;
    Stopwatch watch;
    ScopedSpan span(trace_, PlanKindToString(node.kind));
    EINSQL_ASSIGN_OR_RETURN(RelationPtr out, Dispatch(node, prof, span.id()));
    int64_t mem_bytes = 0;
    if (node.kind == PlanKind::kScan || node.kind == PlanKind::kCteScan) {
      // Scans reference stored tables / already-accounted CTE results:
      // count the rows read but no new bytes.
      Metrics().rows_scanned->Increment(out->num_rows());
    } else {
      // A freshly materialized intermediate: charge its bytes to the
      // query until the last reference drops (the custom deleter keeps the
      // original shared_ptr alive, so control blocks chain safely).
      mem_bytes = ApproxRelationBytes(*out);
      mem_.Add(mem_bytes);
      Metrics().bytes_materialized->Increment(mem_bytes);
      MemoryTracker* mem = &mem_;
      RelationPtr inner = std::move(out);
      const Relation* raw = inner.get();
      out = RelationPtr(raw,
                        [inner = std::move(inner), mem,
                         mem_bytes](const Relation*) mutable {
                          mem->Release(mem_bytes);
                          inner.reset();
                        });
    }
    if (node.kind == PlanKind::kJoin) {
      Metrics().rows_joined->Increment(out->num_rows());
    }
    if (prof != nullptr) {
      prof->mem_bytes = mem_bytes;
      prof->kind = node.kind;
      prof->label = node.HeadLine();
      prof->est_rows = node.est_rows;
      prof->actual_rows = out->num_rows();
      prof->input_rows = 0;
      for (const OperatorProfile& child : prof->children) {
        prof->input_rows += child.actual_rows;
      }
      prof->wall_seconds = watch.ElapsedSeconds();
      if (trace_ != nullptr) {
        span.SetAttribute("est_rows", node.est_rows);
        span.SetAttribute("actual_rows", prof->actual_rows);
        if (node.kind == PlanKind::kJoin ||
            node.kind == PlanKind::kAggregate) {
          span.SetAttribute("hash_entries", prof->hash_entries);
          span.SetAttribute("est_error", prof->est_error());
        }
        if (prof->morsels > 0) {
          span.SetAttribute("threads_used",
                            static_cast<int64_t>(prof->threads_used));
          span.SetAttribute("morsels", prof->morsels);
        }
      }
    }
    return out;
  }

  // Executes the k-th child, appending its profile to `prof->children` so
  // the profile tree mirrors the plan tree.
  Result<RelationPtr> ExecuteChild(const PlanNode& node, size_t k,
                                   OperatorProfile* prof) {
    if (prof == nullptr) return Execute(*node.children[k], nullptr);
    prof->children.emplace_back();
    return Execute(*node.children[k], &prof->children.back());
  }

  Result<RelationPtr> Dispatch(const PlanNode& node, OperatorProfile* prof,
                               Trace::SpanId op_span) {
    switch (node.kind) {
      case PlanKind::kScan:
        return RelationPtr(node.table);
      case PlanKind::kCteScan: {
        if (node.cte_index < 0 ||
            node.cte_index >= static_cast<int>(cte_results_.size())) {
          return Status::Internal("CTE index out of range");
        }
        return cte_results_[node.cte_index];
      }
      case PlanKind::kValues:
        return ExecuteValues(node);
      case PlanKind::kFilter:
        return ExecuteFilter(node, prof, op_span);
      case PlanKind::kProject:
        return ExecuteProject(node, prof, op_span);
      case PlanKind::kJoin:
        return ExecuteJoin(node, prof, op_span);
      case PlanKind::kAggregate:
        return ExecuteAggregate(node, prof, op_span);
      case PlanKind::kSort:
        return ExecuteSort(node, prof);
      case PlanKind::kLimit:
        return ExecuteLimit(node, prof);
      case PlanKind::kDistinct:
        return ExecuteDistinct(node, prof);
      case PlanKind::kAppend: {
        auto out = std::make_shared<Relation>();
        for (size_t child = 0; child < node.children.size(); ++child) {
          EINSQL_ASSIGN_OR_RETURN(RelationPtr input,
                                  ExecuteChild(node, child, prof));
          if (child == 0) out->columns = input->columns;
          out->rows.insert(out->rows.end(), input->rows.begin(),
                           input->rows.end());
        }
        return RelationPtr(out);
      }
    }
    return Status::Internal("unhandled plan node kind");
  }

  static std::vector<Column> SchemaColumns(const Schema& schema) {
    std::vector<Column> columns;
    columns.reserve(schema.size());
    for (const SchemaColumn& col : schema) {
      // kNull means "type unknown at plan time"; keep the historical
      // kDouble default for display.
      columns.push_back({col.name, col.type == ValueType::kNull
                                       ? ValueType::kDouble
                                       : col.type});
    }
    return columns;
  }

  Result<RelationPtr> ExecuteValues(const PlanNode& node) {
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    out->rows = node.literal_rows;
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteFilter(const PlanNode& node,
                                    OperatorProfile* prof,
                                    Trace::SpanId op_span) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    const MorselPlan plan = PlanMorsels(input->num_rows(), true);
    std::vector<std::vector<Row>> parts(plan.num_morsels);
    const bool vec = options_.vectorized && CanVectorizeExpr(*node.predicate);
    // The predicate's top-level AND chain, evaluated conjunct by conjunct
    // over a shrinking selection vector. Legal because a 3VL AND chain is
    // truthy iff every conjunct is truthy (FALSE and NULL both reject), and
    // it strictly *reduces* spurious eager-evaluation errors: a conjunct is
    // never evaluated on a row an earlier conjunct already rejected.
    std::vector<const Expr*> conjuncts;
    if (vec) CollectConjuncts(*node.predicate, &conjuncts);
    std::atomic<int64_t> vec_fallbacks{0};
    EINSQL_RETURN_IF_ERROR(RunMorsels(
        input->num_rows(), plan, "filter morsel", op_span,
        [&](int64_t m, int64_t begin, int64_t end) -> Status {
          std::vector<Row>& local = parts[m];
          if (vec) {
            bool chunks_ok = true;
            for (int64_t cb = begin; cb < end && chunks_ok;
                 cb += kVecChunkRows) {
              const int64_t ce = std::min(end, cb + kVecChunkRows);
              // Conjunct 1 runs on the full chunk and builds the selection
              // vector; each later conjunct runs on a batch that gathers
              // only the still-selected rows and refines the selection in
              // place. Kernels stay selection-agnostic: gathering at
              // transpose time keeps every batch full-occupancy.
              SelVector sel;
              bool have_sel = false;
              for (size_t c = 0; c < conjuncts.size(); ++c) {
                if (have_sel && sel.empty()) break;
                ColumnBatch batch =
                    have_sel ? ColumnBatch(input->rows, cb, ce, &sel)
                             : ColumnBatch(input->rows, cb, ce);
                VecEvaluator eval(&batch);
                auto cond = eval.Evaluate(*conjuncts[c]);
                if (!cond.ok()) {
                  chunks_ok = false;
                  break;
                }
                if (!have_sel) {
                  sel = BuildSelection(**cond);
                  have_sel = true;
                } else {
                  RefineSelection(**cond, &sel);
                }
              }
              if (!chunks_ok) break;
              // The selection vector is fully known before any row is
              // emitted, so the output buffer can be sized exactly — an
              // advantage tuple-at-a-time evaluation cannot have.
              const size_t needed = local.size() + sel.size();
              if (local.capacity() < needed) {
                // Keep growth geometric: a bare reserve(needed) every chunk
                // would reallocate per chunk.
                local.reserve(std::max(needed, 2 * local.capacity()));
              }
              for (int32_t r : sel.idx) local.push_back(input->rows[cb + r]);
            }
            if (chunks_ok) return Status::OK();
            // Eager evaluation error: the row path decides whether it is
            // a real error or one short-circuiting would have skipped.
            vec_fallbacks.fetch_add(1, std::memory_order_relaxed);
            local.clear();
          }
          for (int64_t r = begin; r < end; ++r) {
            const Row& row = input->rows[r];
            EINSQL_ASSIGN_OR_RETURN(Value keep,
                                    EvaluateExpr(*node.predicate, row));
            if (IsTrue(keep)) local.push_back(row);
          }
          return Status::OK();
        }));
    ConcatParts(&out->rows, &parts);
    RecordMorsels(prof, plan);
    RecordVectorized(prof, plan, vec, vec_fallbacks.load());
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteProject(const PlanNode& node,
                                     OperatorProfile* prof,
                                     Trace::SpanId op_span) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    const MorselPlan plan = PlanMorsels(input->num_rows(), true);
    std::vector<std::vector<Row>> parts(plan.num_morsels);
    bool vec = options_.vectorized;
    for (const auto& expr : node.exprs) {
      vec = vec && CanVectorizeExpr(*expr);
    }
    std::atomic<int64_t> vec_fallbacks{0};
    EINSQL_RETURN_IF_ERROR(RunMorsels(
        input->num_rows(), plan, "project morsel", op_span,
        [&](int64_t m, int64_t begin, int64_t end) -> Status {
          std::vector<Row>& local = parts[m];
          local.reserve(end - begin);
          if (vec && VecProjectMorsel(node, *input, begin, end, &local)) {
            return Status::OK();
          }
          if (vec) {
            vec_fallbacks.fetch_add(1, std::memory_order_relaxed);
            local.clear();
          }
          for (int64_t r = begin; r < end; ++r) {
            const Row& row = input->rows[r];
            Row projected;
            projected.reserve(node.exprs.size());
            for (const auto& expr : node.exprs) {
              EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, row));
              projected.push_back(std::move(v));
            }
            local.push_back(std::move(projected));
          }
          return Status::OK();
        }));
    ConcatParts(&out->rows, &parts);
    RecordMorsels(prof, plan);
    RecordVectorized(prof, plan, vec, vec_fallbacks.load());
    return RelationPtr(out);
  }

  // Column-at-a-time projection of one morsel. Returns false on any kernel
  // error — the caller retries the morsel on the row path, which either
  // reproduces the error or (for errors only eager evaluation hits)
  // produces the rows the row semantics demand.
  bool VecProjectMorsel(const PlanNode& node, const Relation& input,
                        int64_t begin, int64_t end, std::vector<Row>* local) {
    std::vector<const ColumnVector*> cols;
    for (int64_t cb = begin; cb < end; cb += kVecChunkRows) {
      const int64_t ce = std::min(end, cb + kVecChunkRows);
      ColumnBatch batch(input.rows, cb, ce);
      VecEvaluator eval(&batch);
      cols.clear();
      cols.reserve(node.exprs.size());
      for (const auto& expr : node.exprs) {
        auto col = eval.Evaluate(*expr);
        if (!col.ok()) return false;
        cols.push_back(*col);
      }
      const int64_t n = ce - cb;
      for (int64_t i = 0; i < n; ++i) {
        Row projected;
        projected.reserve(cols.size());
        for (const ColumnVector* col : cols) {
          projected.push_back(col->GetValue(i));
        }
        local->push_back(std::move(projected));
      }
    }
    return true;
  }

  Result<RelationPtr> ExecuteJoin(const PlanNode& node,
                                  OperatorProfile* prof,
                                  Trace::SpanId op_span) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr left, ExecuteChild(node, 0, prof));
    EINSQL_ASSIGN_OR_RETURN(RelationPtr right, ExecuteChild(node, 1, prof));
    auto out = std::make_shared<Relation>();
    out->columns = left->columns;
    out->columns.insert(out->columns.end(), right->columns.begin(),
                        right->columns.end());
    const MorselPlan plan = PlanMorsels(left->num_rows(), true);
    std::vector<std::vector<Row>> parts(plan.num_morsels);

    // Emits l⋈r into the morsel-local buffer when the residual predicate
    // passes. Safe to call concurrently: each worker owns its buffer.
    auto emit = [&](const Row& l, const Row& r,
                    std::vector<Row>* local) -> Status {
      Row combined;
      combined.reserve(l.size() + r.size());
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      if (node.predicate) {
        EINSQL_ASSIGN_OR_RETURN(Value keep,
                                EvaluateExpr(*node.predicate, combined));
        if (!IsTrue(keep)) return Status::OK();
      }
      local->push_back(std::move(combined));
      return Status::OK();
    };

    if (node.left_keys.empty()) {
      // Cross join, morselized over the left input.
      EINSQL_RETURN_IF_ERROR(RunMorsels(
          left->num_rows(), plan, "join morsel", op_span,
          [&](int64_t m, int64_t begin, int64_t end) -> Status {
            for (int64_t lr = begin; lr < end; ++lr) {
              for (const Row& r : right->rows) {
                EINSQL_RETURN_IF_ERROR(emit(left->rows[lr], r, &parts[m]));
              }
            }
            return Status::OK();
          }));
      ConcatParts(&out->rows, &parts);
      RecordMorsels(prof, plan);
      return RelationPtr(out);
    }

    // Hash join: sequential build on the right input, morsel-parallel
    // probe over the left. Two key representations share the two-level
    // bucket scheme (hash -> candidates, then an exact key check):
    //   * typed: packed int64 keys, chosen at plan time when every key
    //     column is declared kInt (einsum index columns) and verified per
    //     row — any non-int non-NULL value abandons the path;
    //   * generic: Value keys through HashRowKey/SqlEquals.
    const size_t arity = node.left_keys.size();

    // --- typed path ---
    if (node.typed_int_keys) {
      std::vector<int64_t> build_keys;   // arity ints per entry
      std::vector<int64_t> build_rows;   // right-row index per entry
      build_keys.reserve(right->rows.size() * arity);
      build_rows.reserve(right->rows.size());
      bool typed_ok = true;
      // Vectorized execution extracts keys batch-at-a-time (one pass over
      // the key columns into packed arrays); otherwise classify row by
      // row. Either way the inserted entries are identical, so the built
      // table — and the join result — does not depend on the mode.
      if (options_.vectorized) {
        const int64_t n = right->num_rows();
        std::vector<int64_t> keys(n * arity);
        std::vector<KeyRowClass> classes(n);
        typed_ok = ExtractIntKeys(right->rows, 0, n, node.right_keys,
                                  keys.data(), classes.data());
        if (typed_ok) {
          for (int64_t r = 0; r < n; ++r) {
            if (classes[r] != KeyRowClass::kOk) continue;  // NULL key
            const int64_t* key = keys.data() + r * arity;
            build_keys.insert(build_keys.end(), key, key + arity);
            build_rows.push_back(r);
          }
        }
      } else {
        std::vector<int64_t> key(arity);
        for (int64_t r = 0; r < right->num_rows(); ++r) {
          const KeyClass cls =
              ClassifyIntKey(right->rows[r], node.right_keys, key.data());
          if (cls == KeyClass::kHasNull) continue;  // NULL keys never join
          if (cls == KeyClass::kUntyped) {
            typed_ok = false;
            break;
          }
          build_keys.insert(build_keys.end(), key.begin(), key.end());
          build_rows.push_back(r);
        }
      }
      if (typed_ok) {
        // The build side picks its own layout from the key statistics:
        // direct addressing when the key space is dense enough (the einsum
        // case — index columns spanning 0..N-1), radix-partitioned
        // chaining otherwise. Both enumerate matches in build order, so
        // the output is row-identical to the old bucket-vector scheme.
        IntKeyJoinTable table(build_keys.data(),
                              static_cast<int64_t>(build_rows.size()), arity);
        const int64_t hash_bytes = ApproxHashTableBytes(
            static_cast<int64_t>(build_rows.size()),
            static_cast<int64_t>(arity) * 8);
        ScopedTrackedBytes tracked_hash(&mem_, hash_bytes);
        std::atomic<bool> probe_untyped{false};
        // Emits every build match of probe key `probe` for left row `l`.
        auto probe_one = [&](const Row& l, const int64_t* probe,
                             std::vector<Row>* local) -> Status {
          return table.ForEachMatch(probe, [&](int64_t entry) -> Status {
            return emit(l, right->rows[build_rows[entry]], local);
          });
        };
        EINSQL_RETURN_IF_ERROR(RunMorsels(
            left->num_rows(), plan, "join morsel", op_span,
            [&](int64_t m, int64_t begin, int64_t end) -> Status {
              if (probe_untyped.load(std::memory_order_relaxed)) {
                return Status::OK();
              }
              if (options_.vectorized) {
                const int64_t n = end - begin;
                std::vector<int64_t> keys(n * arity);
                std::vector<KeyRowClass> classes(n);
                if (!ExtractIntKeys(left->rows, begin, end, node.left_keys,
                                    keys.data(), classes.data())) {
                  probe_untyped.store(true, std::memory_order_relaxed);
                  return Status::OK();
                }
                for (int64_t i = 0; i < n; ++i) {
                  if (classes[i] != KeyRowClass::kOk) continue;
                  EINSQL_RETURN_IF_ERROR(probe_one(
                      left->rows[begin + i], keys.data() + i * arity,
                      &parts[m]));
                }
                return Status::OK();
              }
              std::vector<int64_t> probe(arity);
              for (int64_t lr = begin; lr < end; ++lr) {
                if (probe_untyped.load(std::memory_order_relaxed)) {
                  return Status::OK();
                }
                const Row& l = left->rows[lr];
                const KeyClass cls =
                    ClassifyIntKey(l, node.left_keys, probe.data());
                if (cls == KeyClass::kHasNull) continue;
                if (cls == KeyClass::kUntyped) {
                  probe_untyped.store(true, std::memory_order_relaxed);
                  return Status::OK();
                }
                EINSQL_RETURN_IF_ERROR(probe_one(l, probe.data(), &parts[m]));
              }
              return Status::OK();
            }));
        if (!probe_untyped.load()) {
          if (prof != nullptr) {
            prof->hash_entries = static_cast<int64_t>(build_rows.size());
            prof->hash_bytes = hash_bytes;
          }
          Metrics().hash_entries->Increment(
              static_cast<int64_t>(build_rows.size()));
          ConcatParts(&out->rows, &parts);
          RecordMorsels(prof, plan);
          RecordVectorized(prof, plan, options_.vectorized, 0);
          return RelationPtr(out);
        }
        // A probe row defeated the typed assumption (e.g. a double in a
        // declared-int column, which must still join numerically): discard
        // partial output and redo generically.
        for (auto& part : parts) part.clear();
      }
    }

    // --- generic path ---
    std::unordered_map<size_t, std::vector<int64_t>> buckets;
    buckets.reserve(right->rows.size() * 2);
    int64_t build_entries = 0;
    {
      std::vector<Value> key;
      for (int64_t r = 0; r < right->num_rows(); ++r) {
        key.clear();
        for (int slot : node.right_keys) key.push_back(right->rows[r][slot]);
        bool has_null = false;
        for (const Value& v : key) has_null |= IsNull(v);
        if (has_null) continue;  // NULL keys never join
        buckets[HashRowKey(key)].push_back(r);
        ++build_entries;
      }
    }
    const int64_t hash_bytes = ApproxHashTableBytes(
        build_entries, static_cast<int64_t>(arity * sizeof(Value)));
    ScopedTrackedBytes tracked_hash(&mem_, hash_bytes);
    if (prof != nullptr) {
      prof->hash_entries = build_entries;
      prof->hash_bytes = hash_bytes;
    }
    Metrics().hash_entries->Increment(build_entries);
    EINSQL_RETURN_IF_ERROR(RunMorsels(
        left->num_rows(), plan, "join morsel", op_span,
        [&](int64_t m, int64_t begin, int64_t end) -> Status {
          std::vector<Value> key;
          for (int64_t lr = begin; lr < end; ++lr) {
            const Row& l = left->rows[lr];
            key.clear();
            for (int slot : node.left_keys) key.push_back(l[slot]);
            bool has_null = false;
            for (const Value& v : key) has_null |= IsNull(v);
            if (has_null) continue;
            auto it = buckets.find(HashRowKey(key));
            if (it == buckets.end()) continue;
            for (int64_t r : it->second) {
              const Row& rr = right->rows[r];
              bool match = true;
              for (size_t k = 0; k < arity && match; ++k) {
                match = SqlEquals(l[node.left_keys[k]],
                                  rr[node.right_keys[k]]);
              }
              if (match) EINSQL_RETURN_IF_ERROR(emit(l, rr, &parts[m]));
            }
          }
          return Status::OK();
        }));
    ConcatParts(&out->rows, &parts);
    RecordMorsels(prof, plan);
    return RelationPtr(out);
  }

  // ---------------------------------------------------------------------
  // Aggregation
  // ---------------------------------------------------------------------

  // Collects aggregate call nodes within an expression tree.
  static void CollectAggregates(const Expr& expr,
                                std::vector<const Expr*>* out) {
    if (expr.kind == ExprKind::kFunction &&
        IsAggregateFunction(expr.function)) {
      out->push_back(&expr);
      return;  // aggregates cannot nest
    }
    if (expr.left) CollectAggregates(*expr.left, out);
    if (expr.right) CollectAggregates(*expr.right, out);
    for (const auto& arg : expr.args) CollectAggregates(*arg, out);
    for (const auto& [when, then] : expr.case_whens) {
      CollectAggregates(*when, out);
      CollectAggregates(*then, out);
    }
    if (expr.case_else) CollectAggregates(*expr.case_else, out);
  }

  // The accumulator state and its fold/merge/finalize rules live in
  // vector_ops.{h,cc} (AggAccumulator), shared with the column-at-a-time
  // aggregation kernels so the two paths cannot drift apart.

  // Partial aggregation state of one morsel (or, after merging, of the
  // whole input). Groups are stored in first-occurrence order; `index`
  // maps a key hash to the group id (open addressing — key storage and
  // equality stay here). Exactly one of `keys`/`int_keys` is populated
  // depending on the key representation.
  struct GroupTable {
    FlatIndex index;
    std::vector<std::vector<Value>> keys;  // generic path
    std::vector<int64_t> int_keys;         // typed path, arity per group
    std::vector<Row> representatives;
    std::vector<std::vector<AggAccumulator>> accumulators;

    size_t size() const { return representatives.size(); }
  };

  // Group lookup with GROUP BY semantics (NULLs compare equal); creates the
  // group with empty accumulators when absent.
  static int64_t FindOrCreateGroup(GroupTable* table,
                                   const std::vector<Value>& key,
                                   const Row& representative,
                                   size_t num_accumulators) {
    const int64_t next = static_cast<int64_t>(table->size());
    const int64_t g = table->index.FindOrInsert(
        HashRowKey(key), next, [&](int64_t candidate) {
          const std::vector<Value>& existing = table->keys[candidate];
          bool same = existing.size() == key.size();
          for (size_t k = 0; k < key.size() && same; ++k) {
            same = CompareValues(existing[k], key[k]) == 0;
          }
          return same;
        });
    if (g == next) {
      table->keys.push_back(key);
      table->representatives.push_back(representative);
      table->accumulators.emplace_back(num_accumulators);
    }
    return g;
  }

  static int64_t FindOrCreateTypedGroup(GroupTable* table, const int64_t* key,
                                        size_t arity,
                                        const Row& representative,
                                        size_t num_accumulators) {
    const int64_t next = static_cast<int64_t>(table->size());
    const int64_t g = table->index.FindOrInsert(
        HashIntKey(key, arity), next, [&](int64_t candidate) {
          const int64_t* existing = table->int_keys.data() + candidate * arity;
          bool same = true;
          for (size_t k = 0; k < arity && same; ++k) {
            same = existing[k] == key[k];
          }
          return same;
        });
    if (g == next) {
      table->int_keys.insert(table->int_keys.end(), key, key + arity);
      table->representatives.push_back(representative);
      table->accumulators.emplace_back(num_accumulators);
    }
    return g;
  }

  // Generic per-morsel aggregation build (Value keys).
  Status BuildGroupsGeneric(const PlanNode& node, const Relation& input,
                            const std::vector<const Expr*>& agg_calls,
                            int64_t begin, int64_t end, GroupTable* table) {
    std::vector<Value> key;
    for (int64_t r = begin; r < end; ++r) {
      const Row& row = input.rows[r];
      key.clear();
      for (const auto& expr : node.group_exprs) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, row));
        key.push_back(std::move(v));
      }
      const int64_t g = FindOrCreateGroup(table, key, row, agg_calls.size());
      EINSQL_RETURN_IF_ERROR(
          UpdateAggAccumulators(agg_calls, row, &table->accumulators[g]));
    }
    return Status::OK();
  }

  // Typed per-morsel build: packed int64 group keys. Returns false
  // (without error) when a group key evaluates to anything but an int64 —
  // including NULL, which must group with other NULLs — so the caller
  // falls back to the generic build.
  Result<bool> BuildGroupsTyped(const PlanNode& node, const Relation& input,
                                const std::vector<const Expr*>& agg_calls,
                                int64_t begin, int64_t end,
                                GroupTable* table) {
    const size_t arity = node.group_exprs.size();
    std::vector<int64_t> key(arity);
    for (int64_t r = begin; r < end; ++r) {
      const Row& row = input.rows[r];
      for (size_t k = 0; k < arity; ++k) {
        EINSQL_ASSIGN_OR_RETURN(Value v,
                                EvaluateExpr(*node.group_exprs[k], row));
        const int64_t* i = std::get_if<int64_t>(&v);
        if (i == nullptr) return false;
        key[k] = *i;
      }
      const int64_t g = FindOrCreateTypedGroup(table, key.data(), arity, row,
                                               agg_calls.size());
      EINSQL_RETURN_IF_ERROR(
          UpdateAggAccumulators(agg_calls, row, &table->accumulators[g]));
    }
    return true;
  }

  // True when the whole aggregation (group keys and every aggregate
  // argument) can run column-at-a-time.
  static bool CanVectorizeAggregate(
      const PlanNode& node, const std::vector<const Expr*>& agg_calls) {
    for (const auto& expr : node.group_exprs) {
      if (!CanVectorizeExpr(*expr)) return false;
    }
    for (const Expr* call : agg_calls) {
      if (call->star_argument) continue;
      if (call->args.size() != 1 || !CanVectorizeExpr(*call->args[0])) {
        return false;
      }
    }
    return true;
  }

  // Folds the morsel's aggregate argument columns into `table` given the
  // per-row group assignment. Any error aborts (the caller falls back to
  // the row build, which reproduces real errors with row-path timing).
  static Status VecAccumulate(const std::vector<const Expr*>& agg_calls,
                              VecEvaluator* eval,
                              const std::vector<int64_t>& group_ids,
                              GroupTable* table) {
    for (size_t a = 0; a < agg_calls.size(); ++a) {
      const Expr& call = *agg_calls[a];
      if (call.star_argument) {
        AccumulateCountStar(group_ids, &table->accumulators, a);
        continue;
      }
      EINSQL_ASSIGN_OR_RETURN(const ColumnVector* col,
                              eval->Evaluate(*call.args[0]));
      EINSQL_RETURN_IF_ERROR(
          AccumulateColumn(call, *col, group_ids, &table->accumulators, a));
    }
    return Status::OK();
  }

  // Column-at-a-time typed morsel build. Same contract as BuildGroupsTyped
  // (false = a non-int64 group key defeats the typed representation); any
  // kernel error retries the morsel with the row build.
  Result<bool> VecBuildGroupsTyped(const PlanNode& node, const Relation& input,
                                   const std::vector<const Expr*>& agg_calls,
                                   int64_t begin, int64_t end,
                                   GroupTable* table,
                                   std::atomic<int64_t>* vec_fallbacks) {
    GroupTable attempt;
    bool keys_typed = true;
    const Status status = [&]() -> Status {
      const size_t arity = node.group_exprs.size();
      std::vector<const ColumnVector*> group_cols;
      std::vector<int64_t> group_ids;
      std::vector<int64_t> key(arity);
      for (int64_t cb = begin; cb < end; cb += kVecChunkRows) {
        const int64_t ce = std::min(end, cb + kVecChunkRows);
        ColumnBatch batch(input.rows, cb, ce);
        VecEvaluator eval(&batch);
        group_cols.clear();
        group_cols.reserve(arity);
        for (const auto& expr : node.group_exprs) {
          EINSQL_ASSIGN_OR_RETURN(const ColumnVector* col,
                                  eval.Evaluate(*expr));
          group_cols.push_back(col);
        }
        const int64_t n = ce - cb;
        group_ids.assign(n, 0);
        for (int64_t i = 0; i < n; ++i) {
          for (size_t k = 0; k < arity; ++k) {
            const ColumnVector& col = *group_cols[k];
            if (col.kind == ColumnVector::Kind::kInt && col.valid[i]) {
              key[k] = col.ints[i];
              continue;
            }
            const Value v = col.GetValue(i);
            const int64_t* p = std::get_if<int64_t>(&v);
            if (p == nullptr) {
              keys_typed = false;
              return Status::OK();
            }
            key[k] = *p;
          }
          group_ids[i] = FindOrCreateTypedGroup(&attempt, key.data(), arity,
                                                input.rows[cb + i],
                                                agg_calls.size());
        }
        EINSQL_RETURN_IF_ERROR(
            VecAccumulate(agg_calls, &eval, group_ids, &attempt));
      }
      return Status::OK();
    }();
    if (!status.ok()) {
      vec_fallbacks->fetch_add(1, std::memory_order_relaxed);
      return BuildGroupsTyped(node, input, agg_calls, begin, end, table);
    }
    if (!keys_typed) return false;
    *table = std::move(attempt);
    return true;
  }

  // Column-at-a-time generic morsel build (Value keys); kernel errors
  // retry the morsel with the row build.
  Status VecBuildGroupsGeneric(const PlanNode& node, const Relation& input,
                               const std::vector<const Expr*>& agg_calls,
                               int64_t begin, int64_t end, GroupTable* table,
                               std::atomic<int64_t>* vec_fallbacks) {
    GroupTable attempt;
    const Status status = [&]() -> Status {
      const size_t arity = node.group_exprs.size();
      std::vector<const ColumnVector*> group_cols;
      std::vector<int64_t> group_ids;
      std::vector<Value> key(arity);
      for (int64_t cb = begin; cb < end; cb += kVecChunkRows) {
        const int64_t ce = std::min(end, cb + kVecChunkRows);
        ColumnBatch batch(input.rows, cb, ce);
        VecEvaluator eval(&batch);
        group_cols.clear();
        group_cols.reserve(arity);
        for (const auto& expr : node.group_exprs) {
          EINSQL_ASSIGN_OR_RETURN(const ColumnVector* col,
                                  eval.Evaluate(*expr));
          group_cols.push_back(col);
        }
        const int64_t n = ce - cb;
        group_ids.assign(n, 0);
        if (arity == 0) {
          // Global aggregate: every row lands in the single all-rows
          // group, so the per-row hash lookups of the keyed build are
          // pure overhead. Creating the group once per chunk dedupes to
          // the same group id (0) across chunks.
          if (n > 0) {
            FindOrCreateGroup(&attempt, key, input.rows[cb],
                              agg_calls.size());
          }
        } else {
          for (int64_t i = 0; i < n; ++i) {
            for (size_t k = 0; k < arity; ++k) {
              key[k] = group_cols[k]->GetValue(i);
            }
            group_ids[i] = FindOrCreateGroup(&attempt, key, input.rows[cb + i],
                                             agg_calls.size());
          }
        }
        EINSQL_RETURN_IF_ERROR(
            VecAccumulate(agg_calls, &eval, group_ids, &attempt));
      }
      return Status::OK();
    }();
    if (!status.ok()) {
      vec_fallbacks->fetch_add(1, std::memory_order_relaxed);
      return BuildGroupsGeneric(node, input, agg_calls, begin, end, table);
    }
    *table = std::move(attempt);
    return Status::OK();
  }

  Result<RelationPtr> ExecuteAggregate(const PlanNode& node,
                                       OperatorProfile* prof,
                                       Trace::SpanId op_span) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    Metrics().rows_aggregated->Increment(input->num_rows());
    // The distinct aggregate calls across all output expressions.
    std::vector<const Expr*> agg_calls;
    for (const auto& expr : node.exprs) CollectAggregates(*expr, &agg_calls);
    if (node.predicate) CollectAggregates(*node.predicate, &agg_calls);

    const MorselPlan plan = PlanMorsels(input->num_rows(), false);
    const size_t arity = node.group_exprs.size();
    std::vector<GroupTable> parts(plan.num_morsels);
    const bool vec =
        options_.vectorized && CanVectorizeAggregate(node, agg_calls);
    std::atomic<int64_t> vec_fallbacks{0};

    // Phase 1: thread-local (per-morsel) group tables.
    bool typed = node.typed_int_keys && arity > 0;
    if (typed) {
      std::atomic<bool> typed_failed{false};
      EINSQL_RETURN_IF_ERROR(RunMorsels(
          input->num_rows(), plan, "aggregate morsel", op_span,
          [&](int64_t m, int64_t begin, int64_t end) -> Status {
            if (typed_failed.load(std::memory_order_relaxed)) {
              return Status::OK();
            }
            EINSQL_ASSIGN_OR_RETURN(
                bool ok,
                vec ? VecBuildGroupsTyped(node, *input, agg_calls, begin,
                                          end, &parts[m], &vec_fallbacks)
                    : BuildGroupsTyped(node, *input, agg_calls, begin, end,
                                       &parts[m]));
            if (!ok) typed_failed.store(true, std::memory_order_relaxed);
            return Status::OK();
          }));
      if (typed_failed.load()) {
        parts.assign(plan.num_morsels, GroupTable{});
        vec_fallbacks.store(0);
        typed = false;
      }
    }
    if (!typed) {
      EINSQL_RETURN_IF_ERROR(RunMorsels(
          input->num_rows(), plan, "aggregate morsel", op_span,
          [&](int64_t m, int64_t begin, int64_t end) -> Status {
            return vec ? VecBuildGroupsGeneric(node, *input, agg_calls,
                                               begin, end, &parts[m],
                                               &vec_fallbacks)
                       : BuildGroupsGeneric(node, *input, agg_calls, begin,
                                            end, &parts[m]);
          }));
    }

    // Phase 2: merge morsel tables *in morsel order*. Each morsel's groups
    // are in local first-occurrence order, so ordered merging reproduces
    // the global first-occurrence order of sequential execution, and
    // accumulator merging is associative — the result depends on the
    // morsel boundaries but never on the thread count.
    GroupTable merged;
    bool have_merged = false;
    for (GroupTable& part : parts) {
      if (!have_merged) {
        merged = std::move(part);
        have_merged = true;
        continue;
      }
      for (size_t g = 0; g < part.size(); ++g) {
        // Inline find-or-create: a group first seen in this morsel adopts
        // the morsel's key, representative, and accumulator state by move.
        // Bit-identical to merging into fresh accumulators (for an empty
        // target MergeAggAccumulator adopts `from` unchanged) but without
        // the per-accumulator copies.
        const int64_t next = static_cast<int64_t>(merged.size());
        int64_t target;
        if (typed) {
          const int64_t* key = part.int_keys.data() + g * arity;
          target = merged.index.FindOrInsert(
              HashIntKey(key, arity), next, [&](int64_t candidate) {
                const int64_t* existing =
                    merged.int_keys.data() + candidate * arity;
                bool same = true;
                for (size_t k = 0; k < arity && same; ++k) {
                  same = existing[k] == key[k];
                }
                return same;
              });
          if (target == next) {
            merged.int_keys.insert(merged.int_keys.end(), key, key + arity);
          }
        } else {
          std::vector<Value>& key = part.keys[g];
          target = merged.index.FindOrInsert(
              HashRowKey(key), next, [&](int64_t candidate) {
                const std::vector<Value>& existing = merged.keys[candidate];
                bool same = existing.size() == key.size();
                for (size_t k = 0; k < key.size() && same; ++k) {
                  same = CompareValues(existing[k], key[k]) == 0;
                }
                return same;
              });
          if (target == next) merged.keys.push_back(std::move(key));
        }
        if (target == next) {
          merged.representatives.push_back(
              std::move(part.representatives[g]));
          merged.accumulators.push_back(std::move(part.accumulators[g]));
          continue;
        }
        for (size_t a = 0; a < agg_calls.size(); ++a) {
          MergeAggAccumulator(&merged.accumulators[target][a],
                              part.accumulators[g][a]);
        }
      }
    }

    // A global aggregation over an empty input still produces one row.
    if (merged.size() == 0 && node.group_exprs.empty()) {
      merged.representatives.emplace_back(input->num_columns(),
                                          Value(Null{}));
      merged.accumulators.emplace_back(agg_calls.size());
    }
    // Group-table bytes: packed or Value keys plus one representative row
    // and the accumulator array per group. Held through the output phase.
    const int64_t group_bytes =
        static_cast<int64_t>(arity * (typed ? 8 : sizeof(Value))) +
        static_cast<int64_t>(input->num_columns() * sizeof(Value)) +
        static_cast<int64_t>(agg_calls.size() * sizeof(AggAccumulator));
    const int64_t hash_bytes = ApproxHashTableBytes(
        static_cast<int64_t>(merged.size()), group_bytes);
    ScopedTrackedBytes tracked_hash(&mem_, hash_bytes);
    if (prof != nullptr) {
      prof->hash_entries = static_cast<int64_t>(merged.size());
      prof->hash_bytes = hash_bytes;
    }
    Metrics().hash_entries->Increment(static_cast<int64_t>(merged.size()));
    RecordMorsels(prof, plan);
    RecordVectorized(prof, plan, vec, vec_fallbacks.load());

    // Phase 3: produce output rows (HAVING + projection per group).
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    out->rows.reserve(merged.size());
    for (size_t g = 0; g < merged.size(); ++g) {
      const Row& representative = merged.representatives[g];
      AggregateValues agg_values;
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        const Expr& call = *agg_calls[a];
        agg_values[&call] = FinalizeAggregate(call, merged.accumulators[g][a]);
      }
      if (node.predicate) {
        // HAVING: filter groups before projecting them.
        EINSQL_ASSIGN_OR_RETURN(
            Value keep,
            EvaluateExpr(*node.predicate, representative, &agg_values));
        if (!IsTrue(keep)) continue;
      }
      Row out_row;
      out_row.reserve(node.exprs.size());
      for (const auto& expr : node.exprs) {
        EINSQL_ASSIGN_OR_RETURN(
            Value v, EvaluateExpr(*expr, representative, &agg_values));
        out_row.push_back(std::move(v));
      }
      out->rows.push_back(std::move(out_row));
    }
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteSort(const PlanNode& node,
                                  OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    // Precompute sort keys.
    std::vector<std::pair<std::vector<Value>, int64_t>> keyed;
    keyed.reserve(input->rows.size());
    for (int64_t r = 0; r < input->num_rows(); ++r) {
      std::vector<Value> key;
      key.reserve(node.sort_exprs.size());
      for (const auto& expr : node.sort_exprs) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, input->rows[r]));
        key.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(key), r);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < node.sort_exprs.size(); ++k) {
                         int c = CompareValues(a.first[k], b.first[k]);
                         if (node.sort_desc[k]) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    out->rows.reserve(input->rows.size());
    for (const auto& [key, r] : keyed) out->rows.push_back(input->rows[r]);
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteLimit(const PlanNode& node,
                                   OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    // Clamp to [0, num_rows]: a plan constructed with a negative limit
    // (the parser rejects negative literals, but plans can be built
    // programmatically) must not form an iterator before begin().
    const int64_t n =
        std::clamp<int64_t>(node.limit, 0, input->num_rows());
    out->rows.assign(input->rows.begin(), input->rows.begin() + n);
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteDistinct(const PlanNode& node,
                                      OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;

    // Typed path: all columns declared kInt — dedup on packed int64 rows.
    if (node.typed_int_keys) {
      FlatIndex seen(input->rows.size());
      std::vector<int64_t> kept_keys;  // num_columns ints per kept row
      const size_t arity = input->columns.size();
      std::vector<int64_t> key(arity);
      bool typed_ok = true;
      for (const Row& row : input->rows) {
        bool ints = row.size() == arity;
        for (size_t k = 0; k < arity && ints; ++k) {
          const int64_t* i = std::get_if<int64_t>(&row[k]);
          ints = i != nullptr;
          if (ints) key[k] = *i;
        }
        if (!ints) {
          // A NULL or non-int value: DISTINCT needs NULL-equal and
          // cross-type numeric equality — generic path below.
          typed_ok = false;
          break;
        }
        const int64_t next = static_cast<int64_t>(out->rows.size());
        const int64_t id = seen.FindOrInsert(
            HashIntKey(key.data(), arity), next, [&](int64_t candidate) {
              const int64_t* existing = kept_keys.data() + candidate * arity;
              bool same = true;
              for (size_t k = 0; k < arity && same; ++k) {
                same = existing[k] == key[k];
              }
              return same;
            });
        if (id != next) continue;  // duplicate
        kept_keys.insert(kept_keys.end(), key.begin(), key.end());
        out->rows.push_back(row);
      }
      if (typed_ok) return RelationPtr(out);
      out->rows.clear();
    }

    // Generic path: hash set keyed by HashRowKey with a full-row equality
    // chain (NULLs compare equal, int/double compare numerically — the
    // same semantics as the former ordered-map implementation, without its
    // O(n log n) variant comparisons).
    FlatIndex seen(input->rows.size());
    for (const Row& row : input->rows) {
      const int64_t next = static_cast<int64_t>(out->rows.size());
      const int64_t id = seen.FindOrInsert(
          HashRowKey(row), next, [&](int64_t candidate) {
            const Row& existing = out->rows[candidate];
            bool same = existing.size() == row.size();
            for (size_t k = 0; k < row.size() && same; ++k) {
              same = CompareValues(existing[k], row[k]) == 0;
            }
            return same;
          });
      if (id != next) continue;  // duplicate
      out->rows.push_back(row);
    }
    return RelationPtr(out);
  }

  const QueryPlan& plan_;
  ExecutorOptions options_;
  Trace* trace_ = nullptr;
  QueryProfile* profile_ = nullptr;
  // Query-wide tallies, updated from morsel workers.
  std::atomic<int64_t> morsels_executed_{0};
  std::atomic<int64_t> vec_morsels_{0};
  std::atomic<int64_t> fallback_morsels_{0};
  // Declared before cte_results_: the deleters of tracked relations held
  // there release their bytes into mem_ during member destruction, which
  // runs in reverse declaration order.
  MemoryTracker mem_;
  std::vector<RelationPtr> cte_results_;
};

}  // namespace

Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const ExecutorOptions& options,
                             QueryProfile* profile) {
  if (profile != nullptr) *profile = QueryProfile{};
  Executor executor(plan, options, profile);
  return executor.Run();
}

}  // namespace einsql::minidb
