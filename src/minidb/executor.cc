#include "minidb/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "minidb/expr_eval.h"

namespace einsql::minidb {

namespace {

/// Shared materialized relations; scans return their backing table without
/// copying.
using RelationPtr = std::shared_ptr<const Relation>;

class Executor {
 public:
  Executor(const QueryPlan& plan, const ExecutorOptions& options,
           QueryProfile* profile)
      : plan_(plan),
        options_(options),
        trace_(options.trace),
        profile_(profile) {}

  Result<Relation> Run() {
    Stopwatch total;
    ScopedSpan exec_span(trace_, "minidb execute");
    if (profile_ != nullptr) profile_->ctes.resize(plan_.ctes.size());
    if (options_.parallel_ctes && plan_.ctes.size() > 1) {
      EINSQL_RETURN_IF_ERROR(MaterializeCtesInParallel(exec_span.id()));
    } else {
      cte_results_.reserve(plan_.ctes.size());
      for (size_t i = 0; i < plan_.ctes.size(); ++i) {
        EINSQL_ASSIGN_OR_RETURN(RelationPtr result,
                                MaterializeCte(static_cast<int>(i),
                                               Trace::kInheritParent));
        cte_results_.push_back(std::move(result));
      }
    }
    ScopedSpan root_span(trace_, "root evaluation");
    EINSQL_ASSIGN_OR_RETURN(
        RelationPtr result,
        Execute(*plan_.root, profile_ != nullptr ? &profile_->root : nullptr));
    root_span.SetAttribute("rows", result->num_rows());
    root_span.End();
    if (profile_ != nullptr) profile_->exec_seconds = total.ElapsedSeconds();
    return *result;  // copy out the final relation
  }

 private:
  // Collects the CTE indices a plan subtree references.
  static void CollectCteRefs(const PlanNode& node, std::vector<int>* refs) {
    if (node.kind == PlanKind::kCteScan) refs->push_back(node.cte_index);
    for (const auto& child : node.children) CollectCteRefs(*child, refs);
  }

  // Materializes one CTE, recording its span (under `parent`, which must be
  // explicit when running on a worker thread) and its profile slot. With a
  // pre-sized profile->ctes vector, each index is written by exactly one
  // thread.
  Result<RelationPtr> MaterializeCte(int index, Trace::SpanId parent) {
    const QueryPlan::Cte& cte = plan_.ctes[index];
    Stopwatch watch;
    ScopedSpan span(trace_, StrCat("cte ", cte.name), parent);
    OperatorProfile* prof = nullptr;
    if (profile_ != nullptr) {
      QueryProfile::CteProfile& slot = profile_->ctes[index];
      slot.name = cte.name;
      slot.est_rows = cte.plan->est_rows;
      prof = &slot.root;
    }
    EINSQL_ASSIGN_OR_RETURN(RelationPtr result, Execute(*cte.plan, prof));
    if (profile_ != nullptr) {
      QueryProfile::CteProfile& slot = profile_->ctes[index];
      slot.rows = result->num_rows();
      slot.wall_seconds = watch.ElapsedSeconds();
    }
    span.SetAttribute("est_rows", cte.plan->est_rows);
    span.SetAttribute("actual_rows", result->num_rows());
    return result;
  }

  // Levels the CTE dependency graph and materializes each level on a
  // thread pool: all CTEs of a level depend only on earlier levels, so they
  // can run concurrently (each worker writes its own pre-sized slot).
  Status MaterializeCtesInParallel(Trace::SpanId parent_span) {
    const int n = static_cast<int>(plan_.ctes.size());
    std::vector<int> level(n, 0);
    for (int i = 0; i < n; ++i) {
      std::vector<int> refs;
      CollectCteRefs(*plan_.ctes[i].plan, &refs);
      for (int dep : refs) {
        if (dep >= 0 && dep < i) level[i] = std::max(level[i], level[dep] + 1);
      }
    }
    const int max_level = *std::max_element(level.begin(), level.end());
    cte_results_.assign(n, nullptr);
    const int workers =
        options_.num_threads > 0
            ? options_.num_threads
            : std::max(1u, std::thread::hardware_concurrency());
    for (int current = 0; current <= max_level; ++current) {
      std::vector<int> batch;
      for (int i = 0; i < n; ++i) {
        if (level[i] == current) batch.push_back(i);
      }
      std::atomic<size_t> next{0};
      std::vector<Status> statuses(batch.size());
      auto worker = [&]() {
        while (true) {
          const size_t k = next.fetch_add(1);
          if (k >= batch.size()) return;
          // Worker threads have no open spans of their own: parent the CTE
          // span explicitly under the executor's top-level span.
          auto result = MaterializeCte(batch[k], parent_span);
          if (result.ok()) {
            cte_results_[batch[k]] = std::move(result).value();
          } else {
            statuses[k] = result.status();
          }
        }
      };
      const int threads =
          std::min<int>(workers, static_cast<int>(batch.size()));
      if (threads <= 1) {
        worker();
      } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
      }
      for (const Status& status : statuses) {
        EINSQL_RETURN_IF_ERROR(status);
      }
    }
    return Status::OK();
  }

  // Evaluates one operator, recording its metrics into `prof` (may be
  // null) and, when tracing, emitting a span with est-vs-actual
  // cardinality attributes. Wall time is inclusive of the subtree.
  Result<RelationPtr> Execute(const PlanNode& node, OperatorProfile* prof) {
    // When tracing without an external profile, collect into a scratch so
    // span attributes (hash-table sizes, input rows) are still available.
    OperatorProfile scratch;
    if (prof == nullptr && trace_ != nullptr) prof = &scratch;
    Stopwatch watch;
    ScopedSpan span(trace_, PlanKindToString(node.kind));
    EINSQL_ASSIGN_OR_RETURN(RelationPtr out, Dispatch(node, prof));
    if (prof != nullptr) {
      prof->kind = node.kind;
      prof->label = node.HeadLine();
      prof->est_rows = node.est_rows;
      prof->actual_rows = out->num_rows();
      prof->input_rows = 0;
      for (const OperatorProfile& child : prof->children) {
        prof->input_rows += child.actual_rows;
      }
      prof->wall_seconds = watch.ElapsedSeconds();
      if (trace_ != nullptr) {
        span.SetAttribute("est_rows", node.est_rows);
        span.SetAttribute("actual_rows", prof->actual_rows);
        if (node.kind == PlanKind::kJoin ||
            node.kind == PlanKind::kAggregate) {
          span.SetAttribute("hash_entries", prof->hash_entries);
          span.SetAttribute("est_error", prof->est_error());
        }
      }
    }
    return out;
  }

  // Executes the k-th child, appending its profile to `prof->children` so
  // the profile tree mirrors the plan tree.
  Result<RelationPtr> ExecuteChild(const PlanNode& node, size_t k,
                                   OperatorProfile* prof) {
    if (prof == nullptr) return Execute(*node.children[k], nullptr);
    prof->children.emplace_back();
    return Execute(*node.children[k], &prof->children.back());
  }

  Result<RelationPtr> Dispatch(const PlanNode& node, OperatorProfile* prof) {
    switch (node.kind) {
      case PlanKind::kScan:
        return RelationPtr(node.table);
      case PlanKind::kCteScan: {
        if (node.cte_index < 0 ||
            node.cte_index >= static_cast<int>(cte_results_.size())) {
          return Status::Internal("CTE index out of range");
        }
        return cte_results_[node.cte_index];
      }
      case PlanKind::kValues:
        return ExecuteValues(node);
      case PlanKind::kFilter:
        return ExecuteFilter(node, prof);
      case PlanKind::kProject:
        return ExecuteProject(node, prof);
      case PlanKind::kJoin:
        return ExecuteJoin(node, prof);
      case PlanKind::kAggregate:
        return ExecuteAggregate(node, prof);
      case PlanKind::kSort:
        return ExecuteSort(node, prof);
      case PlanKind::kLimit:
        return ExecuteLimit(node, prof);
      case PlanKind::kDistinct:
        return ExecuteDistinct(node, prof);
      case PlanKind::kAppend: {
        auto out = std::make_shared<Relation>();
        for (size_t child = 0; child < node.children.size(); ++child) {
          EINSQL_ASSIGN_OR_RETURN(RelationPtr input,
                                  ExecuteChild(node, child, prof));
          if (child == 0) out->columns = input->columns;
          out->rows.insert(out->rows.end(), input->rows.begin(),
                           input->rows.end());
        }
        return RelationPtr(out);
      }
    }
    return Status::Internal("unhandled plan node kind");
  }

  static std::vector<Column> SchemaColumns(const Schema& schema) {
    std::vector<Column> columns;
    columns.reserve(schema.size());
    for (const SchemaColumn& col : schema) {
      columns.push_back({col.name, ValueType::kDouble});
    }
    return columns;
  }

  Result<RelationPtr> ExecuteValues(const PlanNode& node) {
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    out->rows = node.literal_rows;
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteFilter(const PlanNode& node,
                                    OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    for (const Row& row : input->rows) {
      EINSQL_ASSIGN_OR_RETURN(Value keep,
                              EvaluateExpr(*node.predicate, row));
      if (IsTrue(keep)) out->rows.push_back(row);
    }
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteProject(const PlanNode& node,
                                     OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    out->rows.reserve(input->rows.size());
    for (const Row& row : input->rows) {
      Row projected;
      projected.reserve(node.exprs.size());
      for (const auto& expr : node.exprs) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, row));
        projected.push_back(std::move(v));
      }
      out->rows.push_back(std::move(projected));
    }
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteJoin(const PlanNode& node,
                                  OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr left, ExecuteChild(node, 0, prof));
    EINSQL_ASSIGN_OR_RETURN(RelationPtr right, ExecuteChild(node, 1, prof));
    auto out = std::make_shared<Relation>();
    out->columns = left->columns;
    out->columns.insert(out->columns.end(), right->columns.begin(),
                        right->columns.end());
    auto emit = [&](const Row& l, const Row& r) -> Status {
      Row combined = l;
      combined.insert(combined.end(), r.begin(), r.end());
      if (node.predicate) {
        EINSQL_ASSIGN_OR_RETURN(Value keep,
                                EvaluateExpr(*node.predicate, combined));
        if (!IsTrue(keep)) return Status::OK();
      }
      out->rows.push_back(std::move(combined));
      return Status::OK();
    };
    if (node.left_keys.empty()) {
      // Cross join.
      for (const Row& l : left->rows) {
        for (const Row& r : right->rows) {
          EINSQL_RETURN_IF_ERROR(emit(l, r));
        }
      }
      return RelationPtr(out);
    }
    // Hash join: build on the right input.
    std::unordered_map<size_t, std::vector<int64_t>> buckets;
    buckets.reserve(right->rows.size() * 2);
    int64_t build_entries = 0;
    std::vector<Value> key;
    auto extract = [&](const Row& row, const std::vector<int>& slots) {
      key.clear();
      for (int slot : slots) key.push_back(row[slot]);
    };
    for (int64_t r = 0; r < right->num_rows(); ++r) {
      extract(right->rows[r], node.right_keys);
      bool has_null = false;
      for (const Value& v : key) has_null |= IsNull(v);
      if (has_null) continue;  // NULL keys never join
      buckets[HashRowKey(key)].push_back(r);
      ++build_entries;
    }
    if (prof != nullptr) prof->hash_entries = build_entries;
    for (const Row& l : left->rows) {
      extract(l, node.left_keys);
      bool has_null = false;
      for (const Value& v : key) has_null |= IsNull(v);
      if (has_null) continue;
      auto it = buckets.find(HashRowKey(key));
      if (it == buckets.end()) continue;
      for (int64_t r : it->second) {
        const Row& rr = right->rows[r];
        bool match = true;
        for (size_t k = 0; k < node.left_keys.size() && match; ++k) {
          match = SqlEquals(l[node.left_keys[k]], rr[node.right_keys[k]]);
        }
        if (match) EINSQL_RETURN_IF_ERROR(emit(l, rr));
      }
    }
    return RelationPtr(out);
  }

  // Collects aggregate call nodes within an expression tree.
  static void CollectAggregates(const Expr& expr,
                                std::vector<const Expr*>* out) {
    if (expr.kind == ExprKind::kFunction &&
        IsAggregateFunction(expr.function)) {
      out->push_back(&expr);
      return;  // aggregates cannot nest
    }
    if (expr.left) CollectAggregates(*expr.left, out);
    if (expr.right) CollectAggregates(*expr.right, out);
    for (const auto& arg : expr.args) CollectAggregates(*arg, out);
    for (const auto& [when, then] : expr.case_whens) {
      CollectAggregates(*when, out);
      CollectAggregates(*then, out);
    }
    if (expr.case_else) CollectAggregates(*expr.case_else, out);
  }

  struct Accumulator {
    // sum / avg
    double double_sum = 0.0;
    int64_t int_sum = 0;
    bool saw_double = false;
    bool saw_value = false;
    int64_t count = 0;
    Value min_value = Null{};
    Value max_value = Null{};
  };

  Result<RelationPtr> ExecuteAggregate(const PlanNode& node,
                                       OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    // The distinct aggregate calls across all output expressions.
    std::vector<const Expr*> agg_calls;
    for (const auto& expr : node.exprs) CollectAggregates(*expr, &agg_calls);
    if (node.predicate) CollectAggregates(*node.predicate, &agg_calls);

    struct Group {
      Row representative;
      std::vector<Accumulator> accumulators;
    };
    std::unordered_map<size_t, std::vector<int64_t>> buckets;
    std::vector<std::vector<Value>> group_keys;
    std::vector<Group> groups;

    std::vector<Value> key;
    for (const Row& row : input->rows) {
      key.clear();
      for (const auto& expr : node.group_exprs) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, row));
        key.push_back(std::move(v));
      }
      // Find or create the group (GROUP BY treats NULLs as equal).
      const size_t hash = HashRowKey(key);
      int64_t group_index = -1;
      for (int64_t candidate : buckets[hash]) {
        const std::vector<Value>& existing = group_keys[candidate];
        bool same = existing.size() == key.size();
        for (size_t k = 0; k < key.size() && same; ++k) {
          same = CompareValues(existing[k], key[k]) == 0;
        }
        if (same) {
          group_index = candidate;
          break;
        }
      }
      if (group_index < 0) {
        group_index = static_cast<int64_t>(groups.size());
        buckets[hash].push_back(group_index);
        group_keys.push_back(key);
        Group group;
        group.representative = row;
        group.accumulators.resize(agg_calls.size());
        groups.push_back(std::move(group));
      }
      // Update accumulators.
      Group& group = groups[group_index];
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        const Expr& call = *agg_calls[a];
        Accumulator& acc = group.accumulators[a];
        if (call.star_argument) {
          ++acc.count;
          acc.saw_value = true;
          continue;
        }
        if (call.args.size() != 1) {
          return Status::InvalidArgument("aggregate ", call.function,
                                         "() expects one argument");
        }
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*call.args[0], row));
        if (IsNull(v)) continue;  // aggregates skip NULLs
        ++acc.count;
        acc.saw_value = true;
        if (call.function == "sum" || call.function == "avg") {
          if (TypeOf(v) == ValueType::kInt && !acc.saw_double) {
            acc.int_sum += std::get<int64_t>(v);
          } else {
            EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(v));
            if (!acc.saw_double) {
              acc.double_sum = static_cast<double>(acc.int_sum);
              acc.saw_double = true;
            }
            acc.double_sum += d;
          }
        } else if (call.function == "min") {
          if (IsNull(acc.min_value) ||
              CompareValues(v, acc.min_value) < 0) {
            acc.min_value = v;
          }
        } else if (call.function == "max") {
          if (IsNull(acc.max_value) ||
              CompareValues(v, acc.max_value) > 0) {
            acc.max_value = v;
          }
        }
      }
    }
    // A global aggregation over an empty input still produces one row.
    if (groups.empty() && node.group_exprs.empty()) {
      Group group;
      group.representative.assign(input->num_columns(), Value(Null{}));
      group.accumulators.resize(agg_calls.size());
      groups.push_back(std::move(group));
    }
    if (prof != nullptr) {
      prof->hash_entries = static_cast<int64_t>(groups.size());
    }
    // Produce output rows.
    auto out = std::make_shared<Relation>();
    out->columns = SchemaColumns(node.schema);
    out->rows.reserve(groups.size());
    for (const Group& group : groups) {
      AggregateValues agg_values;
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        const Expr& call = *agg_calls[a];
        const Accumulator& acc = group.accumulators[a];
        Value v;
        if (call.function == "count") {
          v = Value(acc.count);
        } else if (call.function == "sum") {
          if (!acc.saw_value) {
            v = Value(Null{});
          } else if (acc.saw_double) {
            v = Value(acc.double_sum);
          } else {
            v = Value(acc.int_sum);
          }
        } else if (call.function == "avg") {
          if (!acc.saw_value) {
            v = Value(Null{});
          } else {
            const double total = acc.saw_double
                                     ? acc.double_sum
                                     : static_cast<double>(acc.int_sum);
            v = Value(total / static_cast<double>(acc.count));
          }
        } else if (call.function == "min") {
          v = acc.min_value;
        } else {  // max
          v = acc.max_value;
        }
        agg_values[&call] = std::move(v);
      }
      if (node.predicate) {
        // HAVING: filter groups before projecting them.
        EINSQL_ASSIGN_OR_RETURN(
            Value keep,
            EvaluateExpr(*node.predicate, group.representative, &agg_values));
        if (!IsTrue(keep)) continue;
      }
      Row out_row;
      out_row.reserve(node.exprs.size());
      for (const auto& expr : node.exprs) {
        EINSQL_ASSIGN_OR_RETURN(
            Value v, EvaluateExpr(*expr, group.representative, &agg_values));
        out_row.push_back(std::move(v));
      }
      out->rows.push_back(std::move(out_row));
    }
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteSort(const PlanNode& node,
                                  OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    // Precompute sort keys.
    std::vector<std::pair<std::vector<Value>, int64_t>> keyed;
    keyed.reserve(input->rows.size());
    for (int64_t r = 0; r < input->num_rows(); ++r) {
      std::vector<Value> key;
      key.reserve(node.sort_exprs.size());
      for (const auto& expr : node.sort_exprs) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, input->rows[r]));
        key.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(key), r);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < node.sort_exprs.size(); ++k) {
                         int c = CompareValues(a.first[k], b.first[k]);
                         if (node.sort_desc[k]) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    out->rows.reserve(input->rows.size());
    for (const auto& [key, r] : keyed) out->rows.push_back(input->rows[r]);
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteLimit(const PlanNode& node,
                                   OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    const int64_t n =
        std::min<int64_t>(node.limit, input->num_rows());
    out->rows.assign(input->rows.begin(), input->rows.begin() + n);
    return RelationPtr(out);
  }

  Result<RelationPtr> ExecuteDistinct(const PlanNode& node,
                                      OperatorProfile* prof) {
    EINSQL_ASSIGN_OR_RETURN(RelationPtr input, ExecuteChild(node, 0, prof));
    auto out = std::make_shared<Relation>();
    out->columns = input->columns;
    auto row_less = [](const Row& a, const Row& b) {
      for (size_t k = 0; k < a.size() && k < b.size(); ++k) {
        int c = CompareValues(a[k], b[k]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    };
    std::map<Row, bool, decltype(row_less)> seen(row_less);
    for (const Row& row : input->rows) {
      if (seen.emplace(row, true).second) out->rows.push_back(row);
    }
    return RelationPtr(out);
  }

  const QueryPlan& plan_;
  ExecutorOptions options_;
  Trace* trace_ = nullptr;
  QueryProfile* profile_ = nullptr;
  std::vector<RelationPtr> cte_results_;
};

}  // namespace

Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const ExecutorOptions& options,
                             QueryProfile* profile) {
  if (profile != nullptr) *profile = QueryProfile{};
  Executor executor(plan, options, profile);
  return executor.Run();
}

}  // namespace einsql::minidb
