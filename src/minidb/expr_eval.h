#ifndef EINSQL_MINIDB_EXPR_EVAL_H_
#define EINSQL_MINIDB_EXPR_EVAL_H_

#include <map>

#include "common/result.h"
#include "minidb/ast.h"
#include "minidb/table.h"

namespace einsql::minidb {

/// Values computed for aggregate calls of the current group, keyed by the
/// aggregate Expr node. Empty outside of aggregation.
using AggregateValues = std::map<const Expr*, Value>;

/// Evaluates a bound expression against `row`. Column references must carry
/// a bound_slot. Aggregate calls are looked up in `aggregates` (it is an
/// Internal error to hit one that is absent). Supports three-valued logic
/// for comparisons/AND/OR/NOT and the scalar functions abs, coalesce,
/// length, mod, floor, ceil, sqrt, pow, exp, ln.
///
/// Thread safety: evaluation is re-entrant and takes `expr`, `row`, and
/// `aggregates` as read-only — concurrent calls over a shared expression
/// tree are safe, which the executor's morsel workers rely on. Expressions
/// must not be mutated while a query runs.
Result<Value> EvaluateExpr(const Expr& expr, const Row& row,
                           const AggregateValues* aggregates = nullptr);

/// Evaluates a constant expression (no column references, no aggregates).
Result<Value> EvaluateConstant(const Expr& expr);

/// SQL condition truthiness: true iff the value is a non-NULL number != 0.
bool IsTrue(const Value& v);

/// Three-valued comparison: NULL when either side is NULL, else 0/1 per
/// CompareValues ordering. `op` must be one of the six comparison
/// operators. Shared by the row interpreter and the vectorized kernels so
/// both paths cannot drift apart.
Result<Value> EvaluateComparison(BinaryOp op, const Value& a, const Value& b);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_EXPR_EVAL_H_
