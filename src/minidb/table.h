#ifndef EINSQL_MINIDB_TABLE_H_
#define EINSQL_MINIDB_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "minidb/value.h"

namespace einsql::minidb {

/// A column definition: name plus declared storage class.
struct Column {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// A row of values.
using Row = std::vector<Value>;

/// A materialized relation: schema plus row storage. Used both for base
/// tables in the catalog and for intermediate/final query results.
struct Relation {
  std::vector<Column> columns;
  std::vector<Row> rows;

  int num_columns() const { return static_cast<int>(columns.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }

  /// Index of the column with the given (case-insensitive) name, or -1.
  int ColumnIndex(std::string_view name) const;

  /// Renders an ASCII table for debugging and examples.
  std::string ToString(int64_t max_rows = 20) const;
};

/// The table catalog of a MiniDB instance. Names are case-insensitive.
class Catalog {
 public:
  /// Creates an empty table. Fails with AlreadyExists on duplicates.
  Status CreateTable(const std::string& name, std::vector<Column> columns);

  /// Drops a table. Fails with NotFound unless `if_exists`.
  Status DropTable(const std::string& name, bool if_exists = false);

  /// Looks up a table (nullptr result is never returned; missing tables are
  /// a NotFound error).
  Result<std::shared_ptr<Relation>> GetTable(const std::string& name) const;

  /// True iff a table with the name exists.
  bool HasTable(const std::string& name) const;

  /// Appends rows to an existing table, checking arity. Values are not
  /// coerced; MiniDB is dynamically typed at the storage layer.
  Status AppendRows(const std::string& name, std::vector<Row> rows);

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::shared_ptr<Relation>> tables_;  // lower-case key
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_TABLE_H_
