#include "minidb/expr_eval_vec.h"

#include "minidb/vector_ops.h"

namespace einsql::minidb {

bool CanVectorizeExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return expr.bound_slot >= 0;
    case ExprKind::kUnary:
      return CanVectorizeExpr(*expr.left);
    case ExprKind::kBinary:
      return CanVectorizeExpr(*expr.left) && CanVectorizeExpr(*expr.right);
    case ExprKind::kIsNull:
      return CanVectorizeExpr(*expr.left);
    case ExprKind::kFunction:
    case ExprKind::kCase:
      return false;
  }
  return false;
}

const ColumnVector* VecEvaluator::Own(ColumnVector&& col) {
  scratch_.push_back(std::make_unique<ColumnVector>(std::move(col)));
  return scratch_.back().get();
}

Result<const ColumnVector*> VecEvaluator::Evaluate(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Own(
          ColumnVector::Constant(expr.literal, batch_->num_rows()));
    case ExprKind::kColumnRef: {
      if (expr.bound_slot < 0) {
        return Status::Internal("unbound column reference '", expr.column,
                                "'");
      }
      return &batch_->Column(expr.bound_slot);
    }
    case ExprKind::kUnary: {
      EINSQL_ASSIGN_OR_RETURN(const ColumnVector* operand,
                              Evaluate(*expr.left));
      if (expr.unary_op == UnaryOp::kNegate) {
        EINSQL_ASSIGN_OR_RETURN(ColumnVector out, VecNegate(*operand));
        return Own(std::move(out));
      }
      return Own(VecNot(*operand));
    }
    case ExprKind::kBinary: {
      EINSQL_ASSIGN_OR_RETURN(const ColumnVector* lhs, Evaluate(*expr.left));
      EINSQL_ASSIGN_OR_RETURN(const ColumnVector* rhs,
                              Evaluate(*expr.right));
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
          return Own(VecAnd(*lhs, *rhs));
        case BinaryOp::kOr:
          return Own(VecOr(*lhs, *rhs));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          EINSQL_ASSIGN_OR_RETURN(ColumnVector out,
                                  VecArith(expr.binary_op, *lhs, *rhs));
          return Own(std::move(out));
        }
        default: {
          EINSQL_ASSIGN_OR_RETURN(ColumnVector out,
                                  VecCompare(expr.binary_op, *lhs, *rhs));
          return Own(std::move(out));
        }
      }
    }
    case ExprKind::kIsNull: {
      EINSQL_ASSIGN_OR_RETURN(const ColumnVector* operand,
                              Evaluate(*expr.left));
      return Own(VecIsNull(*operand, expr.is_null_negated));
    }
    case ExprKind::kFunction:
    case ExprKind::kCase:
      return Status::Internal("expression is not vectorizable");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace einsql::minidb
