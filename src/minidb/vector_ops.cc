#include "minidb/vector_ops.h"

#include <cmath>

#include "minidb/expr_eval.h"

namespace einsql::minidb {

namespace {

using Kind = ColumnVector::Kind;

bool IsNumericKind(Kind k) { return k == Kind::kInt || k == Kind::kDouble; }

double NumericAt(const ColumnVector& col, int64_t i) {
  return col.kind == Kind::kInt ? static_cast<double>(col.ints[i])
                                : col.doubles[i];
}

// Element truth state for three-valued AND/OR.
enum class Truth : uint8_t { kFalse, kTrue, kNull };

Truth TruthAt(const ColumnVector& col, int64_t i) {
  if (!col.valid[i]) return Truth::kNull;
  return TruthyAt(col, i) ? Truth::kTrue : Truth::kFalse;
}

// Generic element-wise arithmetic through the scalar Value operations —
// exact row semantics for text errors and mixed-class columns.
Result<ColumnVector> GenericArith(BinaryOp op, const ColumnVector& a,
                                  const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kValue;
  out.valid.assign(n, 1);
  out.values.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const Value va = a.GetValue(i);
    const Value vb = b.GetValue(i);
    Result<Value> r = Status::OK();
    switch (op) {
      case BinaryOp::kAdd: r = Add(va, vb); break;
      case BinaryOp::kSub: r = Subtract(va, vb); break;
      case BinaryOp::kMul: r = Multiply(va, vb); break;
      case BinaryOp::kDiv: r = Divide(va, vb); break;
      case BinaryOp::kMod: r = Modulo(va, vb); break;
      default:
        return Status::Internal("VecArith called with non-arithmetic op");
    }
    EINSQL_RETURN_IF_ERROR(r.status());
    if (IsNull(*r)) out.valid[i] = 0;
    out.values.push_back(std::move(*r));
  }
  return out;
}

bool CompareHolds(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNotEq: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLtEq: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGtEq: return c >= 0;
    default: return false;
  }
}

}  // namespace

Result<ColumnVector> VecArith(BinaryOp op, const ColumnVector& a,
                              const ColumnVector& b) {
  const int64_t n = a.size();
  // int64 (.) int64 stays exact int arithmetic; a zero divisor turns the
  // element NULL, mirroring Divide/Modulo.
  if (a.kind == Kind::kInt && b.kind == Kind::kInt) {
    ColumnVector out;
    out.kind = Kind::kInt;
    out.ints.assign(n, 0);
    out.valid.assign(n, 0);
    switch (op) {
      case BinaryOp::kAdd:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] + b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kSub:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] - b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kMul:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] * b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kDiv:
        for (int64_t i = 0; i < n; ++i) {
          if ((a.valid[i] & b.valid[i]) && b.ints[i] != 0) {
            out.ints[i] = a.ints[i] / b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kMod:
        for (int64_t i = 0; i < n; ++i) {
          if ((a.valid[i] & b.valid[i]) && b.ints[i] != 0) {
            out.ints[i] = a.ints[i] % b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      default:
        return Status::Internal("VecArith called with non-arithmetic op");
    }
    return out;
  }
  // Any other numeric pairing promotes to double, like Arith in value.cc.
  if (IsNumericKind(a.kind) && IsNumericKind(b.kind)) {
    ColumnVector out;
    out.kind = Kind::kDouble;
    out.doubles.assign(n, 0.0);
    out.valid.assign(n, 0);
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const double x = NumericAt(a, i);
      const double y = NumericAt(b, i);
      switch (op) {
        case BinaryOp::kAdd: out.doubles[i] = x + y; break;
        case BinaryOp::kSub: out.doubles[i] = x - y; break;
        case BinaryOp::kMul: out.doubles[i] = x * y; break;
        case BinaryOp::kDiv:
          if (y == 0.0) continue;  // NULL, SQLite behaviour
          out.doubles[i] = x / y;
          break;
        case BinaryOp::kMod:
          if (y == 0.0) continue;
          out.doubles[i] = std::fmod(x, y);
          break;
        default:
          return Status::Internal("VecArith called with non-arithmetic op");
      }
      out.valid[i] = 1;
    }
    return out;
  }
  return GenericArith(op, a, b);
}

Result<ColumnVector> VecCompare(BinaryOp op, const ColumnVector& a,
                                const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 0);
  if (IsNumericKind(a.kind) && IsNumericKind(b.kind)) {
    // CompareValues compares numbers through double, including int64
    // operands — the casts here are not an approximation, they are the
    // row semantics.
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const double x = NumericAt(a, i);
      const double y = NumericAt(b, i);
      const int c = x < y ? -1 : (x > y ? 1 : 0);
      out.ints[i] = CompareHolds(op, c) ? 1 : 0;
      out.valid[i] = 1;
    }
    return out;
  }
  if (a.kind == Kind::kText && b.kind == Kind::kText) {
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const int c = a.texts[i].compare(b.texts[i]);
      out.ints[i] = CompareHolds(op, c < 0 ? -1 : (c > 0 ? 1 : 0)) ? 1 : 0;
      out.valid[i] = 1;
    }
    return out;
  }
  // Mixed ranks (number vs text) or kValue columns: element-wise through
  // the shared three-valued comparison.
  for (int64_t i = 0; i < n; ++i) {
    EINSQL_ASSIGN_OR_RETURN(
        Value r, EvaluateComparison(op, a.GetValue(i), b.GetValue(i)));
    if (IsNull(r)) continue;
    out.ints[i] = std::get<int64_t>(r);
    out.valid[i] = 1;
  }
  return out;
}

ColumnVector VecAnd(const ColumnVector& a, const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    const Truth ta = TruthAt(a, i), tb = TruthAt(b, i);
    if (ta == Truth::kFalse || tb == Truth::kFalse) {
      out.ints[i] = 0;
    } else if (ta == Truth::kNull || tb == Truth::kNull) {
      out.valid[i] = 0;
    } else {
      out.ints[i] = 1;
    }
  }
  return out;
}

ColumnVector VecOr(const ColumnVector& a, const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    const Truth ta = TruthAt(a, i), tb = TruthAt(b, i);
    if (ta == Truth::kTrue || tb == Truth::kTrue) {
      out.ints[i] = 1;
    } else if (ta == Truth::kNull || tb == Truth::kNull) {
      out.valid[i] = 0;
    }
  }
  return out;
}

ColumnVector VecNot(const ColumnVector& a) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    if (!a.valid[i]) {
      out.valid[i] = 0;
    } else {
      out.ints[i] = TruthyAt(a, i) ? 0 : 1;
    }
  }
  return out;
}

Result<ColumnVector> VecNegate(const ColumnVector& a) {
  const int64_t n = a.size();
  ColumnVector out;
  switch (a.kind) {
    case Kind::kInt:
      out.kind = Kind::kInt;
      out.valid = a.valid;
      out.ints.assign(n, 0);
      for (int64_t i = 0; i < n; ++i) {
        if (a.valid[i]) out.ints[i] = -a.ints[i];
      }
      return out;
    case Kind::kDouble:
      out.kind = Kind::kDouble;
      out.valid = a.valid;
      out.doubles.assign(n, 0.0);
      for (int64_t i = 0; i < n; ++i) {
        if (a.valid[i]) out.doubles[i] = -a.doubles[i];
      }
      return out;
    case Kind::kText:
    case Kind::kValue: {
      out.kind = Kind::kValue;
      out.valid.assign(n, 1);
      out.values.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        EINSQL_ASSIGN_OR_RETURN(Value v, Negate(a.GetValue(i)));
        if (IsNull(v)) out.valid[i] = 0;
        out.values.push_back(std::move(v));
      }
      return out;
    }
  }
  return Status::Internal("unhandled column kind");
}

ColumnVector VecIsNull(const ColumnVector& a, bool negated) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.valid.assign(n, 1);
  out.ints.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    const bool is_null = !a.valid[i];
    out.ints[i] = (is_null != negated) ? 1 : 0;
  }
  return out;
}

bool ExtractIntKeys(const std::vector<Row>& rows, int64_t begin, int64_t end,
                    const std::vector<int>& slots, int64_t* keys,
                    KeyRowClass* classes) {
  const size_t arity = slots.size();
  bool all_typed = true;
  for (int64_t r = begin; r < end; ++r) {
    const Row& row = rows[r];
    int64_t* out = keys + (r - begin) * arity;
    KeyRowClass cls = KeyRowClass::kOk;
    for (size_t k = 0; k < arity; ++k) {
      const Value& v = row[slots[k]];
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out[k] = *i;
        continue;
      }
      cls = IsNull(v) ? KeyRowClass::kNull : KeyRowClass::kUntyped;
      break;
    }
    classes[r - begin] = cls;
    all_typed &= cls != KeyRowClass::kUntyped;
  }
  return all_typed;
}

Status UpdateAggAccumulators(const std::vector<const Expr*>& agg_calls,
                             const Row& row,
                             std::vector<AggAccumulator>* accumulators) {
  for (size_t a = 0; a < agg_calls.size(); ++a) {
    const Expr& call = *agg_calls[a];
    AggAccumulator& acc = (*accumulators)[a];
    if (call.star_argument) {
      ++acc.count;
      acc.saw_value = true;
      continue;
    }
    if (call.args.size() != 1) {
      return Status::InvalidArgument("aggregate ", call.function,
                                     "() expects one argument");
    }
    EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*call.args[0], row));
    if (IsNull(v)) continue;  // aggregates skip NULLs
    ++acc.count;
    acc.saw_value = true;
    if (call.function == "sum" || call.function == "avg") {
      if (TypeOf(v) == ValueType::kInt && !acc.saw_double) {
        acc.int_sum += std::get<int64_t>(v);
      } else {
        EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(v));
        if (!acc.saw_double) {
          acc.double_sum = static_cast<double>(acc.int_sum);
          acc.saw_double = true;
        }
        acc.double_sum += d;
      }
    } else if (call.function == "min") {
      if (IsNull(acc.min_value) || CompareValues(v, acc.min_value) < 0) {
        acc.min_value = v;
      }
    } else if (call.function == "max") {
      if (IsNull(acc.max_value) || CompareValues(v, acc.max_value) > 0) {
        acc.max_value = v;
      }
    }
  }
  return Status::OK();
}

Status AccumulateColumn(const Expr& call, const ColumnVector& col,
                        const std::vector<int64_t>& group_ids,
                        std::vector<std::vector<AggAccumulator>>* accumulators,
                        size_t call_index) {
  const int64_t n = col.size();
  const std::string& f = call.function;
  if (f == "sum" || f == "avg") {
    switch (col.kind) {
      case Kind::kInt:
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (!acc.saw_double) {
            acc.int_sum += col.ints[r];
          } else {
            acc.double_sum += static_cast<double>(col.ints[r]);
          }
        }
        return Status::OK();
      case Kind::kDouble:
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (!acc.saw_double) {
            acc.double_sum = static_cast<double>(acc.int_sum);
            acc.saw_double = true;
          }
          acc.double_sum += col.doubles[r];
        }
        return Status::OK();
      case Kind::kText:
      case Kind::kValue:
        // Element-wise: mixed int/double columns must hit the exact same
        // promotion point as the row fold, and text raises the row path's
        // AsDouble error.
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          const Value v = col.GetValue(r);
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (TypeOf(v) == ValueType::kInt && !acc.saw_double) {
            acc.int_sum += std::get<int64_t>(v);
          } else {
            EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(v));
            if (!acc.saw_double) {
              acc.double_sum = static_cast<double>(acc.int_sum);
              acc.saw_double = true;
            }
            acc.double_sum += d;
          }
        }
        return Status::OK();
    }
    return Status::Internal("unhandled column kind");
  }
  if (f == "count") {
    for (int64_t r = 0; r < n; ++r) {
      if (!col.valid[r]) continue;
      AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
      ++acc.count;
      acc.saw_value = true;
    }
    return Status::OK();
  }
  if (f == "min" || f == "max") {
    const bool is_min = f == "min";
    for (int64_t r = 0; r < n; ++r) {
      if (!col.valid[r]) continue;
      const Value v = col.GetValue(r);
      AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
      ++acc.count;
      acc.saw_value = true;
      if (is_min) {
        if (IsNull(acc.min_value) || CompareValues(v, acc.min_value) < 0) {
          acc.min_value = v;
        }
      } else {
        if (IsNull(acc.max_value) || CompareValues(v, acc.max_value) > 0) {
          acc.max_value = v;
        }
      }
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown aggregate '", f, "'");
}

void AccumulateCountStar(
    const std::vector<int64_t>& group_ids,
    std::vector<std::vector<AggAccumulator>>* accumulators,
    size_t call_index) {
  for (int64_t gid : group_ids) {
    AggAccumulator& acc = (*accumulators)[gid][call_index];
    ++acc.count;
    acc.saw_value = true;
  }
}

void MergeAggAccumulator(AggAccumulator* into, const AggAccumulator& from) {
  if (into->count == 0 && !into->saw_value) {
    // Fresh (or all-NULL) target: adopting `from` wholesale keeps the
    // merged state bit-identical to the morsel's own fold.
    *into = from;
    return;
  }
  if (from.count == 0 && !from.saw_value) return;
  into->count += from.count;
  into->saw_value = true;
  if (into->saw_double || from.saw_double) {
    if (!into->saw_double) {
      into->double_sum = static_cast<double>(into->int_sum);
      into->saw_double = true;
    }
    into->double_sum += from.saw_double
                            ? from.double_sum
                            : static_cast<double>(from.int_sum);
  } else {
    into->int_sum += from.int_sum;
  }
  if (!IsNull(from.min_value) &&
      (IsNull(into->min_value) ||
       CompareValues(from.min_value, into->min_value) < 0)) {
    into->min_value = from.min_value;
  }
  if (!IsNull(from.max_value) &&
      (IsNull(into->max_value) ||
       CompareValues(from.max_value, into->max_value) > 0)) {
    into->max_value = from.max_value;
  }
}

Value FinalizeAggregate(const Expr& call, const AggAccumulator& acc) {
  if (call.function == "count") return Value(acc.count);
  if (call.function == "sum") {
    if (!acc.saw_value) return Value(Null{});
    return acc.saw_double ? Value(acc.double_sum) : Value(acc.int_sum);
  }
  if (call.function == "avg") {
    if (!acc.saw_value) return Value(Null{});
    const double total =
        acc.saw_double ? acc.double_sum : static_cast<double>(acc.int_sum);
    return Value(total / static_cast<double>(acc.count));
  }
  if (call.function == "min") return acc.min_value;
  return acc.max_value;  // max
}

}  // namespace einsql::minidb
