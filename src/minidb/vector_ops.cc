#include "minidb/vector_ops.h"

#include <cmath>
#include <cstring>

#include "common/simd.h"
#include "minidb/expr_eval.h"

namespace einsql::minidb {

namespace {

using Kind = ColumnVector::Kind;

bool IsNumericKind(Kind k) { return k == Kind::kInt || k == Kind::kDouble; }

double NumericAt(const ColumnVector& col, int64_t i) {
  return col.kind == Kind::kInt ? static_cast<double>(col.ints[i])
                                : col.doubles[i];
}

// Element truth state for three-valued AND/OR.
enum class Truth : uint8_t { kFalse, kTrue, kNull };

Truth TruthAt(const ColumnVector& col, int64_t i) {
  if (!col.valid[i]) return Truth::kNull;
  return TruthyAt(col, i) ? Truth::kTrue : Truth::kFalse;
}

// Generic element-wise arithmetic through the scalar Value operations —
// exact row semantics for text errors and mixed-class columns.
Result<ColumnVector> GenericArith(BinaryOp op, const ColumnVector& a,
                                  const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kValue;
  out.valid.assign(n, 1);
  out.values.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const Value va = a.GetValue(i);
    const Value vb = b.GetValue(i);
    Result<Value> r = Status::OK();
    switch (op) {
      case BinaryOp::kAdd: r = Add(va, vb); break;
      case BinaryOp::kSub: r = Subtract(va, vb); break;
      case BinaryOp::kMul: r = Multiply(va, vb); break;
      case BinaryOp::kDiv: r = Divide(va, vb); break;
      case BinaryOp::kMod: r = Modulo(va, vb); break;
      default:
        return Status::Internal("VecArith called with non-arithmetic op");
    }
    EINSQL_RETURN_IF_ERROR(r.status());
    if (IsNull(*r)) out.valid[i] = 0;
    out.values.push_back(std::move(*r));
  }
  return out;
}

bool CompareHolds(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNotEq: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLtEq: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGtEq: return c >= 0;
    default: return false;
  }
}

#if defined(EINSQL_HAVE_SIMD)

// ---------------------------------------------------------------------
// SIMD kernel bodies (see docs/kernels.md). Selected at runtime by
// simd::Enabled(); the scalar twins below each call site are the
// historical loops, kept verbatim. Bit-identity argument, per kernel
// family:
//  * int64 arithmetic runs in uint64 lanes (two's-complement wraparound,
//    no signed-overflow UB on garbage lanes) and the result is AND-masked
//    with the merged validity, so invalid lanes hold 0 exactly like the
//    scalar loop that never writes them.
//  * double arithmetic is element-wise (one operation per lane, no
//    reassociation, no FMA contraction), and results of masked-out lanes
//    are zeroed through a uint64 bitcast — never by multiplying, which
//    would launder NaN.
//  * comparisons are built from < and > masks only: the scalar loop
//    computes c = x<y ? -1 : (x>y ? 1 : 0), which classifies NaN operands
//    as c == 0 (so NaN == anything holds, <= holds, < does not). Vector
//    ==/!= on doubles would disagree with that, so kEq is ~(lt|gt),
//    kNotEq is lt|gt, kLtEq is ~gt, kGtEq is ~lt.
// ---------------------------------------------------------------------

// 4 validity bytes (0/1) -> all-ones / all-zeros uint64 lane mask.
inline simd::Vec4u ValidMask4(const uint8_t* v) {
  return simd::Vec4u{0ull - v[0], 0ull - v[1], 0ull - v[2], 0ull - v[3]};
}

// 4 lanes of a numeric column as doubles, promoting int64 like NumericAt.
inline simd::Vec4d LoadNumeric4(const ColumnVector& col, int64_t i) {
  if (col.kind == Kind::kInt) {
    return __builtin_convertvector(simd::LoadI(col.ints.data() + i),
                                   simd::Vec4d);
  }
  return simd::LoadD(col.doubles.data() + i);
}

// int64 (.) int64 for +,-,*: uint64 lanes, masked store. `f` is a generic
// lambda usable on both Vec4u lanes and uint64_t scalars (tail).
template <typename F>
ColumnVector SimdIntArith(const ColumnVector& a, const ColumnVector& b, F f) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) out.valid[i] = a.valid[i] & b.valid[i];
  const auto* ap = reinterpret_cast<const uint64_t*>(a.ints.data());
  const auto* bp = reinterpret_cast<const uint64_t*>(b.ints.data());
  auto* op = reinterpret_cast<uint64_t*>(out.ints.data());
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::Vec4u m = ValidMask4(out.valid.data() + i);
    simd::Store(op + i, f(simd::LoadU(ap + i), simd::LoadU(bp + i)) & m);
  }
  for (; i < n; ++i) {
    if (out.valid[i]) op[i] = f(ap[i], bp[i]);
  }
  return out;
}

// Numeric (.) numeric promoted to double, for +,-,*.
template <typename F>
ColumnVector SimdDoubleArith(const ColumnVector& a, const ColumnVector& b,
                             F f) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kDouble;
  out.doubles.assign(n, 0.0);
  out.valid.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) out.valid[i] = a.valid[i] & b.valid[i];
  auto* op = reinterpret_cast<uint64_t*>(out.doubles.data());
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::Vec4u m = ValidMask4(out.valid.data() + i);
    const simd::Vec4d r = f(LoadNumeric4(a, i), LoadNumeric4(b, i));
    simd::Store(op + i, simd::BitcastU(r) & m);
  }
  for (; i < n; ++i) {
    if (out.valid[i]) out.doubles[i] = f(NumericAt(a, i), NumericAt(b, i));
  }
  return out;
}

// Double division: a zero divisor makes the element NULL (and leaves the
// payload 0 bits), so validity depends on the data, not just the inputs'
// null bytes. IEEE division by zero is well-defined (inf/NaN) and those
// lanes are masked away; no lane traps.
ColumnVector SimdDoubleDiv(const ColumnVector& a, const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kDouble;
  out.doubles.assign(n, 0.0);
  out.valid.assign(n, 0);
  auto* op = reinterpret_cast<uint64_t*>(out.doubles.data());
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::Vec4d x = LoadNumeric4(a, i);
    const simd::Vec4d y = LoadNumeric4(b, i);
    const uint8_t v[4] = {
        static_cast<uint8_t>(a.valid[i] & b.valid[i]),
        static_cast<uint8_t>(a.valid[i + 1] & b.valid[i + 1]),
        static_cast<uint8_t>(a.valid[i + 2] & b.valid[i + 2]),
        static_cast<uint8_t>(a.valid[i + 3] & b.valid[i + 3])};
    // NaN != 0.0 holds, matching the scalar `y == 0.0` test.
    const simd::Vec4u m = ValidMask4(v) & (simd::Vec4u)(y != 0.0);
    simd::Store(op + i, simd::BitcastU(x / y) & m);
    out.valid[i] = static_cast<uint8_t>(m[0] & 1);
    out.valid[i + 1] = static_cast<uint8_t>(m[1] & 1);
    out.valid[i + 2] = static_cast<uint8_t>(m[2] & 1);
    out.valid[i + 3] = static_cast<uint8_t>(m[3] & 1);
  }
  for (; i < n; ++i) {
    if (!(a.valid[i] & b.valid[i])) continue;
    const double y = NumericAt(b, i);
    if (y == 0.0) continue;
    out.doubles[i] = NumericAt(a, i) / y;
    out.valid[i] = 1;
  }
  return out;
}

// Numeric comparison from lt/gt masks only (NaN-exact; see header comment).
ColumnVector SimdNumericCompare(BinaryOp op, const ColumnVector& a,
                                const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) out.valid[i] = a.valid[i] & b.valid[i];
  auto* outp = reinterpret_cast<uint64_t*>(out.ints.data());
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::Vec4d x = LoadNumeric4(a, i);
    const simd::Vec4d y = LoadNumeric4(b, i);
    const simd::Vec4u lt = (simd::Vec4u)(x < y);
    const simd::Vec4u gt = (simd::Vec4u)(x > y);
    simd::Vec4u r;
    switch (op) {
      case BinaryOp::kEq: r = ~(lt | gt); break;
      case BinaryOp::kNotEq: r = lt | gt; break;
      case BinaryOp::kLt: r = lt; break;
      case BinaryOp::kLtEq: r = ~gt; break;
      case BinaryOp::kGt: r = gt; break;
      case BinaryOp::kGtEq: r = ~lt; break;
      default: r = simd::Vec4u{0, 0, 0, 0}; break;
    }
    const simd::Vec4u m = ValidMask4(out.valid.data() + i);
    simd::Store(outp + i, r & m & 1);
  }
  for (; i < n; ++i) {
    if (!out.valid[i]) continue;
    const double x = NumericAt(a, i);
    const double y = NumericAt(b, i);
    const int c = x < y ? -1 : (x > y ? 1 : 0);
    out.ints[i] = CompareHolds(op, c) ? 1 : 0;
  }
  return out;
}

#endif  // EINSQL_HAVE_SIMD

}  // namespace

Result<ColumnVector> VecArith(BinaryOp op, const ColumnVector& a,
                              const ColumnVector& b) {
  const int64_t n = a.size();
  // int64 (.) int64 stays exact int arithmetic; a zero divisor turns the
  // element NULL, mirroring Divide/Modulo.
  if (a.kind == Kind::kInt && b.kind == Kind::kInt) {
#if defined(EINSQL_HAVE_SIMD)
    // +,-,* are branch-free in uint64 lanes; /,% keep the scalar loop in
    // both flavours (the per-element zero-divisor guard does not pay off
    // as a masked lane op for integer division).
    if (simd::Enabled()) {
      switch (op) {
        case BinaryOp::kAdd:
          return SimdIntArith(a, b, [](auto x, auto y) { return x + y; });
        case BinaryOp::kSub:
          return SimdIntArith(a, b, [](auto x, auto y) { return x - y; });
        case BinaryOp::kMul:
          return SimdIntArith(a, b, [](auto x, auto y) { return x * y; });
        default:
          break;
      }
    }
#endif
    ColumnVector out;
    out.kind = Kind::kInt;
    out.ints.assign(n, 0);
    out.valid.assign(n, 0);
    switch (op) {
      case BinaryOp::kAdd:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] + b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kSub:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] - b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kMul:
        for (int64_t i = 0; i < n; ++i) {
          if (a.valid[i] & b.valid[i]) {
            out.ints[i] = a.ints[i] * b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kDiv:
        for (int64_t i = 0; i < n; ++i) {
          if ((a.valid[i] & b.valid[i]) && b.ints[i] != 0) {
            out.ints[i] = a.ints[i] / b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      case BinaryOp::kMod:
        for (int64_t i = 0; i < n; ++i) {
          if ((a.valid[i] & b.valid[i]) && b.ints[i] != 0) {
            out.ints[i] = a.ints[i] % b.ints[i];
            out.valid[i] = 1;
          }
        }
        break;
      default:
        return Status::Internal("VecArith called with non-arithmetic op");
    }
    return out;
  }
  // Any other numeric pairing promotes to double, like Arith in value.cc.
  if (IsNumericKind(a.kind) && IsNumericKind(b.kind)) {
#if defined(EINSQL_HAVE_SIMD)
    // fmod stays scalar in both flavours — there is no lane-wise fmod and
    // calling libm per lane is the scalar loop by another name.
    if (simd::Enabled()) {
      switch (op) {
        case BinaryOp::kAdd:
          return SimdDoubleArith(a, b, [](auto x, auto y) { return x + y; });
        case BinaryOp::kSub:
          return SimdDoubleArith(a, b, [](auto x, auto y) { return x - y; });
        case BinaryOp::kMul:
          return SimdDoubleArith(a, b, [](auto x, auto y) { return x * y; });
        case BinaryOp::kDiv:
          return SimdDoubleDiv(a, b);
        default:
          break;
      }
    }
#endif
    ColumnVector out;
    out.kind = Kind::kDouble;
    out.doubles.assign(n, 0.0);
    out.valid.assign(n, 0);
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const double x = NumericAt(a, i);
      const double y = NumericAt(b, i);
      switch (op) {
        case BinaryOp::kAdd: out.doubles[i] = x + y; break;
        case BinaryOp::kSub: out.doubles[i] = x - y; break;
        case BinaryOp::kMul: out.doubles[i] = x * y; break;
        case BinaryOp::kDiv:
          if (y == 0.0) continue;  // NULL, SQLite behaviour
          out.doubles[i] = x / y;
          break;
        case BinaryOp::kMod:
          if (y == 0.0) continue;
          out.doubles[i] = std::fmod(x, y);
          break;
        default:
          return Status::Internal("VecArith called with non-arithmetic op");
      }
      out.valid[i] = 1;
    }
    return out;
  }
  return GenericArith(op, a, b);
}

Result<ColumnVector> VecCompare(BinaryOp op, const ColumnVector& a,
                                const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 0);
  if (IsNumericKind(a.kind) && IsNumericKind(b.kind)) {
#if defined(EINSQL_HAVE_SIMD)
    if (simd::Enabled()) return SimdNumericCompare(op, a, b);
#endif
    // CompareValues compares numbers through double, including int64
    // operands — the casts here are not an approximation, they are the
    // row semantics.
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const double x = NumericAt(a, i);
      const double y = NumericAt(b, i);
      const int c = x < y ? -1 : (x > y ? 1 : 0);
      out.ints[i] = CompareHolds(op, c) ? 1 : 0;
      out.valid[i] = 1;
    }
    return out;
  }
  if (a.kind == Kind::kText && b.kind == Kind::kText) {
    for (int64_t i = 0; i < n; ++i) {
      if (!(a.valid[i] & b.valid[i])) continue;
      const int c = a.texts[i].compare(b.texts[i]);
      out.ints[i] = CompareHolds(op, c < 0 ? -1 : (c > 0 ? 1 : 0)) ? 1 : 0;
      out.valid[i] = 1;
    }
    return out;
  }
  // Mixed ranks (number vs text) or kValue columns: element-wise through
  // the shared three-valued comparison.
  for (int64_t i = 0; i < n; ++i) {
    EINSQL_ASSIGN_OR_RETURN(
        Value r, EvaluateComparison(op, a.GetValue(i), b.GetValue(i)));
    if (IsNull(r)) continue;
    out.ints[i] = std::get<int64_t>(r);
    out.valid[i] = 1;
  }
  return out;
}

ColumnVector VecAnd(const ColumnVector& a, const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
#if defined(EINSQL_HAVE_SIMD)
  // Branch-free three-valued AND over 0/1 bytes: with t = valid & (x != 0)
  // and f = valid & (x == 0), the result is TRUE iff both sides are true
  // and non-NULL iff either side is false or both are valid. Auto-
  // vectorizes; truth table identical to the Truth loop below.
  if (simd::Enabled() && a.kind == Kind::kInt && b.kind == Kind::kInt) {
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t at = a.valid[i] & (a.ints[i] != 0);
      const uint8_t af = a.valid[i] & (a.ints[i] == 0);
      const uint8_t bt = b.valid[i] & (b.ints[i] != 0);
      const uint8_t bf = b.valid[i] & (b.ints[i] == 0);
      out.ints[i] = at & bt;
      out.valid[i] = af | bf | (a.valid[i] & b.valid[i]);
    }
    return out;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const Truth ta = TruthAt(a, i), tb = TruthAt(b, i);
    if (ta == Truth::kFalse || tb == Truth::kFalse) {
      out.ints[i] = 0;
    } else if (ta == Truth::kNull || tb == Truth::kNull) {
      out.valid[i] = 0;
    } else {
      out.ints[i] = 1;
    }
  }
  return out;
}

ColumnVector VecOr(const ColumnVector& a, const ColumnVector& b) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
#if defined(EINSQL_HAVE_SIMD)
  // Branch-free dual of VecAnd: TRUE if either side is true (even when the
  // other is NULL), NULL only when no side is true and one is NULL.
  if (simd::Enabled() && a.kind == Kind::kInt && b.kind == Kind::kInt) {
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t at = a.valid[i] & (a.ints[i] != 0);
      const uint8_t bt = b.valid[i] & (b.ints[i] != 0);
      out.ints[i] = at | bt;
      out.valid[i] = at | bt | (a.valid[i] & b.valid[i]);
    }
    return out;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const Truth ta = TruthAt(a, i), tb = TruthAt(b, i);
    if (ta == Truth::kTrue || tb == Truth::kTrue) {
      out.ints[i] = 1;
    } else if (ta == Truth::kNull || tb == Truth::kNull) {
      out.valid[i] = 0;
    }
  }
  return out;
}

ColumnVector VecNot(const ColumnVector& a) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  out.valid.assign(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    if (!a.valid[i]) {
      out.valid[i] = 0;
    } else {
      out.ints[i] = TruthyAt(a, i) ? 0 : 1;
    }
  }
  return out;
}

Result<ColumnVector> VecNegate(const ColumnVector& a) {
  const int64_t n = a.size();
  ColumnVector out;
  switch (a.kind) {
    case Kind::kInt:
      out.kind = Kind::kInt;
      out.valid = a.valid;
      out.ints.assign(n, 0);
#if defined(EINSQL_HAVE_SIMD)
      if (simd::Enabled()) {
        const auto* ap = reinterpret_cast<const uint64_t*>(a.ints.data());
        auto* op = reinterpret_cast<uint64_t*>(out.ints.data());
        int64_t i = 0;
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
          const simd::Vec4u m = ValidMask4(out.valid.data() + i);
          simd::Store(op + i,
                      (simd::Vec4u{0, 0, 0, 0} - simd::LoadU(ap + i)) & m);
        }
        for (; i < n; ++i) {
          if (out.valid[i]) op[i] = 0ull - ap[i];
        }
        return out;
      }
#endif
      for (int64_t i = 0; i < n; ++i) {
        if (a.valid[i]) out.ints[i] = -a.ints[i];
      }
      return out;
    case Kind::kDouble:
      out.kind = Kind::kDouble;
      out.valid = a.valid;
      out.doubles.assign(n, 0.0);
#if defined(EINSQL_HAVE_SIMD)
      // IEEE negation is a sign-bit flip (NaN payloads included), so the
      // XOR form is bit-identical to the scalar `-x`.
      if (simd::Enabled()) {
        const auto* ap = reinterpret_cast<const uint64_t*>(a.doubles.data());
        auto* op = reinterpret_cast<uint64_t*>(out.doubles.data());
        const simd::Vec4u sign = {0x8000000000000000ull, 0x8000000000000000ull,
                                  0x8000000000000000ull, 0x8000000000000000ull};
        int64_t i = 0;
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
          const simd::Vec4u m = ValidMask4(out.valid.data() + i);
          simd::Store(op + i, (simd::LoadU(ap + i) ^ sign) & m);
        }
        for (; i < n; ++i) {
          if (out.valid[i]) op[i] = ap[i] ^ 0x8000000000000000ull;
        }
        return out;
      }
#endif
      for (int64_t i = 0; i < n; ++i) {
        if (a.valid[i]) out.doubles[i] = -a.doubles[i];
      }
      return out;
    case Kind::kText:
    case Kind::kValue: {
      out.kind = Kind::kValue;
      out.valid.assign(n, 1);
      out.values.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        EINSQL_ASSIGN_OR_RETURN(Value v, Negate(a.GetValue(i)));
        if (IsNull(v)) out.valid[i] = 0;
        out.values.push_back(std::move(v));
      }
      return out;
    }
  }
  return Status::Internal("unhandled column kind");
}

ColumnVector VecIsNull(const ColumnVector& a, bool negated) {
  const int64_t n = a.size();
  ColumnVector out;
  out.kind = Kind::kInt;
  out.valid.assign(n, 1);
  out.ints.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    const bool is_null = !a.valid[i];
    out.ints[i] = (is_null != negated) ? 1 : 0;
  }
  return out;
}

SelVector BuildSelection(const ColumnVector& cond) {
  const int64_t n = cond.size();
  SelVector sel;
  sel.idx.reserve(n);
  if (cond.kind == Kind::kInt) {
    // Branch-free append: write the candidate index unconditionally, bump
    // the cursor only when the element is truthy.
    sel.idx.resize(n);
    int64_t k = 0;
    for (int64_t i = 0; i < n; ++i) {
      sel.idx[k] = static_cast<int32_t>(i);
      k += cond.valid[i] & (cond.ints[i] != 0);
    }
    sel.idx.resize(k);
    return sel;
  }
  for (int64_t i = 0; i < n; ++i) {
    if (TruthyAt(cond, i)) sel.idx.push_back(static_cast<int32_t>(i));
  }
  return sel;
}

void RefineSelection(const ColumnVector& cond, SelVector* sel) {
  const int64_t n = cond.size();
  int64_t k = 0;
  if (cond.kind == Kind::kInt) {
    for (int64_t j = 0; j < n; ++j) {
      sel->idx[k] = sel->idx[j];
      k += cond.valid[j] & (cond.ints[j] != 0);
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      sel->idx[k] = sel->idx[j];
      if (TruthyAt(cond, j)) ++k;
    }
  }
  sel->idx.resize(k);
}

bool ExtractIntKeys(const std::vector<Row>& rows, int64_t begin, int64_t end,
                    const std::vector<int>& slots, int64_t* keys,
                    KeyRowClass* classes) {
  const size_t arity = slots.size();
  bool all_typed = true;
  for (int64_t r = begin; r < end; ++r) {
    const Row& row = rows[r];
    int64_t* out = keys + (r - begin) * arity;
    KeyRowClass cls = KeyRowClass::kOk;
    for (size_t k = 0; k < arity; ++k) {
      const Value& v = row[slots[k]];
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out[k] = *i;
        continue;
      }
      cls = IsNull(v) ? KeyRowClass::kNull : KeyRowClass::kUntyped;
      break;
    }
    classes[r - begin] = cls;
    all_typed &= cls != KeyRowClass::kUntyped;
  }
  return all_typed;
}

Status UpdateAggAccumulators(const std::vector<const Expr*>& agg_calls,
                             const Row& row,
                             std::vector<AggAccumulator>* accumulators) {
  for (size_t a = 0; a < agg_calls.size(); ++a) {
    const Expr& call = *agg_calls[a];
    AggAccumulator& acc = (*accumulators)[a];
    if (call.star_argument) {
      ++acc.count;
      acc.saw_value = true;
      continue;
    }
    if (call.args.size() != 1) {
      return Status::InvalidArgument("aggregate ", call.function,
                                     "() expects one argument");
    }
    EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*call.args[0], row));
    if (IsNull(v)) continue;  // aggregates skip NULLs
    ++acc.count;
    acc.saw_value = true;
    if (call.function == "sum" || call.function == "avg") {
      if (TypeOf(v) == ValueType::kInt && !acc.saw_double) {
        acc.int_sum += std::get<int64_t>(v);
      } else {
        EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(v));
        if (!acc.saw_double) {
          acc.double_sum = static_cast<double>(acc.int_sum);
          acc.saw_double = true;
        }
        acc.double_sum += d;
      }
    } else if (call.function == "min") {
      if (IsNull(acc.min_value) || CompareValues(v, acc.min_value) < 0) {
        acc.min_value = v;
      }
    } else if (call.function == "max") {
      if (IsNull(acc.max_value) || CompareValues(v, acc.max_value) > 0) {
        acc.max_value = v;
      }
    }
  }
  return Status::OK();
}

Status AccumulateColumn(const Expr& call, const ColumnVector& col,
                        const std::vector<int64_t>& group_ids,
                        std::vector<std::vector<AggAccumulator>>* accumulators,
                        size_t call_index) {
  const int64_t n = col.size();
  const std::string& f = call.function;
  if (f == "sum" || f == "avg") {
    switch (col.kind) {
      case Kind::kInt:
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (!acc.saw_double) {
            acc.int_sum += col.ints[r];
          } else {
            acc.double_sum += static_cast<double>(col.ints[r]);
          }
        }
        return Status::OK();
      case Kind::kDouble:
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (!acc.saw_double) {
            acc.double_sum = static_cast<double>(acc.int_sum);
            acc.saw_double = true;
          }
          acc.double_sum += col.doubles[r];
        }
        return Status::OK();
      case Kind::kText:
      case Kind::kValue:
        // Element-wise: mixed int/double columns must hit the exact same
        // promotion point as the row fold, and text raises the row path's
        // AsDouble error.
        for (int64_t r = 0; r < n; ++r) {
          if (!col.valid[r]) continue;
          const Value v = col.GetValue(r);
          AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
          ++acc.count;
          acc.saw_value = true;
          if (TypeOf(v) == ValueType::kInt && !acc.saw_double) {
            acc.int_sum += std::get<int64_t>(v);
          } else {
            EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(v));
            if (!acc.saw_double) {
              acc.double_sum = static_cast<double>(acc.int_sum);
              acc.saw_double = true;
            }
            acc.double_sum += d;
          }
        }
        return Status::OK();
    }
    return Status::Internal("unhandled column kind");
  }
  if (f == "count") {
    for (int64_t r = 0; r < n; ++r) {
      if (!col.valid[r]) continue;
      AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
      ++acc.count;
      acc.saw_value = true;
    }
    return Status::OK();
  }
  if (f == "min" || f == "max") {
    const bool is_min = f == "min";
    for (int64_t r = 0; r < n; ++r) {
      if (!col.valid[r]) continue;
      const Value v = col.GetValue(r);
      AggAccumulator& acc = (*accumulators)[group_ids[r]][call_index];
      ++acc.count;
      acc.saw_value = true;
      if (is_min) {
        if (IsNull(acc.min_value) || CompareValues(v, acc.min_value) < 0) {
          acc.min_value = v;
        }
      } else {
        if (IsNull(acc.max_value) || CompareValues(v, acc.max_value) > 0) {
          acc.max_value = v;
        }
      }
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown aggregate '", f, "'");
}

void AccumulateCountStar(
    const std::vector<int64_t>& group_ids,
    std::vector<std::vector<AggAccumulator>>* accumulators,
    size_t call_index) {
  for (int64_t gid : group_ids) {
    AggAccumulator& acc = (*accumulators)[gid][call_index];
    ++acc.count;
    acc.saw_value = true;
  }
}

void MergeAggAccumulator(AggAccumulator* into, const AggAccumulator& from) {
  if (into->count == 0 && !into->saw_value) {
    // Fresh (or all-NULL) target: adopting `from` wholesale keeps the
    // merged state bit-identical to the morsel's own fold.
    *into = from;
    return;
  }
  if (from.count == 0 && !from.saw_value) return;
  into->count += from.count;
  into->saw_value = true;
  if (into->saw_double || from.saw_double) {
    if (!into->saw_double) {
      into->double_sum = static_cast<double>(into->int_sum);
      into->saw_double = true;
    }
    into->double_sum += from.saw_double
                            ? from.double_sum
                            : static_cast<double>(from.int_sum);
  } else {
    into->int_sum += from.int_sum;
  }
  if (!IsNull(from.min_value) &&
      (IsNull(into->min_value) ||
       CompareValues(from.min_value, into->min_value) < 0)) {
    into->min_value = from.min_value;
  }
  if (!IsNull(from.max_value) &&
      (IsNull(into->max_value) ||
       CompareValues(from.max_value, into->max_value) > 0)) {
    into->max_value = from.max_value;
  }
}

Value FinalizeAggregate(const Expr& call, const AggAccumulator& acc) {
  if (call.function == "count") return Value(acc.count);
  if (call.function == "sum") {
    if (!acc.saw_value) return Value(Null{});
    return acc.saw_double ? Value(acc.double_sum) : Value(acc.int_sum);
  }
  if (call.function == "avg") {
    if (!acc.saw_value) return Value(Null{});
    const double total =
        acc.saw_double ? acc.double_sum : static_cast<double>(acc.int_sum);
    return Value(total / static_cast<double>(acc.count));
  }
  if (call.function == "min") return acc.min_value;
  return acc.max_value;  // max
}

}  // namespace einsql::minidb
