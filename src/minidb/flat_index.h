#ifndef EINSQL_MINIDB_FLAT_INDEX_H_
#define EINSQL_MINIDB_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace einsql::minidb {

/// Open-addressing hash index from a caller-computed hash to a dense id
/// (a group index, a kept-distinct-row index, ...). Replaces the
/// `unordered_map<size_t, vector<int64_t>> buckets` scheme in the group
/// and distinct operators: one flat array of (hash, id) slots with linear
/// probing — no per-bucket vector allocations, one cache line per probe
/// step, and candidate chains that are just consecutive slots.
///
/// The index stores ids only; key storage and key equality stay with the
/// caller (`eq(id)` answers "does the key behind `id` equal the probe
/// key?"). Ids handed to FindOrInsert must be dense and ascending — the
/// standard use is `FindOrInsert(h, next_dense_id, eq)` which either
/// returns an existing id or adopts the new one, preserving
/// first-occurrence order exactly like the bucket scheme it replaces.
class FlatIndex {
 public:
  FlatIndex() { Reset(16); }
  explicit FlatIndex(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap *= 2;
    Reset(cap);
  }

  int64_t size() const { return size_; }

  /// Returns the id previously inserted under an equal key (same `hash`
  /// and `eq(id)` true), or inserts `new_id` and returns it.
  template <typename Eq>
  int64_t FindOrInsert(size_t hash, int64_t new_id, const Eq& eq) {
    size_t i = hash & mask_;
    while (ids_[i] != kEmpty) {
      if (hashes_[i] == hash && eq(ids_[i])) return ids_[i];
      i = (i + 1) & mask_;
    }
    ids_[i] = new_id;
    hashes_[i] = hash;
    ++size_;
    if (static_cast<size_t>(size_) * 4 > ids_.size() * 3) Grow();
    return new_id;
  }

 private:
  static constexpr int64_t kEmpty = -1;

  void Reset(size_t capacity) {  // capacity must be a power of two
    ids_.assign(capacity, kEmpty);
    hashes_.assign(capacity, 0);
    mask_ = capacity - 1;
    size_ = 0;
  }

  void Grow() {
    std::vector<int64_t> old_ids = std::move(ids_);
    std::vector<size_t> old_hashes = std::move(hashes_);
    Reset(old_ids.size() * 2);
    for (size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] == kEmpty) continue;
      size_t j = old_hashes[i] & mask_;
      while (ids_[j] != kEmpty) j = (j + 1) & mask_;
      ids_[j] = old_ids[i];
      hashes_[j] = old_hashes[i];
      ++size_;
    }
  }

  std::vector<int64_t> ids_;
  std::vector<size_t> hashes_;
  size_t mask_ = 0;
  int64_t size_ = 0;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_FLAT_INDEX_H_
