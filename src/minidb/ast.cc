#include "minidb/ast.h"

#include "common/str_util.h"

namespace einsql::minidb {

std::unique_ptr<Expr> Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->table = table;
  copy->column = column;
  copy->bound_slot = bound_slot;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  copy->function = function;
  for (const auto& arg : args) copy->args.push_back(arg->Clone());
  copy->star_argument = star_argument;
  copy->is_null_negated = is_null_negated;
  for (const auto& [when, then] : case_whens) {
    copy->case_whens.emplace_back(when->Clone(), then->Clone());
  }
  if (case_else) copy->case_else = case_else->Clone();
  return copy;
}

namespace {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNotEq: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLtEq: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGtEq: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (TypeOf(literal) == ValueType::kText) {
        return "'" + std::get<std::string>(literal) + "'";
      }
      return ValueToString(literal);
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNegate ? "-" : "NOT ") +
             "(" + left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpToString(binary_op) +
             " " + right->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function + "(";
      if (star_argument) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return "(" + left->ToString() +
             (is_null_negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& [when, then] : case_whens) {
        out += " WHEN " + when->ToString() + " THEN " + then->ToString();
      }
      if (case_else) out += " ELSE " + case_else->ToString();
      return out + " END";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

bool IsAggregateFunction(const std::string& name) {
  return name == "sum" || name == "count" || name == "avg" ||
         name == "min" || name == "max";
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunction && IsAggregateFunction(expr.function)) {
    return true;
  }
  if (expr.left && ContainsAggregate(*expr.left)) return true;
  if (expr.right && ContainsAggregate(*expr.right)) return true;
  for (const auto& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  for (const auto& [when, then] : expr.case_whens) {
    if (ContainsAggregate(*when) || ContainsAggregate(*then)) return true;
  }
  if (expr.case_else && ContainsAggregate(*expr.case_else)) return true;
  return false;
}

}  // namespace einsql::minidb
