#ifndef EINSQL_MINIDB_PARSER_H_
#define EINSQL_MINIDB_PARSER_H_

#include <memory>

#include "common/result.h"
#include "minidb/ast.h"
#include "minidb/lexer.h"

namespace einsql::minidb {

/// Parses a single SQL statement (optionally terminated by ';').
///
/// Supported grammar (the portable subset the einsum SQL generator emits,
/// plus common conveniences):
///   WITH name(cols) AS (SELECT ... | VALUES ...), ... SELECT ...
///   SELECT [DISTINCT] items FROM t [alias] [, u | [INNER|CROSS] JOIN u
///     [ON expr]] ... WHERE expr GROUP BY exprs ORDER BY exprs LIMIT n
///   VALUES (..), (..)
///   CREATE TABLE t (col TYPE, ...)
///   INSERT INTO t [(cols)] VALUES (..), ..
///   DROP TABLE [IF EXISTS] t
///   DELETE FROM t [WHERE expr]
Result<Statement> ParseStatement(std::string_view sql);

/// Parses just an expression (used by tests).
Result<std::unique_ptr<Expr>> ParseExpression(std::string_view text);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_PARSER_H_
