#ifndef EINSQL_MINIDB_VECTOR_OPS_H_
#define EINSQL_MINIDB_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "minidb/ast.h"
#include "minidb/column_batch.h"
#include "minidb/table.h"

namespace einsql::minidb {

/// Column-at-a-time kernels behind the vectorized executor path. Every
/// kernel is element-wise equivalent to the corresponding Value operation
/// of the row interpreter (value.h / expr_eval.h): typed inner loops cover
/// the int64/double fast cases; text and mixed-class (kValue) columns fall
/// back to element-wise Value operations inside the kernel, so results are
/// identical either way. The only permitted difference is *error timing*:
/// kernels evaluate eagerly, so they may surface an evaluation error the
/// short-circuiting row interpreter would have skipped — callers handle
/// that by retrying the row path (see executor.cc).

// ---------------------------------------------------------------------
// Arithmetic / comparison / logic
// ---------------------------------------------------------------------

/// a op b with SQL NULL propagation. kAdd/kSub/kMul/kDiv/kMod only.
Result<ColumnVector> VecArith(BinaryOp op, const ColumnVector& a,
                              const ColumnVector& b);

/// Three-valued comparison; kEq/kNotEq/kLt/kLtEq/kGt/kGtEq only. Output is
/// a 0/1 int column with NULL where either input is NULL.
Result<ColumnVector> VecCompare(BinaryOp op, const ColumnVector& a,
                                const ColumnVector& b);

/// Three-valued AND / OR over condition columns. Truthiness follows
/// IsTrue(): non-NULL number != 0; text counts as false.
ColumnVector VecAnd(const ColumnVector& a, const ColumnVector& b);
ColumnVector VecOr(const ColumnVector& a, const ColumnVector& b);

/// NOT with three-valued logic; numeric negation with NULL propagation.
ColumnVector VecNot(const ColumnVector& a);
Result<ColumnVector> VecNegate(const ColumnVector& a);

/// x IS [NOT] NULL: a 0/1 int column, never NULL itself.
ColumnVector VecIsNull(const ColumnVector& a, bool negated);

/// Condition truthiness of element `i` (the filter kernel's accept test):
/// valid and IsTrue.
inline bool TruthyAt(const ColumnVector& col, int64_t i) {
  if (!col.valid[i]) return false;
  switch (col.kind) {
    case ColumnVector::Kind::kInt:
      return col.ints[i] != 0;
    case ColumnVector::Kind::kDouble:
      return col.doubles[i] != 0.0;
    case ColumnVector::Kind::kText:
      return false;
    case ColumnVector::Kind::kValue: {
      if (const int64_t* v = std::get_if<int64_t>(&col.values[i])) {
        return *v != 0;
      }
      if (const double* d = std::get_if<double>(&col.values[i])) {
        return *d != 0.0;
      }
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Selection vectors
// ---------------------------------------------------------------------

/// The indices of truthy elements of a condition column, ascending — the
/// filter kernel's accept set as a SelVector.
SelVector BuildSelection(const ColumnVector& cond);

/// In-place refinement for conjunctive filters: keeps sel->idx[j] exactly
/// when cond element j is truthy. `cond` must have sel->size() elements
/// (it was evaluated over the selected batch).
void RefineSelection(const ColumnVector& cond, SelVector* sel);

// ---------------------------------------------------------------------
// Join / group key extraction (the typed int64 fast path, batched)
// ---------------------------------------------------------------------

/// Per-row outcome of typed key extraction.
enum class KeyRowClass : uint8_t {
  kOk = 0,       // all key values are int64; the packed key is filled
  kNull = 1,     // a key is NULL: the row never joins / typed-groups
  kUntyped = 2,  // a non-NULL non-int value: the typed path must bail
};

/// Batch join-key extraction: packs the `slots` values of rows
/// [begin, end) into `keys` (slots.size() ints per row, row-major) and
/// writes one KeyRowClass per row. `keys` and `classes` must hold
/// (end - begin) * slots.size() and (end - begin) entries. Returns true
/// when no row was kUntyped (i.e. the typed path can proceed).
bool ExtractIntKeys(const std::vector<Row>& rows, int64_t begin, int64_t end,
                    const std::vector<int>& slots, int64_t* keys,
                    KeyRowClass* classes);

// ---------------------------------------------------------------------
// Aggregation (SUM / COUNT / AVG / MIN / MAX)
// ---------------------------------------------------------------------

/// Running state of one aggregate call within one group. SUM/AVG keep an
/// exact int64 sum until the first double appears, then switch to double
/// accumulation — the promotion point is part of the result contract, so
/// the row fold, the column kernels, and the morsel merge all share this
/// struct and its transition rules.
struct AggAccumulator {
  double double_sum = 0.0;
  int64_t int_sum = 0;
  bool saw_double = false;
  bool saw_value = false;
  int64_t count = 0;
  Value min_value = Null{};
  Value max_value = Null{};
};

/// Row-at-a-time fold: evaluates every aggregate call's argument against
/// `row` and updates the matching accumulator. The row executor path.
Status UpdateAggAccumulators(const std::vector<const Expr*>& agg_calls,
                             const Row& row,
                             std::vector<AggAccumulator>* accumulators);

/// Column-at-a-time fold for one aggregate call: folds `col[r]` into
/// accumulator slot `call_index` of group `group_ids[r]`, for r in
/// [0, col.size()), in row order — bit-identical to the row fold because
/// accumulators of distinct calls never interact. `call` must not be
/// COUNT(*) (see AccumulateCountStar).
Status AccumulateColumn(const Expr& call, const ColumnVector& col,
                        const std::vector<int64_t>& group_ids,
                        std::vector<std::vector<AggAccumulator>>* accumulators,
                        size_t call_index);

/// COUNT(*): every row counts, no argument column.
void AccumulateCountStar(
    const std::vector<int64_t>& group_ids,
    std::vector<std::vector<AggAccumulator>>* accumulators,
    size_t call_index);

/// Combines a morsel-local accumulator into the merged one. All supported
/// aggregates merge associatively: counts add, sums add (with the same
/// int->double promotion as row-at-a-time folding), min/max compare.
void MergeAggAccumulator(AggAccumulator* into, const AggAccumulator& from);

/// The aggregate's output value (SUM of nothing is NULL, COUNT is 0, ...).
Value FinalizeAggregate(const Expr& call, const AggAccumulator& acc);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_VECTOR_OPS_H_
