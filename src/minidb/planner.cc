#include "minidb/planner.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "common/str_util.h"
#include "minidb/expr_eval.h"

namespace einsql::minidb {

const char* OptimizerModeToString(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kNone: return "none";
    case OptimizerMode::kGreedy: return "greedy";
    case OptimizerMode::kAggressive: return "aggressive";
    case OptimizerMode::kExhaustive: return "exhaustive";
  }
  return "?";
}

namespace {

// Collects the table aliases referenced by an expression.
void CollectAliases(const Expr& expr, std::set<std::string>* aliases) {
  if (expr.kind == ExprKind::kColumnRef) {
    aliases->insert(ToLower(expr.table));  // "" for unqualified
  }
  if (expr.left) CollectAliases(*expr.left, aliases);
  if (expr.right) CollectAliases(*expr.right, aliases);
  for (const auto& arg : expr.args) CollectAliases(*arg, aliases);
  for (const auto& [when, then] : expr.case_whens) {
    CollectAliases(*when, aliases);
    CollectAliases(*then, aliases);
  }
  if (expr.case_else) CollectAliases(*expr.case_else, aliases);
}

// Splits an AND tree into conjuncts (borrowed pointers into the AST).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(expr->left.get(), out);
    SplitConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

// Binds all column references of `expr` (in place) against `schema`.
Status BindExpr(Expr* expr, const Schema& schema) {
  if (expr->kind == ExprKind::kColumnRef) {
    EINSQL_ASSIGN_OR_RETURN(expr->bound_slot,
                            ResolveColumn(schema, expr->table, expr->column));
    return Status::OK();
  }
  if (expr->left) EINSQL_RETURN_IF_ERROR(BindExpr(expr->left.get(), schema));
  if (expr->right) {
    EINSQL_RETURN_IF_ERROR(BindExpr(expr->right.get(), schema));
  }
  for (auto& arg : expr->args) {
    EINSQL_RETURN_IF_ERROR(BindExpr(arg.get(), schema));
  }
  for (auto& [when, then] : expr->case_whens) {
    EINSQL_RETURN_IF_ERROR(BindExpr(when.get(), schema));
    EINSQL_RETURN_IF_ERROR(BindExpr(then.get(), schema));
  }
  if (expr->case_else) {
    EINSQL_RETURN_IF_ERROR(BindExpr(expr->case_else.get(), schema));
  }
  return Status::OK();
}

// AND-combines bound conjunct clones.
std::unique_ptr<Expr> CombineConjuncts(std::vector<std::unique_ptr<Expr>> cs) {
  std::unique_ptr<Expr> result;
  for (auto& c : cs) {
    result = result ? MakeBinary(BinaryOp::kAnd, std::move(result),
                                 std::move(c))
                    : std::move(c);
  }
  return result;
}

// Derives an output column name for a select item.
std::string OutputName(const SelectItem& item, int position) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return StrCat("col", position);
}

// Plan-time type of a bound expression against its input schema: the
// declared column type for plain references, the literal's storage class
// for constants, kInt for COUNT, and kNull ("unknown") for everything
// else. Conservative on purpose — this only gates typed fast paths, and
// the executor re-validates actual values anyway.
ValueType ExprPlanType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return TypeOf(expr.literal);
    case ExprKind::kColumnRef:
      if (expr.bound_slot >= 0 &&
          expr.bound_slot < static_cast<int>(schema.size())) {
        return schema[expr.bound_slot].type;
      }
      return ValueType::kNull;
    case ExprKind::kFunction:
      if (EqualsIgnoreCase(expr.function, "count")) return ValueType::kInt;
      return ValueType::kNull;
    default:
      return ValueType::kNull;
  }
}

// True when the schema slot is declared kInt — the precondition for the
// executor's packed-int64 key fast path.
bool SlotIsInt(const Schema& schema, int slot) {
  return slot >= 0 && slot < static_cast<int>(schema.size()) &&
         schema[slot].type == ValueType::kInt;
}

/// Per-statement planning state.
class Planner {
 public:
  Planner(const Catalog& catalog, const PlannerOptions& options)
      : catalog_(catalog), options_(options) {}

  Result<QueryPlan> Plan(const SelectStmt& stmt) {
    QueryPlan plan;
    for (const CommonTableExpr& cte : stmt.ctes) {
      EINSQL_ASSIGN_OR_RETURN(auto node, PlanBody(*cte.body));
      if (!cte.column_names.empty()) {
        if (cte.column_names.size() != node->schema.size()) {
          return Status::InvalidArgument(
              "CTE '", cte.name, "' declares ", cte.column_names.size(),
              " columns but its body produces ", node->schema.size());
        }
        for (size_t c = 0; c < cte.column_names.size(); ++c) {
          node->schema[c].name = cte.column_names[c];
          node->schema[c].qualifier.clear();
        }
      }
      CteInfo info;
      info.index = static_cast<int>(plan.ctes.size());
      info.schema = node->schema;
      info.est_rows = node->est_rows;
      const std::string key = ToLower(cte.name);
      if (cte_registry_.count(key) > 0) {
        return Status::InvalidArgument("duplicate CTE name '", cte.name, "'");
      }
      cte_registry_[key] = std::move(info);
      plan.ctes.push_back({cte.name, std::move(node)});
    }
    EINSQL_ASSIGN_OR_RETURN(plan.root, PlanBody(stmt.body));
    if (options_.mode == OptimizerMode::kAggressive ||
        options_.mode == OptimizerMode::kExhaustive) {
      DeduplicateCtes(&plan);
      // IDP-style bounded enumeration: exhaustive inline-vs-materialize
      // search inside a sliding window of CTEs (iterative dynamic
      // programming, the classical way to apply exponential plan
      // enumeration to plan spaces too large for one shot). This is where
      // the aggressive optimizer's planning time goes on large decomposed
      // einsum queries — Table 2's "planning dominates" regime.
      WindowedMaterializationSearch(plan);
    }
    if (options_.mode == OptimizerMode::kExhaustive) {
      EINSQL_RETURN_IF_ERROR(ExhaustiveMaterializationSearch(plan));
    }
    return plan;
  }

 private:
  struct CteInfo {
    int index = -1;
    Schema schema;
    double est_rows = 1.0;
  };

  // --- body planning ---

  Result<std::unique_ptr<PlanNode>> PlanBody(const QueryBody& body) {
    if (body.is_values) return PlanValues(body);
    EINSQL_ASSIGN_OR_RETURN(auto current, PlanSelectCore(body));
    if (!body.union_all.empty()) {
      auto append = std::make_unique<PlanNode>();
      append->kind = PlanKind::kAppend;
      append->schema = current->schema;
      append->est_rows = current->est_rows;
      append->children.push_back(std::move(current));
      for (const auto& member : body.union_all) {
        EINSQL_ASSIGN_OR_RETURN(auto plan, PlanSelectCore(*member));
        if (plan->schema.size() != append->schema.size()) {
          return Status::InvalidArgument(
              "UNION ALL members must produce the same column count (",
              append->schema.size(), " vs ", plan->schema.size(), ")");
        }
        append->est_rows += plan->est_rows;
        // Column types must agree across all members to stay known.
        for (size_t c = 0; c < append->schema.size(); ++c) {
          if (append->schema[c].type != plan->schema[c].type) {
            append->schema[c].type = ValueType::kNull;
          }
        }
        append->children.push_back(std::move(plan));
      }
      current = std::move(append);
    }
    return ApplyOrderLimit(body, std::move(current));
  }

  // Applies the body's ORDER BY and LIMIT on top of `current` (after any
  // UNION ALL concatenation, SQL-style).
  Result<std::unique_ptr<PlanNode>> ApplyOrderLimit(
      const QueryBody& body, std::unique_ptr<PlanNode> current) {
    // ORDER BY against the output schema (aliases or 1-based positions).
    if (!body.order_by.empty()) {
      auto sort = std::make_unique<PlanNode>();
      sort->kind = PlanKind::kSort;
      sort->schema = current->schema;
      sort->est_rows = current->est_rows;
      for (const OrderItem& item : body.order_by) {
        std::unique_ptr<Expr> expr;
        if (item.expr->kind == ExprKind::kLiteral &&
            TypeOf(item.expr->literal) == ValueType::kInt) {
          const int64_t position = std::get<int64_t>(item.expr->literal);
          if (position < 1 ||
              position > static_cast<int64_t>(current->schema.size())) {
            return Status::InvalidArgument("ORDER BY position ", position,
                                           " out of range");
          }
          expr = MakeColumnRef("", current->schema[position - 1].name);
        } else {
          expr = item.expr->Clone();
        }
        Status bound = BindExpr(expr.get(), current->schema);
        if (!bound.ok()) {
          // ORDER BY items may reference input columns via their source
          // qualifier (e.g. "ORDER BY A.i" when the output alias is "i");
          // retry with qualifiers stripped.
          expr = item.expr->Clone();
          std::vector<Expr*> stack = {expr.get()};
          while (!stack.empty()) {
            Expr* e = stack.back();
            stack.pop_back();
            if (e->kind == ExprKind::kColumnRef) e->table.clear();
            if (e->left) stack.push_back(e->left.get());
            if (e->right) stack.push_back(e->right.get());
            for (auto& arg : e->args) stack.push_back(arg.get());
          }
          EINSQL_RETURN_IF_ERROR(BindExpr(expr.get(), current->schema));
        }
        sort->sort_exprs.push_back(std::move(expr));
        sort->sort_desc.push_back(item.descending);
      }
      sort->children.push_back(std::move(current));
      current = std::move(sort);
    }

    // LIMIT.
    if (body.limit.has_value()) {
      auto limit = std::make_unique<PlanNode>();
      limit->kind = PlanKind::kLimit;
      limit->schema = current->schema;
      limit->limit = *body.limit;
      limit->est_rows =
          std::min(current->est_rows, static_cast<double>(*body.limit));
      limit->children.push_back(std::move(current));
      current = std::move(limit);
    }
    return current;
  }

  Result<std::unique_ptr<PlanNode>> PlanValues(const QueryBody& body) {
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanKind::kValues;
    size_t arity = 0;
    for (const auto& row : body.values_rows) {
      if (arity == 0) arity = row.size();
      if (row.size() != arity) {
        return Status::InvalidArgument("VALUES rows have differing arity");
      }
      Row values;
      values.reserve(row.size());
      for (const auto& expr : row) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*expr));
        values.push_back(std::move(v));
      }
      node->literal_rows.push_back(std::move(values));
    }
    for (size_t c = 0; c < arity; ++c) {
      // Infer the column type from the folded literals: a single storage
      // class across all rows (NULLs are wildcards) types the column;
      // anything mixed stays unknown.
      ValueType type = ValueType::kNull;
      for (const Row& row : node->literal_rows) {
        const ValueType vt = TypeOf(row[c]);
        if (vt == ValueType::kNull) continue;
        if (type == ValueType::kNull) {
          type = vt;
        } else if (type != vt) {
          type = ValueType::kNull;
          break;
        }
      }
      node->schema.push_back({"", StrCat("c", c), type});
    }
    node->est_rows = static_cast<double>(node->literal_rows.size());
    return node;
  }

  // A leaf relation in the join graph.
  struct Leaf {
    std::unique_ptr<PlanNode> plan;
    std::string alias;  // lower-cased
  };

  // An equi-join predicate between two leaves.
  struct JoinEdge {
    const Expr* left_ref;   // column ref
    const Expr* right_ref;  // column ref
    std::string left_alias, right_alias;
  };

  Result<std::unique_ptr<PlanNode>> PlanSelectCore(const QueryBody& body) {
    // 1. Leaves.
    std::vector<Leaf> leaves;
    for (const TableRef& ref : body.from) {
      EINSQL_ASSIGN_OR_RETURN(auto leaf, MakeLeaf(ref));
      leaves.push_back(std::move(leaf));
    }
    if (leaves.empty()) {
      // SELECT without FROM: a single empty row.
      auto dual = std::make_unique<PlanNode>();
      dual->kind = PlanKind::kValues;
      dual->literal_rows.push_back({});
      dual->est_rows = 1.0;
      leaves.push_back({std::move(dual), ""});
    }
    // Duplicate alias check.
    {
      std::set<std::string> seen;
      for (const Leaf& leaf : leaves) {
        if (!seen.insert(leaf.alias).second) {
          return Status::InvalidArgument("duplicate table alias '",
                                         leaf.alias, "'");
        }
      }
    }

    // 2. Conjunct classification.
    std::vector<const Expr*> conjuncts;
    if (body.where) SplitConjuncts(body.where.get(), &conjuncts);
    struct PendingPredicate {
      const Expr* expr;
      std::set<std::string> aliases;  // referenced aliases (lower-cased)
    };
    std::vector<PendingPredicate> pending;
    for (const Expr* conjunct : conjuncts) {
      std::set<std::string> aliases;
      CollectAliases(*conjunct, &aliases);
      // Unqualified references ("") are resolved against the full schema;
      // attribute them to the leaf that has the column, if unique.
      std::set<std::string> resolved;
      for (const std::string& alias : aliases) {
        if (!alias.empty()) {
          resolved.insert(alias);
          continue;
        }
        // Find the owning leaves of unqualified columns below.
        resolved.insert("");
      }
      pending.push_back({conjunct, std::move(resolved)});
    }
    // Resolve unqualified column owners.
    for (PendingPredicate& p : pending) {
      if (p.aliases.count("") == 0) continue;
      p.aliases.erase("");
      std::vector<const Expr*> stack = {p.expr};
      bool failed = false;
      while (!stack.empty()) {
        const Expr* e = stack.back();
        stack.pop_back();
        if (e->kind == ExprKind::kColumnRef && e->table.empty()) {
          int owner = -1;
          for (size_t l = 0; l < leaves.size(); ++l) {
            Schema& schema = leaves[l].plan->schema;
            if (ResolveColumn(schema, "", e->column).ok()) {
              if (owner >= 0) {
                failed = true;  // ambiguous: defer to full-schema binding
                break;
              }
              owner = static_cast<int>(l);
            }
          }
          if (owner >= 0) p.aliases.insert(leaves[owner].alias);
        }
        if (e->left) stack.push_back(e->left.get());
        if (e->right) stack.push_back(e->right.get());
        for (const auto& arg : e->args) stack.push_back(arg.get());
      }
      if (failed) {
        // Force it to be treated as a residual over everything.
        for (const Leaf& leaf : leaves) p.aliases.insert(leaf.alias);
      }
    }

    // 3. Push single-leaf predicates onto their leaf.
    std::vector<JoinEdge> edges;
    std::vector<PendingPredicate> residuals;
    for (PendingPredicate& p : pending) {
      if (p.aliases.empty()) {
        // Constant predicate: apply to the first leaf (cheap).
        EINSQL_RETURN_IF_ERROR(
            AttachFilter(&leaves[0].plan, p.expr));
        continue;
      }
      if (p.aliases.size() == 1) {
        const std::string& alias = *p.aliases.begin();
        for (Leaf& leaf : leaves) {
          if (leaf.alias == alias) {
            EINSQL_RETURN_IF_ERROR(AttachFilter(&leaf.plan, p.expr));
            break;
          }
        }
        continue;
      }
      // Equi-join edge?
      const Expr* e = p.expr;
      if (p.aliases.size() == 2 && e->kind == ExprKind::kBinary &&
          e->binary_op == BinaryOp::kEq &&
          e->left->kind == ExprKind::kColumnRef &&
          e->right->kind == ExprKind::kColumnRef) {
        JoinEdge edge;
        edge.left_ref = e->left.get();
        edge.right_ref = e->right.get();
        std::set<std::string> la, ra;
        CollectAliases(*e->left, &la);
        CollectAliases(*e->right, &ra);
        edge.left_alias = OwnerAlias(*e->left, leaves);
        edge.right_alias = OwnerAlias(*e->right, leaves);
        if (!edge.left_alias.empty() && !edge.right_alias.empty() &&
            edge.left_alias != edge.right_alias) {
          edges.push_back(std::move(edge));
          continue;
        }
      }
      residuals.push_back(std::move(p));
    }

    // 4. Join ordering.
    EINSQL_ASSIGN_OR_RETURN(
        std::vector<int> order,
        JoinOrder(leaves, edges));

    // 5. Build the left-deep join tree.
    std::unique_ptr<PlanNode> current = std::move(leaves[order[0]].plan);
    std::set<std::string> bound_aliases = {leaves[order[0]].alias};
    std::vector<bool> edge_used(edges.size(), false);
    std::vector<bool> residual_used(residuals.size(), false);
    for (size_t k = 1; k < order.size(); ++k) {
      Leaf& next = leaves[order[k]];
      auto join = std::make_unique<PlanNode>();
      join->kind = PlanKind::kJoin;
      // Keys: edges between bound aliases and the incoming leaf.
      Schema combined = current->schema;
      combined.insert(combined.end(), next.plan->schema.begin(),
                      next.plan->schema.end());
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edge_used[e]) continue;
        const JoinEdge& edge = edges[e];
        const Expr* left_side = nullptr;
        const Expr* right_side = nullptr;
        if (bound_aliases.count(edge.left_alias) > 0 &&
            edge.right_alias == next.alias) {
          left_side = edge.left_ref;
          right_side = edge.right_ref;
        } else if (bound_aliases.count(edge.right_alias) > 0 &&
                   edge.left_alias == next.alias) {
          left_side = edge.right_ref;
          right_side = edge.left_ref;
        } else {
          continue;
        }
        EINSQL_ASSIGN_OR_RETURN(
            int lslot, ResolveColumn(current->schema, left_side->table,
                                     left_side->column));
        EINSQL_ASSIGN_OR_RETURN(
            int rslot, ResolveColumn(next.plan->schema, right_side->table,
                                     right_side->column));
        join->left_keys.push_back(lslot);
        join->right_keys.push_back(rslot);
        edge_used[e] = true;
      }
      bound_aliases.insert(next.alias);
      // Residual predicates that became evaluable.
      std::vector<std::unique_ptr<Expr>> applicable;
      for (size_t r = 0; r < residuals.size(); ++r) {
        if (residual_used[r]) continue;
        bool covered = true;
        for (const std::string& alias : residuals[r].aliases) {
          if (bound_aliases.count(alias) == 0) {
            covered = false;
            break;
          }
        }
        if (covered) {
          auto clone = residuals[r].expr->Clone();
          EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), combined));
          applicable.push_back(std::move(clone));
          residual_used[r] = true;
        }
      }
      join->predicate = CombineConjuncts(std::move(applicable));
      // Typed fast path: every join key is a declared-int column on both
      // sides (the shape of every einsum index equi-join).
      join->typed_int_keys = !join->left_keys.empty();
      for (size_t e = 0; e < join->left_keys.size(); ++e) {
        join->typed_int_keys =
            join->typed_int_keys &&
            SlotIsInt(current->schema, join->left_keys[e]) &&
            SlotIsInt(next.plan->schema, join->right_keys[e]);
      }
      // Cardinality estimate.
      const double l = current->est_rows, r = next.plan->est_rows;
      join->est_rows = join->left_keys.empty() ? l * r : std::max(l, r);
      if (join->predicate) join->est_rows *= 0.5;
      join->schema = std::move(combined);
      join->children.push_back(std::move(current));
      join->children.push_back(std::move(next.plan));
      current = std::move(join);
    }
    // Edges between already-joined leaves that were never consumed (cycles in
    // the join graph) become filters.
    {
      std::vector<std::unique_ptr<Expr>> leftover;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edge_used[e]) continue;
        auto eq = MakeBinary(BinaryOp::kEq, edges[e].left_ref->Clone(),
                             edges[e].right_ref->Clone());
        EINSQL_RETURN_IF_ERROR(BindExpr(eq.get(), current->schema));
        leftover.push_back(std::move(eq));
      }
      for (size_t r = 0; r < residuals.size(); ++r) {
        if (residual_used[r]) continue;
        auto clone = residuals[r].expr->Clone();
        EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), current->schema));
        leftover.push_back(std::move(clone));
      }
      if (!leftover.empty()) {
        auto filter = std::make_unique<PlanNode>();
        filter->kind = PlanKind::kFilter;
        filter->predicate = CombineConjuncts(std::move(leftover));
        filter->schema = current->schema;
        filter->est_rows = current->est_rows * 0.5;
        filter->children.push_back(std::move(current));
        current = std::move(filter);
      }
    }

    // 6. Projection or aggregation.
    // Expand '*' select items first.
    std::vector<SelectItem> items;
    for (const SelectItem& item : body.select_list) {
      if (!item.is_star) {
        SelectItem copy;
        copy.expr = item.expr->Clone();
        copy.alias = item.alias;
        items.push_back(std::move(copy));
        continue;
      }
      for (const SchemaColumn& col : current->schema) {
        SelectItem copy;
        copy.expr = MakeColumnRef(col.qualifier, col.name);
        copy.alias = col.name;
        items.push_back(std::move(copy));
      }
    }
    bool has_aggregate = !body.group_by.empty();
    for (const SelectItem& item : items) {
      if (ContainsAggregate(*item.expr)) has_aggregate = true;
    }

    auto shaped = std::make_unique<PlanNode>();
    shaped->kind = has_aggregate ? PlanKind::kAggregate : PlanKind::kProject;
    for (size_t i = 0; i < items.size(); ++i) {
      auto clone = items[i].expr->Clone();
      EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), current->schema));
      const ValueType type = ExprPlanType(*clone, current->schema);
      shaped->exprs.push_back(std::move(clone));
      shaped->schema.push_back(
          {"", OutputName(items[i], static_cast<int>(i)), type});
    }
    if (has_aggregate) {
      shaped->typed_int_keys = !body.group_by.empty();
      for (const auto& group : body.group_by) {
        auto clone = group->Clone();
        EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), current->schema));
        shaped->typed_int_keys =
            shaped->typed_int_keys &&
            ExprPlanType(*clone, current->schema) == ValueType::kInt;
        shaped->group_exprs.push_back(std::move(clone));
      }
      if (body.having) {
        auto clone = body.having->Clone();
        EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), current->schema));
        shaped->predicate = std::move(clone);  // per-group HAVING filter
      }
      shaped->est_rows =
          body.group_by.empty()
              ? 1.0
              : std::max(1.0, current->est_rows * 0.5);
    } else {
      if (body.having) {
        return Status::InvalidArgument("HAVING requires aggregation");
      }
      shaped->est_rows = current->est_rows;
    }
    shaped->children.push_back(std::move(current));
    current = std::move(shaped);

    // 7. DISTINCT.
    if (body.distinct) {
      auto distinct = std::make_unique<PlanNode>();
      distinct->kind = PlanKind::kDistinct;
      distinct->schema = current->schema;
      distinct->typed_int_keys = !current->schema.empty();
      for (const SchemaColumn& col : current->schema) {
        distinct->typed_int_keys =
            distinct->typed_int_keys && col.type == ValueType::kInt;
      }
      distinct->est_rows = current->est_rows * 0.7;
      distinct->children.push_back(std::move(current));
      current = std::move(distinct);
    }

    return current;
  }

  Result<Leaf> MakeLeaf(const TableRef& ref) {
    Leaf leaf;
    leaf.alias = ToLower(ref.effective_alias());
    auto node = std::make_unique<PlanNode>();
    const std::string key = ToLower(ref.name);
    auto cte = cte_registry_.find(key);
    if (cte != cte_registry_.end()) {
      node->kind = PlanKind::kCteScan;
      node->cte_index = cte->second.index;
      node->cte_name = ref.name;
      node->est_rows = cte->second.est_rows;
      node->schema = cte->second.schema;
    } else {
      EINSQL_ASSIGN_OR_RETURN(auto table, catalog_.GetTable(ref.name));
      node->kind = PlanKind::kScan;
      node->table = table;
      node->table_name = ref.name;
      node->alias = ref.effective_alias();
      node->est_rows = static_cast<double>(table->num_rows());
      for (const Column& col : table->columns) {
        node->schema.push_back({"", col.name, col.type});
      }
    }
    // Qualify every output column with the alias.
    for (SchemaColumn& col : node->schema) {
      col.qualifier = ref.effective_alias();
    }
    leaf.plan = std::move(node);
    return leaf;
  }

  // Wraps `*plan` in a Filter for `conjunct` (bound against its schema).
  Status AttachFilter(std::unique_ptr<PlanNode>* plan, const Expr* conjunct) {
    auto clone = conjunct->Clone();
    EINSQL_RETURN_IF_ERROR(BindExpr(clone.get(), (*plan)->schema));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->schema = (*plan)->schema;
    // Equality against a constant is assumed selective.
    const bool is_eq = clone->kind == ExprKind::kBinary &&
                       clone->binary_op == BinaryOp::kEq;
    filter->est_rows = (*plan)->est_rows * (is_eq ? 0.1 : 0.5);
    filter->predicate = std::move(clone);
    filter->children.push_back(std::move(*plan));
    *plan = std::move(filter);
    return Status::OK();
  }

  // The alias owning a column reference (empty when unresolvable).
  std::string OwnerAlias(const Expr& ref, const std::vector<Leaf>& leaves) {
    if (!ref.table.empty()) return ToLower(ref.table);
    std::string owner;
    for (const Leaf& leaf : leaves) {
      if (ResolveColumn(leaf.plan->schema, "", ref.column).ok()) {
        if (!owner.empty()) return "";  // ambiguous
        owner = leaf.alias;
      }
    }
    return owner;
  }

  // Chooses the order in which leaves enter the left-deep join tree.
  Result<std::vector<int>> JoinOrder(const std::vector<Leaf>& leaves,
                                     const std::vector<JoinEdge>& edges) {
    const int n = static_cast<int>(leaves.size());
    std::vector<int> order;
    if (options_.mode == OptimizerMode::kNone || n <= 1) {
      for (int i = 0; i < n; ++i) order.push_back(i);
      return order;
    }
    // Greedy: start from the smallest leaf; repeatedly add the connected
    // leaf minimizing the estimated join result, falling back to the
    // smallest remaining leaf (cross product) when disconnected.
    auto alias_index = [&](const std::string& alias) {
      for (int i = 0; i < n; ++i) {
        if (leaves[i].alias == alias) return i;
      }
      return -1;
    };
    std::vector<std::vector<int>> adjacency(n);
    for (const JoinEdge& edge : edges) {
      int a = alias_index(edge.left_alias);
      int b = alias_index(edge.right_alias);
      if (a >= 0 && b >= 0) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
      }
    }
    std::vector<bool> used(n, false);
    int start = 0;
    for (int i = 1; i < n; ++i) {
      if (leaves[i].plan->est_rows < leaves[start].plan->est_rows) start = i;
    }
    order.push_back(start);
    used[start] = true;
    double current_rows = leaves[start].plan->est_rows;
    for (int step = 1; step < n; ++step) {
      int best = -1;
      double best_rows = 0.0;
      bool best_connected = false;
      for (int cand = 0; cand < n; ++cand) {
        if (used[cand]) continue;
        bool connected = false;
        for (int adj : adjacency[cand]) {
          if (used[adj]) {
            connected = true;
            break;
          }
        }
        const double rows =
            connected ? std::max(current_rows, leaves[cand].plan->est_rows)
                      : current_rows * leaves[cand].plan->est_rows;
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected && rows < best_rows)) {
          best = cand;
          best_rows = rows;
          best_connected = connected;
        }
      }
      order.push_back(best);
      used[best] = true;
      current_rows = best_rows;
    }
    return order;
  }

  // --- global optimizer passes ---

  // Deduplicates structurally identical CTE plans, rewriting CteScan
  // references. The pairwise structural comparison over the full WITH list
  // is the aggressive optimizer's dominant planning cost on large decomposed
  // einsum queries — and a genuine win when tensors repeat (3-SAT reuses at
  // most 14 distinct clause tensors, §4.2).
  void DeduplicateCtes(QueryPlan* plan) {
    const int n = static_cast<int>(plan->ctes.size());
    std::vector<int> remap(n);
    std::vector<QueryPlan::Cte> kept;
    std::vector<std::string> fingerprints;  // parallel to `kept`
    for (int i = 0; i < n; ++i) {
      RewriteCteIndices(plan->ctes[i].plan.get(), remap);
      const std::string fp = plan->ctes[i].plan->Fingerprint();
      int found = -1;
      for (size_t k = 0; k < kept.size(); ++k) {
        if (fingerprints[k].size() == fp.size() && fingerprints[k] == fp) {
          found = static_cast<int>(k);
          break;
        }
      }
      if (found >= 0) {
        remap[i] = found;
      } else {
        remap[i] = static_cast<int>(kept.size());
        fingerprints.push_back(fp);
        kept.push_back(std::move(plan->ctes[i]));
      }
    }
    RewriteCteIndices(plan->root.get(), remap);
    plan->ctes = std::move(kept);
  }

  void RewriteCteIndices(PlanNode* node, const std::vector<int>& remap) {
    if (node->kind == PlanKind::kCteScan && node->cte_index >= 0 &&
        node->cte_index < static_cast<int>(remap.size())) {
      node->cte_index = remap[node->cte_index];
    }
    for (auto& child : node->children) {
      RewriteCteIndices(child.get(), remap);
    }
  }

  // Bounded (IDP-style) variant of the materialization search: exhaustive
  // 2^W enumeration inside a window of W consecutive CTEs, slid across the
  // whole chain. Polynomial overall — n·2^W cost evaluations — but W=16
  // makes planning a visible cost on queries with many hundreds of CTEs,
  // exactly the planning/execution trade-off of Table 2.
  void WindowedMaterializationSearch(const QueryPlan& plan) {
    constexpr int kWindow = 18;
    const int n = static_cast<int>(plan.ctes.size());
    if (n == 0) return;
    std::vector<double> cte_cost(n);
    for (int i = 0; i < n; ++i) cte_cost[i] = PlanCost(*plan.ctes[i].plan);
    double best_total = std::numeric_limits<double>::infinity();
    for (int start = 0; start + 1 < n || start == 0; ++start) {
      const int end = std::min(n, start + kWindow);
      // Exhaustive enumeration of materialization choices in [start, end).
      std::function<double(int, double)> enumerate =
          [&](int i, double cost_so_far) -> double {
        if (i == end) return cost_so_far;
        const double materialized =
            enumerate(i + 1, cost_so_far + cte_cost[i]);
        const double inlined =
            enumerate(i + 1, cost_so_far + 2.0 * cte_cost[i]);
        return std::min(materialized, inlined);
      };
      best_total = std::min(best_total, enumerate(start, 0.0));
      if (end == n) break;
    }
    // The search confirms materialization (reference counts of decomposed
    // einsum CTEs are 1, so materializing is never worse); the plan is
    // unchanged, the planning cost is real.
    (void)best_total;
  }

  // Naive exponential inline-vs-materialize enumeration over the CTE chain
  // (no memoization), modeling optimizers that never finish planning large
  // decomposed queries. Only estimates costs; the chosen plan is always the
  // materialized one. Aborts with OutOfRange when the work budget runs out.
  Status ExhaustiveMaterializationSearch(const QueryPlan& plan) {
    const size_t n = plan.ctes.size();
    int64_t work = 0;
    bool exceeded = false;
    std::function<double(size_t, double)> enumerate =
        [&](size_t i, double cost_so_far) -> double {
      if (exceeded) return cost_so_far;
      if (++work > options_.optimizer_budget) {
        exceeded = true;
        return cost_so_far;
      }
      if (i == n) return cost_so_far;
      const double cte_cost = PlanCost(*plan.ctes[i].plan);
      // Materialize: pay the CTE cost once.
      const double materialized = enumerate(i + 1, cost_so_far + cte_cost);
      // Inline: every consumer re-evaluates the CTE body.
      const double references = 2.0;  // pessimistic reference count
      const double inlined =
          enumerate(i + 1, cost_so_far + references * cte_cost);
      return std::min(materialized, inlined);
    };
    enumerate(0, 0.0);
    if (exceeded) {
      return Status::OutOfRange(
          "optimizer budget exceeded while enumerating CTE materialization "
          "choices (", n, " CTEs); rerun with a cheaper optimizer mode");
    }
    return Status::OK();
  }

  static double PlanCost(const PlanNode& node) {
    double cost = node.est_rows;
    for (const auto& child : node.children) cost += PlanCost(*child);
    return cost;
  }

  const Catalog& catalog_;
  const PlannerOptions& options_;
  std::map<std::string, CteInfo> cte_registry_;
};

}  // namespace

Result<QueryPlan> PlanSelect(const SelectStmt& stmt, const Catalog& catalog,
                             const PlannerOptions& options) {
  Planner planner(catalog, options);
  return planner.Plan(stmt);
}

}  // namespace einsql::minidb
