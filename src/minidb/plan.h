#ifndef EINSQL_MINIDB_PLAN_H_
#define EINSQL_MINIDB_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "minidb/ast.h"
#include "minidb/table.h"

namespace einsql::minidb {

/// One column of an operator's output schema: an optional qualifier (the
/// table alias it came from), the column name, and the planner's best
/// knowledge of the column's storage class. `kNull` means "unknown" —
/// MiniDB is dynamically typed at the storage layer, so the type is a
/// plan-time hint (propagated from CREATE TABLE declarations and literal
/// analysis), used to select typed execution fast paths, never to reject
/// rows. The executor re-validates it against actual values and falls back
/// to generic evaluation on any mismatch.
struct SchemaColumn {
  std::string qualifier;
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An operator output schema.
using Schema = std::vector<SchemaColumn>;

/// Resolves a (qualifier, name) reference against `schema`.
/// Returns the slot index; NotFound / InvalidArgument("ambiguous...") errors.
Result<int> ResolveColumn(const Schema& schema, const std::string& qualifier,
                          const std::string& name);

/// Physical plan operator kinds. All operators are fully materialized:
/// Execute() consumes child relations and produces one output relation.
enum class PlanKind {
  kScan,       // base table scan
  kCteScan,    // reference to a materialized common table expression
  kValues,     // literal rows
  kFilter,     // predicate over child rows
  kProject,    // expression projection
  kJoin,       // hash equi-join (cross product when key lists are empty)
  kAggregate,  // hash aggregation with grouped output expressions
  kSort,       // ORDER BY
  kLimit,      // LIMIT
  kDistinct,   // duplicate elimination
  kAppend,     // UNION ALL: concatenation of the children's rows
};

/// Returns a short operator name for plan dumps ("Scan", "HashJoin", ...).
const char* PlanKindToString(PlanKind kind);

/// A physical plan node. Expressions stored in plan nodes are clones of the
/// AST whose column references were bound to input slot indices.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<std::unique_ptr<PlanNode>> children;
  /// Output schema.
  Schema schema;
  /// Optimizer cardinality estimate.
  double est_rows = 1.0;

  // kScan
  std::shared_ptr<Relation> table;
  std::string table_name;
  std::string alias;

  // kCteScan
  int cte_index = -1;
  std::string cte_name;

  // kValues (rows already folded to constants)
  std::vector<Row> literal_rows;

  // kFilter / kJoin residual
  std::unique_ptr<Expr> predicate;

  // kJoin: key slots into left/right child schemas; empty => cross join.
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  /// kJoin / kAggregate / kDistinct: every key (join key, group expression,
  /// or DISTINCT column) is a plan-time `kInt` column, so the executor may
  /// hash packed int64 keys directly instead of going through the Value
  /// variant — the common case for einsum index columns. Chosen at plan
  /// time; the executor still verifies actual values and falls back.
  bool typed_int_keys = false;

  // kProject / kAggregate output expressions (bound against child schema).
  std::vector<std::unique_ptr<Expr>> exprs;

  // kAggregate group expressions (bound against child schema).
  std::vector<std::unique_ptr<Expr>> group_exprs;

  // kSort: expressions bound against *this node's input* (child output),
  // plus direction flags.
  std::vector<std::unique_ptr<Expr>> sort_exprs;
  std::vector<bool> sort_desc;

  // kLimit
  int64_t limit = -1;

  /// Deep copy (used by the aggressive optimizer's CTE analysis).
  std::unique_ptr<PlanNode> Clone() const;

  /// Structural fingerprint: two plans with equal fingerprints compute the
  /// same relation. Used by the common-subplan (CTE deduplication) pass.
  std::string Fingerprint() const;

  /// One-line operator description without indentation or cardinality,
  /// e.g. "Scan A", "HashJoin (cross) [a.i=b.j]". EXPLAIN and EXPLAIN
  /// ANALYZE both render operator lines from this, so their dumps line up
  /// column-for-column.
  std::string HeadLine() const;

  /// Multi-line indented plan dump for EXPLAIN-style output.
  std::string ToString(int indent = 0) const;
};

/// A complete query plan: CTE plans materialized in order, then the root.
struct QueryPlan {
  struct Cte {
    std::string name;
    std::unique_ptr<PlanNode> plan;
  };
  std::vector<Cte> ctes;
  std::unique_ptr<PlanNode> root;

  /// Plan dump including CTEs.
  std::string ToString() const;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_PLAN_H_
