#ifndef EINSQL_MINIDB_PLANNER_H_
#define EINSQL_MINIDB_PLANNER_H_

#include "common/result.h"
#include "minidb/ast.h"
#include "minidb/plan.h"
#include "minidb/table.h"

namespace einsql::minidb {

/// Query-optimization effort levels (§5 of the paper: the planning/execution
/// trade-off for computation-heavy Einstein summation queries).
enum class OptimizerMode {
  /// No optimization beyond what is needed for correctness: joins in FROM
  /// order, equi-join predicates still matched to hash joins. Models
  /// DuckDB's `disable_optimizer` pragma.
  kNone,
  /// Per-SELECT greedy join ordering plus single-table predicate pushdown.
  /// The default; comparable to a lightweight engine honoring the CTE
  /// decomposition (SQLite-like).
  kGreedy,
  /// kGreedy plus global passes over the whole WITH tree: exhaustive
  /// pairwise common-CTE detection (deduplicating identical VALUES/step
  /// CTEs) and exact DP join enumeration for small joins. High plan quality,
  /// planning time grows superlinearly with query size (HyPer-like).
  kAggressive,
  /// kAggressive plus a naive exponential inline-vs-materialize enumeration
  /// over the CTE chain (no memoization). Models optimizers whose planning
  /// never finishes on large decomposed einsum queries (DuckDB 0.5 in
  /// Table 2); aborts with OutOfRange once the budget is exhausted.
  kExhaustive,
};

/// Returns "none" / "greedy" / "aggressive" / "exhaustive".
const char* OptimizerModeToString(OptimizerMode mode);

/// Planner configuration.
struct PlannerOptions {
  OptimizerMode mode = OptimizerMode::kGreedy;
  /// Work budget for the exhaustive CTE enumeration; exceeding it aborts
  /// planning with OutOfRange (reported as N/A by the benchmarks, matching
  /// the paper's DuckDB row).
  int64_t optimizer_budget = 50'000'000;
};

/// Builds a physical plan for a parsed SELECT statement against `catalog`.
Result<QueryPlan> PlanSelect(const SelectStmt& stmt, const Catalog& catalog,
                             const PlannerOptions& options);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_PLANNER_H_
