#ifndef EINSQL_MINIDB_EXPR_EVAL_VEC_H_
#define EINSQL_MINIDB_EXPR_EVAL_VEC_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "minidb/ast.h"
#include "minidb/column_batch.h"

namespace einsql::minidb {

/// True when `expr` is expressible as column-at-a-time kernels: literals,
/// bound column references, unary +/-/NOT, the binary arithmetic /
/// comparison / AND / OR operators, and IS [NOT] NULL. Scalar function
/// calls, CASE, and aggregate references stay on the row interpreter —
/// the executor falls back per plan node, not per expression, so a single
/// unsupported node keeps the whole operator on the row path.
bool CanVectorizeExpr(const Expr& expr);

/// Evaluates vectorizable expressions against one ColumnBatch. Returned
/// pointers borrow either a batch column (column refs are zero-copy) or a
/// scratch vector owned by this evaluator; they stay valid until the
/// evaluator is destroyed or Reset(). Not thread-safe — the executor makes
/// one evaluator per morsel worker.
///
/// Error timing caveat: evaluation is eager (no AND/OR short-circuit), so
/// Evaluate can return an error the row interpreter would have skipped.
/// Callers must treat any error as "retry this morsel on the row path",
/// never as a query failure.
class VecEvaluator {
 public:
  explicit VecEvaluator(const ColumnBatch* batch) : batch_(batch) {}

  Result<const ColumnVector*> Evaluate(const Expr& expr);

  /// Drops scratch columns (borrowed pointers from prior Evaluate calls
  /// become dangling). Batch columns are unaffected.
  void Reset() { scratch_.clear(); }

 private:
  const ColumnVector* Own(ColumnVector&& col);

  const ColumnBatch* batch_;
  std::vector<std::unique_ptr<ColumnVector>> scratch_;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_EXPR_EVAL_VEC_H_
