#ifndef EINSQL_MINIDB_DATABASE_H_
#define EINSQL_MINIDB_DATABASE_H_

#include <string>

#include "common/result.h"
#include "common/trace.h"
#include "minidb/executor.h"
#include "minidb/plan.h"
#include "minidb/planner.h"
#include "minidb/profile.h"
#include "minidb/table.h"

namespace einsql::minidb {

/// Timing breakdown of a query, the instrumentation behind the Table 2
/// reproduction: "planning" covers lexing, parsing, binding, and all
/// optimizer passes; "execution" covers operator evaluation only.
struct QueryStats {
  double parse_seconds = 0.0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;

  double planning_seconds() const { return parse_seconds + plan_seconds; }
  double total_seconds() const {
    return parse_seconds + plan_seconds + exec_seconds;
  }
};

/// Result of executing a statement.
struct QueryResult {
  Relation relation;  // empty for DDL/DML statements
  QueryStats stats;
};

/// MiniDB: an in-memory relational engine executing the portable SQL subset
/// the einsum compiler emits (WITH/VALUES/SELECT/joins/GROUP BY/ORDER BY),
/// plus CREATE TABLE / INSERT / DROP / DELETE for data management.
///
/// The optimizer effort is configurable per instance (OptimizerMode),
/// standing in for the spectrum of engines evaluated in the paper — from
/// "no optimization" (DuckDB with optimizations disabled) to planners whose
/// planning time dominates computation-heavy einsum queries.
class Database {
 public:
  explicit Database(PlannerOptions options = {});

  /// Parses, plans, and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  /// Parses and plans a SELECT without executing it; returns the plan and
  /// fills `stats` (parse/plan time) if non-null. Used by benchmarks that
  /// measure planning separately and by EXPLAIN-style tooling.
  Result<QueryPlan> Prepare(std::string_view sql, QueryStats* stats = nullptr);

  /// Executes a previously prepared plan, paying no parsing or planning
  /// cost — the plan-cache pattern §5 of the paper recommends for
  /// repetitive Einstein summation queries ("caching the query plans could
  /// avoid redundant computations"). The plan pins the table objects it
  /// scans: rows inserted later are visible, but tables dropped and
  /// re-created are not.
  Result<QueryResult> ExecutePrepared(const QueryPlan& plan);

  /// Programmatic fast path for bulk loading (no SQL parsing): creates a
  /// table if needed and moves `rows` into it.
  Status CreateTable(const std::string& name, std::vector<Column> columns);
  Status BulkInsert(const std::string& name, std::vector<Row> rows);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  PlannerOptions& options() { return options_; }
  const PlannerOptions& options() const { return options_; }
  ExecutorOptions& executor_options() { return executor_options_; }

  /// Per-operator runtime profile of the most recent executed SELECT
  /// (including EXPLAIN ANALYZE and ExecutePrepared), or null if no SELECT
  /// has executed yet. Invalidated by the next Execute/ExecutePrepared.
  const QueryProfile* last_profile() const {
    return has_last_profile_ ? &last_profile_ : nullptr;
  }

  /// Span sink for parse/plan/execute phases and executor operators. Not
  /// owned; pass null to disable. The trace must outlive all queries.
  void set_trace(Trace* trace) { trace_ = trace; }
  Trace* trace() const { return trace_; }

 private:
  Catalog catalog_;
  PlannerOptions options_;
  ExecutorOptions executor_options_;
  QueryProfile last_profile_;
  bool has_last_profile_ = false;
  Trace* trace_ = nullptr;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_DATABASE_H_
