#ifndef EINSQL_MINIDB_EXECUTOR_H_
#define EINSQL_MINIDB_EXECUTOR_H_

#include <memory>

#include "common/result.h"
#include "minidb/plan.h"

namespace einsql::minidb {

/// Execution options.
struct ExecutorOptions {
  /// Materialize independent CTEs concurrently. §5 of the paper argues
  /// that for decomposed einsum queries "finding independent common table
  /// expressions that can be executed concurrently is a rather lightweight
  /// optimization": the executor levels the CTE dependency graph and runs
  /// each level on a thread pool.
  bool parallel_ctes = false;
  /// Worker threads for parallel CTE materialization (0 = hardware
  /// concurrency).
  int num_threads = 0;
};

/// Executes a query plan: materializes every CTE once (respecting
/// dependencies), then evaluates the root operator tree. All operators are
/// fully materialized (hash joins, hash aggregation, sorts), matching the
/// paper's observation that Einstein summation queries are
/// computation-heavy pipelines of join + GROUP BY stages.
Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const ExecutorOptions& options = {});

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_EXECUTOR_H_
