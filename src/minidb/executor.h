#ifndef EINSQL_MINIDB_EXECUTOR_H_
#define EINSQL_MINIDB_EXECUTOR_H_

#include <memory>

#include "common/result.h"
#include "common/trace.h"
#include "minidb/plan.h"
#include "minidb/profile.h"

namespace einsql::minidb {

/// Execution options.
struct ExecutorOptions {
  /// Materialize independent CTEs concurrently. §5 of the paper argues
  /// that for decomposed einsum queries "finding independent common table
  /// expressions that can be executed concurrently is a rather lightweight
  /// optimization": the executor levels the CTE dependency graph and runs
  /// each level on a thread pool.
  bool parallel_ctes = false;
  /// Worker threads for parallel CTE materialization and intra-operator
  /// morsel execution (0 = hardware concurrency).
  int num_threads = 0;
  /// Morsel-driven parallelism *inside* operators: hash-join probe, hash
  /// aggregation, filter, and projection split their input into fixed-size
  /// morsels processed by a worker pool. Output buffers are per-morsel and
  /// concatenated in morsel order, and merged aggregation state is combined
  /// in morsel order too, so results are deterministic: for a fixed
  /// `morsel_rows` the result is identical regardless of the thread count.
  /// (Hash-join builds stay sequential; they are the small side by
  /// construction in einsum plans.)
  bool parallel_operators = false;
  /// Rows per morsel when `parallel_operators` is set. Part of the query's
  /// deterministic result contract: floating-point aggregation combines
  /// per-morsel partial sums, so changing morsel_rows (unlike num_threads)
  /// may perturb double SUM/AVG results in the last ulp.
  int64_t morsel_rows = 16384;
  /// Machine-adaptive morsel planning (default on, only meaningful with
  /// `parallel_operators`). The planner bounds useful workers by the
  /// hardware concurrency and by one worker per ~8k input rows, widens
  /// morsels so each useful worker gets a handful of them (rather than
  /// splitting tiny inputs into many fixed-size morsels), and — when only
  /// one worker is useful — collapses order-preserving operators to a
  /// single input-spanning morsel. The effective morsel size depends only
  /// on the machine and the input size, never on `num_threads`, so the
  /// thread-count determinism guarantee above still holds; but unlike the
  /// faithful policy it is machine-dependent, so double SUM/AVG results
  /// may differ across machines in the last ulp. Set to false for the
  /// faithful policy: exactly `num_threads` workers over fixed
  /// `morsel_rows` morsels regardless of machine or input (the TSan CI
  /// job and the parallel unit tests rely on it, and it keeps
  /// morsel-boundary-sensitive results machine-independent).
  bool adaptive_parallelism = true;
  /// Column-at-a-time (vectorized) execution: filter predicates, projection
  /// arithmetic, aggregation, and typed join-key extraction run as
  /// column kernels over one batch per morsel instead of row-at-a-time
  /// interpretation. Composes with `parallel_operators` (a morsel becomes
  /// one batch; sequential execution is one batch spanning the input), so
  /// for fixed `morsel_rows` and parallel settings results are identical
  /// to the row interpreter — including float aggregation order. Operators
  /// or expressions the kernels do not cover (scalar functions, CASE,
  /// text-heavy paths) transparently fall back to the row interpreter; a
  /// vectorized kernel error likewise retries the morsel on the row path,
  /// because eager evaluation may surface errors that short-circuiting
  /// row evaluation would skip.
  bool vectorized = false;
  /// Optional span sink: when set, the executor emits one span per CTE
  /// materialization and per operator evaluation, carrying est-vs-actual
  /// cardinalities as attributes. Not owned; may be null.
  Trace* trace = nullptr;
};

/// Executes a query plan: materializes every CTE once (respecting
/// dependencies), then evaluates the root operator tree. All operators are
/// fully materialized (hash joins, hash aggregation, sorts), matching the
/// paper's observation that Einstein summation queries are
/// computation-heavy pipelines of join + GROUP BY stages.
///
/// When `profile` is non-null it is filled with per-operator runtime
/// metrics (wall time, input/output rows, hash-table sizes) mirroring the
/// plan tree — the data behind EXPLAIN ANALYZE.
Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const ExecutorOptions& options = {},
                             QueryProfile* profile = nullptr);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_EXECUTOR_H_
