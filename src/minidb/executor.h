#ifndef EINSQL_MINIDB_EXECUTOR_H_
#define EINSQL_MINIDB_EXECUTOR_H_

#include <memory>

#include "common/result.h"
#include "common/trace.h"
#include "minidb/plan.h"
#include "minidb/profile.h"

namespace einsql::minidb {

/// Execution options.
struct ExecutorOptions {
  /// Materialize independent CTEs concurrently. §5 of the paper argues
  /// that for decomposed einsum queries "finding independent common table
  /// expressions that can be executed concurrently is a rather lightweight
  /// optimization": the executor levels the CTE dependency graph and runs
  /// each level on a thread pool.
  bool parallel_ctes = false;
  /// Worker threads for parallel CTE materialization (0 = hardware
  /// concurrency).
  int num_threads = 0;
  /// Optional span sink: when set, the executor emits one span per CTE
  /// materialization and per operator evaluation, carrying est-vs-actual
  /// cardinalities as attributes. Not owned; may be null.
  Trace* trace = nullptr;
};

/// Executes a query plan: materializes every CTE once (respecting
/// dependencies), then evaluates the root operator tree. All operators are
/// fully materialized (hash joins, hash aggregation, sorts), matching the
/// paper's observation that Einstein summation queries are
/// computation-heavy pipelines of join + GROUP BY stages.
///
/// When `profile` is non-null it is filled with per-operator runtime
/// metrics (wall time, input/output rows, hash-table sizes) mirroring the
/// plan tree — the data behind EXPLAIN ANALYZE.
Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const ExecutorOptions& options = {},
                             QueryProfile* profile = nullptr);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_EXECUTOR_H_
