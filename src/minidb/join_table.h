#ifndef EINSQL_MINIDB_JOIN_TABLE_H_
#define EINSQL_MINIDB_JOIN_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "minidb/value.h"

namespace einsql::minidb {

/// Build-side hash table of the typed int64-key join path. Entries are
/// packed keys (`arity` int64s each) with dense ids 0..n-1 in build order;
/// probing enumerates matching entry ids in ascending order — the same
/// order the previous unordered_map-of-vectors produced, so the join
/// result is unchanged row for row.
///
/// Two layouts, chosen at build time from the key min/max statistics
/// gathered in the same pass (docs/kernels.md has the policy table):
///
///  * kDirectAddress — a perfect hash: each key maps bijectively to
///    slot = sum_k (key[k] - min[k]) * stride[k] (mixed-radix packing of
///    the per-column offsets). Chosen when the key-space volume
///    prod_k (max[k] - min[k] + 1) is at most
///    min(max(65536, 2 * entries), 2^22). Probes are one bounds check and
///    one load, no key comparison — einsum index columns (dense 0..N-1
///    dimensions) essentially always take this layout.
///
///  * kRadixChained — a bucket-major layout built with a counting sort:
///    entry ids are partitioned by hash radix into `buckets` (a power of
///    two >= 2n), each bucket's ids stored contiguously and ascending, and
///    their packed keys gathered into the same order. A probe scans one
///    contiguous key run instead of chasing per-entry pointers, so the
///    random-access part of a probe is exactly one bucket-range load.
class IntKeyJoinTable {
 public:
  enum class Strategy { kDirectAddress, kRadixChained };

  /// Builds from `num_entries` packed keys, `arity` int64s per entry.
  /// The key array must outlive the table (the radix layout keeps its own
  /// gathered copy; the direct layout needs no keys at all — the slot is
  /// the key).
  IntKeyJoinTable(const int64_t* keys, int64_t num_entries, size_t arity);

  Strategy strategy() const { return strategy_; }
  int64_t num_entries() const { return num_entries_; }

  /// Calls fn(entry_id) for every entry whose key equals `probe`, in
  /// ascending entry-id (build) order. `fn` returns Status; the first
  /// error stops the enumeration.
  template <typename Fn>
  Status ForEachMatch(const int64_t* probe, const Fn& fn) const {
    if (strategy_ == Strategy::kDirectAddress) {
      int64_t slot = 0;
      for (size_t k = 0; k < arity_; ++k) {
        const uint64_t off =
            static_cast<uint64_t>(probe[k]) - static_cast<uint64_t>(mins_[k]);
        if (off >= extents_[k]) return Status::OK();  // outside key space
        slot += static_cast<int64_t>(off) * strides_[k];
      }
      for (int32_t e = head_[slot]; e >= 0; e = next_[e]) {
        EINSQL_RETURN_IF_ERROR(fn(static_cast<int64_t>(e)));
      }
      return Status::OK();
    }
    const size_t h = HashIntKey(probe, arity_) & mask_;
    const int64_t lo = bucket_start_[h];
    const int64_t hi = bucket_start_[h + 1];
    for (int64_t p = lo; p < hi; ++p) {
      const int64_t* ek = sorted_keys_.data() + p * arity_;
      bool match = true;
      for (size_t k = 0; k < arity_ && match; ++k) match = ek[k] == probe[k];
      if (match) {
        EINSQL_RETURN_IF_ERROR(fn(static_cast<int64_t>(order_[p])));
      }
    }
    return Status::OK();
  }

 private:
  size_t arity_ = 1;
  int64_t num_entries_ = 0;
  Strategy strategy_ = Strategy::kRadixChained;

  // kDirectAddress: per-column key-space geometry and int32 entry chains.
  // head_[slot] is the lowest entry id with that key; next_ threads the
  // rest in ascending order (chains are built back to front).
  std::vector<int64_t> mins_;
  std::vector<uint64_t> extents_;
  std::vector<int64_t> strides_;
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;

  // kRadixChained: bucket-major entry ids and their gathered keys.
  size_t mask_ = 0;
  std::vector<int64_t> bucket_start_;  // buckets + 1 prefix sums
  std::vector<int32_t> order_;         // entry ids, bucket-major, ascending
  std::vector<int64_t> sorted_keys_;   // arity ints per order_ position
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_JOIN_TABLE_H_
