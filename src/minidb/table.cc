#include "minidb/table.h"

#include <sstream>

#include "common/str_util.h"

namespace einsql::minidb {

int Relation::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) os << " | ";
    os << columns[c].name;
  }
  os << "\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(columns[c].name.size(), '-');
  }
  os << "\n";
  int64_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      os << "... (" << num_rows() - max_rows << " more rows)\n";
      break;
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << ValueToString(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

Status Catalog::CreateTable(const std::string& name,
                            std::vector<Column> columns) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '", name, "' already exists");
  }
  auto table = std::make_shared<Relation>();
  table->columns = std::move(columns);
  tables_[key] = std::move(table);
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  const std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '", name, "' does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

Result<std::shared_ptr<Relation>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::AppendRows(const std::string& name, std::vector<Row> rows) {
  EINSQL_ASSIGN_OR_RETURN(auto table, GetTable(name));
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != table->num_columns()) {
      return Status::InvalidArgument(
          "row arity ", row.size(), " does not match table '", name,
          "' with ", table->num_columns(), " columns");
    }
  }
  table->rows.insert(table->rows.end(),
                     std::make_move_iterator(rows.begin()),
                     std::make_move_iterator(rows.end()));
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(key);
  return names;
}

}  // namespace einsql::minidb
