#ifndef EINSQL_MINIDB_AST_H_
#define EINSQL_MINIDB_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minidb/value.h"

namespace einsql::minidb {

/// Expression node kinds.
enum class ExprKind {
  kLiteral,     // 42, 1.5, 'abc', NULL
  kColumnRef,   // col or table.col
  kUnary,       // -x, NOT x
  kBinary,      // x + y, x = y, x AND y, ...
  kFunction,    // SUM(x), COUNT(*), ABS(x), ...
  kIsNull,      // x IS [NOT] NULL
  kCase,        // CASE WHEN c THEN v ... [ELSE e] END
};

/// Binary operators.
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAnd, kOr,
};

/// Unary operators.
enum class UnaryOp { kNegate, kNot };

/// A SQL scalar expression tree.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   // optional qualifier, empty if absent
  std::string column;
  /// Slot index into the input row, set by the binder; -1 while unbound.
  int bound_slot = -1;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kFunction
  std::string function;              // lower-cased name
  std::vector<std::unique_ptr<Expr>> args;
  bool star_argument = false;        // COUNT(*)

  // kIsNull
  bool is_null_negated = false;      // IS NOT NULL

  // kCase: when/then pairs in `case_whens`, optional ELSE in `case_else`.
  std::vector<std::pair<std::unique_ptr<Expr>, std::unique_ptr<Expr>>>
      case_whens;
  std::unique_ptr<Expr> case_else;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Renders the expression back to SQL-ish text (diagnostics, plan dumps,
  /// and structural equality for GROUP BY matching).
  std::string ToString() const;
};

std::unique_ptr<Expr> MakeLiteral(Value v);
std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column);
std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r);

/// True iff `name` is one of the supported aggregate functions
/// (sum, count, avg, min, max).
bool IsAggregateFunction(const std::string& name);

/// True iff the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// One item of a SELECT list.
struct SelectItem {
  std::unique_ptr<Expr> expr;  // null for bare '*'
  std::string alias;           // empty if none
  bool is_star = false;
};

/// A table reference in FROM: `name [AS] alias`.
struct TableRef {
  std::string name;
  std::string alias;  // defaults to name when empty

  const std::string& effective_alias() const {
    return alias.empty() ? name : alias;
  }
};

/// ORDER BY item.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt;

/// Body of a query: either a SELECT core or a VALUES list.
struct QueryBody {
  // VALUES rows (each row is a list of expressions) — exclusive with select.
  std::vector<std::vector<std::unique_ptr<Expr>>> values_rows;
  bool is_values = false;

  // SELECT core.
  std::vector<SelectItem> select_list;
  bool distinct = false;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// UNION ALL members appended to this SELECT core. ORDER BY and LIMIT of
  /// the first body apply to the whole union, SQL-style; members carry
  /// neither.
  std::vector<std::unique_ptr<QueryBody>> union_all;
};

/// A common table expression: `name(col, ...) AS (query)`.
struct CommonTableExpr {
  std::string name;
  std::vector<std::string> column_names;  // optional explicit column list
  std::unique_ptr<QueryBody> body;
};

/// A full SELECT statement with optional WITH prologue.
struct SelectStmt {
  std::vector<CommonTableExpr> ctes;
  QueryBody body;
  /// EXPLAIN prefix: plan the query and return the plan text instead of
  /// executing it.
  bool explain = false;
  /// EXPLAIN ANALYZE: plan *and* execute the query, returning the plan text
  /// annotated with per-operator actual row counts and wall time.
  bool explain_analyze = false;
};

/// CREATE TABLE name (col TYPE, ...).
struct CreateTableStmt {
  std::string table;
  std::vector<std::pair<std::string, ValueType>> columns;
};

/// INSERT INTO name [(cols)] VALUES (...), (...).
struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // optional
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

/// DROP TABLE name.
struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

/// DELETE FROM name [WHERE expr].
struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

/// Statement kinds.
enum class StatementKind { kSelect, kCreateTable, kInsert, kDropTable,
                           kDelete };

/// A parsed SQL statement.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<DeleteStmt> delete_stmt;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_AST_H_
