#ifndef EINSQL_MINIDB_PROFILE_H_
#define EINSQL_MINIDB_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minidb/plan.h"

namespace einsql::minidb {

/// Runtime metrics of one executed plan operator. The tree mirrors the plan
/// tree exactly: children[k] profiles the operator's k-th child.
struct OperatorProfile {
  PlanKind kind = PlanKind::kScan;
  /// PlanNode::HeadLine() of the profiled node, so EXPLAIN ANALYZE renders
  /// the same operator text as EXPLAIN.
  std::string label;
  /// Optimizer cardinality estimate of the node.
  double est_rows = 0.0;
  /// Rows consumed (sum over the children's outputs).
  int64_t input_rows = 0;
  /// Rows produced.
  int64_t actual_rows = 0;
  /// Hash-table build size: build-side entries for HashJoin, group count
  /// for HashAggregate, 0 elsewhere.
  int64_t hash_entries = 0;
  /// Inclusive wall time (operator plus its subtree).
  double wall_seconds = 0.0;
  /// Worker threads this operator ran on (1 for sequential execution).
  int threads_used = 1;
  /// Input morsels processed by the morsel splitter; 0 when the operator
  /// ran without it (sequential execution, or a non-morselized operator).
  int64_t morsels = 0;
  /// True when every morsel of this operator ran on the vectorized
  /// (column-at-a-time) path. False when the operator is not vectorizable,
  /// vectorization is off, or any morsel fell back to the row interpreter.
  bool vectorized = false;
  /// Estimated bytes of the operator's materialized output relation
  /// (0 for scans, which only reference stored tables).
  int64_t mem_bytes = 0;
  /// Estimated bytes held by the operator's hash table (join build side or
  /// aggregation groups), 0 elsewhere.
  int64_t hash_bytes = 0;
  std::vector<OperatorProfile> children;

  /// Cardinality q-error of the estimate: max(est, actual) / min(est,
  /// actual), clamping both sides to >= 1. 1.0 means a perfect estimate.
  double est_error() const;

  /// EXPLAIN ANALYZE rendering of this subtree.
  std::string ToString(int indent = 0) const;
};

/// Full runtime profile of one query: per-CTE materialization metrics plus
/// the root operator tree. Collected by ExecutePlan and retained by
/// Database as the profile of the last executed SELECT.
struct QueryProfile {
  struct CteProfile {
    std::string name;
    /// Wall time of materializing this CTE. With parallel_ctes enabled,
    /// these overlap, so they can sum to more than exec_seconds.
    double wall_seconds = 0.0;
    int64_t rows = 0;
    double est_rows = 0.0;
    OperatorProfile root;
  };

  std::vector<CteProfile> ctes;
  OperatorProfile root;
  /// Total ExecutePlan wall time.
  double exec_seconds = 0.0;
  /// High-water mark of bytes simultaneously held by this query's
  /// materialized intermediates and hash tables (accounting estimate, not
  /// an allocator measurement).
  int64_t peak_memory_bytes = 0;
  /// Morsels executed across all operators of the query.
  int64_t morsels_executed = 0;
  /// Morsels that ran fully on the vectorized column-at-a-time path.
  int64_t vectorized_morsels = 0;
  /// Morsels that fell back to the row interpreter (unsupported
  /// expression, overflow guard, ...). vectorized_morsels +
  /// row_fallback_morsels <= morsels_executed: operators that never
  /// attempt vectorization count in neither bucket.
  int64_t row_fallback_morsels = 0;

  /// Maximum `threads_used` across all operators (CTE subtrees included):
  /// the intra-operator parallelism the query actually exercised.
  int max_threads_used() const;

  /// EXPLAIN ANALYZE text: the plan dump annotated with actual rows, wall
  /// time, and est-vs-actual error per operator.
  std::string ToString() const;
};

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_PROFILE_H_
