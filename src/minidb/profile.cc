#include "minidb/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace einsql::minidb {

namespace {

std::string Millis(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f ms", seconds * 1e3);
  return buffer;
}

std::string ErrorFactor(double q) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", q);
  return buffer;
}

std::string HumanBytes(int64_t bytes) {
  char buffer[32];
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%lld B",
                  static_cast<long long>(bytes));
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                  bytes / (1024.0 * 1024.0));
  }
  return buffer;
}

}  // namespace

double OperatorProfile::est_error() const {
  const double est = std::max(est_rows, 1.0);
  const double actual = std::max(static_cast<double>(actual_rows), 1.0);
  return std::max(est, actual) / std::min(est, actual);
}

std::string OperatorProfile::ToString(int indent) const {
  std::ostringstream os;
  os << std::string(indent * 2, ' ') << label << "  ~"
     << static_cast<int64_t>(est_rows) << " rows (actual=" << actual_rows
     << " rows, in=" << input_rows << " rows, time=" << Millis(wall_seconds);
  if (kind == PlanKind::kJoin && hash_entries > 0) {
    os << ", build=" << hash_entries;
  } else if (kind == PlanKind::kAggregate) {
    os << ", groups=" << hash_entries;
  }
  // Memory figures are estimates from the accounting hook; snapshot tests
  // normalize them away so they never flake.
  if (mem_bytes > 0) os << ", mem=" << HumanBytes(mem_bytes);
  if (hash_bytes > 0) os << ", hash_mem=" << HumanBytes(hash_bytes);
  if (morsels > 0) {
    os << ", threads=" << threads_used << ", morsels=" << morsels;
  }
  // Only printed when on, so row-path output is unchanged from before
  // vectorized execution existed.
  if (vectorized) os << ", vectorized=on";
  os << ", err=" << ErrorFactor(est_error()) << ")\n";
  for (const OperatorProfile& child : children) {
    os << child.ToString(indent + 1);
  }
  return os.str();
}

namespace {

int MaxThreads(const OperatorProfile& op) {
  int max = op.threads_used;
  for (const OperatorProfile& child : op.children) {
    max = std::max(max, MaxThreads(child));
  }
  return max;
}

}  // namespace

int QueryProfile::max_threads_used() const {
  int max = MaxThreads(root);
  for (const CteProfile& cte : ctes) {
    max = std::max(max, MaxThreads(cte.root));
  }
  return max;
}

std::string QueryProfile::ToString() const {
  std::ostringstream os;
  for (const CteProfile& cte : ctes) {
    os << "CTE " << cte.name << " (~" << static_cast<int64_t>(cte.est_rows)
       << " rows, actual=" << cte.rows
       << " rows, time=" << Millis(cte.wall_seconds) << "):\n"
       << cte.root.ToString(1);
  }
  os << "Main:\n" << root.ToString(1);
  os << "Execution: " << Millis(exec_seconds) << "\n";
  os << "Peak memory: " << HumanBytes(peak_memory_bytes) << "\n";
  if (morsels_executed > 0) {
    os << "Morsels: " << morsels_executed
       << " (vectorized=" << vectorized_morsels
       << ", row-fallback=" << row_fallback_morsels << ")\n";
  }
  return os.str();
}

}  // namespace einsql::minidb
