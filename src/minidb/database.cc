#include "minidb/database.h"

#include <cstdlib>
#include <string_view>

#include "common/stopwatch.h"
#include "minidb/executor.h"
#include "minidb/expr_eval.h"
#include "minidb/parser.h"

namespace einsql::minidb {

Database::Database(PlannerOptions options) : options_(options) {
  // MINIDB_PARALLEL=<threads> force-enables morsel-driven execution for
  // every Database instance — the hook CI uses to run the whole test suite
  // under ThreadSanitizer with parallelism on. MINIDB_MORSEL_ROWS
  // optionally shrinks morsels so small test inputs still split. The hook
  // also pins the faithful morsel policy (adaptive_parallelism off):
  // forced parallelism exists to exercise the fixed-size morsel machinery
  // on small inputs, which the adaptive planner would collapse away.
  if (const char* env = std::getenv("MINIDB_PARALLEL")) {
    const int threads = std::atoi(env);
    if (threads > 0) {
      executor_options_.parallel_operators = true;
      executor_options_.parallel_ctes = true;
      executor_options_.num_threads = threads;
      executor_options_.adaptive_parallelism = false;
    }
  }
  if (const char* env = std::getenv("MINIDB_MORSEL_ROWS")) {
    const long long rows = std::atoll(env);
    if (rows > 0) executor_options_.morsel_rows = rows;
  }
  // MINIDB_VECTORIZED=1 force-enables column-at-a-time execution — the CI
  // hook that runs the whole test suite through the vectorized path.
  // Any other value (including 0) leaves it off.
  if (const char* env = std::getenv("MINIDB_VECTORIZED")) {
    if (std::string_view(env) == "1") executor_options_.vectorized = true;
  }
}

namespace {

// Renders a multi-line dump as a one-text-column relation, one row per
// line, the result shape of EXPLAIN and EXPLAIN ANALYZE.
Relation TextDumpRelation(const std::string& dump) {
  Relation relation;
  relation.columns = {{"plan", ValueType::kText}};
  size_t start = 0;
  while (start < dump.size()) {
    size_t end = dump.find('\n', start);
    if (end == std::string::npos) end = dump.size();
    relation.rows.push_back({Value(dump.substr(start, end - start))});
    start = end + 1;
  }
  return relation;
}

}  // namespace

Result<QueryResult> Database::Execute(std::string_view sql) {
  QueryResult result;
  Stopwatch watch;
  ScopedSpan parse_span(trace_, "parse");
  EINSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  parse_span.End();
  result.stats.parse_seconds = watch.ElapsedSeconds();

  switch (stmt.kind) {
    case StatementKind::kSelect: {
      has_last_profile_ = false;  // invalidated even if planning fails
      watch.Restart();
      ScopedSpan plan_span(trace_, "plan");
      EINSQL_ASSIGN_OR_RETURN(
          QueryPlan plan, PlanSelect(*stmt.select, catalog_, options_));
      plan_span.SetAttribute("ctes", static_cast<int64_t>(plan.ctes.size()));
      plan_span.End();
      result.stats.plan_seconds = watch.ElapsedSeconds();
      if (stmt.select->explain && !stmt.select->explain_analyze) {
        // EXPLAIN: one text row per plan line, no execution.
        result.relation = TextDumpRelation(plan.ToString());
        return result;
      }
      watch.Restart();
      ExecutorOptions exec_options = executor_options_;
      exec_options.trace = trace_;
      EINSQL_ASSIGN_OR_RETURN(
          Relation relation,
          ExecutePlan(plan, exec_options, &last_profile_));
      has_last_profile_ = true;
      result.stats.exec_seconds = watch.ElapsedSeconds();
      if (stmt.select->explain_analyze) {
        // EXPLAIN ANALYZE: the annotated plan text replaces the result
        // rows; the profile stays queryable via last_profile().
        result.relation = TextDumpRelation(last_profile_.ToString());
      } else {
        result.relation = std::move(relation);
      }
      return result;
    }
    case StatementKind::kCreateTable: {
      std::vector<Column> columns;
      for (const auto& [name, type] : stmt.create_table->columns) {
        columns.push_back({name, type});
      }
      EINSQL_RETURN_IF_ERROR(
          catalog_.CreateTable(stmt.create_table->table, std::move(columns)));
      return result;
    }
    case StatementKind::kInsert: {
      const InsertStmt& insert = *stmt.insert;
      EINSQL_ASSIGN_OR_RETURN(auto table, catalog_.GetTable(insert.table));
      // Optional column list: map values into the declared positions.
      std::vector<int> positions;
      if (!insert.columns.empty()) {
        for (const std::string& name : insert.columns) {
          const int index = table->ColumnIndex(name);
          if (index < 0) {
            return Status::NotFound("column '", name, "' in table '",
                                    insert.table, "'");
          }
          positions.push_back(index);
        }
      }
      std::vector<Row> rows;
      rows.reserve(insert.rows.size());
      for (const auto& exprs : insert.rows) {
        const size_t expected =
            positions.empty() ? table->columns.size() : positions.size();
        if (exprs.size() != expected) {
          return Status::InvalidArgument("INSERT row arity ", exprs.size(),
                                         " does not match ", expected);
        }
        Row row(table->columns.size(), Value(Null{}));
        for (size_t k = 0; k < exprs.size(); ++k) {
          EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*exprs[k]));
          row[positions.empty() ? k : positions[k]] = std::move(v);
        }
        rows.push_back(std::move(row));
      }
      watch.Restart();
      EINSQL_RETURN_IF_ERROR(
          catalog_.AppendRows(insert.table, std::move(rows)));
      result.stats.exec_seconds = watch.ElapsedSeconds();
      return result;
    }
    case StatementKind::kDropTable:
      EINSQL_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table,
                                                stmt.drop_table->if_exists));
      return result;
    case StatementKind::kDelete: {
      const DeleteStmt& del = *stmt.delete_stmt;
      EINSQL_ASSIGN_OR_RETURN(auto table, catalog_.GetTable(del.table));
      if (!del.where) {
        table->rows.clear();
        return result;
      }
      // Bind the predicate against the table schema.
      Schema schema;
      for (const Column& col : table->columns) {
        schema.push_back({del.table, col.name});
      }
      auto predicate = del.where->Clone();
      // Reuse the planner's binder through a tiny local bind.
      std::vector<Row> kept;
      struct Binder {
        static Status Bind(Expr* e, const Schema& s) {
          if (e->kind == ExprKind::kColumnRef) {
            EINSQL_ASSIGN_OR_RETURN(e->bound_slot,
                                    ResolveColumn(s, e->table, e->column));
            return Status::OK();
          }
          if (e->left) EINSQL_RETURN_IF_ERROR(Bind(e->left.get(), s));
          if (e->right) EINSQL_RETURN_IF_ERROR(Bind(e->right.get(), s));
          for (auto& arg : e->args) {
            EINSQL_RETURN_IF_ERROR(Bind(arg.get(), s));
          }
          for (auto& [when, then] : e->case_whens) {
            EINSQL_RETURN_IF_ERROR(Bind(when.get(), s));
            EINSQL_RETURN_IF_ERROR(Bind(then.get(), s));
          }
          if (e->case_else) {
            EINSQL_RETURN_IF_ERROR(Bind(e->case_else.get(), s));
          }
          return Status::OK();
        }
      };
      EINSQL_RETURN_IF_ERROR(Binder::Bind(predicate.get(), schema));
      for (const Row& row : table->rows) {
        EINSQL_ASSIGN_OR_RETURN(Value matches, EvaluateExpr(*predicate, row));
        if (!IsTrue(matches)) kept.push_back(row);
      }
      table->rows = std::move(kept);
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryPlan> Database::Prepare(std::string_view sql, QueryStats* stats) {
  Stopwatch watch;
  EINSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  const double parse_seconds = watch.ElapsedSeconds();
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("Prepare expects a SELECT statement");
  }
  watch.Restart();
  EINSQL_ASSIGN_OR_RETURN(QueryPlan plan,
                          PlanSelect(*stmt.select, catalog_, options_));
  if (stats != nullptr) {
    stats->parse_seconds = parse_seconds;
    stats->plan_seconds = watch.ElapsedSeconds();
  }
  return plan;
}

Result<QueryResult> Database::ExecutePrepared(const QueryPlan& plan) {
  QueryResult result;
  Stopwatch watch;
  ExecutorOptions exec_options = executor_options_;
  exec_options.trace = trace_;
  has_last_profile_ = false;  // invalidated even if execution fails
  EINSQL_ASSIGN_OR_RETURN(
      result.relation, ExecutePlan(plan, exec_options, &last_profile_));
  has_last_profile_ = true;
  result.stats.exec_seconds = watch.ElapsedSeconds();
  return result;
}

Status Database::CreateTable(const std::string& name,
                             std::vector<Column> columns) {
  return catalog_.CreateTable(name, std::move(columns));
}

Status Database::BulkInsert(const std::string& name, std::vector<Row> rows) {
  return catalog_.AppendRows(name, std::move(rows));
}

}  // namespace einsql::minidb
