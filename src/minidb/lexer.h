#ifndef EINSQL_MINIDB_LEXER_H_
#define EINSQL_MINIDB_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace einsql::minidb {

/// SQL token kinds. Keywords are recognized case-insensitively; anything
/// alphabetic that is not a keyword is an identifier (so aggregate function
/// names like SUM arrive as identifiers and are resolved by the parser).
/// EXPLAIN and ANALYZE are *non-reserved* keywords: the lexer tags them so
/// the parser can recognize `EXPLAIN [ANALYZE] SELECT ...` without an
/// identifier-text peek, but the parser still accepts them wherever an
/// identifier is expected (so `SELECT explain FROM t` works).
enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // Keywords.
  kSelect, kFrom, kWhere, kGroup, kBy, kOrder, kAsc, kDesc, kLimit, kAs,
  kWith, kValues, kAnd, kOr, kNot, kCreate, kTable, kInsert, kInto, kDrop,
  kNull, kDistinct, kCross, kJoin, kInner, kOn, kDelete, kCase, kWhen,
  kThen, kElse, kEnd, kBetween, kIn, kIs, kUnion, kAll, kExplain, kAnalyze,
  // Punctuation and operators.
  kLParen, kRParen, kComma, kDot, kStar, kPlus, kMinus, kSlash, kPercent,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq, kSemicolon,
};

/// Returns a printable name for diagnostics.
const char* TokenKindToString(TokenKind kind);

/// One lexed token with its source text and position.
struct Token {
  TokenKind kind = TokenKind::kEof;
  /// Raw text (identifier spelling, literal text without quotes).
  std::string text;
  /// Numeric payloads for literals.
  int64_t int_value = 0;
  double double_value = 0.0;
  /// 1-based line/column of the first character, for error messages.
  int line = 1;
  int column = 1;
};

/// Tokenizes a SQL string. Supports `--` line comments, single-quoted
/// strings with '' escaping, and double-quoted identifiers.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace einsql::minidb

#endif  // EINSQL_MINIDB_LEXER_H_
