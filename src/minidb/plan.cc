#include "minidb/plan.h"

#include <sstream>

#include "common/str_util.h"

namespace einsql::minidb {

Result<int> ResolveColumn(const Schema& schema, const std::string& qualifier,
                          const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!EqualsIgnoreCase(schema[i].name, name)) continue;
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(schema[i].qualifier, qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '",
                                     qualifier.empty() ? name
                                                       : qualifier + "." + name,
                                     "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("column '",
                            qualifier.empty() ? name : qualifier + "." + name,
                            "' not found");
  }
  return found;
}

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan: return "Scan";
    case PlanKind::kCteScan: return "CteScan";
    case PlanKind::kValues: return "Values";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kJoin: return "HashJoin";
    case PlanKind::kAggregate: return "HashAggregate";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kDistinct: return "Distinct";
    case PlanKind::kAppend: return "Append";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  for (const auto& child : children) copy->children.push_back(child->Clone());
  copy->schema = schema;
  copy->est_rows = est_rows;
  copy->table = table;
  copy->table_name = table_name;
  copy->alias = alias;
  copy->cte_index = cte_index;
  copy->cte_name = cte_name;
  copy->literal_rows = literal_rows;
  if (predicate) copy->predicate = predicate->Clone();
  copy->left_keys = left_keys;
  copy->right_keys = right_keys;
  copy->typed_int_keys = typed_int_keys;
  for (const auto& e : exprs) copy->exprs.push_back(e->Clone());
  for (const auto& e : group_exprs) copy->group_exprs.push_back(e->Clone());
  for (const auto& e : sort_exprs) copy->sort_exprs.push_back(e->Clone());
  copy->sort_desc = sort_desc;
  copy->limit = limit;
  return copy;
}

std::string PlanNode::Fingerprint() const {
  std::ostringstream os;
  os << PlanKindToString(kind) << "(";
  switch (kind) {
    case PlanKind::kScan:
      os << table_name;
      break;
    case PlanKind::kCteScan:
      os << "cte:" << cte_index;
      break;
    case PlanKind::kValues:
      for (const Row& row : literal_rows) {
        os << "[";
        for (const Value& v : row) os << ValueToString(v) << ",";
        os << "]";
      }
      break;
    default:
      break;
  }
  if (predicate) os << " pred=" << predicate->ToString();
  if (!left_keys.empty()) {
    os << " keys=";
    for (size_t i = 0; i < left_keys.size(); ++i) {
      os << left_keys[i] << ":" << right_keys[i] << ",";
    }
  }
  for (const auto& e : exprs) os << " e=" << e->ToString();
  for (const auto& e : group_exprs) os << " g=" << e->ToString();
  for (const auto& e : sort_exprs) os << " s=" << e->ToString();
  if (limit >= 0) os << " limit=" << limit;
  for (const auto& child : children) os << " " << child->Fingerprint();
  os << ")";
  return os.str();
}

std::string PlanNode::HeadLine() const {
  std::ostringstream os;
  os << PlanKindToString(kind);
  switch (kind) {
    case PlanKind::kScan:
      os << " " << table_name;
      if (!alias.empty() && alias != table_name) os << " AS " << alias;
      break;
    case PlanKind::kCteScan:
      os << " " << cte_name;
      break;
    case PlanKind::kValues:
      os << " (" << literal_rows.size() << " rows)";
      break;
    case PlanKind::kJoin:
      if (left_keys.empty()) os << " (cross)";
      break;
    default:
      break;
  }
  if (predicate) os << " [" << predicate->ToString() << "]";
  return os.str();
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  os << std::string(indent * 2, ' ') << HeadLine();
  os << "  ~" << static_cast<int64_t>(est_rows) << " rows\n";
  for (const auto& child : children) os << child->ToString(indent + 1);
  return os.str();
}

std::string QueryPlan::ToString() const {
  std::ostringstream os;
  for (const auto& cte : ctes) {
    os << "CTE " << cte.name << " (~"
       << static_cast<int64_t>(cte.plan->est_rows) << " rows):\n"
       << cte.plan->ToString(1);
  }
  os << "Main:\n" << root->ToString(1);
  return os.str();
}

}  // namespace einsql::minidb
