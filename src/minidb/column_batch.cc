#include "minidb/column_batch.h"

namespace einsql::minidb {

Value ColumnVector::GetValue(int64_t i) const {
  if (!valid[i]) return Value(Null{});
  switch (kind) {
    case Kind::kInt:
      return Value(ints[i]);
    case Kind::kDouble:
      return Value(doubles[i]);
    case Kind::kText:
      return Value(texts[i]);
    case Kind::kValue:
      return values[i];
  }
  return Value(Null{});
}

ColumnVector ColumnVector::Constant(const Value& v, int64_t n) {
  ColumnVector col;
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return Nulls(n);
    case ValueType::kInt:
      col.kind = Kind::kInt;
      col.ints.assign(n, std::get<int64_t>(v));
      break;
    case ValueType::kDouble:
      col.kind = Kind::kDouble;
      col.doubles.assign(n, std::get<double>(v));
      break;
    case ValueType::kText:
      col.kind = Kind::kText;
      col.texts.assign(n, std::get<std::string>(v));
      break;
  }
  col.valid.assign(n, 1);
  return col;
}

ColumnVector ColumnVector::Nulls(int64_t n) {
  ColumnVector col;
  col.kind = Kind::kInt;
  col.ints.assign(n, 0);
  col.valid.assign(n, 0);
  return col;
}

ColumnVector ColumnVector::FromInts(std::vector<int64_t> data) {
  ColumnVector col;
  col.kind = Kind::kInt;
  col.valid.assign(data.size(), 1);
  col.ints = std::move(data);
  return col;
}

ColumnVector ColumnVector::FromRows(const std::vector<Row>& rows,
                                    int64_t begin, int64_t end, int col) {
  const int64_t n = end - begin;
  // Optimistic single pass for the dominant case — an all-int64/NULL
  // column (COO coordinates, join keys). Bails to the classifying
  // two-pass build on the first other storage class; the re-read prefix is
  // chunk-sized and already cache-hot, so the bail costs at most one extra
  // warm pass.
  {
    ColumnVector out;
    out.kind = Kind::kInt;
    out.valid.assign(n, 1);
    out.ints.resize(n);
    int64_t r = begin;
    for (; r < end; ++r) {
      const Value& v = rows[r][col];
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out.ints[r - begin] = *i;
        continue;
      }
      if (IsNull(v)) {
        out.ints[r - begin] = 0;
        out.valid[r - begin] = 0;
        continue;
      }
      break;
    }
    if (r == end) return out;
  }
  // First pass: classify the storage classes actually present.
  bool has_int = false, has_double = false, has_text = false;
  for (int64_t r = begin; r < end; ++r) {
    switch (TypeOf(rows[r][col])) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        has_int = true;
        break;
      case ValueType::kDouble:
        has_double = true;
        break;
      case ValueType::kText:
        has_text = true;
        break;
    }
  }
  ColumnVector out;
  out.valid.assign(n, 1);
  const int classes = (has_int ? 1 : 0) + (has_double ? 1 : 0) +
                      (has_text ? 1 : 0);
  if (classes > 1) {
    // Mixed storage classes: keep the variants.
    out.kind = Kind::kValue;
    out.values.reserve(n);
    for (int64_t r = begin; r < end; ++r) {
      const Value& v = rows[r][col];
      if (IsNull(v)) out.valid[r - begin] = 0;
      out.values.push_back(v);
    }
    return out;
  }
  if (has_double) {
    out.kind = Kind::kDouble;
    out.doubles.assign(n, 0.0);
    for (int64_t r = begin; r < end; ++r) {
      const Value& v = rows[r][col];
      if (const double* d = std::get_if<double>(&v)) {
        out.doubles[r - begin] = *d;
      } else {
        out.valid[r - begin] = 0;
      }
    }
    return out;
  }
  if (has_text) {
    out.kind = Kind::kText;
    out.texts.assign(n, std::string());
    for (int64_t r = begin; r < end; ++r) {
      const Value& v = rows[r][col];
      if (const std::string* s = std::get_if<std::string>(&v)) {
        out.texts[r - begin] = *s;
      } else {
        out.valid[r - begin] = 0;
      }
    }
    return out;
  }
  // All int or all NULL.
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  for (int64_t r = begin; r < end; ++r) {
    const Value& v = rows[r][col];
    if (const int64_t* i = std::get_if<int64_t>(&v)) {
      out.ints[r - begin] = *i;
    } else {
      out.valid[r - begin] = 0;
    }
  }
  return out;
}

const ColumnVector& ColumnBatch::Column(int slot) const {
  if (slot >= static_cast<int>(columns_.size())) {
    columns_.resize(slot + 1);
  }
  if (columns_[slot] == nullptr) {
    columns_[slot] = std::make_unique<ColumnVector>(
        ColumnVector::FromRows(*rows_, begin_, end_, slot));
  }
  return *columns_[slot];
}

}  // namespace einsql::minidb
