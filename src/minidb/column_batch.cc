#include "minidb/column_batch.h"

namespace einsql::minidb {

Value ColumnVector::GetValue(int64_t i) const {
  if (!valid[i]) return Value(Null{});
  switch (kind) {
    case Kind::kInt:
      return Value(ints[i]);
    case Kind::kDouble:
      return Value(doubles[i]);
    case Kind::kText:
      return Value(texts[i]);
    case Kind::kValue:
      return values[i];
  }
  return Value(Null{});
}

ColumnVector ColumnVector::Constant(const Value& v, int64_t n) {
  ColumnVector col;
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return Nulls(n);
    case ValueType::kInt:
      col.kind = Kind::kInt;
      col.ints.assign(n, std::get<int64_t>(v));
      break;
    case ValueType::kDouble:
      col.kind = Kind::kDouble;
      col.doubles.assign(n, std::get<double>(v));
      break;
    case ValueType::kText:
      col.kind = Kind::kText;
      col.texts.assign(n, std::get<std::string>(v));
      break;
  }
  col.valid.assign(n, 1);
  return col;
}

ColumnVector ColumnVector::Nulls(int64_t n) {
  ColumnVector col;
  col.kind = Kind::kInt;
  col.ints.assign(n, 0);
  col.valid.assign(n, 0);
  return col;
}

ColumnVector ColumnVector::FromInts(std::vector<int64_t> data) {
  ColumnVector col;
  col.kind = Kind::kInt;
  col.valid.assign(data.size(), 1);
  col.ints = std::move(data);
  return col;
}

namespace {

using Kind = ColumnVector::Kind;

// Shared transpose body: builds the column from the n row indices produced
// by `at(j)` (dense iota for a plain morsel, a gather for a selected
// batch). `at` is an inlineable functor, so the dense instantiation
// compiles to exactly the historical sequential scan.
template <typename IndexFn>
ColumnVector BuildColumn(const std::vector<Row>& rows, int64_t n, int col,
                         IndexFn at) {
  // Optimistic single pass for the dominant case — an all-int64/NULL
  // column (COO coordinates, join keys). Bails to the classifying
  // two-pass build on the first other storage class; the re-read prefix is
  // chunk-sized and already cache-hot, so the bail costs at most one extra
  // warm pass.
  {
    ColumnVector out;
    out.kind = Kind::kInt;
    out.valid.assign(n, 1);
    out.ints.resize(n);
    int64_t j = 0;
    for (; j < n; ++j) {
      const Value& v = rows[at(j)][col];
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out.ints[j] = *i;
        continue;
      }
      if (IsNull(v)) {
        out.ints[j] = 0;
        out.valid[j] = 0;
        continue;
      }
      break;
    }
    if (j == n) return out;
  }
  // First pass: classify the storage classes actually present.
  bool has_int = false, has_double = false, has_text = false;
  for (int64_t j = 0; j < n; ++j) {
    switch (TypeOf(rows[at(j)][col])) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        has_int = true;
        break;
      case ValueType::kDouble:
        has_double = true;
        break;
      case ValueType::kText:
        has_text = true;
        break;
    }
  }
  ColumnVector out;
  out.valid.assign(n, 1);
  const int classes = (has_int ? 1 : 0) + (has_double ? 1 : 0) +
                      (has_text ? 1 : 0);
  if (classes > 1) {
    // Mixed storage classes: keep the variants.
    out.kind = Kind::kValue;
    out.values.reserve(n);
    for (int64_t j = 0; j < n; ++j) {
      const Value& v = rows[at(j)][col];
      if (IsNull(v)) out.valid[j] = 0;
      out.values.push_back(v);
    }
    return out;
  }
  if (has_double) {
    out.kind = Kind::kDouble;
    out.doubles.assign(n, 0.0);
    for (int64_t j = 0; j < n; ++j) {
      const Value& v = rows[at(j)][col];
      if (const double* d = std::get_if<double>(&v)) {
        out.doubles[j] = *d;
      } else {
        out.valid[j] = 0;
      }
    }
    return out;
  }
  if (has_text) {
    out.kind = Kind::kText;
    out.texts.assign(n, std::string());
    for (int64_t j = 0; j < n; ++j) {
      const Value& v = rows[at(j)][col];
      if (const std::string* s = std::get_if<std::string>(&v)) {
        out.texts[j] = *s;
      } else {
        out.valid[j] = 0;
      }
    }
    return out;
  }
  // All int or all NULL.
  out.kind = Kind::kInt;
  out.ints.assign(n, 0);
  for (int64_t j = 0; j < n; ++j) {
    const Value& v = rows[at(j)][col];
    if (const int64_t* i = std::get_if<int64_t>(&v)) {
      out.ints[j] = *i;
    } else {
      out.valid[j] = 0;
    }
  }
  return out;
}

}  // namespace

ColumnVector ColumnVector::FromRows(const std::vector<Row>& rows,
                                    int64_t begin, int64_t end, int col) {
  return BuildColumn(rows, end - begin, col,
                     [begin](int64_t j) { return begin + j; });
}

ColumnVector ColumnVector::FromRows(const std::vector<Row>& rows,
                                    int64_t begin, const SelVector& sel,
                                    int col) {
  return BuildColumn(rows, sel.size(), col,
                     [begin, &sel](int64_t j) { return begin + sel.idx[j]; });
}

const ColumnVector& ColumnBatch::Column(int slot) const {
  if (slot >= static_cast<int>(columns_.size())) {
    columns_.resize(slot + 1);
  }
  if (columns_[slot] == nullptr) {
    columns_[slot] = std::make_unique<ColumnVector>(
        sel_ ? ColumnVector::FromRows(*rows_, begin_, *sel_, slot)
             : ColumnVector::FromRows(*rows_, begin_, end_, slot));
  }
  return *columns_[slot];
}

}  // namespace einsql::minidb
