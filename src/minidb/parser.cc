#include "minidb/parser.h"

#include "common/str_util.h"

namespace einsql::minidb {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    bool explain = false;
    bool analyze = false;
    if (Accept(TokenKind::kExplain)) {
      explain = true;
      analyze = Accept(TokenKind::kAnalyze);
    }
    const Token& t = Peek();
    if (explain && t.kind != TokenKind::kWith &&
        t.kind != TokenKind::kSelect && t.kind != TokenKind::kValues) {
      return Error(analyze ? "EXPLAIN ANALYZE requires a SELECT statement"
                           : "EXPLAIN requires a SELECT statement");
    }
    if (t.kind == TokenKind::kWith || t.kind == TokenKind::kSelect ||
        t.kind == TokenKind::kValues) {
      EINSQL_ASSIGN_OR_RETURN(auto select, ParseSelectStmt());
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::move(select);
      stmt.select->explain = explain;
      stmt.select->explain_analyze = analyze;
    } else if (t.kind == TokenKind::kCreate) {
      EINSQL_ASSIGN_OR_RETURN(auto create, ParseCreateTable());
      stmt.kind = StatementKind::kCreateTable;
      stmt.create_table = std::move(create);
    } else if (t.kind == TokenKind::kInsert) {
      EINSQL_ASSIGN_OR_RETURN(auto insert, ParseInsert());
      stmt.kind = StatementKind::kInsert;
      stmt.insert = std::move(insert);
    } else if (t.kind == TokenKind::kDrop) {
      EINSQL_ASSIGN_OR_RETURN(auto drop, ParseDropTable());
      stmt.kind = StatementKind::kDropTable;
      stmt.drop_table = std::move(drop);
    } else if (t.kind == TokenKind::kDelete) {
      EINSQL_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt.kind = StatementKind::kDelete;
      stmt.delete_stmt = std::move(del);
    } else {
      return Error("expected a statement");
    }
    (void)Accept(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEof) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseLoneExpression() {
    EINSQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
    if (Peek().kind != TokenKind::kEof) {
      return Error("trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t k = pos_ + ahead;
    if (k >= tokens_.size()) k = tokens_.size() - 1;
    return tokens_[k];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      return Error(StrCat("expected ", TokenKindToString(kind), ", found ",
                          TokenKindToString(Peek().kind)));
    }
    return Status::OK();
  }

  // Non-reserved keywords: tokens the lexer tags for statement-level
  // dispatch but that remain usable wherever an identifier is expected
  // (column, table, or alias names).
  static bool IsNonReservedKeyword(TokenKind kind) {
    return kind == TokenKind::kExplain || kind == TokenKind::kAnalyze;
  }

  bool PeekIdentifier(int ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kIdentifier ||
           IsNonReservedKeyword(Peek(ahead).kind);
  }

  Result<std::string> ExpectIdentifier() {
    if (!PeekIdentifier()) {
      return Error(StrCat("expected identifier, found ",
                          TokenKindToString(Peek().kind)));
    }
    return Advance().text;
  }

  // Uniform parse error with position info; converts implicitly to any
  // Result<T> via the Status constructor.
  Status Error(const std::string& message) const {
    return Status::ParseError(message, " at line ", Peek().line, ", column ",
                              Peek().column);
  }

  // --- statements ---

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    auto stmt = std::make_unique<SelectStmt>();
    if (Accept(TokenKind::kWith)) {
      do {
        CommonTableExpr cte;
        EINSQL_ASSIGN_OR_RETURN(cte.name, ExpectIdentifier());
        if (Accept(TokenKind::kLParen)) {
          do {
            EINSQL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
            cte.column_names.push_back(std::move(col));
          } while (Accept(TokenKind::kComma));
          EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        }
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kAs));
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        EINSQL_ASSIGN_OR_RETURN(auto body, ParseQueryBody());
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        cte.body = std::move(body);
        stmt->ctes.push_back(std::move(cte));
      } while (Accept(TokenKind::kComma));
    }
    EINSQL_ASSIGN_OR_RETURN(auto body, ParseQueryBody());
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<std::unique_ptr<QueryBody>> ParseQueryBody() {
    auto body = std::make_unique<QueryBody>();
    if (Accept(TokenKind::kValues)) {
      body->is_values = true;
      do {
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        std::vector<std::unique_ptr<Expr>> row;
        do {
          EINSQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
          row.push_back(std::move(expr));
        } while (Accept(TokenKind::kComma));
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        body->values_rows.push_back(std::move(row));
      } while (Accept(TokenKind::kComma));
      return body;
    }
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    body->distinct = Accept(TokenKind::kDistinct);
    // Select list.
    do {
      SelectItem item;
      if (Accept(TokenKind::kStar)) {
        item.is_star = true;
      } else {
        EINSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept(TokenKind::kAs)) {
          EINSQL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (PeekIdentifier()) {
          item.alias = Advance().text;
        }
      }
      body->select_list.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    // FROM with comma / JOIN syntax.
    if (Accept(TokenKind::kFrom)) {
      EINSQL_RETURN_IF_ERROR(ParseTableRef(body.get()));
      while (true) {
        if (Accept(TokenKind::kComma)) {
          EINSQL_RETURN_IF_ERROR(ParseTableRef(body.get()));
          continue;
        }
        const bool cross = Peek().kind == TokenKind::kCross;
        const bool inner = Peek().kind == TokenKind::kInner;
        if (cross || inner || Peek().kind == TokenKind::kJoin) {
          if (cross || inner) Advance();
          EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kJoin));
          EINSQL_RETURN_IF_ERROR(ParseTableRef(body.get()));
          if (Accept(TokenKind::kOn)) {
            if (cross) return Error("CROSS JOIN cannot have ON");
            EINSQL_ASSIGN_OR_RETURN(auto cond, ParseExpr());
            // Fold ON conditions into WHERE; the planner re-derives join
            // predicates from the conjuncts.
            body->where = body->where
                              ? MakeBinary(BinaryOp::kAnd,
                                           std::move(body->where),
                                           std::move(cond))
                              : std::move(cond);
          }
          continue;
        }
        break;
      }
    }
    if (Accept(TokenKind::kWhere)) {
      EINSQL_ASSIGN_OR_RETURN(auto where, ParseExpr());
      body->where = body->where
                        ? MakeBinary(BinaryOp::kAnd, std::move(body->where),
                                     std::move(where))
                        : std::move(where);
    }
    if (Accept(TokenKind::kGroup)) {
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kBy));
      do {
        EINSQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        body->group_by.push_back(std::move(expr));
      } while (Accept(TokenKind::kComma));
    }
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, "having")) {
      Advance();
      if (body->group_by.empty()) {
        return Error("HAVING requires GROUP BY");
      }
      EINSQL_ASSIGN_OR_RETURN(body->having, ParseExpr());
    }
    while (Accept(TokenKind::kUnion)) {
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kAll));
      // The recursive call consumes the rest of the union including the
      // trailing ORDER BY/LIMIT, which by SQL semantics apply to the whole
      // union: hoist them to this (outermost) body.
      EINSQL_ASSIGN_OR_RETURN(auto member, ParseQueryBody());
      if (member->is_values) {
        return Error("UNION ALL members must be SELECT statements");
      }
      body->order_by = std::move(member->order_by);
      body->limit = member->limit;
      member->order_by.clear();
      member->limit.reset();
      // Flatten right-nested unions produced by the recursive call.
      std::vector<std::unique_ptr<QueryBody>> nested =
          std::move(member->union_all);
      body->union_all.push_back(std::move(member));
      for (auto& inner : nested) body->union_all.push_back(std::move(inner));
    }
    if (Accept(TokenKind::kOrder)) {
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kBy));
      do {
        OrderItem item;
        EINSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept(TokenKind::kDesc)) {
          item.descending = true;
        } else {
          (void)Accept(TokenKind::kAsc);
        }
        body->order_by.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    if (Accept(TokenKind::kLimit)) {
      if (Accept(TokenKind::kMinus)) {
        return Error("LIMIT must be non-negative");
      }
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("LIMIT requires an integer literal");
      }
      body->limit = Advance().int_value;
    }
    return body;
  }

  Status ParseTableRef(QueryBody* body) {
    TableRef ref;
    EINSQL_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    if (Accept(TokenKind::kAs)) {
      EINSQL_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (PeekIdentifier()) {
      ref.alias = Advance().text;
    }
    body->from.push_back(std::move(ref));
    return Status::OK();
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kCreate));
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kTable));
    auto stmt = std::make_unique<CreateTableStmt>();
    EINSQL_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    do {
      EINSQL_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      EINSQL_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      const std::string lower = ToLower(type_name);
      ValueType type;
      if (lower == "int" || lower == "integer" || lower == "bigint") {
        type = ValueType::kInt;
      } else if (lower == "double" || lower == "real" || lower == "float") {
        type = ValueType::kDouble;
      } else if (lower == "text" || lower == "varchar" || lower == "string") {
        type = ValueType::kText;
        // VARCHAR(n) style length suffix.
        if (Accept(TokenKind::kLParen)) {
          if (Peek().kind == TokenKind::kIntLiteral) Advance();
          EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        }
      } else {
        return Error(
            StrCat("unknown column type '", type_name, "'"));
      }
      stmt->columns.emplace_back(std::move(name), type);
    } while (Accept(TokenKind::kComma));
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return stmt;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kInsert));
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kInto));
    auto stmt = std::make_unique<InsertStmt>();
    EINSQL_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (Accept(TokenKind::kLParen)) {
      do {
        EINSQL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->columns.push_back(std::move(col));
      } while (Accept(TokenKind::kComma));
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kValues));
    do {
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<std::unique_ptr<Expr>> row;
      do {
        EINSQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        row.push_back(std::move(expr));
      } while (Accept(TokenKind::kComma));
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      stmt->rows.push_back(std::move(row));
    } while (Accept(TokenKind::kComma));
    return stmt;
  }

  Result<std::unique_ptr<DropTableStmt>> ParseDropTable() {
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kDrop));
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kTable));
    auto stmt = std::make_unique<DropTableStmt>();
    // Optional IF EXISTS (both arrive as identifiers).
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, "if") &&
        Peek(1).kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek(1).text, "exists")) {
      Advance();
      Advance();
      stmt->if_exists = true;
    }
    EINSQL_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kDelete));
    EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    auto stmt = std::make_unique<DeleteStmt>();
    EINSQL_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (Accept(TokenKind::kWhere)) {
      EINSQL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  // --- expressions (precedence climbing) ---

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    EINSQL_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      EINSQL_ASSIGN_OR_RETURN(auto right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    EINSQL_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      EINSQL_ASSIGN_OR_RETURN(auto right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Accept(TokenKind::kNot)) {
      EINSQL_ASSIGN_OR_RETURN(auto operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->left = std::move(operand);
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    EINSQL_ASSIGN_OR_RETURN(auto left, ParseAdditive());
    if (Accept(TokenKind::kBetween)) {
      // x BETWEEN lo AND hi  ==  x >= lo AND x <= hi.
      EINSQL_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kAnd));
      EINSQL_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      auto lower = MakeBinary(BinaryOp::kGtEq, left->Clone(), std::move(lo));
      auto upper = MakeBinary(BinaryOp::kLtEq, std::move(left), std::move(hi));
      return MakeBinary(BinaryOp::kAnd, std::move(lower), std::move(upper));
    }
    if (Accept(TokenKind::kIn)) {
      // x IN (a, b, ...)  ==  x = a OR x = b OR ...
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::unique_ptr<Expr> disjunction;
      do {
        EINSQL_ASSIGN_OR_RETURN(auto candidate, ParseExpr());
        auto eq = MakeBinary(BinaryOp::kEq, left->Clone(),
                             std::move(candidate));
        disjunction = disjunction
                          ? MakeBinary(BinaryOp::kOr, std::move(disjunction),
                                       std::move(eq))
                          : std::move(eq);
      } while (Accept(TokenKind::kComma));
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return disjunction;
    }
    if (Accept(TokenKind::kIs)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->is_null_negated = Accept(TokenKind::kNot);
      EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kNull));
      e->left = std::move(left);
      return e;
    }
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNotEq: op = BinaryOp::kNotEq; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLtEq: op = BinaryOp::kLtEq; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGtEq: op = BinaryOp::kGtEq; break;
      default:
        return left;
    }
    Advance();
    EINSQL_ASSIGN_OR_RETURN(auto right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    EINSQL_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      Advance();
      EINSQL_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    EINSQL_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      Advance();
      EINSQL_ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      EINSQL_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      // Fold negation of literals so "-3" is a literal, not an expression.
      if (operand->kind == ExprKind::kLiteral &&
          TypeOf(operand->literal) != ValueType::kText) {
        EINSQL_ASSIGN_OR_RETURN(Value negated, Negate(operand->literal));
        return MakeLiteral(std::move(negated));
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNegate;
      e->left = std::move(operand);
      return e;
    }
    (void)Accept(TokenKind::kPlus);
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return MakeLiteral(Value(t.int_value));
      case TokenKind::kFloatLiteral:
        Advance();
        return MakeLiteral(Value(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value(t.text));
      case TokenKind::kNull:
        Advance();
        return MakeLiteral(Value(Null{}));
      case TokenKind::kLParen: {
        Advance();
        EINSQL_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return expr;
      }
      case TokenKind::kCase: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCase;
        if (Peek().kind != TokenKind::kWhen) {
          return Error("searched CASE requires WHEN (simple CASE is not "
                       "supported)");
        }
        while (Accept(TokenKind::kWhen)) {
          EINSQL_ASSIGN_OR_RETURN(auto when, ParseExpr());
          EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kThen));
          EINSQL_ASSIGN_OR_RETURN(auto then, ParseExpr());
          e->case_whens.emplace_back(std::move(when), std::move(then));
        }
        if (Accept(TokenKind::kElse)) {
          EINSQL_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
        }
        EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
        return e;
      }
      case TokenKind::kExplain:
      case TokenKind::kAnalyze:
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        if (Accept(TokenKind::kLParen)) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunction;
          e->function = ToLower(name);
          if (Accept(TokenKind::kStar)) {
            e->star_argument = true;
          } else if (Peek().kind != TokenKind::kRParen) {
            do {
              EINSQL_ASSIGN_OR_RETURN(auto arg, ParseExpr());
              e->args.push_back(std::move(arg));
            } while (Accept(TokenKind::kComma));
          }
          EINSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return e;
        }
        if (Accept(TokenKind::kDot)) {
          EINSQL_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
          return MakeColumnRef(std::move(name), std::move(column));
        }
        return MakeColumnRef("", std::move(name));
      }
      default:
        return Error(
            StrCat("unexpected ", TokenKindToString(t.kind),
                   " in expression"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  EINSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<Expr>> ParseExpression(std::string_view text) {
  EINSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseLoneExpression();
}

}  // namespace einsql::minidb
