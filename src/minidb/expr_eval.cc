#include "minidb/expr_eval.h"

#include <cmath>

namespace einsql::minidb {

Result<Value> EvaluateComparison(BinaryOp op, const Value& a,
                                 const Value& b) {
  if (IsNull(a) || IsNull(b)) return Value(Null{});
  const int c = CompareValues(a, b);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq: result = c == 0; break;
    case BinaryOp::kNotEq: result = c != 0; break;
    case BinaryOp::kLt: result = c < 0; break;
    case BinaryOp::kLtEq: result = c <= 0; break;
    case BinaryOp::kGt: result = c > 0; break;
    case BinaryOp::kGtEq: result = c >= 0; break;
    default:
      return Status::Internal("Compare called with non-comparison operator");
  }
  return Value(static_cast<int64_t>(result ? 1 : 0));
}

namespace {

Result<Value> EvaluateScalarFunction(const Expr& expr,
                                     const std::vector<Value>& args) {
  const std::string& f = expr.function;
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument("function ", f, " expects ", n,
                                     " arguments, got ", args.size());
    }
    return Status::OK();
  };
  if (f == "coalesce") {
    for (const Value& v : args) {
      if (!IsNull(v)) return v;
    }
    return Value(Null{});
  }
  if (f == "length") {
    EINSQL_RETURN_IF_ERROR(need(1));
    if (IsNull(args[0])) return Value(Null{});
    if (TypeOf(args[0]) != ValueType::kText) {
      return Status::InvalidArgument("length() expects text");
    }
    return Value(static_cast<int64_t>(std::get<std::string>(args[0]).size()));
  }
  if (f == "mod") {
    EINSQL_RETURN_IF_ERROR(need(2));
    return Modulo(args[0], args[1]);
  }
  // Remaining functions are numeric with NULL propagation.
  for (const Value& v : args) {
    if (IsNull(v)) return Value(Null{});
  }
  if (f == "abs") {
    EINSQL_RETURN_IF_ERROR(need(1));
    if (TypeOf(args[0]) == ValueType::kInt) {
      return Value(std::abs(std::get<int64_t>(args[0])));
    }
    EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(args[0]));
    return Value(std::abs(d));
  }
  auto unary_double = [&](double (*fn)(double)) -> Result<Value> {
    EINSQL_RETURN_IF_ERROR(need(1));
    EINSQL_ASSIGN_OR_RETURN(double d, AsDouble(args[0]));
    return Value(fn(d));
  };
  if (f == "floor") return unary_double(std::floor);
  if (f == "ceil" || f == "ceiling") return unary_double(std::ceil);
  if (f == "sqrt") return unary_double(std::sqrt);
  if (f == "exp") return unary_double(std::exp);
  if (f == "ln") return unary_double(std::log);
  if (f == "pow" || f == "power") {
    EINSQL_RETURN_IF_ERROR(need(2));
    EINSQL_ASSIGN_OR_RETURN(double base, AsDouble(args[0]));
    EINSQL_ASSIGN_OR_RETURN(double exponent, AsDouble(args[1]));
    return Value(std::pow(base, exponent));
  }
  return Status::InvalidArgument("unknown function '", f, "'");
}

}  // namespace

bool IsTrue(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return *i != 0;
  if (const double* d = std::get_if<double>(&v)) return *d != 0.0;
  return false;
}

Result<Value> EvaluateExpr(const Expr& expr, const Row& row,
                           const AggregateValues* aggregates) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.bound_slot < 0 ||
          expr.bound_slot >= static_cast<int>(row.size())) {
        return Status::Internal("unbound column reference '", expr.column,
                                "'");
      }
      return row[expr.bound_slot];
    }
    case ExprKind::kUnary: {
      EINSQL_ASSIGN_OR_RETURN(Value operand, EvaluateExpr(*expr.left, row,
                                                          aggregates));
      if (expr.unary_op == UnaryOp::kNegate) return Negate(operand);
      // NOT with three-valued logic.
      if (IsNull(operand)) return Value(Null{});
      return Value(static_cast<int64_t>(IsTrue(operand) ? 0 : 1));
    }
    case ExprKind::kBinary: {
      // AND/OR need lazy three-valued handling.
      if (expr.binary_op == BinaryOp::kAnd) {
        EINSQL_ASSIGN_OR_RETURN(Value lhs,
                                EvaluateExpr(*expr.left, row, aggregates));
        if (!IsNull(lhs) && !IsTrue(lhs)) return Value(int64_t{0});
        EINSQL_ASSIGN_OR_RETURN(Value rhs,
                                EvaluateExpr(*expr.right, row, aggregates));
        if (!IsNull(rhs) && !IsTrue(rhs)) return Value(int64_t{0});
        if (IsNull(lhs) || IsNull(rhs)) return Value(Null{});
        return Value(int64_t{1});
      }
      if (expr.binary_op == BinaryOp::kOr) {
        EINSQL_ASSIGN_OR_RETURN(Value lhs,
                                EvaluateExpr(*expr.left, row, aggregates));
        if (!IsNull(lhs) && IsTrue(lhs)) return Value(int64_t{1});
        EINSQL_ASSIGN_OR_RETURN(Value rhs,
                                EvaluateExpr(*expr.right, row, aggregates));
        if (!IsNull(rhs) && IsTrue(rhs)) return Value(int64_t{1});
        if (IsNull(lhs) || IsNull(rhs)) return Value(Null{});
        return Value(int64_t{0});
      }
      EINSQL_ASSIGN_OR_RETURN(Value lhs,
                              EvaluateExpr(*expr.left, row, aggregates));
      EINSQL_ASSIGN_OR_RETURN(Value rhs,
                              EvaluateExpr(*expr.right, row, aggregates));
      switch (expr.binary_op) {
        case BinaryOp::kAdd: return Add(lhs, rhs);
        case BinaryOp::kSub: return Subtract(lhs, rhs);
        case BinaryOp::kMul: return Multiply(lhs, rhs);
        case BinaryOp::kDiv: return Divide(lhs, rhs);
        case BinaryOp::kMod: return Modulo(lhs, rhs);
        default: return EvaluateComparison(expr.binary_op, lhs, rhs);
      }
    }
    case ExprKind::kFunction: {
      if (IsAggregateFunction(expr.function)) {
        if (aggregates == nullptr) {
          return Status::InvalidArgument("aggregate ", expr.function,
                                         "() used outside aggregation");
        }
        auto it = aggregates->find(&expr);
        if (it == aggregates->end()) {
          return Status::Internal("aggregate value not computed");
        }
        return it->second;
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& arg : expr.args) {
        EINSQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*arg, row, aggregates));
        args.push_back(std::move(v));
      }
      return EvaluateScalarFunction(expr, args);
    }
    case ExprKind::kIsNull: {
      EINSQL_ASSIGN_OR_RETURN(Value operand,
                              EvaluateExpr(*expr.left, row, aggregates));
      const bool is_null = IsNull(operand);
      return Value(
          static_cast<int64_t>(is_null != expr.is_null_negated ? 1 : 0));
    }
    case ExprKind::kCase: {
      for (const auto& [when, then] : expr.case_whens) {
        EINSQL_ASSIGN_OR_RETURN(Value condition,
                                EvaluateExpr(*when, row, aggregates));
        if (IsTrue(condition)) {
          return EvaluateExpr(*then, row, aggregates);
        }
      }
      if (expr.case_else) {
        return EvaluateExpr(*expr.case_else, row, aggregates);
      }
      return Value(Null{});
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> EvaluateConstant(const Expr& expr) {
  static const Row kEmptyRow;
  return EvaluateExpr(expr, kEmptyRow, nullptr);
}

}  // namespace einsql::minidb
