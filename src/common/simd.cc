#include "common/simd.h"

#include <atomic>
#include <cstdlib>

namespace einsql::simd {
namespace {

#if defined(EINSQL_HAVE_SIMD)
bool InitialEnabled() {
  const char* env = std::getenv("MINIDB_NO_SIMD");
  if (env != nullptr && env[0] == '1' && env[1] == '\0') return false;
  return true;
}
#else
bool InitialEnabled() { return false; }
#endif

std::atomic<bool>& Flag() {
  static std::atomic<bool> flag{InitialEnabled()};
  return flag;
}

}  // namespace

bool Enabled() { return Flag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
#if defined(EINSQL_HAVE_SIMD)
  Flag().store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;  // No SIMD support compiled in: the flag stays false.
#endif
}

ScopedEnable::ScopedEnable(bool enabled) : previous_(Enabled()) {
  SetEnabled(enabled);
}

ScopedEnable::~ScopedEnable() { SetEnabled(previous_); }

}  // namespace einsql::simd
