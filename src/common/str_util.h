#ifndef EINSQL_COMMON_STR_UTIL_H_
#define EINSQL_COMMON_STR_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace einsql {

/// Splits `input` on `delimiter`, keeping empty pieces.
/// Split("a,,b", ',') == {"a", "", "b"}; Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `pieces` with `separator` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view input);

/// Upper-cases ASCII characters.
std::string ToUpper(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff `input` begins with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// Parses a base-10 signed integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view input);

/// Parses a floating point literal; rejects trailing garbage.
Result<double> ParseDouble(std::string_view input);

/// Formats a double as a SQL literal that round-trips exactly
/// (max_digits10 precision, always contains '.' or 'e').
std::string DoubleToSqlLiteral(double value);

/// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(Args&&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace einsql

#endif  // EINSQL_COMMON_STR_UTIL_H_
