#ifndef EINSQL_COMMON_RNG_H_
#define EINSQL_COMMON_RNG_H_

#include <cstdint>

namespace einsql {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Workload generators and property tests use this instead of std::mt19937 so
/// that every experiment in the paper-reproduction harness is reproducible
/// bit-for-bit across platforms and standard-library versions.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextUint64();

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  /// Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a double uniformly distributed in [0, 1).
  double UniformDouble();

  /// Returns a double uniformly distributed in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a standard normal variate (Box-Muller).
  double Normal();

 private:
  uint64_t state_[4];
};

}  // namespace einsql

#endif  // EINSQL_COMMON_RNG_H_
