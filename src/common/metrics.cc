#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/trace.h"  // JsonEscape

namespace einsql {

namespace {

// Relaxed CAS add for atomic doubles (fetch_add on atomic<double> is
// C++20 but not universally lock-free; the CAS loop is portable and only
// contends while other writers are actually racing).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

int BucketFor(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN: the "tiny" bucket
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  // Buckets are (2^(e-1), 2^e]: an exact power of two (m == 0.5) belongs
  // to the bucket it is the upper bound of, one below where frexp puts it.
  if (m == 0.5) --exp;
  const int bucket = exp - Histogram::kMinExp;
  return std::clamp(bucket, 0, Histogram::kNumBuckets - 1);
}

std::string NumberJson(double value) {
  if (value == static_cast<int64_t>(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void Histogram::Record(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample initializes min/max; racing first samples still
    // converge because Min/Max below run unconditionally.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::BucketUpperBound(int bucket) {
  return std::ldexp(1.0, bucket + kMinExp);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramSample::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    if (cumulative + n >= target) {
      // Linear interpolation inside the log bucket (lower bound = half
      // the upper bound by construction).
      const double lower = upper / 2.0;
      const double fraction =
          n > 0 ? (target - cumulative) / static_cast<double>(n) : 0.0;
      const double estimate = lower + fraction * (upper - lower);
      // The true extremes are tracked exactly: never report beyond them.
      return std::clamp(estimate, min, max);
    }
    cumulative += n;
  }
  return max;
}

int64_t MetricsSnapshot::CounterValue(std::string_view name,
                                      int64_t fallback) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  return fallback;
}

double MetricsSnapshot::GaugeValue(std::string_view name,
                                   double fallback) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return sample.value;
  }
  return fallback;
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  const std::string pad4(indent + 4, ' ');
  std::ostringstream os;
  os << "{\n" << pad2 << "\"counters\": {";
  for (size_t k = 0; k < counters.size(); ++k) {
    os << (k == 0 ? "\n" : ",\n") << pad4 << "\""
       << JsonEscape(counters[k].name) << "\": " << counters[k].value;
  }
  os << (counters.empty() ? "" : "\n" + pad2) << "},\n";
  os << pad2 << "\"gauges\": {";
  for (size_t k = 0; k < gauges.size(); ++k) {
    os << (k == 0 ? "\n" : ",\n") << pad4 << "\"" << JsonEscape(gauges[k].name)
       << "\": " << NumberJson(gauges[k].value);
  }
  os << (gauges.empty() ? "" : "\n" + pad2) << "},\n";
  os << pad2 << "\"histograms\": {";
  for (size_t k = 0; k < histograms.size(); ++k) {
    const HistogramSample& h = histograms[k];
    os << (k == 0 ? "\n" : ",\n") << pad4 << "\"" << JsonEscape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << NumberJson(h.sum)
       << ", \"min\": " << NumberJson(h.min)
       << ", \"max\": " << NumberJson(h.max)
       << ", \"mean\": " << NumberJson(h.mean())
       << ", \"p50\": " << NumberJson(h.Quantile(0.5))
       << ", \"p90\": " << NumberJson(h.Quantile(0.9))
       << ", \"p99\": " << NumberJson(h.Quantile(0.99)) << "}";
  }
  os << (histograms.empty() ? "" : "\n" + pad2) << "}\n" << pad << "}";
  return os.str();
}

namespace {

// Splits a full instrument key back into (name, "{labels}") for the
// Prometheus exposition, where labels attach to the sample, not the name.
std::pair<std::string_view, std::string_view> SplitKey(
    std::string_view key) {
  const size_t brace = key.find('{');
  if (brace == std::string_view::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

// Prometheus metric names use '_' where our keys use '.' or '-'.
std::string PrometheusName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  for (const CounterSample& sample : counters) {
    const auto [name, labels] = SplitKey(sample.name);
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n"
       << prom << labels << " " << sample.value << "\n";
  }
  for (const GaugeSample& sample : gauges) {
    const auto [name, labels] = SplitKey(sample.name);
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << labels << " " << NumberJson(sample.value) << "\n";
  }
  for (const HistogramSample& sample : histograms) {
    const auto [name, labels] = SplitKey(sample.name);
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      os << prom << "{quantile=\"" << q << "\"} "
         << NumberJson(sample.Quantile(q)) << "\n";
    }
    os << prom << "_sum" << labels << " " << NumberJson(sample.sum) << "\n"
       << prom << "_count" << labels << " " << sample.count << "\n";
  }
  return os.str();
}

std::string MetricKey(std::string_view name,
                      std::initializer_list<MetricLabel> labels) {
  std::string key(name);
  if (labels.size() == 0) return key;
  key.push_back('{');
  bool first = true;
  for (const MetricLabel& label : labels) {
    if (!first) key.push_back(',');
    first = false;
    key.append(label.first);
    key.append("=\"");
    key.append(label.second);
    key.push_back('"');
  }
  key.push_back('}');
  return key;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrument pointers cached in static locals must
  // outlive every other static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  std::initializer_list<MetricLabel> labels) {
  const std::string key = MetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name,
                              std::initializer_list<MetricLabel> labels) {
  const std::string key = MetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(
    std::string_view name, std::initializer_list<MetricLabel> labels) {
  const std::string key = MetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    sample.min = histogram->min();
    sample.max = histogram->max();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t n = histogram->bucket_count(b);
      if (n > 0) {
        sample.buckets.emplace_back(Histogram::BucketUpperBound(b), n);
      }
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace einsql
