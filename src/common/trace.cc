#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace einsql {

namespace {

/// Per-thread stack of open spans, shared across traces: entries carry the
/// owning trace so nested instrumented layers with distinct Trace objects
/// never cross wires.
thread_local std::vector<std::pair<const Trace*, Trace::SpanId>>
    tls_open_spans;

std::string NumberToJson(double value) {
  // Emit integers without a fractional part; everything else with enough
  // digits to round-trip.
  if (value == static_cast<int64_t>(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string JsonEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

Trace::~Trace() {
  // Drop any dangling thread-local references to this trace (spans never
  // ended, e.g. after an error propagated through instrumented code).
  auto& stack = tls_open_spans;
  stack.erase(std::remove_if(stack.begin(), stack.end(),
                             [this](const auto& entry) {
                               return entry.first == this;
                             }),
              stack.end());
}

int64_t Trace::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Trace::ThreadIndexLocked() {
  const auto id = std::this_thread::get_id();
  auto it = thread_indices_.find(id);
  if (it != thread_indices_.end()) return it->second;
  const int index = static_cast<int>(thread_indices_.size());
  thread_indices_.emplace(id, index);
  return index;
}

Trace::SpanId Trace::BeginSpan(std::string_view name, SpanId parent) {
  if (parent == kInheritParent) {
    parent = kNoParent;
    for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
         ++it) {
      if (it->first == this) {
        parent = it->second;
        break;
      }
    }
  }
  const int64_t now = NowUs();
  SpanId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = static_cast<SpanId>(spans_.size());
    SpanRecord record;
    record.parent = parent;
    record.name = std::string(name);
    record.tid = ThreadIndexLocked();
    record.start_us = now;
    spans_.push_back(std::move(record));
  }
  tls_open_spans.emplace_back(this, id);
  return id;
}

void Trace::EndSpan(SpanId id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
    SpanRecord& record = spans_[id];
    if (record.end_us >= 0) return;  // already closed
    record.end_us = NowUs();
  }
  // Pop the matching entry from this thread's open-span stack (searched
  // from the top: well-nested scopes hit the last element).
  auto& stack = tls_open_spans;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->first == this && it->second == id) {
      stack.erase(std::next(it).base());
      break;
    }
  }
}

void Trace::SetAttributeJson(SpanId id, std::string_view key,
                             std::string json_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  SpanRecord& record = spans_[id];
  for (Attribute& attr : record.attributes) {
    if (attr.key == key) {
      attr.json_value = std::move(json_value);
      return;
    }
  }
  record.attributes.push_back({std::string(key), std::move(json_value)});
}

void Trace::SetAttribute(SpanId id, std::string_view key,
                         std::string_view value) {
  SetAttributeJson(id, key, "\"" + JsonEscape(value) + "\"");
}

void Trace::SetAttribute(SpanId id, std::string_view key, double value) {
  SetAttributeJson(id, key, NumberToJson(value));
}

void Trace::SetAttribute(SpanId id, std::string_view key, int64_t value) {
  SetAttributeJson(id, key, std::to_string(value));
}

void Trace::AddCounter(std::string_view name, double value) {
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.push_back({std::string(name), now, value});
}

size_t Trace::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::string Trace::ToChromeJson() const {
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (size_t k = 0; k < spans_.size(); ++k) {
    const SpanRecord& span = spans_[k];
    const int64_t end = span.end_us >= 0 ? span.end_us : now;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << JsonEscape(span.name)
       << "\", \"cat\": \"einsql\", \"ph\": \"X\", \"ts\": " << span.start_us
       << ", \"dur\": " << (end - span.start_us)
       << ", \"pid\": 1, \"tid\": " << span.tid << ", \"args\": {"
       << "\"span_id\": " << k << ", \"parent_id\": " << span.parent;
    for (const Attribute& attr : span.attributes) {
      os << ", \"" << JsonEscape(attr.key) << "\": " << attr.json_value;
    }
    os << "}}";
  }
  for (const CounterRecord& counter : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << JsonEscape(counter.name)
       << "\", \"cat\": \"einsql\", \"ph\": \"C\", \"ts\": " << counter.ts_us
       << ", \"pid\": 1, \"tid\": 0, \"args\": {\"value\": "
       << NumberToJson(counter.value) << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string Trace::ToString() const {
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  // Index children by parent, preserving begin order.
  std::vector<std::vector<size_t>> children(spans_.size());
  std::vector<size_t> roots;
  for (size_t k = 0; k < spans_.size(); ++k) {
    const SpanId parent = spans_[k].parent;
    if (parent >= 0 && parent < static_cast<SpanId>(spans_.size())) {
      children[parent].push_back(k);
    } else {
      roots.push_back(k);
    }
  }
  std::ostringstream os;
  // Recursive lambda over the forest.
  auto dump = [&](auto&& self, size_t index, int depth) -> void {
    const SpanRecord& span = spans_[index];
    const int64_t end = span.end_us >= 0 ? span.end_us : now;
    os << std::string(depth * 2, ' ') << span.name << "  "
       << (end - span.start_us) / 1000.0 << " ms";
    if (span.end_us < 0) os << " (open)";
    for (const Attribute& attr : span.attributes) {
      os << " " << attr.key << "=" << attr.json_value;
    }
    os << "\n";
    for (size_t child : children[index]) self(self, child, depth + 1);
  };
  for (size_t root : roots) dump(dump, root, 0);
  return os.str();
}

Status Trace::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open trace file '", path, "'");
  out << ToChromeJson();
  if (!out) return Status::Internal("error writing trace file '", path, "'");
  return Status::OK();
}

}  // namespace einsql
