#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace einsql {

namespace {

const JsonValue& SharedNull() {
  static const JsonValue null;
  return null;
}

const std::vector<JsonValue>& EmptyItems() {
  static const std::vector<JsonValue> empty;
  return empty;
}

const std::vector<std::string>& EmptyKeys() {
  static const std::vector<std::string> empty;
  return empty;
}

const std::string& EmptyString() {
  static const std::string empty;
  return empty;
}

}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  return kind_ == Kind::kNumber ? static_cast<int64_t>(number_) : fallback;
}

const std::string& JsonValue::AsString() const {
  return kind_ == Kind::kString ? string_ : EmptyString();
}

const std::vector<JsonValue>& JsonValue::items() const {
  return kind_ == Kind::kArray ? items_ : EmptyItems();
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (kind_ != Kind::kObject) return SharedNull();
  const auto it = members_.find(std::string(key));
  return it != members_.end() ? it->second : SharedNull();
}

bool JsonValue::Has(std::string_view key) const {
  return kind_ == Kind::kObject &&
         members_.find(std::string(key)) != members_.end();
}

const std::vector<std::string>& JsonValue::keys() const {
  return kind_ == Kind::kObject ? keys_ : EmptyKeys();
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    EINSQL_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument("JSON parse error at offset ", pos_, ": ",
                                   message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    JsonValue value;
    const char c = text_[pos_];
    Status status = Status::OK();
    switch (c) {
      case '{': status = ParseObject(&value); break;
      case '[': status = ParseArray(&value); break;
      case '"': status = ParseString(&value.string_);
                value.kind_ = JsonValue::Kind::kString;
                break;
      case 't':
        if (!ConsumeWord("true")) return Error("invalid literal");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        break;
      case 'f':
        if (!ConsumeWord("false")) return Error("invalid literal");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        break;
      case 'n':
        if (!ConsumeWord("null")) return Error("invalid literal");
        value.kind_ = JsonValue::Kind::kNull;
        break;
      default: status = ParseNumber(&value); break;
    }
    --depth_;
    if (!status.ok()) return status;
    return value;
  }

  Status ParseObject(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      EINSQL_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Error("expected ':' after object key");
      EINSQL_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      if (out->members_.emplace(key, std::move(value)).second) {
        out->keys_.push_back(key);
      }
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::OK();
    while (true) {
      EINSQL_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out->items_.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs for
          // non-BMP text are not recombined — engine artifacts never
          // contain them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size() || !std::isfinite(value)) {
      return Error("invalid number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace einsql
