#ifndef EINSQL_COMMON_STOPWATCH_H_
#define EINSQL_COMMON_STOPWATCH_H_

#include <chrono>

namespace einsql {

/// Monotonic wall-clock stopwatch used by the benchmark harness and by the
/// MiniDB planner/executor instrumentation (Table 2 reproduction).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace einsql

#endif  // EINSQL_COMMON_STOPWATCH_H_
