#ifndef EINSQL_COMMON_TRACE_H_
#define EINSQL_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace einsql {

/// A thread-safe collection of timed, nested spans and counter samples —
/// the measurement backbone behind EXPLAIN ANALYZE, the einsum pipeline
/// instrumentation, and the benchmark `--trace=<file>.json` option.
///
/// Spans are identified by dense integer ids. Parent/child nesting is
/// tracked two ways:
///   * implicitly: each thread keeps a stack of its open spans, so a span
///     begun without an explicit parent nests under the innermost open span
///     of the *same trace* on the *same thread*;
///   * explicitly: cross-thread children (e.g. parallel CTE materialization
///     workers) pass the parent span id captured on the spawning thread.
///
/// Timestamps come from a monotonic clock and are stored as microseconds
/// relative to the trace's construction, which keeps the JSON small and
/// makes traces diffable. Serialization targets the Chrome `trace_event`
/// format (load in chrome://tracing or https://ui.perfetto.dev), plus a
/// compact human-readable tree for terminals and golden tests.
class Trace {
 public:
  using SpanId = int64_t;
  /// Explicit "top-level span" parent.
  static constexpr SpanId kNoParent = -1;
  /// Default: inherit the innermost open span of this trace on the calling
  /// thread (kNoParent if the thread has none open).
  static constexpr SpanId kInheritParent = -2;

  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;
  ~Trace();

  /// Opens a span. Never fails; returns the new span's id.
  SpanId BeginSpan(std::string_view name, SpanId parent = kInheritParent);

  /// Closes a span. Closing an unknown or already-closed id is a no-op.
  void EndSpan(SpanId id);

  /// Attaches a key/value attribute to an open or closed span. Numeric
  /// overloads serialize as JSON numbers, the string overload as a JSON
  /// string. Re-setting a key overwrites the previous value.
  void SetAttribute(SpanId id, std::string_view key, std::string_view value);
  void SetAttribute(SpanId id, std::string_view key, double value);
  void SetAttribute(SpanId id, std::string_view key, int64_t value);

  /// Records an instantaneous counter sample (Chrome "C" event).
  void AddCounter(std::string_view name, double value);

  /// Number of spans recorded so far (open + closed).
  size_t span_count() const;

  /// Serializes to the Chrome trace_event JSON object format:
  /// {"traceEvents": [...]}. Spans still open are closed at "now" for the
  /// purpose of serialization (their records are not mutated).
  std::string ToChromeJson() const;

  /// Indented human-readable tree: one line per span with duration and
  /// attributes, children below their parents.
  std::string ToString() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteJsonFile(const std::string& path) const;

 private:
  struct Attribute {
    std::string key;
    std::string json_value;  // pre-rendered JSON fragment (quoted or not)
  };

  struct SpanRecord {
    SpanId parent = kNoParent;
    std::string name;
    int tid = 0;            // dense per-trace thread index
    int64_t start_us = 0;   // relative to trace epoch
    int64_t end_us = -1;    // -1 while open
    std::vector<Attribute> attributes;
  };

  struct CounterRecord {
    std::string name;
    int64_t ts_us = 0;
    double value = 0.0;
  };

  int64_t NowUs() const;
  int ThreadIndexLocked();
  void SetAttributeJson(SpanId id, std::string_view key,
                        std::string json_value);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
  std::unordered_map<std::thread::id, int> thread_indices_;
};

/// RAII span handle. Null-trace tolerant: every operation is a no-op when
/// constructed with a null trace, so instrumented code needs no branches.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name,
             Trace::SpanId parent = Trace::kInheritParent)
      : trace_(trace),
        id_(trace != nullptr ? trace->BeginSpan(name, parent)
                             : Trace::kNoParent) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  /// Ends the span early (idempotent).
  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }

  /// The underlying span id, e.g. to pass as an explicit parent to worker
  /// threads. kNoParent when tracing is disabled.
  Trace::SpanId id() const { return id_; }

  template <typename V>
  void SetAttribute(std::string_view key, V&& value) {
    if (trace_ != nullptr) {
      trace_->SetAttribute(id_, key, std::forward<V>(value));
    }
  }

 private:
  Trace* trace_;
  Trace::SpanId id_;
};

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// added). Exposed for the JSON emitters in bench_util and tests.
std::string JsonEscape(std::string_view input);

}  // namespace einsql

#endif  // EINSQL_COMMON_TRACE_H_
