#include "common/rng.h"

#include <cmath>

namespace einsql {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors.
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace einsql
