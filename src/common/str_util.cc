#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace einsql {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view input) {
  input = Trim(input);
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(input.data(), input.data() + input.size(), value);
  if (ec != std::errc() || ptr != input.data() + input.size()) {
    return Status::ParseError("not an integer: '", input, "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view input) {
  input = Trim(input);
  if (input.empty()) return Status::ParseError("empty floating point literal");
  std::string buffer(input);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size() ||
      end == buffer.c_str()) {
    return Status::ParseError("not a floating point number: '", input, "'");
  }
  return value;
}

std::string DoubleToSqlLiteral(double value) {
  if (std::isnan(value)) return "0.0";  // SQL has no portable NaN literal.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string out(buffer);
  // Ensure the literal reads as a floating point number in every dialect.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace einsql
