#ifndef EINSQL_COMMON_RESULT_H_
#define EINSQL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace einsql {

/// A Result<T> holds either a value of type T or an error Status.
///
/// Typical usage:
///
///     Result<int> ParseCount(std::string_view s);
///
///     Result<int> caller() {
///       EINSQL_ASSIGN_OR_RETURN(int n, ParseCount("42"));
///       return n + 1;
///     }
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit to allow `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT

  /// Constructs a Result holding an error status.  It is a programming error
  /// to construct a Result from an OK status; doing so converts the status to
  /// an Internal error.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff the Result holds a value.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status (OK if the Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if the Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

#define EINSQL_CONCAT_IMPL(x, y) x##y
#define EINSQL_CONCAT(x, y) EINSQL_CONCAT_IMPL(x, y)

/// Evaluates a Result<T>-returning expression; on error returns the Status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define EINSQL_ASSIGN_OR_RETURN(lhs, expr)                            \
  EINSQL_ASSIGN_OR_RETURN_IMPL(EINSQL_CONCAT(_einsql_result_, __LINE__), lhs, \
                               expr)

#define EINSQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace einsql

#endif  // EINSQL_COMMON_RESULT_H_
