// Portable SIMD support for the hot kernels.
//
// The engine's vector kernels come in two flavours: a scalar reference
// implementation (the historical code, kept verbatim) and a SIMD
// implementation built on the GCC/Clang vector extensions below. Which
// flavour runs is a *runtime* decision — `einsql::simd::Enabled()` — so a
// single binary can prove both paths identical (the fuzzer's
// SimdInvarianceOracle flips the knob per instance; see
// src/testing/oracles.cc).
//
// Policy (see docs/kernels.md for the full statement):
//  * Vector-extension types (`__attribute__((vector_size(32)))`) rather
//    than raw intrinsics: they compile on any GCC/Clang target (x86, ARM,
//    RISC-V) and lower to SSE2/AVX2/NEON as available. On compilers
//    without the extension the SIMD path is compiled out and Enabled()
//    is permanently false.
//  * Every SIMD kernel must be bit-identical to its scalar twin. That
//    rules out reassociating reductions (aggregates stay scalar) and
//    anything relying on FMA contraction; kernels are element-wise or
//    fixed-order only.
//  * `MINIDB_NO_SIMD=1` in the environment forces the scalar flavour for
//    the whole process; SetEnabled()/ScopedEnable allow tests and the
//    fuzzer to toggle it programmatically.
#ifndef EINSQL_COMMON_SIMD_H_
#define EINSQL_COMMON_SIMD_H_

#include <cstdint>
#include <cstring>

namespace einsql::simd {

// True when the vector-extension kernels should run. Initialised once from
// the MINIDB_NO_SIMD environment variable (and from compiler support).
bool Enabled();

// Force the flavour at runtime (used by the differential fuzzer and the
// SIMD-vs-scalar unit tests). No-op (stays false) when the build has no
// vector-extension support.
void SetEnabled(bool enabled);

// RAII toggle: sets the flavour for a scope, restores on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool enabled);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

#if defined(__GNUC__) || defined(__clang__)
#define EINSQL_HAVE_SIMD 1

// The vector helpers below are header-inline only — no 32-byte vector ever
// crosses a real function-call boundary — so GCC's "AVX vector ... changes
// the ABI" psabi note does not apply.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// 256-bit lanes: 4 x int64 / 4 x uint64 / 4 x double. On targets without
// native 256-bit registers the compiler splits these into two 128-bit ops,
// which is still branch-free and still beats the scalar loop.
typedef std::int64_t Vec4i __attribute__((vector_size(32)));
typedef std::uint64_t Vec4u __attribute__((vector_size(32)));
typedef double Vec4d __attribute__((vector_size(32)));

static constexpr int kLanes = 4;

// memcpy-based load/store: the column buffers are only guaranteed to be
// aligned for their element type, not for the vector type.
inline Vec4i LoadI(const std::int64_t* p) {
  Vec4i v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline Vec4u LoadU(const std::uint64_t* p) {
  Vec4u v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline Vec4d LoadD(const double* p) {
  Vec4d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void Store(std::int64_t* p, Vec4i v) { std::memcpy(p, &v, sizeof(v)); }
inline void Store(std::uint64_t* p, Vec4u v) { std::memcpy(p, &v, sizeof(v)); }
inline void Store(double* p, Vec4d v) { std::memcpy(p, &v, sizeof(v)); }

// Bit-precise reinterpretation between double and uint64 lanes, for masking
// floating-point results (e.g. zeroing quotients of masked-out divisions)
// without tripping FP exceptions or UB.
inline Vec4u BitcastU(Vec4d v) {
  Vec4u u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}
inline Vec4d BitcastD(Vec4u u) {
  Vec4d v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

#endif  // __GNUC__ || __clang__

}  // namespace einsql::simd

#endif  // EINSQL_COMMON_SIMD_H_
