#ifndef EINSQL_COMMON_METRICS_H_
#define EINSQL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace einsql {

/// Engine-wide metrics: named counters, gauges, and log-bucketed histograms
/// collected in a process-global registry and exposed as snapshots, JSON,
/// and Prometheus-style text. The companion of the Trace subsystem: traces
/// answer "where did this query spend its time", metrics answer "what has
/// the engine done since it started" — rows scanned, morsels executed,
/// bytes materialized, planning-latency distributions.
///
/// Design constraints (instrumented code sits on query hot paths):
///   * recording is branch-free on the hot path: counters are relaxed
///     atomic adds, gauges relaxed stores, histograms one relaxed add into
///     a log2 bucket plus a CAS-loop sum;
///   * instrument pointers are stable for the registry's lifetime, so call
///     sites look instruments up once (a mutex-guarded map insert) and
///     cache the pointer in a function-local static;
///   * Reset() zeroes instruments in place — cached pointers stay valid.
///
/// Labels are optional and folded into the instrument key with the
/// Prometheus convention: `name{key="value",...}`. Two calls with the same
/// name and labels return the same instrument.

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge with an optional keep-the-maximum update mode (used
/// for high-water marks such as per-query peak memory).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Sets the gauge to max(current, value).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram for latencies and sizes. Bucket b counts values
/// in (2^(b-1+kMinExp), 2^(b+kMinExp)]: the smallest bucket bottoms out
/// near 1e-12 (sub-picosecond / sub-byte values are all "tiny"), the
/// largest tops out beyond 7e16, so seconds, rows, and bytes all fit
/// without configuration. Values <= 0 land in bucket 0.
class Histogram {
 public:
  static constexpr int kNumBuckets = 96;
  static constexpr int kMinExp = -40;  // 2^-40 ~ 9.1e-13

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  int64_t bucket_count(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Upper bound of `bucket` (2^(bucket+kMinExp)).
  static double BucketUpperBound(int bucket);
  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

/// Thread-safe tracker of a resource pool's current and peak level —
/// the memory-accounting hook behind per-query peak memory. Cheap enough
/// to update from morsel workers (two relaxed atomics plus a CAS loop
/// that only spins while the peak is actually moving).
class MemoryTracker {
 public:
  void Add(int64_t bytes) {
    const int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (peak < now && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// One label pair, e.g. {"engine", "minidb-greedy"}.
using MetricLabel = std::pair<std::string_view, std::string_view>;

/// Point-in-time copy of every instrument in a registry, decoupled from
/// the live atomics so serialization needs no locks.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;  // full key, labels included
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Non-empty buckets only: (upper bound, count).
    std::vector<std::pair<double, int64_t>> buckets;

    double mean() const { return count > 0 ? sum / count : 0.0; }
    /// Approximate quantile (q in [0,1]) by linear interpolation within
    /// the covering log bucket.
    double Quantile(double q) const;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter by full key, or `fallback` when absent.
  int64_t CounterValue(std::string_view name, int64_t fallback = 0) const;
  /// Value of a gauge by full key, or `fallback` when absent.
  double GaugeValue(std::string_view name, double fallback = 0.0) const;

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, min, max, mean, p50, p90, p99}}}.
  std::string ToJson(int indent = 0) const;

  /// Prometheus text exposition format (one `# TYPE` line per family,
  /// histogram quantiles as <name>{quantile="..."} samples).
  std::string ToPrometheusText() const;
};

/// The instrument registry. Instrument pointers are valid for the
/// registry's lifetime; for the process-global Default() registry that is
/// the whole process, so caching them in static locals is safe.
class MetricsRegistry {
 public:
  /// The process-global registry every engine layer records into.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name,
                   std::initializer_list<MetricLabel> labels = {});
  Gauge* gauge(std::string_view name,
               std::initializer_list<MetricLabel> labels = {});
  Histogram* histogram(std::string_view name,
                       std::initializer_list<MetricLabel> labels = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument in place. Registered instruments survive (and
  /// cached pointers stay valid); only their values reset.
  void Reset();

 private:
  mutable std::mutex mutex_;
  // std::map keeps snapshots sorted by key — stable, diffable output.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Builds the full instrument key `name{k1="v1",k2="v2"}` (or just `name`
/// with no labels). Exposed for tests and custom exposition code.
std::string MetricKey(std::string_view name,
                      std::initializer_list<MetricLabel> labels);

}  // namespace einsql

#endif  // EINSQL_COMMON_METRICS_H_
