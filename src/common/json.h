#ifndef EINSQL_COMMON_JSON_H_
#define EINSQL_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace einsql {

/// A minimal JSON document model and recursive-descent parser — just
/// enough to read the engine's own machine-readable artifacts back in
/// (BENCH_*.json baselines, metrics snapshots) without an external
/// dependency. Full JSON is accepted: objects, arrays, strings with
/// escapes, numbers, booleans, null. Not a streaming parser; documents
/// are small (kilobytes).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; wrong-kind access returns the fallback.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string on wrong kind

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& items() const;

  /// Object member by key, or a shared null value when absent/non-object.
  /// Chains safely: doc["a"]["b"].AsDouble().
  const JsonValue& operator[](std::string_view key) const;
  bool Has(std::string_view key) const;
  /// Object keys in document order (empty for non-objects).
  const std::vector<std::string>& keys() const;

  /// Parses a complete JSON document (trailing non-whitespace is an
  /// error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::string> keys_;          // object member order
  std::map<std::string, JsonValue> members_;
};

}  // namespace einsql

#endif  // EINSQL_COMMON_JSON_H_
