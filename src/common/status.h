#ifndef EINSQL_COMMON_STATUS_H_
#define EINSQL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace einsql {

/// Canonical error codes used across the library.
///
/// The library does not throw exceptions across public API boundaries;
/// every fallible operation returns a Status (or a Result<T>, see
/// common/result.h).  The codes mirror the usual database-library
/// conventions (Arrow / RocksDB style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code together with a human-readable message.
///
/// Typical usage:
///
///     Status DoWork() {
///       if (bad) return Status::InvalidArgument("bad input: ", detail);
///       return Status::OK();
///     }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// Factory helpers; all variadic pieces are stringified and concatenated.
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for success).
  StatusCode code() const { return code_; }

  /// The error message (empty for success).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args);

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace internal {

inline void AppendPieces(std::string*) {}

template <typename T, typename... Rest>
void AppendPieces(std::string* out, T&& first, Rest&&... rest) {
  if constexpr (std::is_convertible_v<T, std::string_view>) {
    out->append(std::string_view(first));
  } else {
    out->append(std::to_string(first));
  }
  AppendPieces(out, std::forward<Rest>(rest)...);
}

}  // namespace internal

template <typename... Args>
Status Status::Make(StatusCode code, Args&&... args) {
  std::string message;
  internal::AppendPieces(&message, std::forward<Args>(args)...);
  return Status(code, std::move(message));
}

/// Propagates an error Status from the evaluated expression, if any.
#define EINSQL_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::einsql::Status _einsql_status = (expr);       \
    if (!_einsql_status.ok()) return _einsql_status; \
  } while (false)

}  // namespace einsql

#endif  // EINSQL_COMMON_STATUS_H_
