#include "sat/cnf.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace einsql::sat {

int CnfFormula::max_clause_size() const {
  int max_size = 0;
  for (const Clause& clause : clauses) {
    max_size = std::max(max_size, static_cast<int>(clause.literals.size()));
  }
  return max_size;
}

Status Validate(const CnfFormula& formula) {
  if (formula.num_variables < 0) {
    return Status::InvalidArgument("negative variable count");
  }
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    const Clause& clause = formula.clauses[c];
    if (clause.literals.empty()) {
      return Status::InvalidArgument("clause ", c, " is empty");
    }
    for (Literal lit : clause.literals) {
      if (lit == 0 || std::abs(lit) > formula.num_variables) {
        return Status::InvalidArgument("clause ", c,
                                       " has out-of-range literal ", lit);
      }
    }
  }
  return Status::OK();
}

bool EvaluateClause(const Clause& clause,
                    const std::vector<bool>& assignment) {
  for (Literal lit : clause.literals) {
    const bool value = assignment[std::abs(lit) - 1];
    if ((lit > 0 && value) || (lit < 0 && !value)) return true;
  }
  return false;
}

bool Evaluate(const CnfFormula& formula,
              const std::vector<bool>& assignment) {
  for (const Clause& clause : formula.clauses) {
    if (!EvaluateClause(clause, assignment)) return false;
  }
  return true;
}

namespace {

// Simplified formula state for DPLL counting: clauses as literal lists that
// shrink as variables are assigned.
struct CountingState {
  // -1 unassigned, 0 false, 1 true.
  std::vector<int> assignment;
  int unassigned;
};

// Returns the number of satisfying assignments of `clauses` over the
// unassigned variables of `state`, or -1 on conflict.
double CountRecursive(const std::vector<Clause>& clauses,
                      CountingState* state) {
  // Simplify: find a unit clause or detect conflicts / all-satisfied.
  int branch_variable = 0;
  bool all_satisfied = true;
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    int unassigned_in_clause = 0;
    Literal last_unassigned = 0;
    for (Literal lit : clause.literals) {
      const int value = state->assignment[std::abs(lit) - 1];
      if (value < 0) {
        ++unassigned_in_clause;
        last_unassigned = lit;
      } else if ((lit > 0) == (value == 1)) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    if (unassigned_in_clause == 0) return 0.0;  // conflict
    all_satisfied = false;
    if (unassigned_in_clause == 1) {
      // Unit clause: the forced branch halves the work; handle by
      // branching only on the forced value.
      const int variable = std::abs(last_unassigned);
      const int forced = last_unassigned > 0 ? 1 : 0;
      state->assignment[variable - 1] = forced;
      --state->unassigned;
      const double count = CountRecursive(clauses, state);
      state->assignment[variable - 1] = -1;
      ++state->unassigned;
      return count;
    }
    if (branch_variable == 0) branch_variable = std::abs(clause.literals[0]);
    for (Literal lit : clause.literals) {
      if (state->assignment[std::abs(lit) - 1] < 0) {
        branch_variable = std::abs(lit);
        break;
      }
    }
  }
  if (all_satisfied) {
    // Every unassigned variable is free.
    return std::pow(2.0, state->unassigned);
  }
  double total = 0.0;
  for (int value = 0; value <= 1; ++value) {
    state->assignment[branch_variable - 1] = value;
    --state->unassigned;
    total += CountRecursive(clauses, state);
    state->assignment[branch_variable - 1] = -1;
    ++state->unassigned;
  }
  return total;
}

}  // namespace

Result<double> CountSolutionsExact(const CnfFormula& formula) {
  EINSQL_RETURN_IF_ERROR(Validate(formula));
  CountingState state;
  state.assignment.assign(formula.num_variables, -1);
  state.unassigned = formula.num_variables;
  return CountRecursive(formula.clauses, &state);
}

}  // namespace einsql::sat
