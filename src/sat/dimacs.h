#ifndef EINSQL_SAT_DIMACS_H_
#define EINSQL_SAT_DIMACS_H_

#include <string>

#include "common/result.h"
#include "sat/cnf.h"

namespace einsql::sat {

/// Parses a DIMACS CNF document ("c" comments, "p cnf <vars> <clauses>"
/// header, whitespace-separated zero-terminated clauses).
Result<CnfFormula> ParseDimacs(std::string_view text);

/// Renders a formula as DIMACS CNF.
std::string ToDimacs(const CnfFormula& formula);

}  // namespace einsql::sat

#endif  // EINSQL_SAT_DIMACS_H_
