#include "sat/count.h"

#include <cmath>
#include <set>

namespace einsql::sat {

Result<double> CountSolutionsEinsum(EinsumEngine* engine,
                                    const SatTensorNetwork& network,
                                    const EinsumOptions& options) {
  if (network.spec.inputs.empty()) {
    return std::pow(2.0, network.free_variables);
  }
  const std::vector<const CooTensor*> operands = network.operands();
  EINSQL_ASSIGN_OR_RETURN(CooTensor result,
                          engine->EinsumSpecified(network.spec, operands,
                                                  options));
  EINSQL_ASSIGN_OR_RETURN(double count, result.At({}));
  return ScaleByFreeVariables(network, count);
}

Result<double> CountSolutionsEinsum(EinsumEngine* engine,
                                    const CnfFormula& formula,
                                    const EinsumOptions& options) {
  EINSQL_ASSIGN_OR_RETURN(SatTensorNetwork network,
                          BuildTensorNetwork(formula));
  return CountSolutionsEinsum(engine, network, options);
}

LiteralWeights LiteralWeights::Uniform(int num_variables) {
  LiteralWeights weights;
  weights.negative.assign(num_variables, 1.0);
  weights.positive.assign(num_variables, 1.0);
  return weights;
}

Result<double> WeightedCountEinsum(EinsumEngine* engine,
                                   const CnfFormula& formula,
                                   const LiteralWeights& weights,
                                   const EinsumOptions& options) {
  if (static_cast<int>(weights.negative.size()) != formula.num_variables ||
      static_cast<int>(weights.positive.size()) != formula.num_variables) {
    return Status::InvalidArgument("weights need one entry per variable");
  }
  EINSQL_ASSIGN_OR_RETURN(SatTensorNetwork network,
                          BuildTensorNetwork(formula));
  // Variables present in the clause network get a rank-1 weight tensor on
  // their shared index; free variables contribute a scalar factor.
  std::set<Label> used;
  for (const Term& term : network.spec.inputs) {
    for (Label c : term) used.insert(c);
  }
  SatTensorNetwork weighted = network;
  double free_factor = 1.0;
  for (int v = 1; v <= formula.num_variables; ++v) {
    const double w_false = weights.negative[v - 1];
    const double w_true = weights.positive[v - 1];
    if (used.count(static_cast<Label>(v)) == 0) {
      free_factor *= w_false + w_true;
      continue;
    }
    CooTensor weight({2});
    EINSQL_RETURN_IF_ERROR(weight.Append({0}, w_false));
    EINSQL_RETURN_IF_ERROR(weight.Append({1}, w_true));
    weighted.unique_tensors.push_back(std::move(weight));
    weighted.tensor_of_clause.push_back(
        static_cast<int>(weighted.unique_tensors.size()) - 1);
    weighted.spec.inputs.push_back(Term{static_cast<Label>(v)});
  }
  if (weighted.spec.inputs.empty()) return free_factor;
  EINSQL_ASSIGN_OR_RETURN(
      CooTensor result,
      engine->EinsumSpecified(weighted.spec, weighted.operands(), options));
  EINSQL_ASSIGN_OR_RETURN(double total, result.At({}));
  return total * free_factor;
}

Result<double> WeightedCountExact(const CnfFormula& formula,
                                  const LiteralWeights& weights) {
  EINSQL_RETURN_IF_ERROR(Validate(formula));
  if (static_cast<int>(weights.negative.size()) != formula.num_variables ||
      static_cast<int>(weights.positive.size()) != formula.num_variables) {
    return Status::InvalidArgument("weights need one entry per variable");
  }
  if (formula.num_variables > 25) {
    return Status::InvalidArgument(
        "exact WMC oracle limited to 25 variables");
  }
  double total = 0.0;
  const int64_t assignments = int64_t{1} << formula.num_variables;
  std::vector<bool> assignment(formula.num_variables);
  for (int64_t mask = 0; mask < assignments; ++mask) {
    double weight = 1.0;
    for (int v = 0; v < formula.num_variables; ++v) {
      assignment[v] = (mask >> v) & 1;
      weight *= assignment[v] ? weights.positive[v] : weights.negative[v];
    }
    if (Evaluate(formula, assignment)) total += weight;
  }
  return total;
}

}  // namespace einsql::sat
