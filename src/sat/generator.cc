#include "sat/generator.h"

#include <algorithm>
#include <set>

namespace einsql::sat {

CnfFormula RandomKSat(int num_variables, int num_clauses, int k, Rng* rng) {
  CnfFormula formula;
  formula.num_variables = num_variables;
  formula.clauses.reserve(num_clauses);
  for (int c = 0; c < num_clauses; ++c) {
    std::set<int> variables;
    while (static_cast<int>(variables.size()) < k) {
      variables.insert(
          static_cast<int>(rng->UniformInt(1, num_variables)));
    }
    Clause clause;
    for (int variable : variables) {
      clause.literals.push_back(rng->Bernoulli(0.5) ? variable : -variable);
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

CnfFormula PackageDependencyFormula(const PackageFormulaOptions& options) {
  Rng rng(options.seed);
  CnfFormula formula;
  const int versions = options.versions_per_package;
  formula.num_variables = options.num_packages * versions;
  auto variable_of = [&](int package, int version) {
    return package * versions + version + 1;
  };

  for (int package = 0; package < options.num_packages; ++package) {
    // At-most-one version of each package.
    for (int a = 0; a < versions; ++a) {
      for (int b = a + 1; b < versions; ++b) {
        formula.clauses.push_back(
            {{-variable_of(package, a), -variable_of(package, b)}});
      }
    }
    // Dependencies: each version may require some earlier package.
    if (package == 0) continue;
    for (int version = 0; version < versions; ++version) {
      const double expected = options.dependencies_per_version;
      int dependencies = static_cast<int>(expected);
      if (rng.Bernoulli(expected - dependencies)) ++dependencies;
      for (int d = 0; d < dependencies; ++d) {
        int target;
        const int hubs = std::min(options.num_hub_packages, package);
        if (hubs > 0 && rng.Bernoulli(options.hub_dependency_fraction)) {
          target = static_cast<int>(rng.UniformInt(0, hubs - 1));
        } else {
          const int lo = std::max(0, package - options.locality_window);
          target = static_cast<int>(rng.UniformInt(lo, package - 1));
        }
        Clause clause;
        clause.literals.push_back(-variable_of(package, version));
        for (int tv = 0; tv < versions; ++tv) {
          clause.literals.push_back(variable_of(target, tv));
        }
        formula.clauses.push_back(std::move(clause));
      }
    }
  }
  // Requirements: the highest-numbered packages are the "conda install"
  // targets; some version of each must be present.
  const int requested =
      std::min(options.requested_packages, options.num_packages);
  for (int r = 0; r < requested; ++r) {
    const int package = options.num_packages - 1 - r;
    Clause clause;
    for (int version = 0; version < versions; ++version) {
      clause.literals.push_back(variable_of(package, version));
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

CnfFormula TruncateClauses(const CnfFormula& formula, int num_clauses) {
  CnfFormula truncated;
  truncated.num_variables = formula.num_variables;
  const int n = std::min<int>(num_clauses, formula.clauses.size());
  truncated.clauses.assign(formula.clauses.begin(),
                           formula.clauses.begin() + n);
  return truncated;
}

}  // namespace einsql::sat
