#ifndef EINSQL_SAT_CNF_H_
#define EINSQL_SAT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace einsql::sat {

/// A literal: +v for variable v, -v for its negation. Variables are
/// 1-based, as in the DIMACS convention.
using Literal = int;

/// A disjunction of literals.
struct Clause {
  std::vector<Literal> literals;
};

/// A propositional formula in conjunctive normal form.
struct CnfFormula {
  int num_variables = 0;
  std::vector<Clause> clauses;

  /// Largest number of literals in any clause (0 for an empty formula).
  int max_clause_size() const;
};

/// Validates literal ranges (non-zero, |lit| <= num_variables) and rejects
/// empty clauses (an empty clause makes the formula trivially unsatisfiable
/// but has no tensor representation).
Status Validate(const CnfFormula& formula);

/// True iff `assignment` (indexed by variable-1) satisfies the clause.
bool EvaluateClause(const Clause& clause, const std::vector<bool>& assignment);

/// True iff `assignment` satisfies every clause.
bool Evaluate(const CnfFormula& formula, const std::vector<bool>& assignment);

/// Exact #SAT oracle: counts satisfying assignments over all
/// `num_variables` variables by DPLL-style branching with unit propagation
/// and free-variable shortcuts. Exponential; intended for validating the
/// tensor-network counting on small formulas (§4.2).
Result<double> CountSolutionsExact(const CnfFormula& formula);

}  // namespace einsql::sat

#endif  // EINSQL_SAT_CNF_H_
