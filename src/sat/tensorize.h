#ifndef EINSQL_SAT_TENSORIZE_H_
#define EINSQL_SAT_TENSORIZE_H_

#include <vector>

#include "common/result.h"
#include "core/format.h"
#include "sat/cnf.h"
#include "tensor/coo.h"

namespace einsql::sat {

/// A CNF formula converted to an Einstein summation problem (§4.2, Figure
/// 3): one {0,1}^{2^k} tensor per clause whose single zero marks the
/// falsifying assignment, combined so that clause tensors share an index
/// per variable. Contracting everything to a scalar counts the models over
/// the variables that occur in clauses.
///
/// Following the paper, duplicate clause tensors are shared: a 3-SAT
/// formula needs at most 14 unique tensors (2 + 4 + 8 for clause sizes
/// 1..3), regardless of the clause count.
struct SatTensorNetwork {
  /// One input term per clause; output is the empty term (a scalar).
  EinsumSpec spec;
  /// The distinct clause tensors (at most 2^1 + 2^2 + ... unique shapes ×
  /// polarity patterns; ≤14 for 3-SAT).
  std::vector<CooTensor> unique_tensors;
  /// For each clause, the index of its tensor in `unique_tensors`.
  std::vector<int> tensor_of_clause;
  /// Variables that appear in no clause; each doubles the model count.
  int free_variables = 0;

  /// Operand pointers aligned with spec.inputs (tensors are shared).
  std::vector<const CooTensor*> operands() const;
};

/// The 2^k clause tensor for a clause over k distinct variables whose
/// falsifying assignment is `falsifying_mask` (bit d set means the d-th
/// variable is true in the falsifying point). `tautology` clauses (x ∨ ¬x)
/// have no falsifying point and yield an all-ones tensor.
CooTensor ClauseTensor(int k, uint32_t falsifying_mask, bool tautology);

/// Converts a validated CNF formula to its tensor network.
Result<SatTensorNetwork> BuildTensorNetwork(const CnfFormula& formula);

/// Scales a tensor-network model count by the formula's free variables:
/// count * 2^free_variables.
double ScaleByFreeVariables(const SatTensorNetwork& network, double count);

}  // namespace einsql::sat

#endif  // EINSQL_SAT_TENSORIZE_H_
