#ifndef EINSQL_SAT_GENERATOR_H_
#define EINSQL_SAT_GENERATOR_H_

#include "common/rng.h"
#include "sat/cnf.h"

namespace einsql::sat {

/// Uniform random k-SAT: every clause draws k distinct variables and random
/// polarities.
CnfFormula RandomKSat(int num_variables, int num_clauses, int k, Rng* rng);

/// Parameters of the package-dependency formula generator, the stand-in for
/// the Anaconda `conda install sqlite` instance of §4.2 (718 clauses over
/// 378 variables, at most 3 literals per clause).
struct PackageFormulaOptions {
  /// Number of packages; each contributes `versions_per_package` variables.
  int num_packages = 50;
  /// Versions per package (2 yields 3-literal dependency clauses).
  int versions_per_package = 2;
  /// Expected number of dependencies per package version.
  double dependencies_per_version = 1.5;
  /// Real package indexes are shallow: most packages depend either on a
  /// handful of foundational packages ("libc"-style hubs) or on packages
  /// released shortly before them. Hub edges and a small locality window
  /// keep the formula's tensor network at low treewidth — random
  /// long-range dependencies would make any contraction order blow up,
  /// which real conda formulas (and the paper's) do not.
  int num_hub_packages = 5;
  double hub_dependency_fraction = 0.6;
  int locality_window = 4;
  /// Packages explicitly requested for installation (unit clauses).
  int requested_packages = 1;
  uint64_t seed = 1;
};

/// Generates a conda-style dependency CNF:
///  * at-most-one clauses between versions of the same package
///    (¬v_a ∨ ¬v_b),
///  * dependency clauses (¬v ∨ d_1 ∨ ... ∨ d_k) requiring some version of a
///    depended-on package — dependencies point from higher-numbered to
///    lower-numbered packages, so the formula is cycle-free like a real
///    package index,
///  * requirement clauses (v_1 ∨ ... ∨ v_k) for the requested packages.
/// With 2 versions per package, every clause has at most 3 literals
/// (3-SAT), matching the Anaconda instance.
CnfFormula PackageDependencyFormula(const PackageFormulaOptions& options);

/// Truncates a formula to its first `num_clauses` clauses (the clause-count
/// sweep of Figure 4 evaluates prefixes of one large formula).
CnfFormula TruncateClauses(const CnfFormula& formula, int num_clauses);

}  // namespace einsql::sat

#endif  // EINSQL_SAT_GENERATOR_H_
