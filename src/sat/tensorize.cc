#include "sat/tensorize.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

namespace einsql::sat {

std::vector<const CooTensor*> SatTensorNetwork::operands() const {
  std::vector<const CooTensor*> ptrs;
  ptrs.reserve(tensor_of_clause.size());
  for (int index : tensor_of_clause) {
    ptrs.push_back(&unique_tensors[index]);
  }
  return ptrs;
}

CooTensor ClauseTensor(int k, uint32_t falsifying_mask, bool tautology) {
  Shape shape(k, 2);
  CooTensor tensor(shape);
  std::vector<int64_t> coords(k);
  const uint32_t total = 1u << k;
  for (uint32_t point = 0; point < total; ++point) {
    if (!tautology && point == falsifying_mask) continue;
    for (int d = 0; d < k; ++d) coords[d] = (point >> d) & 1u;
    (void)tensor.Append(coords, 1.0);
  }
  return tensor;
}

Result<SatTensorNetwork> BuildTensorNetwork(const CnfFormula& formula) {
  EINSQL_RETURN_IF_ERROR(Validate(formula));
  SatTensorNetwork network;
  // Key of a unique tensor: (k, falsifying_mask) with mask == 2^k marking a
  // tautology (no falsifying point).
  std::map<std::pair<int, uint32_t>, int> unique_index;
  std::set<int> used_variables;

  for (const Clause& clause : formula.clauses) {
    // Distinct variables in ascending order define the tensor axes.
    std::vector<int> variables;
    for (Literal lit : clause.literals) variables.push_back(std::abs(lit));
    std::sort(variables.begin(), variables.end());
    variables.erase(std::unique(variables.begin(), variables.end()),
                    variables.end());
    const int k = static_cast<int>(variables.size());
    if (k > 20) {
      return Status::InvalidArgument(
          "clause with ", k, " distinct variables exceeds the 2^k tensor "
          "representation limit");
    }
    // The falsifying assignment makes every literal false: positive
    // literals force variable=false (bit 0), negative force true (bit 1).
    // A variable appearing with both polarities is a tautology.
    bool tautology = false;
    uint32_t mask = 0;
    std::map<int, int> polarity;  // +1, -1, 0=both
    for (Literal lit : clause.literals) {
      const int variable = std::abs(lit);
      const int sign = lit > 0 ? 1 : -1;
      auto [it, inserted] = polarity.emplace(variable, sign);
      if (!inserted && it->second != sign) tautology = true;
    }
    if (!tautology) {
      for (int d = 0; d < k; ++d) {
        if (polarity[variables[d]] < 0) mask |= 1u << d;
      }
    }
    const std::pair<int, uint32_t> key = {k, tautology ? (1u << k) : mask};
    auto [it, inserted] =
        unique_index.emplace(key, static_cast<int>(network.unique_tensors.size()));
    if (inserted) {
      network.unique_tensors.push_back(ClauseTensor(k, mask, tautology));
    }
    network.tensor_of_clause.push_back(it->second);
    // Index term: one label per variable. Labels start at 1 because
    // char32_t 0 is the string terminator.
    Term term;
    for (int variable : variables) {
      term.push_back(static_cast<Label>(variable));
      used_variables.insert(variable);
    }
    network.spec.inputs.push_back(std::move(term));
  }
  network.spec.output.clear();
  network.free_variables =
      formula.num_variables - static_cast<int>(used_variables.size());
  return network;
}

double ScaleByFreeVariables(const SatTensorNetwork& network, double count) {
  return count * std::pow(2.0, network.free_variables);
}

}  // namespace einsql::sat
