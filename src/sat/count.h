#ifndef EINSQL_SAT_COUNT_H_
#define EINSQL_SAT_COUNT_H_

#include "backends/einsum_engine.h"
#include "sat/tensorize.h"

namespace einsql::sat {

/// Counts the satisfying assignments of `formula` by contracting its tensor
/// network on `engine` (#SAT via Einstein summation, §4.2), scaling by free
/// variables. Formulas without clauses have 2^num_variables models.
Result<double> CountSolutionsEinsum(EinsumEngine* engine,
                                    const CnfFormula& formula,
                                    const EinsumOptions& options = {});

/// Counts via an already-built network (reuse across repetitions in the
/// benchmark loop).
Result<double> CountSolutionsEinsum(EinsumEngine* engine,
                                    const SatTensorNetwork& network,
                                    const EinsumOptions& options = {});

/// Per-variable literal weights for weighted model counting:
/// `negative[v-1]` is the weight of assigning variable v false,
/// `positive[v-1]` of assigning it true. Unweighted counting is
/// negative = positive = 1 everywhere.
struct LiteralWeights {
  std::vector<double> negative;
  std::vector<double> positive;

  /// Uniform weights (plain #SAT) for `num_variables` variables.
  static LiteralWeights Uniform(int num_variables);
};

/// Weighted model counting (WMC): the sum over satisfying assignments of
/// the product of literal weights. Implemented by attaching one rank-1
/// weight tensor (w_false, w_true) per variable to the clause tensor
/// network — free variables contribute their weight sum as a factor.
/// With uniform weights this equals CountSolutionsEinsum.
Result<double> WeightedCountEinsum(EinsumEngine* engine,
                                   const CnfFormula& formula,
                                   const LiteralWeights& weights,
                                   const EinsumOptions& options = {});

/// Exact WMC oracle by DPLL-style enumeration (validation only).
Result<double> WeightedCountExact(const CnfFormula& formula,
                                  const LiteralWeights& weights);

}  // namespace einsql::sat

#endif  // EINSQL_SAT_COUNT_H_
