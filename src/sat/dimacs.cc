#include "sat/dimacs.h"

#include <sstream>

#include "common/str_util.h"

namespace einsql::sat {

Result<CnfFormula> ParseDimacs(std::string_view text) {
  CnfFormula formula;
  bool header_seen = false;
  int declared_clauses = 0;
  Clause current;
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == 'c' || trimmed[0] == '%') continue;
    if (trimmed[0] == 'p') {
      std::istringstream header{std::string(trimmed)};
      std::string p, cnf;
      header >> p >> cnf >> formula.num_variables >> declared_clauses;
      if (cnf != "cnf" || header.fail()) {
        return Status::ParseError("malformed DIMACS header: '", trimmed, "'");
      }
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      return Status::ParseError("clause data before DIMACS header");
    }
    std::istringstream numbers{std::string(trimmed)};
    int value = 0;
    while (numbers >> value) {
      if (value == 0) {
        if (current.literals.empty()) {
          return Status::ParseError("empty clause in DIMACS input");
        }
        formula.clauses.push_back(std::move(current));
        current = Clause{};
      } else {
        current.literals.push_back(value);
      }
    }
    if (!numbers.eof()) {
      return Status::ParseError("malformed clause line: '", trimmed, "'");
    }
  }
  if (!header_seen) return Status::ParseError("missing DIMACS header");
  if (!current.literals.empty()) {
    // Clause without a trailing 0 terminator; accept it (common in the
    // wild) rather than dropping data.
    formula.clauses.push_back(std::move(current));
  }
  if (declared_clauses != 0 &&
      declared_clauses != static_cast<int>(formula.clauses.size())) {
    return Status::ParseError("DIMACS header declares ", declared_clauses,
                              " clauses but ", formula.clauses.size(),
                              " were parsed");
  }
  EINSQL_RETURN_IF_ERROR(Validate(formula));
  return formula;
}

std::string ToDimacs(const CnfFormula& formula) {
  std::ostringstream os;
  os << "p cnf " << formula.num_variables << " " << formula.clauses.size()
     << "\n";
  for (const Clause& clause : formula.clauses) {
    for (Literal lit : clause.literals) os << lit << " ";
    os << "0\n";
  }
  return os.str();
}

}  // namespace einsql::sat
