#ifndef EINSQL_TRIPLESTORE_DICTIONARY_H_
#define EINSQL_TRIPLESTORE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace einsql::triplestore {

/// Bidirectional term dictionary: RDF terms (IRIs, literals) ↔ dense
/// integer ids. Ids index the axes of the one-hot triple tensor T (§4.1).
class Dictionary {
 public:
  /// Id of `term`, interning it on first sight.
  int64_t Intern(const std::string& term);

  /// Id of `term`, or NotFound if it was never interned.
  Result<int64_t> Lookup(const std::string& term) const;

  /// Term of `id`, or OutOfRange.
  Result<std::string> TermOf(int64_t id) const;

  /// Number of distinct terms (== the extent n of every axis of T).
  int64_t size() const { return static_cast<int64_t>(terms_.size()); }

 private:
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> terms_;
};

}  // namespace einsql::triplestore

#endif  // EINSQL_TRIPLESTORE_DICTIONARY_H_
