#ifndef EINSQL_TRIPLESTORE_STORE_H_
#define EINSQL_TRIPLESTORE_STORE_H_

#include <string>
#include <vector>

#include "backends/backend.h"
#include "triplestore/dictionary.h"

namespace einsql::triplestore {

/// A subject-predicate-object triple, by term id.
struct Triple {
  int64_t s = 0;
  int64_t p = 0;
  int64_t o = 0;
};

/// An in-memory triplestore: a term dictionary plus the triple list, i.e.
/// the COO representation of the hypersparse one-hot tensor
/// T ∈ {0,1}^{n×n×n} of §4.1 (every triple is a 1-valued point).
class TripleStore {
 public:
  /// Adds a triple of terms, interning them.
  void Add(const std::string& s, const std::string& p, const std::string& o);

  /// Adds a triple of existing ids (unchecked).
  void AddIds(int64_t s, int64_t p, int64_t o);

  const std::vector<Triple>& triples() const { return triples_; }
  int64_t num_triples() const { return static_cast<int64_t>(triples_.size()); }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }

  /// Number of distinct terms n (the extent of each axis of T).
  int64_t num_terms() const { return dictionary_.size(); }

  /// Fraction of non-zero entries of the dense n^3 tensor (the paper
  /// reports ~1e-13 for the Olympic dataset).
  double Sparsity() const;

  /// Materializes T as a COO table `table`(i0, i1, i2, val) on a backend;
  /// axis order is (s, p, o), every value is 1.0.
  Status LoadInto(SqlBackend* backend, const std::string& table = "T") const;

 private:
  Dictionary dictionary_;
  std::vector<Triple> triples_;
};

}  // namespace einsql::triplestore

#endif  // EINSQL_TRIPLESTORE_STORE_H_
