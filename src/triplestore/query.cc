#include "triplestore/query.h"

#include <algorithm>
#include <functional>
#include <map>

#include "backends/einsum_engine.h"
#include "common/str_util.h"
#include "core/program.h"
#include "core/sqlgen.h"

namespace einsql::triplestore {

namespace {

bool IsVariable(const std::string& position) {
  return !position.empty() && position[0] == '?';
}

struct CompiledPatterns {
  EinsumSpec spec;
  std::string prelude;                  // slice CTE definitions
  std::vector<std::string> slice_names;
  int64_t n = 0;                        // axis extent
};

// Builds slice CTEs and the einsum spec from the patterns.
Result<CompiledPatterns> Compile(const TripleStore& store,
                                 const std::vector<TriplePattern>& patterns,
                                 const std::vector<std::string>& select,
                                 const std::string& table) {
  if (patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (select.empty()) {
    return Status::InvalidArgument("query selects no variables");
  }
  for (const std::string& variable : select) {
    if (!IsVariable(variable)) {
      return Status::InvalidArgument("select variable must start with '?'");
    }
  }
  CompiledPatterns compiled;
  compiled.n = std::max<int64_t>(store.num_terms(), 1);
  std::map<std::string, Label> label_of;
  auto label_for = [&](const std::string& variable) {
    auto [it, inserted] = label_of.emplace(
        variable, static_cast<Label>('a' + label_of.size()));
    return it->second;
  };

  std::vector<std::string> ctes;
  for (size_t k = 0; k < patterns.size(); ++k) {
    const TriplePattern& pattern = patterns[k];
    const std::string positions[3] = {pattern.s, pattern.p, pattern.o};
    Term term;
    std::vector<std::string> projected;
    std::vector<std::string> conditions;
    for (int axis = 0; axis < 3; ++axis) {
      if (IsVariable(positions[axis])) {
        term.push_back(label_for(positions[axis]));
        projected.push_back(StrCat(table, ".i", axis));
      } else {
        // Unknown terms slice to an empty relation (id -1 never matches).
        const int64_t id =
            store.dictionary().Lookup(positions[axis]).value_or(-1);
        conditions.push_back(StrCat(table, ".i", axis, "=", id));
      }
    }
    const std::string name = StrCat("S", k);
    std::string cte = name + "(";
    for (size_t c = 0; c < projected.size(); ++c) {
      cte += StrCat("i", c, ", ");
    }
    cte += "val) AS (SELECT ";
    for (const std::string& column : projected) cte += column + ", ";
    cte += StrCat(table, ".val FROM ", table);
    if (!conditions.empty()) cte += " WHERE " + Join(conditions, " AND ");
    cte += ")";
    ctes.push_back(std::move(cte));
    compiled.slice_names.push_back(name);
    compiled.spec.inputs.push_back(std::move(term));
  }
  for (const std::string& variable : select) {
    auto it = label_of.find(variable);
    if (it == label_of.end()) {
      return Status::InvalidArgument("select variable ", variable,
                                     " does not occur in any pattern");
    }
    if (compiled.spec.output.find(it->second) != Term::npos) {
      return Status::InvalidArgument("select variable ", variable,
                                     " listed twice");
    }
    compiled.spec.output.push_back(it->second);
  }
  compiled.prelude = Join(ctes, ",\n");
  return compiled;
}

// Shared core of the SQL compilation for 1..k selected variables.
Result<std::string> CompileToSql(const TripleStore& store,
                                 const std::vector<TriplePattern>& patterns,
                                 const std::vector<std::string>& select,
                                 PathAlgorithm path,
                                 const std::string& table) {
  EINSQL_ASSIGN_OR_RETURN(CompiledPatterns compiled,
                          Compile(store, patterns, select, table));
  std::vector<Shape> shapes;
  for (const Term& term : compiled.spec.inputs) {
    shapes.push_back(Shape(term.size(), compiled.n));
  }
  EINSQL_ASSIGN_OR_RETURN(ContractionProgram program,
                          BuildProgram(compiled.spec, shapes, path));
  SqlGenOptions options;
  options.input_names = compiled.slice_names;
  options.prelude_ctes = compiled.prelude;
  options.order_by = "val DESC";
  return GenerateEinsumSqlForTables(program, options);
}

}  // namespace

Result<std::string> CompileQueryToSql(const TripleStore& store,
                                      const PatternQuery& query,
                                      PathAlgorithm path,
                                      const std::string& table) {
  return CompileToSql(store, query.patterns, {query.select_variable}, path,
                      table);
}

Result<std::string> CompileMultiQueryToSql(const TripleStore& store,
                                           const MultiPatternQuery& query,
                                           PathAlgorithm path,
                                           const std::string& table) {
  return CompileToSql(store, query.patterns, query.select_variables, path,
                      table);
}

Result<std::vector<CountedRow>> AnswerMultiWithSql(
    SqlBackend* backend, const TripleStore& store,
    const MultiPatternQuery& query, PathAlgorithm path,
    const std::string& table) {
  EINSQL_ASSIGN_OR_RETURN(std::string sql,
                          CompileMultiQueryToSql(store, query, path, table));
  EINSQL_ASSIGN_OR_RETURN(minidb::Relation relation, backend->Query(sql));
  const size_t k = query.select_variables.size();
  std::vector<CountedRow> rows;
  rows.reserve(relation.rows.size());
  for (const minidb::Row& row : relation.rows) {
    if (row.size() != k + 1) {
      return Status::Internal("expected (ids..., count) result rows");
    }
    CountedRow out;
    for (size_t c = 0; c < k; ++c) {
      EINSQL_ASSIGN_OR_RETURN(int64_t id, minidb::AsInt(row[c]));
      EINSQL_ASSIGN_OR_RETURN(std::string term,
                              store.dictionary().TermOf(id));
      out.terms.push_back(std::move(term));
    }
    EINSQL_ASSIGN_OR_RETURN(out.count, minidb::AsDouble(row[k]));
    rows.push_back(std::move(out));
  }
  return rows;
}

Result<std::vector<CountedTerm>> AnswerWithSql(SqlBackend* backend,
                                               const TripleStore& store,
                                               const PatternQuery& query,
                                               PathAlgorithm path,
                                               const std::string& table) {
  EINSQL_ASSIGN_OR_RETURN(std::string sql,
                          CompileQueryToSql(store, query, path, table));
  EINSQL_ASSIGN_OR_RETURN(minidb::Relation relation, backend->Query(sql));
  std::vector<CountedTerm> rows;
  rows.reserve(relation.rows.size());
  for (const minidb::Row& row : relation.rows) {
    if (row.size() != 2) {
      return Status::Internal("expected (id, count) result rows");
    }
    EINSQL_ASSIGN_OR_RETURN(int64_t id, minidb::AsInt(row[0]));
    EINSQL_ASSIGN_OR_RETURN(std::string term, store.dictionary().TermOf(id));
    EINSQL_ASSIGN_OR_RETURN(double count, minidb::AsDouble(row[1]));
    rows.push_back({std::move(term), count});
  }
  return rows;
}

Result<std::vector<CountedTerm>> AnswerNaive(const TripleStore& store,
                                             const PatternQuery& query) {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  // Backtracking join with a predicate index, RDFLib-style (RDFLib keeps
  // per-position indexes; scanning the full triple list per pattern would
  // be an unfair strawman).
  std::map<int64_t, std::vector<const Triple*>> by_predicate;
  for (const Triple& triple : store.triples()) {
    by_predicate[triple.p].push_back(&triple);
  }
  static const std::vector<const Triple*> kEmpty;
  std::map<std::string, int64_t> bindings;
  std::map<int64_t, double> counts;
  bool select_seen = false;
  for (const TriplePattern& pattern : query.patterns) {
    for (const std::string* position : {&pattern.s, &pattern.p, &pattern.o}) {
      if (*position == query.select_variable) select_seen = true;
    }
  }
  if (!IsVariable(query.select_variable) || !select_seen) {
    return Status::InvalidArgument("select variable ", query.select_variable,
                                   " does not occur in any pattern");
  }

  std::function<void(size_t)> match = [&](size_t k) {
    if (k == query.patterns.size()) {
      counts[bindings[query.select_variable]] += 1.0;
      return;
    }
    const TriplePattern& pattern = query.patterns[k];
    const std::string positions[3] = {pattern.s, pattern.p, pattern.o};
    // Restrict candidates via the predicate index when the predicate is a
    // fixed term or an already-bound variable.
    const std::vector<const Triple*>* candidates = nullptr;
    std::vector<const Triple*> all;
    int64_t predicate_id = -1;
    if (!IsVariable(pattern.p)) {
      predicate_id = store.dictionary().Lookup(pattern.p).value_or(-1);
    } else if (bindings.count(pattern.p) > 0) {
      predicate_id = bindings[pattern.p];
    }
    if (predicate_id >= 0) {
      auto it = by_predicate.find(predicate_id);
      candidates = it == by_predicate.end() ? &kEmpty : &it->second;
    } else if (predicate_id == -1 && !IsVariable(pattern.p)) {
      candidates = &kEmpty;  // unknown fixed term matches nothing
    } else {
      all.reserve(store.triples().size());
      for (const Triple& triple : store.triples()) all.push_back(&triple);
      candidates = &all;
    }
    for (const Triple* candidate : *candidates) {
      const Triple& triple = *candidate;
      const int64_t ids[3] = {triple.s, triple.p, triple.o};
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (int axis = 0; axis < 3 && ok; ++axis) {
        if (IsVariable(positions[axis])) {
          auto it = bindings.find(positions[axis]);
          if (it == bindings.end()) {
            bindings[positions[axis]] = ids[axis];
            newly_bound.push_back(positions[axis]);
          } else if (it->second != ids[axis]) {
            ok = false;
          }
        } else {
          auto id = store.dictionary().Lookup(positions[axis]);
          ok = id.ok() && id.value() == ids[axis];
        }
      }
      if (ok) match(k + 1);
      for (const std::string& variable : newly_bound) {
        bindings.erase(variable);
      }
    }
  };
  match(0);

  std::vector<CountedTerm> rows;
  for (const auto& [id, count] : counts) {
    EINSQL_ASSIGN_OR_RETURN(std::string term, store.dictionary().TermOf(id));
    rows.push_back({std::move(term), count});
  }
  std::sort(rows.begin(), rows.end(), [](const CountedTerm& a,
                                         const CountedTerm& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.term < b.term;
  });
  return rows;
}


Result<std::vector<CountedRow>> AnswerMultiNaive(
    const TripleStore& store, const MultiPatternQuery& query) {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (query.select_variables.empty()) {
    return Status::InvalidArgument("query selects no variables");
  }
  for (const std::string& variable : query.select_variables) {
    bool seen = false;
    for (const TriplePattern& pattern : query.patterns) {
      if (pattern.s == variable || pattern.p == variable ||
          pattern.o == variable) {
        seen = true;
      }
    }
    if (!IsVariable(variable) || !seen) {
      return Status::InvalidArgument("select variable ", variable,
                                     " does not occur in any pattern");
    }
  }
  // Predicate index, as in AnswerNaive.
  std::map<int64_t, std::vector<const Triple*>> by_predicate;
  for (const Triple& triple : store.triples()) {
    by_predicate[triple.p].push_back(&triple);
  }
  static const std::vector<const Triple*> kEmpty;
  std::map<std::string, int64_t> bindings;
  std::map<std::vector<int64_t>, double> counts;

  std::function<void(size_t)> match = [&](size_t k) {
    if (k == query.patterns.size()) {
      std::vector<int64_t> key;
      key.reserve(query.select_variables.size());
      for (const std::string& variable : query.select_variables) {
        key.push_back(bindings[variable]);
      }
      counts[key] += 1.0;
      return;
    }
    const TriplePattern& pattern = query.patterns[k];
    const std::string positions[3] = {pattern.s, pattern.p, pattern.o};
    const std::vector<const Triple*>* candidates = nullptr;
    std::vector<const Triple*> all;
    int64_t predicate_id = -1;
    if (!IsVariable(pattern.p)) {
      predicate_id = store.dictionary().Lookup(pattern.p).value_or(-1);
    } else if (bindings.count(pattern.p) > 0) {
      predicate_id = bindings[pattern.p];
    }
    if (predicate_id >= 0) {
      auto it = by_predicate.find(predicate_id);
      candidates = it == by_predicate.end() ? &kEmpty : &it->second;
    } else if (predicate_id == -1 && !IsVariable(pattern.p)) {
      candidates = &kEmpty;
    } else {
      all.reserve(store.triples().size());
      for (const Triple& triple : store.triples()) all.push_back(&triple);
      candidates = &all;
    }
    for (const Triple* candidate : *candidates) {
      const Triple& triple = *candidate;
      const int64_t ids[3] = {triple.s, triple.p, triple.o};
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (int axis = 0; axis < 3 && ok; ++axis) {
        if (IsVariable(positions[axis])) {
          auto it = bindings.find(positions[axis]);
          if (it == bindings.end()) {
            bindings[positions[axis]] = ids[axis];
            newly_bound.push_back(positions[axis]);
          } else if (it->second != ids[axis]) {
            ok = false;
          }
        } else {
          auto id = store.dictionary().Lookup(positions[axis]);
          ok = id.ok() && id.value() == ids[axis];
        }
      }
      if (ok) match(k + 1);
      for (const std::string& variable : newly_bound) {
        bindings.erase(variable);
      }
    }
  };
  match(0);

  std::vector<CountedRow> rows;
  for (const auto& [key, count] : counts) {
    CountedRow row;
    for (int64_t id : key) {
      EINSQL_ASSIGN_OR_RETURN(std::string term, store.dictionary().TermOf(id));
      row.terms.push_back(std::move(term));
    }
    row.count = count;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const CountedRow& a, const CountedRow& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.terms < b.terms;
            });
  return rows;
}

PatternQuery GoldMedalQuery() {
  PatternQuery query;
  query.patterns = {
      {"?instance", "walls:athlete", "?athlete"},   // TP1
      {"?instance", "walls:medal", "medal:Gold"},   // TP2
      {"?athlete", "rdfs:label", "?name"},          // TP3
  };
  query.select_variable = "?name";
  return query;
}

}  // namespace einsql::triplestore
