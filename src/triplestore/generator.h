#ifndef EINSQL_TRIPLESTORE_GENERATOR_H_
#define EINSQL_TRIPLESTORE_GENERATOR_H_

#include "triplestore/store.h"

namespace einsql::triplestore {

/// Parameters of the synthetic Olympic-history generator, the stand-in for
/// the 120-years-of-Olympics Kaggle dump (§4.1: 1,781,625 triples and
/// 544,171 distinct terms at full scale). The generator reproduces the
/// dataset's *shape* — medal-result instances linked to athletes, medals,
/// games and events, plus athlete labels — so the gold-medal query
/// exercises the same slicing and contraction pattern.
struct OlympicsOptions {
  /// Number of athletes; each gets a rdfs:label triple.
  int num_athletes = 1000;
  /// Result instances per athlete (each instance yields ~5 triples).
  int results_per_athlete = 3;
  /// Fraction of results that are medals, split evenly into
  /// Gold/Silver/Bronze.
  double medal_fraction = 0.15;
  /// Distinct games (e.g. "games:1996-Summer") and events.
  int num_games = 50;
  int num_events = 600;
  uint64_t seed = 7;
};

/// Generates the synthetic dataset. Deterministic for a fixed seed.
TripleStore GenerateOlympics(const OlympicsOptions& options);

}  // namespace einsql::triplestore

#endif  // EINSQL_TRIPLESTORE_GENERATOR_H_
