#include "triplestore/dictionary.h"

namespace einsql::triplestore {

int64_t Dictionary::Intern(const std::string& term) {
  auto [it, inserted] =
      ids_.emplace(term, static_cast<int64_t>(terms_.size()));
  if (inserted) terms_.push_back(term);
  return it->second;
}

Result<int64_t> Dictionary::Lookup(const std::string& term) const {
  auto it = ids_.find(term);
  if (it == ids_.end()) {
    return Status::NotFound("term '", term, "' not in dictionary");
  }
  return it->second;
}

Result<std::string> Dictionary::TermOf(int64_t id) const {
  if (id < 0 || id >= size()) {
    return Status::OutOfRange("term id ", id, " out of range");
  }
  return terms_[id];
}

}  // namespace einsql::triplestore
