#include "triplestore/store.h"

namespace einsql::triplestore {

void TripleStore::Add(const std::string& s, const std::string& p,
                      const std::string& o) {
  triples_.push_back({dictionary_.Intern(s), dictionary_.Intern(p),
                      dictionary_.Intern(o)});
}

void TripleStore::AddIds(int64_t s, int64_t p, int64_t o) {
  triples_.push_back({s, p, o});
}

double TripleStore::Sparsity() const {
  const double n = static_cast<double>(num_terms());
  if (n == 0.0) return 0.0;
  return static_cast<double>(num_triples()) / (n * n * n);
}

Status TripleStore::LoadInto(SqlBackend* backend,
                             const std::string& table) const {
  const int64_t n = std::max<int64_t>(num_terms(), 1);
  CooTensor tensor({n, n, n});
  for (const Triple& triple : triples_) {
    EINSQL_RETURN_IF_ERROR(
        tensor.Append({triple.s, triple.p, triple.o}, 1.0));
  }
  EINSQL_RETURN_IF_ERROR(backend->CreateCooTable(table, 3, false));
  return backend->LoadCooTensor(table, tensor);
}

}  // namespace einsql::triplestore
